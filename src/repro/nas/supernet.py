"""Differentiable supernet over the SESR backbone (paper §3.4).

Every searchable slot holds one candidate op per choice and mixes their
outputs with Gumbel-softmax weights over learnable architecture logits.
Deriving an architecture takes the per-slot argmax.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.linear_block import CollapsibleLinearBlock
from ..nn import Identity, Module, Parameter, ReLU, Tensor, depth_to_space, softmax
from .space import (
    END_KERNEL_CHOICES,
    KERNEL_CHOICES,
    SKIP,
    Genotype,
    Kernel,
    is_residual_capable,
)


class MixedBlock(Module):
    """One searchable slot: candidate linear blocks mixed by Gumbel-softmax.

    ``choices`` may include :data:`SKIP`, realised as an identity branch —
    the paper's mechanism for searching the number of layers.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        choices: Sequence[Optional[Kernel]],
        expansion: int = 32,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        if any(c is SKIP for c in choices) and in_channels != out_channels:
            raise ValueError("skip choice requires matching channel counts")
        self.choices = tuple(choices)
        self.ops: List[Module] = []
        for i, choice in enumerate(self.choices):
            if choice is SKIP:
                op: Module = Identity()
            else:
                op = CollapsibleLinearBlock(
                    in_channels,
                    out_channels,
                    choice,
                    expansion=expansion,
                    residual=is_residual_capable(choice)
                    and in_channels == out_channels,
                    rng=rng,
                )
            setattr(self, f"op{i}", op)
            self.ops.append(op)
        self.alpha = Parameter(np.zeros(len(self.choices), dtype=np.float32))

    def gate_weights(
        self, temperature: float, gumbel: Optional[np.ndarray] = None
    ) -> Tensor:
        """Differentiable (soft) op weights at the given temperature."""
        logits = self.alpha
        if gumbel is not None:
            logits = logits + Tensor(gumbel.astype(np.float32))
        return softmax(logits * (1.0 / temperature), axis=0)

    def forward(
        self,
        x: Tensor,
        temperature: float = 1.0,
        gumbel: Optional[np.ndarray] = None,
    ) -> Tensor:
        weights = self.gate_weights(temperature, gumbel)
        out = None
        for i, op in enumerate(self.ops):
            term = op(x) * weights[i]
            out = term if out is None else out + term
        return out

    def best_choice(self) -> Optional[Kernel]:
        return self.choices[int(np.argmax(self.alpha.data))]

    def choice_probs(self) -> np.ndarray:
        a = self.alpha.data - self.alpha.data.max()
        e = np.exp(a)
        return e / e.sum()


class SESRSupernet(Module):
    """The searchable SESR backbone: end blocks pick 5×5/3×3, trunk slots
    pick among even/asymmetric/3×3 kernels or skip."""

    def __init__(
        self,
        scale: int = 2,
        f: int = 16,
        slots: int = 5,
        expansion: int = 32,
        trunk_choices: Sequence[Optional[Kernel]] = KERNEL_CHOICES + (SKIP,),
        end_choices: Sequence[Kernel] = END_KERNEL_CHOICES,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.scale = scale
        self.f = f
        self.first = MixedBlock(1, f, tuple(end_choices), expansion, rng)
        self.act_first = ReLU()
        self.slots: List[MixedBlock] = []
        for i in range(slots):
            slot = MixedBlock(f, f, tuple(trunk_choices), expansion, rng)
            setattr(self, f"slot{i}", slot)
            self.slots.append(slot)
        self.last = MixedBlock(f, scale * scale, tuple(end_choices), expansion, rng)

    def mixed_blocks(self) -> List[MixedBlock]:
        return [self.first, *self.slots, self.last]

    def arch_parameters(self) -> List[Parameter]:
        return [b.alpha for b in self.mixed_blocks()]

    def weight_parameters(self) -> List[Parameter]:
        arch_ids = {id(a) for a in self.arch_parameters()}
        return [p for p in self.parameters() if id(p) not in arch_ids]

    def forward(
        self,
        x: Tensor,
        temperature: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> Tensor:
        def gum(n: int) -> Optional[np.ndarray]:
            if rng is None:
                return None
            u = rng.uniform(1e-6, 1.0 - 1e-6, size=n)
            return -np.log(-np.log(u))

        feat = self.act_first(
            self.first(x, temperature, gum(len(self.first.choices)))
        )
        h = feat
        for slot in self.slots:
            h = ReLU()(slot(h, temperature, gum(len(slot.choices))))
        h = h + feat
        out = self.last(h, temperature, gum(len(self.last.choices)))
        for _ in range(self.scale // 2):
            out = depth_to_space(out, 2)
        return out

    def genotype(self) -> Genotype:
        """Per-slot argmax architecture."""
        return Genotype(
            scale=self.scale,
            f=self.f,
            first_kernel=self.first.best_choice(),
            block_kernels=tuple(s.best_choice() for s in self.slots),
            last_kernel=self.last.best_choice(),
        )
