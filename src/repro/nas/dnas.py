"""Hardware-aware differentiable architecture search (paper §3.4).

Standard DNAS recipe: train supernet weights and architecture logits jointly
on the SISR task loss plus a differentiable expected-latency penalty,

    L = L_task + λ · Σ_slots Σ_i p_i · latency(op_i),

where the per-op latencies come from the :mod:`repro.hw` NPU model (so the
search is literally latency-constrained on the simulated Ethos-class NPU,
as in the paper), and ``p`` are the Gumbel-softmax gate weights.  The final
architecture is the per-slot argmax, realised as a :class:`NasSESR`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.pipeline import PatchSampler
from ..hw.estimator import estimate
from ..hw.graph import graph_from_specs
from ..hw.spec import ETHOS_N78_4TOPS, NPUSpec
from ..metrics.complexity import LayerSpec
from ..nn import Adam, Tensor
from ..nn.losses import l1_loss
from .space import SKIP, Genotype, Kernel, NasSESR
from .supernet import SESRSupernet


def op_latency_ms(
    kernel: Optional[Kernel],
    cin: int,
    cout: int,
    npu: NPUSpec,
    in_h: int,
    in_w: int,
) -> float:
    """Simulated NPU latency of a single candidate op at the target resolution."""
    if kernel is SKIP:
        return 0.0
    spec = LayerSpec("conv", kernel, cin, cout, 1.0, "op")
    graph = graph_from_specs("op", [spec], in_h, in_w)
    return estimate(graph, npu).runtime_ms


def latency_table(
    supernet: SESRSupernet, npu: NPUSpec, in_h: int, in_w: int
) -> List[np.ndarray]:
    """Per-slot vectors of candidate-op latencies (ms)."""
    tables = []
    for block in supernet.mixed_blocks():
        lats = []
        for choice, op in zip(block.choices, block.ops):
            cin = getattr(op, "in_channels", supernet.f)
            cout = getattr(op, "out_channels", supernet.f)
            lats.append(op_latency_ms(choice, cin, cout, npu, in_h, in_w))
        tables.append(np.asarray(lats, dtype=np.float32))
    return tables


def expected_latency(
    supernet: SESRSupernet, tables: Sequence[np.ndarray], temperature: float
) -> Tensor:
    """Differentiable expected latency under the current gate distribution."""
    total: Optional[Tensor] = None
    for block, lats in zip(supernet.mixed_blocks(), tables):
        weights = block.gate_weights(temperature)
        term = (weights * Tensor(lats)).sum()
        total = term if total is None else total + term
    return total


def genotype_latency_ms(
    genotype: Genotype, npu: NPUSpec, in_h: int, in_w: int
) -> float:
    """Simulated NPU latency of a derived architecture."""
    graph = graph_from_specs(genotype.describe(), genotype.specs(), in_h, in_w)
    return estimate(graph, npu).runtime_ms


@dataclass
class DNASConfig:
    """Search hyper-parameters (scaled down from the paper's full search)."""

    steps: int = 120
    lr_weights: float = 2e-3
    lr_arch: float = 5e-2
    latency_weight: float = 0.02
    temperature_start: float = 4.0
    temperature_end: float = 0.5
    #: resolution the latency constraint targets (paper: 200×200 → 400×400).
    latency_res: Tuple[int, int] = (200, 200)
    gumbel_seed: int = 0


@dataclass
class SearchResult:
    """Outcome of one DNAS run."""

    genotype: Genotype
    loss_history: List[float] = field(default_factory=list)
    latency_history: List[float] = field(default_factory=list)
    probs: List[np.ndarray] = field(default_factory=list)


def search(
    supernet: SESRSupernet,
    sampler: PatchSampler,
    config: DNASConfig = DNASConfig(),
    npu: NPUSpec = ETHOS_N78_4TOPS,
) -> SearchResult:
    """Run DNAS on ``supernet`` with data from ``sampler``."""
    tables = latency_table(supernet, npu, *config.latency_res)
    opt_w = Adam(supernet.weight_parameters(), lr=config.lr_weights)
    opt_a = Adam(supernet.arch_parameters(), lr=config.lr_arch)
    rng = np.random.default_rng(config.gumbel_seed)
    result = SearchResult(genotype=supernet.genotype())

    batches = sampler.batches(epochs=10**9)  # bounded by config.steps below
    for step in range(config.steps):
        frac = step / max(config.steps - 1, 1)
        temperature = config.temperature_start * (
            config.temperature_end / config.temperature_start
        ) ** frac
        lr_b, hr_b = next(batches)
        opt_w.zero_grad()
        opt_a.zero_grad()
        pred = supernet(Tensor(lr_b), temperature=temperature, rng=rng)
        task = l1_loss(pred, Tensor(hr_b))
        lat = expected_latency(supernet, tables, temperature)
        loss = task + lat * config.latency_weight
        loss.backward()
        opt_w.step()
        opt_a.step()
        result.loss_history.append(task.item())
        result.latency_history.append(lat.item())

    result.genotype = supernet.genotype()
    result.probs = [b.choice_probs() for b in supernet.mixed_blocks()]
    return result


def realize(genotype: Genotype, expansion: int = 64, seed: int = 0) -> NasSESR:
    """Instantiate the searched architecture for (re-)training."""
    return NasSESR(genotype, expansion=expansion, seed=seed)
