"""NAS search space over SESR backbones (paper §3.4, Fig. 9).

The paper's DNAS chooses, per collapsible linear block, the kernel height
and width — including *even-sized* (2×2) and *asymmetric* (2×1, 3×2, 2×3)
kernels — plus whether to keep the block at all (layer-count search via a
parallel skip branch), under a latency constraint from the NPU model.

A :class:`Genotype` is a concrete architecture drawn from the space; it can
be turned into layer specs (for latency estimation) or into a trainable
:class:`NasSESR` model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.linear_block import CollapsibleLinearBlock
from ..metrics.complexity import LayerSpec
from ..nn import Module, PReLU, ReLU, Tensor, depth_to_space

Kernel = Tuple[int, int]

#: kernel menu from the paper's NAS experiments (Fig. 9(b)).
KERNEL_CHOICES: Tuple[Kernel, ...] = ((3, 3), (2, 2), (2, 1), (1, 2), (2, 3), (3, 2))
#: sentinel for "skip this block" (layer-count search).
SKIP = None
#: kernel menu for the first/last blocks (Fig. 9(b) shrinks them to 3×3).
END_KERNEL_CHOICES: Tuple[Kernel, ...] = ((5, 5), (3, 3))


def is_residual_capable(kernel: Optional[Kernel]) -> bool:
    """Collapsible identity residuals need odd×odd kernels (Algorithm 2)."""
    return kernel is not None and kernel[0] % 2 == 1 and kernel[1] % 2 == 1


@dataclass(frozen=True)
class Genotype:
    """A concrete SESR-backbone architecture."""

    scale: int
    f: int
    first_kernel: Kernel
    block_kernels: Tuple[Optional[Kernel], ...]
    last_kernel: Kernel

    @property
    def active_blocks(self) -> List[Kernel]:
        return [k for k in self.block_kernels if k is not SKIP]

    def describe(self) -> str:
        blocks = ", ".join(
            "skip" if k is SKIP else f"{k[0]}x{k[1]}" for k in self.block_kernels
        )
        return (
            f"first={self.first_kernel[0]}x{self.first_kernel[1]} | "
            f"[{blocks}] | last={self.last_kernel[0]}x{self.last_kernel[1]}"
        )

    def specs(self) -> List[LayerSpec]:
        """Inference-time layer specs (collapsed network) for this genotype."""
        f, s2 = self.f, self.scale * self.scale
        specs = [
            LayerSpec("conv", self.first_kernel, 1, f, 1.0, "first"),
            LayerSpec("act", (1, 1), f, f, 1.0, "act_first"),
        ]
        for i, k in enumerate(self.block_kernels):
            if k is SKIP:
                continue
            specs.append(LayerSpec("conv", k, f, f, 1.0, f"block{i}"))
            specs.append(LayerSpec("act", (1, 1), f, f, 1.0, f"act{i}"))
        specs.append(LayerSpec("add", (1, 1), f, f, 1.0, "long_blue_residual"))
        specs.append(LayerSpec("conv", self.last_kernel, f, s2, 1.0, "last"))
        res, ch = 1.0, s2
        for step in range(self.scale // 2):
            res *= 2.0
            ch //= 4
            specs.append(
                LayerSpec("depth_to_space", (1, 1), ch * 4, ch, res, f"d2s_{step}")
            )
        return specs

    def num_parameters(self) -> int:
        return sum(s.weight_params() for s in self.specs())


def sesr_m_genotype(m: int, f: int = 16, scale: int = 2) -> Genotype:
    """The manually-designed SESR-Mm baseline expressed as a genotype."""
    return Genotype(
        scale=scale,
        f=f,
        first_kernel=(5, 5),
        block_kernels=tuple([(3, 3)] * m),
        last_kernel=(5, 5),
    )


class NasSESR(Module):
    """Trainable SESR backbone realising a :class:`Genotype`.

    Blocks with odd×odd kernels keep the collapsible short residual; blocks
    with even/asymmetric kernels (where Algorithm 2 cannot fold an identity)
    are plain linear blocks, exactly as in the paper's NAS-guided networks.
    """

    def __init__(
        self,
        genotype: Genotype,
        expansion: int = 64,
        activation: str = "relu",
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.genotype = genotype
        self.scale = genotype.scale
        f = genotype.f

        def act(c: int) -> Module:
            return PReLU(c) if activation == "prelu" else ReLU()

        self.first = CollapsibleLinearBlock(
            1, f, genotype.first_kernel, expansion=expansion, rng=rng
        )
        self.act_first = act(f)
        self.blocks: List[Module] = []
        self.acts: List[Module] = []
        for i, k in enumerate(genotype.active_blocks):
            blk = CollapsibleLinearBlock(
                f, f, k, expansion=expansion,
                residual=is_residual_capable(k), rng=rng,
            )
            a = act(f)
            setattr(self, f"block{i}", blk)
            setattr(self, f"act{i}", a)
            self.blocks.append(blk)
            self.acts.append(a)
        s2 = genotype.scale**2
        self.last = CollapsibleLinearBlock(
            f, s2, genotype.last_kernel, expansion=expansion, rng=rng
        )

    def forward(self, x: Tensor) -> Tensor:
        feat = self.act_first(self.first(x))
        h = feat
        for blk, a in zip(self.blocks, self.acts):
            h = a(blk(h))
        h = h + feat
        out = self.last(h)
        for _ in range(self.scale // 2):
            out = depth_to_space(out, 2)
        return out

    def collapse(self):
        """Export the searched network with every linear block collapsed.

        Returns a :class:`repro.core.blocks.CollapsedVGGNet` — the same
        inference container the manual SESR variants collapse into, so
        searched architectures deploy through the identical path
        (quantization, tiling, NPU estimation).
        """
        from ..core.blocks import CollapsedVGGNet
        from ..core.sesr import _copy_act

        return CollapsedVGGNet(
            first=self.first.to_conv2d(),
            act_first=_copy_act(self.act_first),
            convs=[b.to_conv2d() for b in self.blocks],
            acts=[_copy_act(a) for a in self.acts],
            last=self.last.to_conv2d(),
            scale=self.scale,
            input_residual=False,
            feature_residual=True,
        )
