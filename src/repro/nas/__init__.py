"""``repro.nas`` — hardware-aware DNAS over SESR backbones (§3.4, Fig. 9)."""

from .space import (
    END_KERNEL_CHOICES,
    KERNEL_CHOICES,
    SKIP,
    Genotype,
    NasSESR,
    is_residual_capable,
    sesr_m_genotype,
)
from .supernet import MixedBlock, SESRSupernet
from .dnas import (
    DNASConfig,
    SearchResult,
    expected_latency,
    genotype_latency_ms,
    latency_table,
    op_latency_ms,
    realize,
    search,
)

__all__ = [
    "END_KERNEL_CHOICES",
    "KERNEL_CHOICES",
    "SKIP",
    "Genotype",
    "NasSESR",
    "is_residual_capable",
    "sesr_m_genotype",
    "MixedBlock",
    "SESRSupernet",
    "DNASConfig",
    "SearchResult",
    "expected_latency",
    "genotype_latency_ms",
    "latency_table",
    "op_latency_ms",
    "realize",
    "search",
]
