"""Planned-buffer executor for compiled inference graphs.

:class:`CompiledModel` runs an optimised :class:`~repro.compile.ir.Graph`
inside the arenas a :class:`~repro.compile.planner.BufferPlan` laid out.
It is a drop-in :class:`~repro.nn.Module`: ``forward`` takes and returns a
:class:`~repro.nn.Tensor`, so ``predict_image``/``predict_batch``, the
tiling helpers, and the serving engine work unchanged — which is also what
makes the engine's tile fan-out multithreaded execution of the plan: each
worker thread drives the same ``CompiledModel`` over its own tiles.

**Bit-exactness.**  Every kernel replays the eager :mod:`repro.nn.ops`
float operation chain exactly, only redirecting *where* results land:

* conv = zero-border pad scratch → strided-patch copy into a cols buffer →
  one sgemm (``np.matmul(..., out=...)`` — the same BLAS call ``cols @
  wmat`` makes) → broadcast bias add.  Fused epilogues then run in place
  on the conv's output: the identical elementwise maximum/minimum/multiply/
  add chain the standalone ops perform.

**GEMM backends.**  The sgemm above is the default (``blas``) kernel for
a conv step.  :meth:`CompiledModel.set_gemm_backend` re-plans every conv
onto one of the :mod:`repro.kernels` implementations — ``blocked`` (the
fixed-reduction-order matmul whose m-invariance turns an exact batch
into ONE stacked GEMM per conv), ``direct`` (tap-loop, no im2col;
selectable per shape by the ``auto`` backend from the ``repro tune``
cache) — recording the per-node selection in a
:class:`~repro.compile.planner.KernelPlan` that ``/v1/stats`` echoes.
Bit-exactness against the *eager* ops holds on ``blas`` (same BLAS
calls); every backend independently guarantees the batch/single parity
contract below.  The profiler tags each GEMM with its kernel
(``gemm.blas`` / ``gemm.blocked`` / ``gemm.direct``), which is the
assertion surface for "a coalesced batch ran one stacked GEMM".
* depth-to-space is the same reshape/transpose, copied into a contiguous
  view of the destination; fake-quant calls the very
  :meth:`~repro.deploy.quantize.QuantParams.fake_quant` the eager layer
  calls; deconv runs the eager sub-pixel ``conv2d_transpose`` as a
  composite (its output is the FSRCNN graph output, so it allocates fresh
  anyway).

``tests/compile/test_executor.py`` pins byte-identity against the eager
models for every zoo variant.

**Memory.**  Arenas are cached per ``(N, H, W)`` input shape in a
``threading.local`` — concurrent serve workers never share mutable
buffers, and repeat tiles of the same shape (the common serving case)
allocate nothing.  Scratch (cols / elementwise temp / pad borders) is
shared across nodes within an arena.  The graph output is always freshly
allocated per call: returning an arena view would hand the caller a buffer
the next request overwrites.

Instrumentation matches the eager path: the profiler sees the same
``im2col``/``conv2d`` records (same analytic MACs), and each run executes
under one ``compile.execute`` tracing span.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..kernels.blocked import blocked_matmul_t
from ..nn import Tensor, no_grad
from ..nn.im2col import extract_patches
from ..nn.modules import Module
from ..nn.ops import conv2d_transpose, resolve_padding
from ..obs import profiler as _profiler
from ..obs import span
from .ir import Graph, receptive_radius
from .planner import BufferPlan, KernelPlan, plan_buffers, plan_kernels


class CompiledModel(Module):
    """Executable form of a compiled graph (see :func:`repro.compile.compile_model`)."""

    def __init__(
        self,
        graph: Graph,
        plan: Optional[BufferPlan] = None,
        pass_log: Optional[Sequence] = None,
        source: str = "",
        gemm_backend: str = "blas",
    ) -> None:
        super().__init__()
        graph.infer_shapes()
        if len(graph.inputs) != 1 or len(graph.outputs) != 1:
            raise ValueError("CompiledModel expects one input and one output")
        self.graph = graph
        self.plan = plan if plan is not None else plan_buffers(graph)
        self.pass_log = list(pass_log or [])
        self.source = source or graph.name
        self.receptive_radius = receptive_radius(graph)
        self.scale = int(round(graph.nodes[graph.outputs[0]].res_scale))
        self._steps = self._prepare()
        self._local = threading.local()
        self._lock = threading.Lock()
        self._runs = 0
        self.gemm_backend = "blas"
        self.kernel_plan: KernelPlan = plan_kernels(graph, "blas")
        self.set_gemm_backend(gemm_backend)
        self.eval()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CompiledModel({self.source}, nodes={len(self.graph.nodes)}, "
            f"slots={len(self.plan.slot_units)})"
        )

    @property
    def runs(self) -> int:
        """Completed :meth:`run` calls (all threads)."""
        with self._lock:
            return self._runs

    # ------------------------------------------------------------------ #
    # pickling (the dataplane's plan/weights handoff to process workers)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> Dict[str, Any]:
        """Only the graph (weights ride along by reference), plan, and
        provenance travel; locks, thread-local arenas, prepared steps, and
        the run counter are rebuilt on load.  The *resolved* kernel
        selection travels too (node → kernel), so a process worker runs
        the exact kernels its parent planned — ``auto`` must not re-tune
        against a different cache mid-request.  A round-tripped model is
        bit-identical to the original (pinned by
        ``tests/dataplane/test_pickling.py``)."""
        return {
            "graph": self.graph,
            "plan": self.plan,
            "pass_log": self.pass_log,
            "source": self.source,
            "gemm_backend": self.gemm_backend,
            "kernels": {
                c.node: c.kernel for c in self.kernel_plan.choices
            },
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(
            state["graph"],
            plan=state["plan"],
            pass_log=state["pass_log"],
            source=state["source"],
        )
        backend = state.get("gemm_backend", "blas")
        pinned = state.get("kernels")
        if backend != "blas" or pinned:
            self.set_gemm_backend(backend, pinned=pinned)

    # ------------------------------------------------------------------ #
    # kernel selection (see repro.kernels and docs/kernels.md)
    # ------------------------------------------------------------------ #
    def set_gemm_backend(
        self,
        backend: str,
        tuning: Optional[Dict[str, Dict[str, Any]]] = None,
        pinned: Optional[Dict[str, str]] = None,
    ) -> "CompiledModel":
        """Re-plan every conv step onto a GEMM kernel; returns ``self``.

        ``backend`` is ``blas``/``blocked`` (forced everywhere) or
        ``auto`` (per-shape winner from ``tuning`` — loaded from the
        per-host cache when not given; uncovered shapes degrade to
        ``blas``).  ``pinned`` (node → kernel) overrides everything and
        is how the dataplane replays a parent's exact selection.  Call
        before serving traffic: the engine does so at construction, and
        registry-shared models should not be re-planned concurrently
        with in-flight runs.
        """
        if backend not in ("auto", "blas", "blocked"):
            raise ValueError(
                f"gemm backend must be one of ('auto', 'blas', "
                f"'blocked'), got {backend!r}"
            )
        if pinned is None and backend == "auto" and tuning is None:
            from ..kernels.tune import load_cache

            tuning = load_cache()
        plan = plan_kernels(
            self.graph, backend, tuning=tuning, pinned=pinned
        )
        with self._lock:
            self.gemm_backend = backend
            self.kernel_plan = plan
            for step in self._steps:
                if step["op"] != "conv":
                    continue
                kern = plan.kernel_of(step["name"])
                step["kern"] = kern
                step["wmats_t"] = None
                step["wtaps"] = None
                wmats = step["wmats"]
                if wmats is None:
                    continue  # int8: derived forms built per call
                if kern == "blocked":
                    step["wmats_t"] = [
                        np.ascontiguousarray(w.T) for w in wmats
                    ]
                elif kern == "direct":
                    step["wtaps"] = [
                        self._tap_weights(w, step["kernel"]) for w in wmats
                    ]
        return self

    @staticmethod
    def _tap_weights(wmat: np.ndarray, kernel) -> List[np.ndarray]:
        """Per-tap ``(gc_in, gc_out)`` weights for the direct kernel,
        row-major tap order (the fixed accumulation order)."""
        kh, kw = kernel
        k, gc_out = wmat.shape
        gc_in = k // (kh * kw)
        w4 = wmat.reshape(kh, kw, gc_in, gc_out)
        return [
            np.ascontiguousarray(w4[i, j])
            for i in range(kh) for j in range(kw)
        ]

    def conv_shapes(self) -> List[tuple]:
        """Distinct ``(kh, kw, cin, cout, groups)`` conv shapes of the
        plan — what the kernel autotuner measures."""
        out: List[tuple] = []
        seen = set()
        for step in self._steps:
            if step["op"] != "conv":
                continue
            kh, kw = step["kernel"]
            row = (kh, kw, step["cin"], step["cout"], step["groups"])
            if row not in seen:
                seen.add(row)
                out.append(row)
        return out

    # ------------------------------------------------------------------ #
    # step preparation (once per model)
    # ------------------------------------------------------------------ #
    def _prepare(self) -> List[Dict[str, Any]]:
        steps: List[Dict[str, Any]] = []
        for node in self.graph.nodes.values():
            if node.op in ("input", "const"):
                continue
            step: Dict[str, Any] = {
                "name": node.name,
                "op": node.op,
                "srcs": list(node.inputs),
                "is_output": node.name in self.graph.outputs,
                "channels": node.channels,
                "res_scale": node.res_scale,
            }
            if node.op == "conv":
                self._prepare_conv(node, step)
            elif node.op == "deconv":
                step["stride"] = int(node.attrs["stride"])
                w = node.attrs.get("weight")
                if w is None:
                    params = node.attrs["weight_params"]
                    w = params.dequantize(node.attrs["weight_q"])
                step["w_t"] = Tensor(w)
                b = node.attrs.get("bias")
                step["b_t"] = None if b is None else Tensor(b)
            elif node.op == "prelu":
                step["alpha"] = node.attrs["alpha"]
            elif node.op == "quant":
                step["params"] = node.attrs["params"]
            elif node.op == "depth_to_space":
                step["block"] = int(node.attrs["block"])
            elif node.op == "concat":
                offsets, off = [], 0
                for src in node.inputs:
                    c = self.graph.nodes[src].channels
                    offsets.append((src, off, c))
                    off += c
                step["offsets"] = offsets
            steps.append(step)
        return steps

    def _prepare_conv(self, node, step: Dict[str, Any]) -> None:
        kh, kw = node.kernel()
        groups = int(node.attrs.get("groups", 1))
        cin, cout = int(node.attrs["cin"]), int(node.attrs["cout"])
        gc_in, gc_out = cin // groups, cout // groups
        step.update({
            "kernel": (kh, kw),
            "groups": groups,
            "cin": cin,
            "cout": cout,
            "pad": resolve_padding((kh, kw), (1, 1), "same"),
            "bias": node.attrs.get("bias"),
        })
        w = node.attrs.get("weight")
        if w is None:
            # Unfolded int8 conv: dequantize per call, exactly like the
            # eager QuantizedConv2d (fold_constants removes this).
            step["wmats"] = None
            step["weight_q"] = node.attrs["weight_q"]
            step["weight_params"] = node.attrs["weight_params"]
        else:
            # Same values the eager path's reshape produces: the grouped
            # path reshapes a C_out slice (a copy), dense reshapes a view.
            step["wmats"] = [
                np.ascontiguousarray(
                    w[:, :, :, g * gc_out:(g + 1) * gc_out].reshape(
                        kh * kw * gc_in, gc_out
                    )
                )
                for g in range(groups)
            ]
        eps = []
        for ep in node.epilogues:
            if ep[0] == "add":
                eps.append(("add", node.inputs[ep[1]]))
            elif ep[0] == "prelu":
                eps.append(("prelu", ep[1]))
            elif ep[0] == "quant":
                eps.append(("quant", ep[1]))
            else:
                eps.append(("relu",))
        step["eps"] = eps

    # ------------------------------------------------------------------ #
    # arena management (once per (N, H, W) per thread)
    # ------------------------------------------------------------------ #
    def _layout(self, n: int, h: int, w: int) -> Dict[str, Any]:
        """Concrete buffer sizes for one input shape (also used by
        :meth:`memory_stats` without allocating)."""
        shapes: Dict[str, tuple] = {}
        for step in self._steps:
            oh = round(h * step["res_scale"])
            ow = round(w * step["res_scale"])
            shapes[step["name"]] = (n, oh, ow, step["channels"])
        slot_sizes = [0] * len(self.plan.slot_units)
        for name, slot in self.plan.slot_of.items():
            need = int(np.prod(shapes[name]))
            slot_sizes[slot] = max(slot_sizes[slot], need)
        cols = tmp = 0
        pad_shapes = set()
        for step in self._steps:
            tmp = max(tmp, int(np.prod(shapes[step["name"]])))
            if step["op"] != "conv":
                continue
            oh, ow = shapes[step["name"]][1:3]
            kh, kw = step["kernel"]
            cols = max(
                cols, n * oh * ow * kh * kw * step["cin"] // step["groups"]
            )
            (pt, pb), (pl, pr) = step["pad"]
            if pt or pb or pl or pr:
                ih = round(h * step["res_scale"])
                iw = round(w * step["res_scale"])
                pad_shapes.add(
                    (n, ih + pt + pb, iw + pl + pr, step["cin"])
                )
        return {
            "shapes": shapes,
            "slot_sizes": slot_sizes,
            "cols": cols,
            "tmp": tmp,
            "pad_shapes": pad_shapes,
        }

    def _arena(self, n: int, h: int, w: int) -> Dict[str, Any]:
        arenas = getattr(self._local, "arenas", None)
        if arenas is None:
            arenas = {}
            self._local.arenas = arenas
        arena = arenas.get((n, h, w))
        if arena is None:
            layout = self._layout(n, h, w)
            slots = [
                np.empty(size, dtype=np.float32)
                for size in layout["slot_sizes"]
            ]
            views = {}
            for name, slot in self.plan.slot_of.items():
                shape = layout["shapes"][name]
                need = int(np.prod(shape))
                views[name] = slots[slot][:need].reshape(shape)
            consts = {
                node.name: node.attrs["value"]
                for node in self.graph.nodes.values()
                if node.op == "const"
            }
            arena = {
                "shapes": layout["shapes"],
                "views": views,
                "cols": np.empty(layout["cols"], dtype=np.float32),
                "tmp": np.empty(layout["tmp"], dtype=np.float32),
                "pads": {},  # zero-bordered pad scratch, keyed by shape
                "taps": {},  # direct-kernel tap product scratch, by size
                "consts": consts,
            }
            arenas[(n, h, w)] = arena
        return arena

    def memory_stats(self, in_h: int, in_w: int, n: int = 1) -> Dict[str, int]:
        """Planned vs naive peak bytes for one input shape (float32)."""
        layout = self._layout(n, in_h, in_w)
        scratch = 4 * (
            layout["cols"] + layout["tmp"]
            + sum(int(np.prod(s)) for s in layout["pad_shapes"])
        )
        return {
            "arena_bytes": 4 * sum(layout["slot_sizes"]),
            "naive_bytes": self.plan.naive_bytes(in_h, in_w, n),
            "lower_bound_bytes": 4 * n * in_h * in_w
            * self.plan.lower_bound_units,
            "scratch_bytes": scratch,
            "slots": len(layout["slot_sizes"]),
        }

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> Tensor:
        return Tensor(self.run(x.data))

    def run(self, x: np.ndarray, exact_batch: bool = False) -> np.ndarray:
        """Execute the plan on an NHWC array; returns a fresh array.

        ``exact_batch=True`` makes a batched call (N > 1) *bit-identical*
        per sample to N independent N=1 calls: padding, im2col patch
        extraction, and every elementwise op already are (they never mix
        samples), but BLAS picks its sgemm blocking from the row count
        ``m = N·h·w``, so a single stacked matmul can reassociate the
        k-summation differently than the ``m = h·w`` call would.  Exact
        mode shares one pad + im2col pass across the batch and then runs
        the matmul per sample on contiguous row slices of the shared cols
        buffer — each sample sees the very ``(h·w, k) @ (k, c)`` call the
        singleton path makes.  This is what lets the serving engine's
        cross-request batch coalescing stay byte-identical to unbatched
        serving (see ``repro.serve.scheduler``).

        With the ``blocked`` GEMM backend the per-sample loop is
        unnecessary: the blocked kernel's reduction order is m-invariant
        (:mod:`repro.kernels`), so exact mode issues ONE stacked GEMM
        per conv and each sample's bits still match its singleton run —
        both paths satisfy the same parity contract, pinned by
        ``tests/compile/test_exact_batch.py``.
        """
        x = np.asarray(x)
        if x.dtype != np.float32:
            x = x.astype(np.float32)
        if x.ndim != 4:
            raise ValueError(f"expected NHWC input, got shape {x.shape}")
        in_node = self.graph.nodes[self.graph.inputs[0]]
        if x.shape[3] != in_node.channels:
            raise ValueError(
                f"expected {in_node.channels} input channels, "
                f"got {x.shape[3]}"
            )
        n, h, w = x.shape[:3]
        exact = bool(exact_batch) and n > 1
        arena = self._arena(n, h, w)
        values: Dict[str, np.ndarray] = dict(arena["consts"])
        values[self.graph.inputs[0]] = x
        with span("compile.execute", model=self.source,
                  shape=f"{n}x{h}x{w}", exact_batch=exact):
            for step in self._steps:
                self._exec_step(step, values, arena, exact)
        with self._lock:
            self._runs += 1
        return values[self.graph.outputs[0]]

    def _dst(self, step, arena) -> np.ndarray:
        if step["is_output"]:
            return np.empty(arena["shapes"][step["name"]], dtype=np.float32)
        return arena["views"][step["name"]]

    def _exec_step(self, step, values, arena, exact: bool = False) -> None:
        op = step["op"]
        if op == "conv":
            self._exec_conv(step, values, arena, exact)
            return
        src = values[step["srcs"][0]]
        if op == "deconv":
            with no_grad():
                if exact:
                    # Per-sample transpose conv: its internal matmul row
                    # count must match the singleton call's for bitwise
                    # batch/single parity (see run()).
                    out = np.concatenate([
                        conv2d_transpose(
                            Tensor(src[i:i + 1]), step["w_t"], step["b_t"],
                            stride=step["stride"],
                        ).data
                        for i in range(src.shape[0])
                    ])
                else:
                    out = conv2d_transpose(
                        Tensor(src), step["w_t"], step["b_t"],
                        stride=step["stride"],
                    ).data
            if step["is_output"]:
                values[step["name"]] = out
            else:
                dst = self._dst(step, arena)
                np.copyto(dst, out)
                values[step["name"]] = dst
            return
        dst = self._dst(step, arena)
        if op == "relu":
            np.maximum(src, 0.0, out=dst)
        elif op == "prelu":
            t = arena["tmp"][:dst.size].reshape(dst.shape)
            np.minimum(src, 0.0, out=t)
            np.multiply(t, step["alpha"], out=t)
            np.maximum(src, 0.0, out=dst)
            np.add(dst, t, out=dst)
        elif op == "quant":
            np.copyto(dst, step["params"].fake_quant(src))
        elif op == "add":
            np.add(src, values[step["srcs"][1]], out=dst)
        elif op == "concat":
            for name, off, c in step["offsets"]:
                dst[..., off:off + c] = values[name]
        elif op == "depth_to_space":
            r = step["block"]
            n, h, w, c = src.shape
            co = c // (r * r)
            src6 = src.reshape(n, h, w, r, r, co)
            np.copyto(
                dst.reshape(n, h, r, w, r, co),
                src6.transpose(0, 1, 3, 2, 4, 5),
            )
        else:  # pragma: no cover — infer_shapes rejects unknown ops
            raise ValueError(f"cannot execute op {op!r}")
        values[step["name"]] = dst

    @staticmethod
    def _matmul_rows(cols, wmat, out2d, n: int, rows: int,
                     exact: bool, prof=None) -> None:
        """``out2d = cols @ wmat`` via BLAS, per-sample when ``exact``.

        ``cols`` rows are sample-major (``rows = h*w`` per sample), so the
        exact path issues one ``(rows, k)`` sgemm per contiguous slice —
        the same call shape the N=1 run makes, hence the same BLAS kernel
        and k-summation order.
        """
        if exact and n > 1:
            for i in range(n):
                if prof is not None:
                    t0 = time.perf_counter()
                np.matmul(cols[i * rows:(i + 1) * rows], wmat,
                          out=out2d[i * rows:(i + 1) * rows])
                if prof is not None:
                    prof.record("gemm.blas", time.perf_counter() - t0)
        else:
            if prof is not None:
                t0 = time.perf_counter()
            np.matmul(cols, wmat, out=out2d)
            if prof is not None:
                prof.record("gemm.blas", time.perf_counter() - t0)

    def _conv_direct(self, xg, wtaps, out2d, arena, kernel, n: int,
                     h: int, w: int, gc_in: int, gc_out: int,
                     exact: bool, prof=None) -> None:
        """Tap-loop conv: one ``(rows, gc_in)`` GEMM per kernel tap,
        accumulated in fixed row-major tap order — no im2col.

        Per-sample in exact mode so each tap GEMM's row count matches
        the singleton call's (the batch/single parity contract); the
        tap *accumulation* order is fixed by construction.
        """
        kh, kw = kernel
        rows = h * w
        need = n * rows * gc_out
        tapbuf = arena["taps"].get(need)
        if tapbuf is None:
            tapbuf = np.empty(need, dtype=np.float32)
            arena["taps"][need] = tapbuf
        ranges = (
            [(i, i + 1) for i in range(n)] if exact and n > 1
            else [(0, n)]
        )
        for s0, s1 in ranges:
            r = (s1 - s0) * rows
            o2d = out2d[s0 * rows:s1 * rows]
            if prof is not None:
                t0 = time.perf_counter()
            for idx in range(kh * kw):
                i, j = divmod(idx, kw)
                xs = xg[s0:s1, i:i + h, j:j + w, :].reshape(r, gc_in)
                if idx == 0:
                    np.matmul(xs, wtaps[0], out=o2d)
                else:
                    t = tapbuf[:r * gc_out].reshape(r, gc_out)
                    np.matmul(xs, wtaps[idx], out=t)
                    np.add(o2d, t, out=o2d)
            if prof is not None:
                prof.record("gemm.direct", time.perf_counter() - t0)

    def _exec_conv(self, step, values, arena, exact: bool = False) -> None:
        src = values[step["srcs"][0]]
        n, h, w, cin = src.shape
        kh, kw = step["kernel"]
        (pt, pb), (pl, pr) = step["pad"]
        if pt or pb or pl or pr:
            pshape = (n, h + pt + pb, w + pl + pr, cin)
            padbuf = arena["pads"].get(pshape)
            if padbuf is None:
                # Zero-initialised once; only the interior is rewritten, so
                # the zero border — all np.pad produces — persists.
                padbuf = np.zeros(pshape, dtype=np.float32)
                arena["pads"][pshape] = padbuf
            padbuf[:, pt:pt + h, pl:pl + w, :] = src
            xp = padbuf
        else:
            xp = src
        dst = self._dst(step, arena)
        groups, cout = step["groups"], step["cout"]
        gc_in, gc_out = cin // groups, cout // groups
        m, k = n * h * w, kh * kw * gc_in
        kern = step.get("kern", "blas")
        wmats = step["wmats"]
        wmats_t, wtaps = step.get("wmats_t"), step.get("wtaps")
        if wmats is None:
            # Unfolded int8 conv: dequantized per call (fold_constants
            # removes this), so derived kernel forms are per call too.
            wfull = step["weight_params"].dequantize(step["weight_q"])
            wmats = [wfull.reshape(k, cout)]
            if kern == "blocked":
                wmats_t = [np.ascontiguousarray(wmats[0].T)]
            elif kern == "direct":
                wtaps = [self._tap_weights(wmats[0], (kh, kw))]
        bias = step["bias"]
        colsbuf, prof = arena["cols"], _profiler.ACTIVE
        for g in range(groups):
            if prof is not None:
                t0 = time.perf_counter()
            xg = xp if groups == 1 else xp[..., g * gc_in:(g + 1) * gc_in]
            if groups == 1:
                out2d = dst.reshape(m, cout)
            else:
                out2d = arena["tmp"][:m * gc_out].reshape(m, gc_out)
            if kern == "direct":
                self._conv_direct(
                    xg, wtaps[g], out2d, arena, (kh, kw),
                    n, h, w, gc_in, gc_out, exact, prof,
                )
            else:
                patches = extract_patches(xg, (kh, kw), (1, 1))
                np.copyto(
                    colsbuf[:m * k].reshape(n, h, w, kh, kw, gc_in), patches
                )
                cols = colsbuf[:m * k].reshape(m, k)
                if prof is not None:
                    prof.record("im2col", time.perf_counter() - t0)
                if kern == "blocked":
                    # ONE stacked GEMM regardless of batch size: the
                    # blocked kernel's reduction order is m-invariant,
                    # so per-sample bits match the singleton call's.
                    if prof is not None:
                        tg = time.perf_counter()
                    blocked_matmul_t(cols, wmats_t[g], out=out2d)
                    if prof is not None:
                        prof.record(
                            "gemm.blocked", time.perf_counter() - tg
                        )
                else:
                    self._matmul_rows(
                        cols, wmats[g], out2d, n, h * w, exact, prof
                    )
            if bias is not None:
                b = bias if groups == 1 else bias[g * gc_out:(g + 1) * gc_out]
                np.add(out2d, b, out=out2d)
            if groups > 1:
                dst[..., g * gc_out:(g + 1) * gc_out] = out2d.reshape(
                    n, h, w, gc_out
                )
            if prof is not None:
                prof.record(
                    "conv2d", time.perf_counter() - t0, macs=m * k * gc_out
                )
        for ep in step["eps"]:
            kind = ep[0]
            if kind == "relu":
                np.maximum(dst, 0.0, out=dst)
            elif kind == "prelu":
                t = arena["tmp"][:dst.size].reshape(dst.shape)
                np.minimum(dst, 0.0, out=t)
                np.multiply(t, ep[1], out=t)
                np.maximum(dst, 0.0, out=dst)
                np.add(dst, t, out=dst)
            elif kind == "quant":
                np.copyto(dst, ep[1].fake_quant(dst))
            else:  # fused residual add, in place on the conv output
                np.add(dst, values[ep[1]], out=dst)
        values[step["name"]] = dst
