"""Capture a live inference model into the compiler IR.

The substrate's ops build autograd closures eagerly and quantized layers
re-wrap arrays mid-forward, so op-level tracing cannot recover a clean
graph.  Capture is therefore *structural*: each supported family has a
builder that emits the weightless graph its ``forward`` computes —
:func:`sesr_ir` and :func:`fsrcnn_ir` mirror ``sesr_specs``/``fsrcnn_specs``
node-for-node (same names, pinned by tests) — and :func:`capture` binds the
model's weights onto it.  Mirroring ``forward`` exactly is what makes the
compiled executor's bit-identity guarantee checkable: the graph *is* the
eager dataflow, just reified.

Supported families: :class:`~repro.core.sesr.CollapsedSESR`,
:class:`~repro.deploy.quantize.QuantizedSESR` (quant nodes inserted between
each conv and its activation, exactly where ``QuantizedConv2d`` fake-quants),
:class:`~repro.core.fsrcnn.FSRCNN`, and :class:`~repro.core.carn.CARN_M`.
Anything else — notably an *uncollapsed* :class:`~repro.core.sesr.SESR`,
which should be collapsed first (Algorithms 1–2) — raises
:class:`CaptureError`, which callers like the serve registry treat as
"fall back to eager".
"""

from __future__ import annotations

from typing import Optional

from ..nn import PReLU
from .ir import Graph, Node


class CaptureError(TypeError):
    """The model is not a supported inference network (fall back to eager)."""


# ---------------------------------------------------------------------- #
# weightless structure builders (shared with repro.hw / repro.metrics)
# ---------------------------------------------------------------------- #
def sesr_ir(
    f: int,
    m: int,
    scale: int,
    input_residual: bool = True,
    feature_residual: bool = True,
    activation: str = "prelu",
    two_stage_head: bool = False,
) -> Graph:
    """Collapsed-SESR inference graph (Fig. 2(d)), weights unbound.

    Node names match :func:`repro.metrics.complexity.sesr_specs` exactly,
    so ``to_layer_specs(sesr_ir(...)) == sesr_specs(...)``.
    """
    if two_stage_head and scale != 4:
        raise ValueError("two_stage_head applies to scale 4 only")
    act = activation
    g = Graph(f"sesr_f{f}m{m}x{scale}")
    g.add_input("input", 1)
    g.add(Node("first_5x5", "conv", ["input"],
               {"kernel": (5, 5), "cin": 1, "cout": f}))
    first_act = g.add(Node(f"{act}_first", act, ["first_5x5"]))
    h = first_act
    for i in range(m):
        g.add(Node(f"conv3x3_{i}", "conv", [h],
                   {"kernel": (3, 3), "cin": f, "cout": f}))
        h = g.add(Node(f"{act}_{i}", act, [f"conv3x3_{i}"]))
    if feature_residual:
        h = g.add(Node("long_blue_residual", "add", [h, first_act]))
    if two_stage_head:
        g.add(Node("up1_5x5", "conv", [h],
                   {"kernel": (5, 5), "cin": f, "cout": 4 * f}))
        g.add(Node(f"{act}_up1", act, ["up1_5x5"]))
        g.add(Node("d2s_0", "depth_to_space", [f"{act}_up1"], {"block": 2}))
        g.add(Node("up2_5x5", "conv", ["d2s_0"],
                   {"kernel": (5, 5), "cin": f, "cout": 4}))
        h = g.add(Node("d2s_1", "depth_to_space", ["up2_5x5"], {"block": 2}))
    else:
        s2 = scale * scale
        h = g.add(Node("last_5x5", "conv", [h],
                       {"kernel": (5, 5), "cin": f, "cout": s2}))
        if input_residual:
            h = g.add(Node("long_black_residual", "add", [h, "input"]))
        for step in range(scale // 2):
            h = g.add(Node(f"d2s_{step}", "depth_to_space", [h], {"block": 2}))
    g.set_outputs([h])
    return g.infer_shapes()


def fsrcnn_ir(
    scale: int, d: int = 56, s: int = 12, m: int = 4,
    activation: str = "prelu",
) -> Graph:
    """FSRCNN(d, s, m) inference graph, weights unbound.

    Node names match :func:`repro.metrics.complexity.fsrcnn_specs`.
    """
    act = activation
    g = Graph(f"fsrcnn_d{d}s{s}m{m}x{scale}")
    g.add_input("input", 1)
    g.add(Node("feature_5x5", "conv", ["input"],
               {"kernel": (5, 5), "cin": 1, "cout": d}))
    g.add(Node(f"{act}_feature", act, ["feature_5x5"]))
    g.add(Node("shrink_1x1", "conv", [f"{act}_feature"],
               {"kernel": (1, 1), "cin": d, "cout": s}))
    h = g.add(Node(f"{act}_shrink", act, ["shrink_1x1"]))
    for i in range(m):
        g.add(Node(f"map3x3_{i}", "conv", [h],
                   {"kernel": (3, 3), "cin": s, "cout": s}))
        h = g.add(Node(f"{act}_map{i}", act, [f"map3x3_{i}"]))
    g.add(Node("expand_1x1", "conv", [h],
               {"kernel": (1, 1), "cin": s, "cout": d}))
    g.add(Node(f"{act}_expand", act, ["expand_1x1"]))
    g.add(Node("deconv_9x9", "deconv", [f"{act}_expand"],
               {"kernel": (9, 9), "cin": d, "cout": 1, "stride": scale}))
    g.set_outputs(["deconv_9x9"])
    return g.infer_shapes()


def carn_ir(model) -> Graph:
    """CARN-M inference graph with weights bound (built per instance —
    cascade topology depends on ``blocks``/``depth``)."""
    w, groups = model.width, model.groups
    g = Graph(f"carn_w{w}g{groups}x{model.scale}")
    g.add_input("input", 1)
    h = g.add(Node("entry", "conv", ["input"], _conv_attrs(model.entry)))
    cascade = [h]
    for i, (blk, fuse) in enumerate(zip(model.cascades, model.fusions)):
        h = _carn_cascade(g, model, blk, h, f"c{i}")
        cascade.append(h)
        cat = g.add(Node(f"concat_{i}", "concat", list(cascade)))
        h = g.add(Node(f"cfuse_{i}", "conv", [cat], _conv_attrs(fuse)))
    for i, conv in enumerate(model.up_convs):
        g.add(Node(f"up{i}", "conv", [h], _conv_attrs(conv)))
        g.add(Node(f"up{i}_relu", "relu", [f"up{i}"]))
        h = g.add(Node(f"d2s{i}", "depth_to_space", [f"up{i}_relu"],
                       {"block": 2}))
    out = g.add(Node("exit", "conv", [h], _conv_attrs(model.exit)))
    g.set_outputs([out])
    return g.infer_shapes()


def _carn_cascade(g: Graph, model, blk, entry: str, prefix: str) -> str:
    cascade = [entry]
    h = entry
    for j, (eblk, fuse) in enumerate(zip(blk.blocks, blk.fusions)):
        p = f"{prefix}_b{j}"
        g.add(Node(f"{p}_g3x3_a", "conv", [h], _conv_attrs(eblk.conv1)))
        g.add(Node(f"{p}_relu_a", "relu", [f"{p}_g3x3_a"]))
        g.add(Node(f"{p}_g3x3_b", "conv", [f"{p}_relu_a"],
                   _conv_attrs(eblk.conv2)))
        g.add(Node(f"{p}_1x1", "conv", [f"{p}_g3x3_b"],
                   _conv_attrs(eblk.pointwise)))
        g.add(Node(f"{p}_residual", "add", [f"{p}_1x1", h]))
        tail = g.add(Node(f"{p}_relu_b", "relu", [f"{p}_residual"]))
        cascade.append(tail)
        cat = g.add(Node(f"{prefix}_concat{j}", "concat", list(cascade)))
        h = g.add(Node(f"{prefix}_fuse{j}", "conv", [cat], _conv_attrs(fuse)))
    return h


# ---------------------------------------------------------------------- #
# weight binding
# ---------------------------------------------------------------------- #
def _conv_attrs(layer) -> dict:
    """IR attrs for a live :class:`repro.nn.Conv2d` (padding must be the
    stride-1 'same' every supported model uses)."""
    if layer.stride != 1 or layer.padding != "same":
        raise CaptureError(
            f"unsupported conv config stride={layer.stride} "
            f"padding={layer.padding!r}"
        )
    return {
        "kernel": layer.kernel_size,
        "cin": layer.in_channels,
        "cout": layer.out_channels,
        "groups": layer.groups,
        "weight": layer.weight.data,
        "bias": None if layer.bias is None else layer.bias.data,
    }


def _bind_conv(g: Graph, name: str, layer) -> None:
    g.nodes[name].attrs.update(_conv_attrs(layer))


def _bind_qconv(g: Graph, name: str, layer) -> None:
    """Bind a :class:`~repro.deploy.quantize.QuantizedConv2d`.

    ``weight`` stays ``None`` — the executor dequantizes ``weight_q`` per
    call exactly as the eager layer does; the constant-folding pass
    precomputes it.  When the layer fake-quants its output, a quant node is
    spliced in right after the conv (before the activation), which is where
    ``QuantizedConv2d.forward`` applies it.
    """
    if layer.padding != "same":
        raise CaptureError(f"unsupported padding {layer.padding!r}")
    g.nodes[name].attrs.update({
        "kernel": layer.kernel_size,
        "cin": layer.in_channels,
        "cout": layer.out_channels,
        "groups": 1,
        "weight": None,
        "weight_q": layer.weight_q,
        "weight_params": layer.weight_params,
        "bias": layer.bias,
    })
    if layer.act_params is not None:
        qname = f"{name}_q"
        g.insert_after(name, Node(qname, "quant", [name],
                                  {"params": layer.act_params}))
        g.replace_uses(name, qname)  # skips the quant node's own input


def _bind_act(g: Graph, name: str, layer) -> None:
    if isinstance(layer, PReLU):
        g.nodes[name].attrs["alpha"] = layer.alpha.data


def capture(model) -> Graph:
    """Build the bound inference graph for a supported model.

    Raises :class:`CaptureError` for anything else (including uncollapsed
    :class:`~repro.core.sesr.SESR` — collapse before compiling).
    """
    from ..core.carn import CARN_M
    from ..core.fsrcnn import FSRCNN
    from ..core.sesr import CollapsedSESR
    from ..deploy.quantize import QuantizedSESR

    if isinstance(model, CollapsedSESR):
        return _capture_sesr(model)
    if isinstance(model, QuantizedSESR):
        return _capture_qsesr(model)
    if isinstance(model, FSRCNN):
        return _capture_fsrcnn(model)
    if isinstance(model, CARN_M):
        return carn_ir(model)
    raise CaptureError(
        f"cannot capture {type(model).__name__}; supported: CollapsedSESR, "
        f"QuantizedSESR, FSRCNN, CARN_M (collapse SESR models first)"
    )


def _capture_sesr(model) -> Graph:
    act = model.activation
    g = sesr_ir(
        model.f, model.m, model.scale,
        input_residual=model.input_residual,
        feature_residual=model.feature_residual,
        activation=act,
        two_stage_head=model.two_stage_head,
    )
    _bind_conv(g, "first_5x5", model.first)
    _bind_act(g, f"{act}_first", model.act_first)
    for i, (conv, a) in enumerate(zip(model.convs, model.acts)):
        _bind_conv(g, f"conv3x3_{i}", conv)
        _bind_act(g, f"{act}_{i}", a)
    if model.two_stage_head:
        _bind_conv(g, "up1_5x5", model.last)
        _bind_act(g, f"{act}_up1", model.act_last)
        _bind_conv(g, "up2_5x5", model.last2)
    else:
        _bind_conv(g, "last_5x5", model.last)
    return g.infer_shapes()


def _capture_qsesr(model) -> Graph:
    act = "prelu" if isinstance(model.act_first, PReLU) else "relu"
    f = model.first.out_channels
    g = sesr_ir(
        f, len(model.convs), model.scale,
        input_residual=model.input_residual,
        feature_residual=model.feature_residual,
        activation=act,
    )
    _bind_qconv(g, "first_5x5", model.first)
    _bind_act(g, f"{act}_first", model.act_first)
    for i, (conv, a) in enumerate(zip(model.convs, model.acts)):
        _bind_qconv(g, f"conv3x3_{i}", conv)
        _bind_act(g, f"{act}_{i}", a)
    _bind_qconv(g, "last_5x5", model.last)
    return g.infer_shapes()


def _capture_fsrcnn(model) -> Graph:
    act = model.activation
    g = fsrcnn_ir(model.scale, model.d, model.s, model.m, activation=act)
    _bind_conv(g, "feature_5x5", model.feature)
    _bind_act(g, f"{act}_feature", model.act_feature)
    _bind_conv(g, "shrink_1x1", model.shrink)
    _bind_act(g, f"{act}_shrink", model.act_shrink)
    for i, (conv, a) in enumerate(zip(model.mapping, model.map_acts)):
        _bind_conv(g, f"map3x3_{i}", conv)
        _bind_act(g, f"{act}_map{i}", a)
    _bind_conv(g, "expand_1x1", model.expand)
    _bind_act(g, f"{act}_expand", model.act_expand)
    deconv = model.deconv
    g.nodes["deconv_9x9"].attrs.update({
        "weight": deconv.weight.data,
        "bias": None if deconv.bias is None else deconv.bias.data,
    })
    return g.infer_shapes()


def _maybe_capture(model) -> Optional[Graph]:
    """Capture or ``None`` (convenience for callers with eager fallback)."""
    try:
        return capture(model)
    except CaptureError:
        return None
