"""``repro.compile`` — compile the collapsed inference path.

The paper's contribution is itself a compile-time transform (Algorithms
1–2 collapse training-time linear blocks into narrow convs); this package
finishes the pipeline the same way an NPU toolchain would:

capture → optimise → plan → execute

:mod:`~repro.compile.capture`
    Reify a collapsed SESR / quantized SESR / FSRCNN / CARN model into the
    typed static graph of :mod:`~repro.compile.ir` — the *single* model
    description that :mod:`repro.metrics.complexity` counts,
    :mod:`repro.hw` simulates (via :func:`to_layer_specs`), and the
    executor runs.
:mod:`~repro.compile.passes`
    A pass manager with bit-exact default passes (constant folding,
    conv+activation fusion, residual-add fusion, dead-node elimination)
    plus opt-in identity folding (Algorithm 2 on the IR) and int8
    quant insertion.
:mod:`~repro.compile.planner`
    Liveness analysis + greedy interval colouring: run in a few reusable
    arenas instead of one allocation per op.
:mod:`~repro.compile.executor`
    A :class:`~repro.nn.Module`-compatible executor over the plan —
    bit-identical to eager (pinned by tests), profiled and traced via
    :mod:`repro.obs`.

Entry point::

    from repro.compile import compile_model
    fast = compile_model(trained_sesr.collapse())

``repro.serve`` compiles by default (``--no-compile`` opts out); the
``repro compile`` CLI dumps the IR, the pass log, and plan stats.  See
``docs/compiler.md``.
"""

from .capture import CaptureError, capture, carn_ir, fsrcnn_ir, sesr_ir
from .executor import CompiledModel
from .ir import Graph, IRError, Node, receptive_radius, to_layer_specs
from .passes import (
    DEFAULT_PASSES,
    PassEntry,
    PassManager,
    eliminate_dead_nodes,
    fold_constants,
    fold_identity_residual,
    fuse_conv_activation,
    fuse_residual_add,
    make_quantize_pass,
)
from .planner import (
    BufferPlan,
    KernelChoice,
    KernelPlan,
    plan_buffers,
    plan_kernels,
)

__all__ = [
    "CaptureError",
    "CompiledModel",
    "Graph",
    "IRError",
    "KernelChoice",
    "KernelPlan",
    "Node",
    "BufferPlan",
    "PassEntry",
    "PassManager",
    "DEFAULT_PASSES",
    "capture",
    "carn_ir",
    "compile_model",
    "eliminate_dead_nodes",
    "fold_constants",
    "fold_identity_residual",
    "fsrcnn_ir",
    "fuse_conv_activation",
    "fuse_residual_add",
    "make_quantize_pass",
    "plan_buffers",
    "plan_kernels",
    "receptive_radius",
    "sesr_ir",
    "to_layer_specs",
]


def compile_model(model, *, optimize: bool = True, passes=None,
                  gemm_backend: str = "blas") -> CompiledModel:
    """Capture, optimise, plan, and wrap ``model`` for execution.

    ``optimize=False`` skips the pass pipeline (the unfused graph still
    executes bit-identically — useful for debugging a pass);  ``passes``
    overrides the default pipeline.  ``gemm_backend``
    (``blas``/``blocked``/``auto``, see :mod:`repro.kernels`) selects
    the GEMM kernel each conv step runs as; the selection is recorded on
    :attr:`CompiledModel.kernel_plan` and can be re-planned later with
    :meth:`CompiledModel.set_gemm_backend`.  Raises
    :class:`~repro.compile.capture.CaptureError` for unsupported models —
    callers with an eager fallback (the serve registry) catch it.
    """
    graph = capture(model)
    source = graph.name
    pass_log = []
    if optimize:
        graph, pass_log = PassManager(passes).run(graph)
    return CompiledModel(
        graph, plan_buffers(graph), pass_log=pass_log, source=source,
        gemm_backend=gemm_backend,
    )
