"""Graph optimisation passes and the pass manager.

Every pass is a plain function ``pass_fn(graph) -> int`` mutating the graph
in place and returning how many rewrites it made.  The
:class:`PassManager` runs a pipeline over a *copy* of the input graph,
re-validates shapes after every pass, and returns a per-pass log
(:class:`PassEntry`) that ``repro compile`` prints.

The default pipeline is **bit-exact**: executing the optimised graph
produces byte-for-byte the arrays the eager model produces (pinned by
``tests/compile/test_passes.py``).  That works because fusion only changes
*where* an op runs (as a conv epilogue, in place on the conv's output
buffer), never the float operations themselves:

* :func:`fold_constants` — precompute weight dequantization for int8 convs
  (``QuantParams.dequantize`` is deterministic, so folding it is exact) and
  evaluate any op whose inputs are all constants;
* :func:`fuse_conv_activation` — fold a relu/prelu/quant whose only
  consumer reads a conv straight into that conv's epilogue list;
* :func:`fuse_residual_add` — fold a residual add into the epilogue of the
  conv producing its main operand (the paper's two long residuals both
  fuse, leaving SESR as a pure conv chain);
* :func:`eliminate_dead_nodes` — drop nodes that cannot reach an output.

:func:`fold_identity_residual` (Algorithm 2 at the IR level: rewrite
``add(conv(x), x)`` as a single conv with ``W + I``) changes weight values,
so float results drift at the last ulp — it is **opt-in** and
tolerance-pinned rather than part of the default pipeline.
:func:`make_quantize_pass` builds an opt-in pass inserting int8
fake-quant, mirroring :func:`repro.deploy.quantize.quantize_sesr`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .ir import Graph, Node

PassFn = Callable[[Graph], int]


@dataclass(frozen=True)
class PassEntry:
    """One pipeline step of a :meth:`PassManager.run`."""

    name: str
    changes: int
    nodes_before: int
    nodes_after: int


class PassManager:
    """Runs a pass pipeline over a copy of the graph."""

    def __init__(self, passes: Optional[Sequence[PassFn]] = None) -> None:
        self.passes: Tuple[PassFn, ...] = tuple(
            DEFAULT_PASSES if passes is None else passes
        )

    def run(self, graph: Graph) -> Tuple[Graph, List[PassEntry]]:
        g = graph.copy().infer_shapes()
        log: List[PassEntry] = []
        for pass_fn in self.passes:
            before = len(g.nodes)
            changes = pass_fn(g)
            g.infer_shapes()
            log.append(PassEntry(
                getattr(pass_fn, "__name__", str(pass_fn)),
                changes, before, len(g.nodes),
            ))
        return g, log


# ---------------------------------------------------------------------- #
# default (bit-exact) passes
# ---------------------------------------------------------------------- #
def fold_constants(graph: Graph) -> int:
    """Precompute everything that does not depend on graph inputs.

    Two cases: int8 convs carrying ``weight_q`` get their float weight
    dequantized once instead of per forward call (the eager
    ``QuantizedConv2d`` dequantizes every time), and any node whose inputs
    are all ``const`` is evaluated to a ``const``.
    """
    changes = 0
    for node in graph.nodes.values():
        if (
            node.op in ("conv", "deconv")
            and node.attrs.get("weight") is None
            and node.attrs.get("weight_q") is not None
        ):
            params = node.attrs["weight_params"]
            node.attrs["weight"] = params.dequantize(node.attrs["weight_q"])
            changes += 1
    for node in list(graph.nodes.values()):
        if node.op not in ("relu", "prelu", "add", "concat",
                           "depth_to_space", "quant"):
            continue
        srcs = [graph.nodes[i] for i in node.inputs]
        if not srcs or any(s.op != "const" for s in srcs):
            continue
        value = _eval_const(node, [s.attrs["value"] for s in srcs])
        node.op = "const"
        node.inputs = []
        node.attrs = {"value": value, "res_scale": node.res_scale}
        node.epilogues = []
        changes += 1
    return changes


def _eval_const(node: Node, values: List[np.ndarray]) -> np.ndarray:
    if node.op == "relu":
        return np.maximum(values[0], 0.0)
    if node.op == "prelu":
        alpha = node.attrs["alpha"]
        return np.maximum(values[0], 0.0) + alpha * np.minimum(values[0], 0.0)
    if node.op == "add":
        return values[0] + values[1]
    if node.op == "concat":
        return np.concatenate(values, axis=3)
    if node.op == "quant":
        return node.attrs["params"].fake_quant(values[0])
    # depth_to_space — same reshape/transpose as repro.nn.ops.
    v = values[0]
    n, h, w, c = v.shape
    r = int(node.attrs["block"])
    out = v.reshape(n, h, w, r, r, c // (r * r))
    return out.transpose(0, 1, 3, 2, 4, 5).reshape(
        n, h * r, w * r, c // (r * r)
    )


def _fusible_conv(graph: Graph, consumers: Dict[str, List[str]],
                  name: str, into: str) -> bool:
    """Can ``name``'s op be folded into conv ``into``'s epilogue list?"""
    node = graph.nodes.get(into)
    return (
        node is not None
        and node.op == "conv"
        and consumers[into] == [name]
        and into not in graph.outputs
    )


def fuse_conv_activation(graph: Graph) -> int:
    """Fold relu/prelu/quant nodes into their producing conv's epilogue.

    Processing in topo order lets chains collapse in one sweep: after a
    conv's fake-quant is folded, the activation now reads the conv and
    folds next, preserving apply order (quant before act — exactly the
    eager ``QuantizedConv2d`` + activation sequence).
    """
    changes = 0
    for name in list(graph.nodes):
        node = graph.nodes.get(name)
        if node is None or node.op not in ("relu", "prelu", "quant"):
            continue
        if node.op == "prelu" and "alpha" not in node.attrs:
            continue
        if node.op == "quant" and "params" not in node.attrs:
            continue
        consumers = graph.consumers()
        conv_name = node.inputs[0]
        if not _fusible_conv(graph, consumers, name, conv_name):
            continue
        conv = graph.nodes[conv_name]
        if node.op == "relu":
            conv.epilogues.append(("relu", name))
        elif node.op == "prelu":
            conv.epilogues.append(("prelu", node.attrs["alpha"], name))
        else:
            conv.epilogues.append(("quant", node.attrs["params"], name))
        graph.replace_uses(name, conv_name)
        graph.remove(name)
        changes += 1
    return changes


def fuse_residual_add(graph: Graph) -> int:
    """Fold a residual add into the conv producing its main operand.

    The conv gains an extra input (the skip operand) and an ``("add", idx,
    name)`` epilogue — executed as an in-place ``+=`` on the conv's output
    buffer.  Requires the skip operand to be defined *before* the conv
    (true for every residual in SESR/CARN) so execution order is unchanged.
    """
    changes = 0
    order = {name: i for i, name in enumerate(graph.nodes)}
    for name in list(graph.nodes):
        node = graph.nodes.get(name)
        if node is None or node.op != "add":
            continue
        consumers = graph.consumers()
        for conv_name, other in (
            (node.inputs[0], node.inputs[1]),
            (node.inputs[1], node.inputs[0]),
        ):
            if not _fusible_conv(graph, consumers, name, conv_name):
                continue
            if order[other] > order[conv_name]:
                continue
            conv = graph.nodes[conv_name]
            conv.inputs.append(other)
            conv.epilogues.append(("add", len(conv.inputs) - 1, name))
            graph.replace_uses(name, conv_name)
            graph.remove(name)
            changes += 1
            break
    return changes


def eliminate_dead_nodes(graph: Graph) -> int:
    """Remove nodes with no path to an output (graph inputs are kept)."""
    live = set(graph.outputs)
    for node in reversed(list(graph.nodes.values())):
        if node.name in live:
            live.update(node.inputs)
    dead = [
        name for name, node in graph.nodes.items()
        if name not in live and node.op != "input"
    ]
    for name in dead:
        graph.remove(name)
    return len(dead)


# ---------------------------------------------------------------------- #
# opt-in passes
# ---------------------------------------------------------------------- #
def fold_identity_residual(graph: Graph) -> int:
    """Algorithm 2 at the IR level: ``add(conv(x), x)`` → conv with ``W+I``.

    Adds the identity kernel to the conv weight and deletes the add.  The
    result is mathematically equal but **not** bit-exact (float addition
    reassociates), so this pass is opt-in and tolerance-pinned by tests.
    Run it before the fusion passes — it matches standalone add nodes.
    """
    from ..core.collapse import identity_conv_rect

    changes = 0
    for name in list(graph.nodes):
        node = graph.nodes.get(name)
        if node is None or node.op != "add":
            continue
        consumers = graph.consumers()
        for conv_name, other in (
            (node.inputs[0], node.inputs[1]),
            (node.inputs[1], node.inputs[0]),
        ):
            if not _fusible_conv(graph, consumers, name, conv_name):
                continue
            conv = graph.nodes[conv_name]
            w = conv.attrs.get("weight")
            kh, kw = conv.kernel()
            if (
                w is None
                or conv.epilogues
                or conv.inputs[0] != other
                or conv.attrs["cin"] != conv.attrs["cout"]
                or conv.attrs.get("groups", 1) != 1
                or kh % 2 == 0 or kw % 2 == 0
            ):
                continue
            eye = identity_conv_rect(kh, kw, conv.attrs["cout"])
            conv.attrs["weight"] = w + eye.astype(w.dtype)
            graph.replace_uses(name, conv_name)
            graph.remove(name)
            changes += 1
            break
    return changes


def make_quantize_pass(
    act_params: Optional[Dict[str, "object"]] = None,
    weight_bits: int = 8,
) -> PassFn:
    """Build a pass quantizing conv weights (and optionally activations).

    Mirrors :func:`repro.deploy.quantize.quantize_sesr`: symmetric
    per-output-channel int8 weights; ``act_params`` maps conv node names to
    :class:`~repro.deploy.quantize.QuantParams` for the fake-quant node
    spliced in after each listed conv (exactly where ``QuantizedConv2d``
    applies it).  Run before the fusion passes.
    """
    from ..deploy.quantize import calibrate_weight_per_channel

    def insert_int8_quant(graph: Graph) -> int:
        changes = 0
        for name in list(graph.nodes):
            node = graph.nodes[name]
            if node.op != "conv" or node.attrs.get("weight") is None:
                continue
            params = calibrate_weight_per_channel(
                node.attrs["weight"], weight_bits
            )
            node.attrs["weight_q"] = params.quantize(node.attrs["weight"])
            node.attrs["weight_params"] = params
            node.attrs["weight"] = None
            changes += 1
            if act_params and name in act_params:
                qname = f"{name}_q"
                graph.insert_after(
                    name, Node(qname, "quant", [name],
                               {"params": act_params[name]}),
                )
                graph.replace_uses(name, qname)
                changes += 1
        return changes

    return insert_int8_quant


# fuse_conv_activation runs twice: the second sweep catches activations
# that only become fusible once a residual add folds away (CARN's
# act(h + x) pattern — the relu reads the add, not the conv, until then).
DEFAULT_PASSES: Tuple[PassFn, ...] = (
    fold_constants,
    fuse_conv_activation,
    fuse_residual_add,
    fuse_conv_activation,
    eliminate_dead_nodes,
)
