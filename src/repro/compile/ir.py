"""Typed static-graph IR for the collapsed inference path.

A :class:`Graph` is an ordered set of named :class:`Node`\\ s — conv, deconv,
relu/prelu, add, concat, depth-to-space, quant, const — held in topological
order (insertion order is validated to be topological).  Spatial dimensions
stay symbolic: every node carries ``(channels, res_scale)``, where
``res_scale`` is the node's output resolution relative to the network input,
exactly the convention of :class:`repro.metrics.complexity.LayerSpec`.  A
graph therefore describes *every* tile size the serving engine may feed it;
concrete shapes are bound at execution time (:mod:`repro.compile.executor`).

The IR is the single model description shared by three consumers:

* :func:`to_layer_specs` exports the graph as a ``LayerSpec`` sequence, which
  is what :mod:`repro.metrics.complexity` counts and :mod:`repro.hw`
  simulates — one source of truth instead of three drifting ones;
* :func:`repro.compile.plan_buffers` runs liveness analysis over it;
* :class:`repro.compile.CompiledModel` executes it.

Convs may carry an ordered **epilogue** list — ``("relu", name)``,
``("prelu", alpha, name)``, ``("quant", params, name)``, ``("add", input_idx,
name)`` — produced by the fusion passes.  Epilogues are applied in place on
the conv's output buffer; the exporter re-expands them, so
``to_layer_specs`` is invariant under fusion (pinned by tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..metrics.complexity import LayerSpec

#: Every operation the IR can express.
OP_KINDS = (
    "input",
    "const",
    "conv",
    "deconv",
    "relu",
    "prelu",
    "add",
    "concat",
    "depth_to_space",
    "quant",
)

#: Required attribute keys per op (beyond what shape inference derives).
_REQUIRED_ATTRS = {
    "input": ("channels",),
    "const": ("value",),
    "conv": ("kernel", "cin", "cout"),
    "deconv": ("kernel", "cin", "cout", "stride"),
    "depth_to_space": ("block",),
}

#: How many value inputs each op consumes (conv may gain more via fused adds).
_ARITY = {
    "input": 0,
    "const": 0,
    "conv": 1,
    "deconv": 1,
    "relu": 1,
    "prelu": 1,
    "add": 2,
    "concat": None,  # >= 2
    "depth_to_space": 1,
    "quant": 1,
}


class IRError(ValueError):
    """An ill-formed graph: bad op, dangling input, shape mismatch, ..."""


@dataclass
class Node:
    """One typed operation.

    ``inputs`` name producer nodes (position 0 is the main data path; for
    ``add``, position 1 is the *side* operand — the convention the
    ``LayerSpec`` exporter relies on).  ``channels``/``res_scale`` are
    filled in by :meth:`Graph.infer_shapes`.
    """

    name: str
    op: str
    inputs: List[str] = field(default_factory=list)
    attrs: Dict[str, Any] = field(default_factory=dict)
    channels: int = 0
    res_scale: float = 1.0
    epilogues: List[tuple] = field(default_factory=list)

    def kernel(self) -> Tuple[int, int]:
        kh, kw = self.attrs["kernel"]
        return int(kh), int(kw)

    def copy(self) -> "Node":
        return Node(
            self.name,
            self.op,
            list(self.inputs),
            dict(self.attrs),
            self.channels,
            self.res_scale,
            list(self.epilogues),
        )


class Graph:
    """An ordered, validated DAG of :class:`Node` objects.

    Nodes must be added producers-first, so ``nodes.values()`` *is* a
    topological order — the property every pass, the planner, and the
    executor rely on (re-checked by :meth:`infer_shapes`).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.nodes: Dict[str, Node] = {}
        self.inputs: List[str] = []
        self.outputs: List[str] = []

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add(self, node: Node) -> str:
        """Append ``node``; its inputs must already exist.  Returns the name."""
        if node.op not in OP_KINDS:
            raise IRError(f"unknown op {node.op!r} (node {node.name!r})")
        if not node.name:
            raise IRError("nodes must be named")
        if node.name in self.nodes:
            raise IRError(f"duplicate node name {node.name!r}")
        for src in node.inputs:
            if src not in self.nodes:
                raise IRError(
                    f"node {node.name!r} reads undefined input {src!r}"
                )
        for key in _REQUIRED_ATTRS.get(node.op, ()):
            if key not in node.attrs:
                raise IRError(
                    f"{node.op} node {node.name!r} missing attr {key!r}"
                )
        self.nodes[node.name] = node
        if node.op == "input":
            self.inputs.append(node.name)
        return node.name

    def add_input(self, name: str, channels: int) -> str:
        return self.add(Node(name, "input", [], {"channels": int(channels)}))

    def set_outputs(self, names: Sequence[str]) -> None:
        for n in names:
            if n not in self.nodes:
                raise IRError(f"unknown output node {n!r}")
        self.outputs = list(names)

    def copy(self) -> "Graph":
        """Structural copy; weight arrays are shared (treated read-only)."""
        g = Graph(self.name)
        for node in self.nodes.values():
            g.nodes[node.name] = node.copy()
        g.inputs = list(self.inputs)
        g.outputs = list(self.outputs)
        return g

    # ------------------------------------------------------------------ #
    # mutation (used by the optimisation passes)
    # ------------------------------------------------------------------ #
    def remove(self, name: str) -> None:
        node = self.nodes.pop(name)
        if node.op == "input":
            self.inputs.remove(name)
        if name in self.outputs:
            raise IRError(f"cannot remove graph output {name!r}")

    def replace_uses(self, old: str, new: str) -> None:
        """Rewrite every reference to ``old`` (inputs and outputs) to ``new``."""
        for node in self.nodes.values():
            if node.name == new:
                continue
            node.inputs = [new if i == old else i for i in node.inputs]
        self.outputs = [new if o == old else o for o in self.outputs]

    def insert_after(self, anchor: str, node: Node) -> str:
        """Insert ``node`` immediately after ``anchor`` in the ordering.

        The caller wires ``node.inputs``/consumers; this only places the
        node so insertion order stays topological.
        """
        if anchor not in self.nodes:
            raise IRError(f"unknown anchor node {anchor!r}")
        if node.name in self.nodes:
            raise IRError(f"duplicate node name {node.name!r}")
        rebuilt: Dict[str, Node] = {}
        for name, existing in self.nodes.items():
            rebuilt[name] = existing
            if name == anchor:
                rebuilt[node.name] = node
        self.nodes = rebuilt
        return node.name

    # ------------------------------------------------------------------ #
    # analysis
    # ------------------------------------------------------------------ #
    def consumers(self) -> Dict[str, List[str]]:
        """Map each node to the nodes that read it (in topo order)."""
        out: Dict[str, List[str]] = {name: [] for name in self.nodes}
        for node in self.nodes.values():
            for src in node.inputs:
                out[src].append(node.name)
        return out

    def infer_shapes(self) -> "Graph":
        """Validate the graph and fill in ``channels``/``res_scale``."""
        if not self.outputs:
            raise IRError("graph has no outputs")
        seen: Dict[str, Node] = {}
        for node in self.nodes.values():
            for src in node.inputs:
                if src not in seen:
                    raise IRError(
                        f"node {node.name!r} is not in topological order "
                        f"(reads {src!r} before its definition)"
                    )
            self._infer_node(node, seen)
            seen[node.name] = node
        for out in self.outputs:
            if out not in self.nodes:
                raise IRError(f"unknown output node {out!r}")
        return self

    def _infer_node(self, node: Node, seen: Dict[str, Node]) -> None:
        op, a = node.op, node.attrs
        arity = _ARITY[op]
        n_main = len(node.inputs) - sum(
            1 for e in node.epilogues if e[0] == "add"
        )
        if arity is not None and n_main != arity:
            raise IRError(
                f"{op} node {node.name!r} expects {arity} input(s), "
                f"got {n_main}"
            )
        if op == "input":
            node.channels, node.res_scale = int(a["channels"]), 1.0
        elif op == "const":
            value = np.asarray(a["value"])
            if value.ndim != 4:
                raise IRError(
                    f"const node {node.name!r} must hold an NHWC array"
                )
            node.channels = int(value.shape[3])
            node.res_scale = float(a.get("res_scale", 1.0))
        elif op in ("conv", "deconv"):
            src = seen[node.inputs[0]]
            cin, cout = int(a["cin"]), int(a["cout"])
            groups = int(a.get("groups", 1))
            if src.channels != cin:
                raise IRError(
                    f"{op} node {node.name!r}: input has {src.channels} "
                    f"channels, weight expects {cin}"
                )
            if cin % groups or cout % groups:
                raise IRError(
                    f"{op} node {node.name!r}: channels not divisible by "
                    f"groups={groups}"
                )
            w = a.get("weight")
            if w is not None:
                kh, kw = node.kernel()
                expect = (kh, kw, cin // groups, cout)
                if tuple(w.shape) != expect:
                    raise IRError(
                        f"{op} node {node.name!r}: weight shape "
                        f"{tuple(w.shape)} != {expect}"
                    )
            node.channels = cout
            node.res_scale = src.res_scale * (
                int(a["stride"]) if op == "deconv" else 1
            )
            self._infer_epilogues(node, seen)
        elif op in ("relu", "prelu", "quant"):
            src = seen[node.inputs[0]]
            node.channels, node.res_scale = src.channels, src.res_scale
        elif op == "add":
            main, side = seen[node.inputs[0]], seen[node.inputs[1]]
            self._check_add(node.name, main, side)
            node.channels, node.res_scale = main.channels, main.res_scale
        elif op == "concat":
            if len(node.inputs) < 2:
                raise IRError(
                    f"concat node {node.name!r} needs >= 2 inputs"
                )
            srcs = [seen[i] for i in node.inputs]
            if len({s.res_scale for s in srcs}) != 1:
                raise IRError(
                    f"concat node {node.name!r}: mixed resolutions"
                )
            node.channels = sum(s.channels for s in srcs)
            node.res_scale = srcs[0].res_scale
        elif op == "depth_to_space":
            src = seen[node.inputs[0]]
            r = int(a["block"])
            if src.channels % (r * r):
                raise IRError(
                    f"depth_to_space node {node.name!r}: {src.channels} "
                    f"channels not divisible by block²={r * r}"
                )
            node.channels = src.channels // (r * r)
            node.res_scale = src.res_scale * r

    def _infer_epilogues(self, node: Node, seen: Dict[str, Node]) -> None:
        for ep in node.epilogues:
            if ep[0] not in ("relu", "prelu", "quant", "add"):
                raise IRError(
                    f"conv node {node.name!r}: unknown epilogue {ep[0]!r}"
                )
            if ep[0] == "add":
                idx = ep[1]
                if not 0 < idx < len(node.inputs):
                    raise IRError(
                        f"conv node {node.name!r}: epilogue add index {idx} "
                        f"out of range"
                    )
                self._check_add(node.name, node, seen[node.inputs[idx]])

    @staticmethod
    def _check_add(name: str, main: Node, side: Node) -> None:
        if side.channels not in (1, main.channels):
            raise IRError(
                f"add node {name!r}: side operand has {side.channels} "
                f"channels, main has {main.channels} (not broadcastable)"
            )
        if side.res_scale != main.res_scale:
            raise IRError(f"add node {name!r}: operand resolutions differ")

    # ------------------------------------------------------------------ #
    # accounting / reporting
    # ------------------------------------------------------------------ #
    def macs(self, in_h: int, in_w: int) -> int:
        """Total conv/deconv MACs for an ``in_h × in_w`` network input.

        Same convention as :func:`repro.metrics.complexity.count_macs`:
        ``kh·kw·(C_in/groups)·C_out`` per output pixel.
        """
        total = 0
        for node in self.nodes.values():
            if node.op not in ("conv", "deconv"):
                continue
            kh, kw = node.kernel()
            groups = int(node.attrs.get("groups", 1))
            out_px = round(in_h * node.res_scale) * round(in_w * node.res_scale)
            total += (
                kh * kw * (int(node.attrs["cin"]) // groups)
                * int(node.attrs["cout"]) * out_px
            )
        return total

    def pretty(self) -> str:
        """Human-readable dump (``repro compile --dump-ir``)."""
        lines = [f"graph {self.name or '<anonymous>'}"]
        for node in self.nodes.values():
            detail = ""
            if node.op in ("conv", "deconv"):
                kh, kw = node.kernel()
                detail = f" k{kh}x{kw} {node.attrs['cin']}->{node.attrs['cout']}"
                if node.attrs.get("groups", 1) != 1:
                    detail += f" g{node.attrs['groups']}"
            elif node.op == "depth_to_space":
                detail = f" r{node.attrs['block']}"
            eps = "".join(f" +{e[0]}" for e in node.epilogues)
            srcs = ", ".join(node.inputs)
            lines.append(
                f"  %{node.name} = {node.op}{detail}({srcs}){eps}"
                f"  # C={node.channels} rs={node.res_scale:g}"
            )
        lines.append(f"  outputs: {', '.join(self.outputs)}")
        return "\n".join(lines)


def receptive_radius(graph: Graph) -> int:
    """Half-width of the receptive field in input pixels.

    Each ``k×k`` conv/deconv adds ``(max(k) - 1) // 2`` pixels of context —
    the same convention as :func:`repro.deploy.tiled.receptive_radius`, so a
    compiled model's halo matches the eager path's.
    """
    radius = 0
    for node in graph.nodes.values():
        if node.op in ("conv", "deconv"):
            radius += (max(node.kernel()) - 1) // 2
    return radius


def to_layer_specs(graph: Graph) -> List[LayerSpec]:
    """Export the graph as the ``LayerSpec`` sequence it denotes.

    This is the bridge that lets :mod:`repro.metrics.complexity` and
    :mod:`repro.hw` consume the compiler's IR.  Fused conv epilogues are
    re-expanded to their original act/add specs (quant nodes have no
    ``LayerSpec`` kind and are skipped), so the export is invariant under
    the fusion passes.  Grouped convs encode the per-group MAC reduction
    via a reduced ``cin``, matching :meth:`repro.core.carn.CARN_M.specs`.
    """
    graph.infer_shapes()
    specs: List[LayerSpec] = []
    for node in graph.nodes.values():
        if node.op in ("input", "const", "quant", "concat"):
            continue
        if node.op in ("conv", "deconv"):
            kind = "conv" if node.op == "conv" else "deconv"
            groups = int(node.attrs.get("groups", 1))
            specs.append(
                LayerSpec(
                    kind,
                    node.kernel(),
                    int(node.attrs["cin"]) // groups,
                    int(node.attrs["cout"]),
                    node.res_scale,
                    node.name,
                )
            )
            for ep in node.epilogues:
                spec = _epilogue_spec(graph, node, ep)
                if spec is not None:
                    specs.append(spec)
        elif node.op in ("relu", "prelu"):
            specs.append(
                LayerSpec(
                    "act",
                    (1, 1),
                    node.channels,
                    node.channels,
                    node.res_scale,
                    node.name,
                )
            )
        elif node.op == "add":
            side = graph.nodes[node.inputs[1]]
            specs.append(
                LayerSpec(
                    "add",
                    (1, 1),
                    side.channels,
                    node.channels,
                    node.res_scale,
                    node.name,
                )
            )
        elif node.op == "depth_to_space":
            src = graph.nodes[node.inputs[0]]
            specs.append(
                LayerSpec(
                    "depth_to_space",
                    (1, 1),
                    src.channels,
                    node.channels,
                    node.res_scale,
                    node.name,
                )
            )
    return specs


def _epilogue_spec(graph: Graph, conv: Node, ep: tuple) -> Optional[LayerSpec]:
    kind, name = ep[0], ep[-1]
    if kind in ("relu", "prelu"):
        return LayerSpec(
            "act", (1, 1), conv.channels, conv.channels, conv.res_scale, name
        )
    if kind == "add":
        side = graph.nodes[conv.inputs[ep[1]]]
        return LayerSpec(
            "add", (1, 1), side.channels, conv.channels, conv.res_scale, name
        )
    return None  # quant: no LayerSpec kind
