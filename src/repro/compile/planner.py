"""Liveness-based buffer planning (greedy interval colouring).

Eager execution allocates a fresh array per op, so peak memory is the sum
of *every* intermediate.  The planner computes each value's live interval
over the topological order and colours the intervals into a small set of
reusable **slots** — two values share a slot iff their intervals are
disjoint — so the executor runs in a handful of O(largest-intermediate)
arenas.

Sizes stay symbolic, like the IR itself: a node's buffer is measured in
**units** — float32 elements *per network-input pixel*, i.e.
``channels · res_scale²`` — which scales to concrete bytes as
``N·H·W·4·units`` for any input shape.  That one number is valid for every
tile the serving engine feeds the plan, which is what makes the plan
cacheable per model rather than per shape.

The greedy is best-fit decreasing-free: reuse the smallest free slot that
already fits, else grow the largest free slot, else open a new one.  The
plan reports ``naive_units`` (per-op allocation, what eager does) and
``lower_bound_units`` (max units simultaneously live — no colouring can do
better); tests pin ``planned < naive`` strictly for every zoo variant and
``planned == lower bound`` on pure chains.

Graph inputs and consts are external (caller-owned); output nodes are
excluded too — the executor returns freshly allocated arrays, never arena
views (a view would be silently overwritten by the next request).

Alongside the buffer plan the module also plans **kernels**:
:func:`plan_kernels` resolves every conv node of a graph to the GEMM
implementation it will run as (``blas`` / ``blocked`` / ``direct``, see
:mod:`repro.kernels`) for a given ``gemm_backend``, consulting the
per-host tuning cache in ``auto`` mode.  The resulting
:class:`KernelPlan` rides on the compiled model, is echoed by
``/v1/stats``, and is what the executor's per-step dispatch reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..kernels.tune import select_kernel, shape_key
from .ir import Graph


def _units(channels: int, res_scale: float) -> int:
    """Float32 elements per network-input pixel for one value."""
    return int(round(channels * res_scale * res_scale))


@dataclass(frozen=True)
class BufferPlan:
    """Slot assignment for every planned (arena-resident) node."""

    order: Tuple[str, ...]          # planned nodes, topological order
    slot_of: Dict[str, int]        # planned node -> slot index
    slot_units: Tuple[int, ...]     # per-slot capacity, in units
    node_units: Dict[str, int]     # planned node -> its own size, in units
    naive_units: int                # per-op allocation total (eager's peak)
    lower_bound_units: int          # max simultaneously-live units
    external: Tuple[str, ...]       # inputs/consts/outputs: not in the arena

    @property
    def planned_units(self) -> int:
        return sum(self.slot_units)

    def arena_bytes(self, in_h: int, in_w: int, n: int = 1) -> int:
        """Planned arena size for a concrete input shape (float32)."""
        return 4 * n * in_h * in_w * self.planned_units

    def naive_bytes(self, in_h: int, in_w: int, n: int = 1) -> int:
        """What per-op allocation of the same values costs (float32)."""
        return 4 * n * in_h * in_w * self.naive_units

    def stats(self) -> Dict[str, int]:
        return {
            "planned_nodes": len(self.order),
            "slots": len(self.slot_units),
            "planned_units": self.planned_units,
            "naive_units": self.naive_units,
            "lower_bound_units": self.lower_bound_units,
        }


def plan_buffers(graph: Graph) -> BufferPlan:
    """Colour the graph's intermediate values into reusable slots."""
    graph.infer_shapes()
    consumers = graph.consumers()
    index = {name: i for i, name in enumerate(graph.nodes)}
    external = [
        name for name, node in graph.nodes.items()
        if node.op in ("input", "const") or name in graph.outputs
    ]
    planned = [n for n in graph.nodes if n not in external]

    node_units = {
        n: _units(graph.nodes[n].channels, graph.nodes[n].res_scale)
        for n in planned
    }
    # A value lives from its definition to its last consumer.  (A planned
    # node always has a consumer — dead nodes cannot reach an output and
    # outputs are external — but guard with its own index anyway.)
    last_use = {
        n: max((index[c] for c in consumers[n]), default=index[n])
        for n in planned
    }

    # Lower bound: the max total units simultaneously live at any step.
    lower_bound = 0
    for name in planned:
        i = index[name]
        live = sum(
            u for n, u in node_units.items()
            if index[n] <= i <= last_use[n]
        )
        lower_bound = max(lower_bound, live)

    # Greedy best-fit colouring over the topological scan.
    slot_units: List[int] = []
    slot_free_at: List[int] = []    # occupant's last_use; free when < i
    slot_of: Dict[str, int] = {}
    for name in planned:
        i, need = index[name], node_units[name]
        free = [s for s in range(len(slot_units)) if slot_free_at[s] < i]
        fitting = [s for s in free if slot_units[s] >= need]
        if fitting:
            slot = min(fitting, key=lambda s: slot_units[s])
        elif free:
            slot = max(free, key=lambda s: slot_units[s])
            slot_units[slot] = need
        else:
            slot_units.append(need)
            slot_free_at.append(-1)
            slot = len(slot_units) - 1
        slot_of[name] = slot
        slot_free_at[slot] = last_use[name]

    return BufferPlan(
        order=tuple(planned),
        slot_of=slot_of,
        slot_units=tuple(slot_units),
        node_units=node_units,
        naive_units=sum(node_units.values()),
        lower_bound_units=lower_bound,
        external=tuple(external),
    )


# --------------------------------------------------------------------- #
# kernel planning
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class KernelChoice:
    """One conv node resolved to the GEMM kernel it runs as.

    ``source`` records *why*: ``forced`` (backend is blas/blocked),
    ``tuned`` (auto + a tuning-cache row), ``default`` (auto with no row
    — degrades to blas), or ``pinned`` (an explicit per-node choice, the
    dataplane's pickle handoff).
    """

    node: str
    shape: str      # repro.kernels.tune.shape_key of the conv
    kernel: str     # "blas" | "blocked" | "direct"
    source: str     # "forced" | "tuned" | "default" | "pinned"

    def to_dict(self) -> Dict[str, str]:
        return {
            "node": self.node,
            "shape": self.shape,
            "kernel": self.kernel,
            "source": self.source,
        }


@dataclass(frozen=True)
class KernelPlan:
    """Per-conv kernel selection for one compiled graph."""

    backend: str                       # the gemm_backend that produced it
    choices: Tuple[KernelChoice, ...]  # one per conv node, graph order

    def kernel_of(self, node: str) -> str:
        for c in self.choices:
            if c.node == node:
                return c.kernel
        return "blas"

    def stats(self) -> Dict[str, Any]:
        """JSON view for ``/v1/stats`` and the dataplane handoff."""
        return {
            "backend": self.backend,
            "choices": [c.to_dict() for c in self.choices],
        }


def plan_kernels(
    graph: Graph,
    backend: str = "blas",
    tuning: Optional[Dict[str, Dict[str, Any]]] = None,
    pinned: Optional[Dict[str, str]] = None,
) -> KernelPlan:
    """Resolve every conv node of ``graph`` to a GEMM kernel.

    ``tuning`` is the loaded per-host cache
    (:func:`repro.kernels.load_cache`); only consulted when ``backend``
    is ``auto``.  ``pinned`` maps node name → kernel and overrides
    everything — it is how a process worker replays the exact selection
    its parent resolved, so both sides compute identical bits.
    """
    choices: List[KernelChoice] = []
    for name, node in graph.nodes.items():
        if node.op != "conv":
            continue
        kh, kw = node.kernel()
        key = shape_key(
            kh, kw, int(node.attrs["cin"]), int(node.attrs["cout"]),
            int(node.attrs.get("groups", 1)),
        )
        if pinned is not None and name in pinned:
            kernel, source = pinned[name], "pinned"
        else:
            kernel, source = select_kernel(backend, key, tuning)
        choices.append(KernelChoice(name, key, kernel, source))
    return KernelPlan(backend=backend, choices=tuple(choices))
