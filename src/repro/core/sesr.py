"""SESR model family (paper §3.1–§3.2, Fig. 2).

Training-time network (Fig. 2(a)):

    input (Y channel, 1ch)
      → 5×5 linear block (1 → f) → PReLU            ... "first"
      → m × [3×3 linear block (f → f) + short residual → PReLU]
      → + output of first block                      ... long *blue* residual
      → 5×5 linear block (f → SCALE²)                ... "last"
      → + input image (broadcast over channels)      ... long *black* residual
      → depth-to-space (×2 once for SCALE=2, twice for SCALE=4)

Inference-time network (Fig. 2(d)): every linear block and short residual is
collapsed, leaving a VGG-like stack of m+2 narrow convolutions plus the two
long residuals.

Standard configurations (§5.1): M3/M5/M7/M11 with f=16 and XL with f=32,
m=11; intermediate expansion p=256.  The hardware-friendly variant (§5.5)
replaces PReLU with ReLU and drops the long black residual.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..nn import (
    Conv2d,
    Module,
    PReLU,
    ReLU,
    Tensor,
    depth_to_space,
)
from .linear_block import CollapsibleLinearBlock

#: Named configurations from the paper (§5.1): name -> (f, m).
SESR_CONFIGS: Dict[str, Tuple[int, int]] = {
    "M3": (16, 3),
    "M5": (16, 5),
    "M7": (16, 7),
    "M11": (16, 11),
    "XL": (32, 11),
}


def _upsample_steps(scale: int) -> List[int]:
    """Depth-to-space schedule: ×2 → [2]; ×4 → [2, 2] (paper §5.1)."""
    if scale == 2:
        return [2]
    if scale == 4:
        return [2, 2]
    raise ValueError(f"SESR supports scale 2 or 4, got {scale}")


class SESR(Module):
    """Training-time SESR network built from Collapsible Linear Blocks.

    Parameters
    ----------
    scale:
        Super-resolution factor, 2 or 4.
    f:
        Feature width of all blocks except the last (paper's ``f``).
    m:
        Number of 3×3 linear blocks (paper's ``m``).
    expansion:
        Intermediate width ``p`` inside each linear block (paper uses 256).
    activation:
        ``"prelu"`` (paper default) or ``"relu"`` (hardware variant, §5.5).
    input_residual:
        Long *black* input→output residual (dropped in the hardware variant).
    feature_residual:
        Long *blue* residual from the first block's output.
    short_residuals:
        Collapsible residuals over the 3×3 blocks (ablation §5.4/§5.5;
        disabling them reproduces the ExpandNets training configuration).
    linear_blocks:
        When ``False``, use plain narrow convolutions instead of linear
        blocks (the "short residuals alone" ablation, §5.5).
    mode:
        ``"collapsed"`` (efficient, §3.3) or ``"expanded"`` training forward.
    two_stage_head:
        ×4 only.  The paper's ×4 head is a *single* 5×5×f×16 convolution
        followed by depth-to-space twice (saving MACs, §5.1); the paper's
        future-work note suggests "extra upsampling convolutions like in
        prior art" may close the remaining quality gap to large CNNs.
        ``two_stage_head=True`` implements that variant: two (5×5 conv →
        depth-to-space ×2) stages, the second operating at 2× resolution.
    """

    def __init__(
        self,
        scale: int = 2,
        f: int = 16,
        m: int = 5,
        expansion: int = 256,
        activation: str = "prelu",
        input_residual: bool = True,
        feature_residual: bool = True,
        short_residuals: bool = True,
        linear_blocks: bool = True,
        mode: str = "collapsed",
        two_stage_head: bool = False,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if activation not in ("prelu", "relu"):
            raise ValueError(f"unknown activation {activation!r}")
        if two_stage_head and scale != 4:
            raise ValueError("two_stage_head applies to scale 4 only")
        rng = np.random.default_rng(seed)
        self.scale = scale
        self.f = f
        self.m = m
        self.expansion = expansion
        self.activation = activation
        self.input_residual = input_residual and not two_stage_head
        self.feature_residual = feature_residual
        self.short_residuals = short_residuals
        self.linear_blocks = linear_blocks
        self.two_stage_head = two_stage_head
        out_channels = scale * scale

        def make_block(cin: int, cout: int, k: int, residual: bool) -> Module:
            if linear_blocks:
                return CollapsibleLinearBlock(
                    cin, cout, k, expansion=expansion, residual=residual,
                    mode=mode, rng=rng,
                )
            return _PlainBlock(cin, cout, k, residual=residual, rng=rng)

        def make_act(channels: int) -> Module:
            return PReLU(channels) if activation == "prelu" else ReLU()

        self.first = make_block(1, f, 5, residual=False)
        self.act_first = make_act(f)
        self.blocks: List[Module] = []
        self.acts: List[Module] = []
        for i in range(m):
            blk = make_block(f, f, 3, residual=short_residuals)
            act = make_act(f)
            setattr(self, f"block{i}", blk)
            setattr(self, f"act{i}", act)
            self.blocks.append(blk)
            self.acts.append(act)
        if two_stage_head:
            # Future-work variant: conv(f -> 4f) + d2s, conv(f -> 4) + d2s.
            self.last = make_block(f, 4 * f, 5, residual=False)
            self.act_last = make_act(4 * f)
            self.last2 = make_block(f, 4, 5, residual=False)
        else:
            self.last = make_block(f, out_channels, 5, residual=False)

    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> Tensor:
        """Upscale NHWC input ``(N, H, W, 1)`` to ``(N, sH, sW, 1)``."""
        feat = self.act_first(self.first(x))
        h = feat
        for blk, act in zip(self.blocks, self.acts):
            h = act(blk(h))
        if self.feature_residual:
            h = h + feat
        if self.two_stage_head:
            out = depth_to_space(self.act_last(self.last(h)), 2)
            return depth_to_space(self.last2(out), 2)
        out = self.last(h)
        if self.input_residual:
            out = out + x  # broadcast 1 channel over SCALE² channels
        for r in _upsample_steps(self.scale):
            out = depth_to_space(out, r)
        return out

    # ------------------------------------------------------------------ #
    def set_mode(self, mode: str) -> None:
        """Switch every linear block between collapsed/expanded training."""
        for _, module in self.named_modules():
            if isinstance(module, CollapsibleLinearBlock):
                module.set_mode(mode)

    def collapse(self) -> "CollapsedSESR":
        """Export the inference-time network (Fig. 2(d)) via Algorithms 1–2."""
        return CollapsedSESR(self)

    def convert_scale(self, new_scale: int) -> "SESR":
        """Re-head a trained model for a different scale (paper §5.1).

        The ×4 models start from pretrained ×2 weights: the trunk (first block
        and all 3×3 blocks) is copied, only the final 5×5 head is replaced.
        """
        other = SESR(
            scale=new_scale,
            f=self.f,
            m=self.m,
            expansion=self.expansion,
            activation=self.activation,
            input_residual=self.input_residual,
            feature_residual=self.feature_residual,
            short_residuals=self.short_residuals,
            linear_blocks=self.linear_blocks,
        )
        own = self.state_dict()
        trunk = {k: v for k, v in own.items() if not k.startswith("last.")}
        other.load_state_dict(trunk, strict=False)
        return other

    def collapsed_num_parameters(self) -> int:
        """Paper's parameter formula for the collapsed network:

        ``P = 5·5·1·f + m·(3·3·f·f) + 5·5·f·SCALE²`` (biases excluded,
        matching the convention of Tables 1–2).  The two-stage ×4 head
        replaces the last term with ``5·5·f·4f + 5·5·f·4``.
        """
        f, m, s = self.f, self.m, self.scale
        trunk = 25 * 1 * f + m * 9 * f * f
        if self.two_stage_head:
            return trunk + 25 * f * 4 * f + 25 * f * 4
        return trunk + 25 * f * s * s

    @classmethod
    def from_name(cls, name: str, scale: int = 2, **kwargs) -> "SESR":
        """Build a named configuration: ``M3``, ``M5``, ``M7``, ``M11``, ``XL``."""
        key = name.upper().replace("SESR-", "")
        if key not in SESR_CONFIGS:
            raise KeyError(f"unknown SESR config {name!r}; know {list(SESR_CONFIGS)}")
        f, m = SESR_CONFIGS[key]
        return cls(scale=scale, f=f, m=m, **kwargs)


class _PlainBlock(Module):
    """Plain k×k convolution (+ optional true residual) for ablations."""

    def __init__(
        self, cin: int, cout: int, k: int, residual: bool, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.conv = Conv2d(cin, cout, k, padding="same", rng=rng)
        self.residual = residual

    def forward(self, x: Tensor) -> Tensor:
        out = self.conv(x)
        return out + x if self.residual else out


class CollapsedSESR(Module):
    """Inference-time SESR (Fig. 2(d)): m+2 narrow convs + two long residuals.

    Built by collapsing a trained :class:`SESR` with Algorithms 1 and 2.  The
    short residuals are folded *into the conv weights*; only the two long
    residuals remain as explicit adds.
    """

    def __init__(self, trained: SESR) -> None:
        super().__init__()
        if not trained.linear_blocks:
            raise ValueError("only linear-block SESR models can be collapsed")
        self.scale = trained.scale
        self.f = trained.f
        self.m = trained.m
        self.input_residual = trained.input_residual
        self.feature_residual = trained.feature_residual
        self.activation = trained.activation
        self.two_stage_head = trained.two_stage_head

        self.first = trained.first.to_conv2d()
        self.act_first = _copy_act(trained.act_first)
        self.convs: List[Conv2d] = []
        self.acts: List[Module] = []
        for i, (blk, act) in enumerate(zip(trained.blocks, trained.acts)):
            conv = blk.to_conv2d()
            setattr(self, f"conv{i}", conv)
            a = _copy_act(act)
            setattr(self, f"act{i}", a)
            self.convs.append(conv)
            self.acts.append(a)
        self.last = trained.last.to_conv2d()
        if self.two_stage_head:
            self.act_last = _copy_act(trained.act_last)
            self.last2 = trained.last2.to_conv2d()
        self.eval()

    def forward(self, x: Tensor) -> Tensor:
        feat = self.act_first(self.first(x))
        h = feat
        for conv, act in zip(self.convs, self.acts):
            h = act(conv(h))
        if self.feature_residual:
            h = h + feat
        if self.two_stage_head:
            out = depth_to_space(self.act_last(self.last(h)), 2)
            return depth_to_space(self.last2(out), 2)
        out = self.last(h)
        if self.input_residual:
            out = out + x
        for r in _upsample_steps(self.scale):
            out = depth_to_space(out, r)
        return out

    def collapsed_num_parameters(self) -> int:
        """Conv weights only (paper convention)."""
        f, m, s = self.f, self.m, self.scale
        trunk = 25 * f + m * 9 * f * f
        if self.two_stage_head:
            return trunk + 25 * f * 4 * f + 25 * f * 4
        return trunk + 25 * f * s * s


def _copy_act(act: Module) -> Module:
    """Deep-copy an activation module so the collapsed net is standalone."""
    if isinstance(act, PReLU):
        new = PReLU(act.alpha.size)
        new.alpha.data[...] = act.alpha.data
        return new
    return ReLU()
