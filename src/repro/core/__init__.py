"""``repro.core`` — the paper's contribution: SESR and collapsible blocks."""

from .collapse import (
    collapse_bias,
    fold_batchnorm,
    collapse_linear_block,
    collapse_residual,
    compose_pair,
    expand_1x1_to_kxk,
    identity_conv_rect,
    max_abs_divergence,
)
from .linear_block import CollapsibleLinearBlock
from .sesr import SESR, SESR_CONFIGS, CollapsedSESR
from .blocks import (
    ACBlock,
    BLOCK_TYPES,
    CollapsedVGGNet,
    RepVGGBlock,
    RepVGGSESR,
    build_sesr_variant,
)
from .fsrcnn import FSRCNN
from .baselines import ESPCN, SRCNN, VDSR
from .carn import CARN_M, CascadingBlock, EfficientResidualBlock

__all__ = [
    "collapse_bias",
    "fold_batchnorm",
    "collapse_linear_block",
    "collapse_residual",
    "compose_pair",
    "expand_1x1_to_kxk",
    "identity_conv_rect",
    "max_abs_divergence",
    "CollapsibleLinearBlock",
    "SESR",
    "SESR_CONFIGS",
    "CollapsedSESR",
    "ACBlock",
    "BLOCK_TYPES",
    "CollapsedVGGNet",
    "RepVGGBlock",
    "RepVGGSESR",
    "build_sesr_variant",
    "FSRCNN",
    "ESPCN",
    "SRCNN",
    "VDSR",
    "CARN_M",
    "CascadingBlock",
    "EfficientResidualBlock",
]
