"""The Collapsible Linear Block (paper §3.1, Fig. 2(b)).

A ``k×k`` linear block with ``x`` input and ``y`` output channels:

1. a ``k×k`` convolution expanding to ``p`` intermediate channels (p ≫ x),
2. a ``1×1`` convolution projecting ``p`` back to ``y``,
3. *no* non-linearity in between, so the pair collapses analytically into a
   single narrow ``k×k`` convolution at inference time,
4. optionally a *collapsible* short residual (identity kernel added to the
   collapsed weight — Algorithm 2), with any non-linearity applied by the
   caller **after** the residual add.

Two training modes (paper §3.3, Fig. 3):

``collapsed`` (default)
    Collapse the weights at every step with differentiable weight-space
    composition and convolve once with the small collapsed kernel.  The
    forward pass runs in collapsed space even during training, while the
    backward pass still updates the expanded weights — this is the paper's
    efficient implementation (41.77B → 1.84B forward MACs for SESR-M5).

``expanded``
    Run the two convolutions explicitly (the naive implementation, and also
    how ExpandNets trains).  Kept for the Fig.-3 benchmark and equivalence
    tests; both modes compute identical functions.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..nn import (
    Conv2d,
    Module,
    Parameter,
    Tensor,
    compose_bias_1x1,
    compose_conv_1x1,
    conv2d,
)
from ..nn import init as init_mod
from .collapse import (
    collapse_bias,
    collapse_linear_block,
    collapse_residual,
    identity_conv_rect,
)

TRAINING_MODES = ("collapsed", "expanded")


def _as_pair(k: Union[int, Tuple[int, int]]) -> Tuple[int, int]:
    return (k, k) if isinstance(k, int) else (int(k[0]), int(k[1]))


class CollapsibleLinearBlock(Module):
    """Linear overparameterization block that collapses to one k×k conv.

    Parameters
    ----------
    in_channels, out_channels:
        ``x`` and ``y`` in the paper's notation.
    kernel_size:
        ``k`` (int or pair — pairs support the NAS section's even-sized and
        asymmetric kernels).
    expansion:
        ``p``, the intermediate width (paper uses 256).
    residual:
        Add a collapsible short residual (requires ``x == y`` and odd
        kernels).  The caller applies the activation after this block.
    mode:
        ``"collapsed"`` or ``"expanded"`` (see module docstring).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: Union[int, Tuple[int, int]] = 3,
        expansion: int = 256,
        residual: bool = False,
        mode: str = "collapsed",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if mode not in TRAINING_MODES:
            raise ValueError(f"mode must be one of {TRAINING_MODES}, got {mode!r}")
        kh, kw = _as_pair(kernel_size)
        if residual:
            if in_channels != out_channels:
                raise ValueError("residual blocks need in_channels == out_channels")
            if kh % 2 == 0 or kw % 2 == 0:
                raise ValueError("residual blocks need odd kernel sizes")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.expansion = expansion
        self.residual = residual
        self.mode = mode
        self.w_expand = Parameter(
            init_mod.glorot_uniform((kh, kw, in_channels, expansion), rng)
        )
        self.b_expand = Parameter(np.zeros(expansion, dtype=np.float32))
        self.w_project = Parameter(
            init_mod.glorot_uniform((1, 1, expansion, out_channels), rng)
        )
        self.b_project = Parameter(np.zeros(out_channels, dtype=np.float32))
        if residual:
            self._w_identity = identity_conv_rect(kh, kw, in_channels)
        else:
            self._w_identity = None

    # ------------------------------------------------------------------ #
    # forward
    # ------------------------------------------------------------------ #
    def collapsed_weight(self) -> Tensor:
        """Differentiable collapsed weight W = compose(W₁, W₂) (+ W_R)."""
        w = compose_conv_1x1(self.w_expand, self.w_project)
        if self.residual:
            w = w + Tensor(self._w_identity)
        return w

    def collapsed_bias(self) -> Tensor:
        """Differentiable collapsed bias (residual adds no bias)."""
        return compose_bias_1x1(self.b_expand, self.w_project, self.b_project)

    def forward(self, x: Tensor) -> Tensor:
        """Apply the block (collapsed or expanded execution per ``mode``)."""
        if self.mode == "collapsed":
            return conv2d(
                x, self.collapsed_weight(), self.collapsed_bias(), padding="same"
            )
        # Expanded (naive / ExpandNet-style) execution.
        h = conv2d(x, self.w_expand, self.b_expand, padding="same")
        h = conv2d(h, self.w_project, self.b_project, padding="same")
        if self.residual:
            h = h + x
        return h

    # ------------------------------------------------------------------ #
    # export (Algorithms 1 & 2)
    # ------------------------------------------------------------------ #
    def collapse(self) -> Tuple[np.ndarray, np.ndarray]:
        """Export the trained block as a single conv's ``(weight, bias)``.

        Uses the paper's Algorithm 1 (conv over an identity delta input) and
        Algorithm 2 (identity kernel for the residual) on the raw NumPy
        weights — independent of the fast path used during training, which
        tests exploit for cross-validation.
        """
        w_c = collapse_linear_block(
            [self.w_expand.data, self.w_project.data],
            self.kernel_size,
            self.in_channels,
            self.out_channels,
        )
        if self.residual:
            w_c = w_c + collapse_residual(w_c)
        b_c = collapse_bias(
            [self.w_expand.data, self.w_project.data],
            [self.b_expand.data, self.b_project.data],
        )
        return w_c, b_c

    def to_conv2d(self) -> Conv2d:
        """Materialise the collapsed block as a plain :class:`Conv2d` layer."""
        conv = Conv2d(
            self.in_channels,
            self.out_channels,
            self.kernel_size,
            padding="same",
            bias=True,
        )
        w, b = self.collapse()
        conv.weight.data[...] = w
        conv.bias.data[...] = b
        return conv

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def collapsed_num_parameters(self, include_bias: bool = False) -> int:
        """Parameter count of the *inference-time* collapsed convolution."""
        kh, kw = self.kernel_size
        n = kh * kw * self.in_channels * self.out_channels
        return n + (self.out_channels if include_bias else 0)

    def set_mode(self, mode: str) -> None:
        """Switch between collapsed/expanded training execution."""
        if mode not in TRAINING_MODES:
            raise ValueError(f"mode must be one of {TRAINING_MODES}, got {mode!r}")
        self.mode = mode

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CollapsibleLinearBlock({self.in_channels}->{self.out_channels}, "
            f"k={self.kernel_size}, p={self.expansion}, "
            f"residual={self.residual}, mode={self.mode})"
        )
