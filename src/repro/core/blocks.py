"""Overparameterization block variants compared in the paper (§4, §5.4).

The paper contrasts four training-time parameterizations of the same
inference-time VGG-like convolution (Fig. 4):

* **ExpandNets** — k×k → 1×1 linear block, *no* short residual
  (``β = w₁w₂``); suffers vanishing gradients at depth.
* **SESR** — linear block *plus* collapsible short residual
  (``β = w₁w₂ + I``); extra adaptive term in the update.
* **RepVGG** — k×k conv + parallel 1×1 branch + identity
  (``β = w₁ + w₂I + I``); update provably identical to plain VGG.
* **VGG** — plain convolution (``β = w₁``).

:func:`build_sesr_variant` instantiates the full SESR-M11 skeleton with any
of these block types so the §5.4 experiments train all four under identical
conditions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..nn import (
    BatchNorm2d,
    Conv2d,
    Module,
    Parameter,
    PReLU,
    ReLU,
    Tensor,
    conv2d,
    depth_to_space,
)
from ..nn import init as init_mod
from .collapse import expand_1x1_to_kxk, fold_batchnorm, identity_conv_rect
from .sesr import SESR, _copy_act, _upsample_steps

BLOCK_TYPES = ("sesr", "expandnet", "repvgg", "vgg", "plain_residual")


class RepVGGBlock(Module):
    """RepVGG-style overparameterized convolution (Ding et al., 2021).

    A k×k convolution with a parallel 1×1 branch and (optionally, when the
    channel counts allow) an identity branch; all three branches fold
    analytically into a single k×k convolution.

    ``batchnorm=True`` reproduces the published RepVGG block exactly —
    per-branch BatchNorm, including the BN-only identity branch — which
    collapses via :func:`repro.core.collapse.fold_batchnorm` (the §4
    analysis, and the default here, is the BN-free linear form).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        identity: bool = True,
        batchnorm: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if identity and in_channels != out_channels:
            raise ValueError("identity branch needs matching channel counts")
        rng = rng if rng is not None else np.random.default_rng(0)
        k = int(kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (k, k)
        self.identity = identity
        self.batchnorm = batchnorm
        self.w_main = Parameter(
            init_mod.glorot_uniform((k, k, in_channels, out_channels), rng)
        )
        self.b_main = Parameter(np.zeros(out_channels, dtype=np.float32))
        self.w_branch = Parameter(
            init_mod.glorot_uniform((1, 1, in_channels, out_channels), rng)
        )
        self.b_branch = Parameter(np.zeros(out_channels, dtype=np.float32))
        if batchnorm:
            self.bn_main = BatchNorm2d(out_channels)
            self.bn_branch = BatchNorm2d(out_channels)
            if identity:
                self.bn_identity = BatchNorm2d(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        main = conv2d(x, self.w_main, self.b_main, padding="same")
        branch = conv2d(x, self.w_branch, self.b_branch, padding="same")
        if self.batchnorm:
            main = self.bn_main(main)
            branch = self.bn_branch(branch)
        out = main + branch
        if self.identity:
            out = out + (self.bn_identity(x) if self.batchnorm else x)
        return out

    def collapse(self) -> Tuple[np.ndarray, np.ndarray]:
        """Fold all branches (and their BNs) into one k×k ``(weight, bias)``."""
        k = self.kernel_size[0]
        w_main, b_main = self.w_main.data, self.b_main.data
        w_branch, b_branch = self.w_branch.data, self.b_branch.data
        if self.batchnorm:
            w_main, b_main = fold_batchnorm(
                w_main, b_main, self.bn_main.gamma.data,
                self.bn_main.beta.data, self.bn_main.running_mean,
                self.bn_main.running_var, self.bn_main.eps,
            )
            w_branch, b_branch = fold_batchnorm(
                w_branch, b_branch, self.bn_branch.gamma.data,
                self.bn_branch.beta.data, self.bn_branch.running_mean,
                self.bn_branch.running_var, self.bn_branch.eps,
            )
        w = w_main + expand_1x1_to_kxk(w_branch, k, k)
        b = b_main + b_branch
        if self.identity:
            w_id = identity_conv_rect(k, k, self.in_channels)
            if self.batchnorm:
                bn = self.bn_identity
                w_id, b_id = fold_batchnorm(
                    w_id, None, bn.gamma.data, bn.beta.data,
                    bn.running_mean, bn.running_var, bn.eps,
                )
                b = b + b_id
            w = w + w_id
        return w, b

    def to_conv2d(self) -> Conv2d:
        conv = Conv2d(
            self.in_channels, self.out_channels, self.kernel_size, padding="same"
        )
        w, b = self.collapse()
        conv.weight.data[...] = w
        conv.bias.data[...] = b
        return conv


class ACBlock(Module):
    """ACNet's Asymmetric Convolution Block (Ding et al., 2019; paper ref [9]).

    A k×k convolution strengthened by parallel 1×k and k×1 "skeleton"
    branches; all three fold into a single k×k convolution by centre-padding
    the asymmetric kernels.  Included because the paper builds on ACNet's
    asymmetric-kernel insight for its NAS section (§3.4).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        k = int(kernel_size)
        if k % 2 == 0:
            raise ValueError("ACBlock requires an odd square kernel")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (k, k)
        self.w_square = Parameter(
            init_mod.glorot_uniform((k, k, in_channels, out_channels), rng)
        )
        self.w_hor = Parameter(
            init_mod.glorot_uniform((1, k, in_channels, out_channels), rng)
        )
        self.w_ver = Parameter(
            init_mod.glorot_uniform((k, 1, in_channels, out_channels), rng)
        )
        self.bias = Parameter(np.zeros(out_channels, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        out = conv2d(x, self.w_square, self.bias, padding="same")
        out = out + conv2d(x, self.w_hor, padding="same")
        out = out + conv2d(x, self.w_ver, padding="same")
        return out

    def collapse(self) -> Tuple[np.ndarray, np.ndarray]:
        """Fold the skeleton branches into the square kernel's centre
        row/column."""
        k = self.kernel_size[0]
        mid = (k - 1) // 2
        w = self.w_square.data.copy()
        w[mid, :, :, :] += self.w_hor.data[0]
        w[:, mid, :, :] += self.w_ver.data[:, 0]
        return w, self.bias.data.copy()

    def to_conv2d(self) -> Conv2d:
        conv = Conv2d(
            self.in_channels, self.out_channels, self.kernel_size, padding="same"
        )
        w, b = self.collapse()
        conv.weight.data[...] = w
        conv.bias.data[...] = b
        return conv


class RepVGGSESR(Module):
    """SESR topology with RepVGG blocks in place of linear blocks (§5.4).

    The 3×3 trunk blocks use the full RepVGG block (k×k + 1×1 + identity);
    the 5×5 ends, whose channel counts differ, use k×k + 1×1 only.
    """

    def __init__(
        self,
        scale: int = 2,
        f: int = 16,
        m: int = 11,
        activation: str = "prelu",
        input_residual: bool = True,
        feature_residual: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.scale = scale
        self.f = f
        self.m = m
        self.input_residual = input_residual
        self.feature_residual = feature_residual
        out_channels = scale * scale

        def make_act(channels: int) -> Module:
            return PReLU(channels) if activation == "prelu" else ReLU()

        self.first = RepVGGBlock(1, f, 5, identity=False, rng=rng)
        self.act_first = make_act(f)
        self.blocks: List[RepVGGBlock] = []
        self.acts: List[Module] = []
        for i in range(m):
            blk = RepVGGBlock(f, f, 3, identity=True, rng=rng)
            act = make_act(f)
            setattr(self, f"block{i}", blk)
            setattr(self, f"act{i}", act)
            self.blocks.append(blk)
            self.acts.append(act)
        self.last = RepVGGBlock(f, out_channels, 5, identity=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        feat = self.act_first(self.first(x))
        h = feat
        for blk, act in zip(self.blocks, self.acts):
            h = act(blk(h))
        if self.feature_residual:
            h = h + feat
        out = self.last(h)
        if self.input_residual:
            out = out + x
        for r in _upsample_steps(self.scale):
            out = depth_to_space(out, r)
        return out

    def collapse(self) -> "CollapsedVGGNet":
        return CollapsedVGGNet(
            first=self.first.to_conv2d(),
            act_first=_copy_act(self.act_first),
            convs=[b.to_conv2d() for b in self.blocks],
            acts=[_copy_act(a) for a in self.acts],
            last=self.last.to_conv2d(),
            scale=self.scale,
            input_residual=self.input_residual,
            feature_residual=self.feature_residual,
        )


class CollapsedVGGNet(Module):
    """Generic collapsed VGG-like SISR net (m+2 convs + long residuals).

    Shared inference container for collapsed RepVGG/ExpandNet variants; the
    SESR-specific exporter lives in :class:`repro.core.sesr.CollapsedSESR`.
    """

    def __init__(
        self,
        first: Conv2d,
        act_first: Module,
        convs: List[Conv2d],
        acts: List[Module],
        last: Conv2d,
        scale: int,
        input_residual: bool,
        feature_residual: bool,
    ) -> None:
        super().__init__()
        self.scale = scale
        self.input_residual = input_residual
        self.feature_residual = feature_residual
        self.first = first
        self.act_first = act_first
        self.convs = convs
        self.acts = acts
        for i, (c, a) in enumerate(zip(convs, acts)):
            setattr(self, f"conv{i}", c)
            setattr(self, f"act{i}", a)
        self.last = last
        self.eval()

    def forward(self, x: Tensor) -> Tensor:
        feat = self.act_first(self.first(x))
        h = feat
        for conv, act in zip(self.convs, self.acts):
            h = act(conv(h))
        if self.feature_residual:
            h = h + feat
        out = self.last(h)
        if self.input_residual:
            out = out + x
        for r in _upsample_steps(self.scale):
            out = depth_to_space(out, r)
        return out


def build_sesr_variant(
    block_type: str,
    scale: int = 2,
    f: int = 16,
    m: int = 11,
    expansion: int = 256,
    activation: str = "prelu",
    seed: int = 0,
    **kwargs,
) -> Module:
    """Build the SESR skeleton with one of the §5.4 block types.

    ``"sesr"``              linear blocks + short residuals (the paper's method)
    ``"expandnet"``         linear blocks, no short residuals
    ``"repvgg"``            k×k + 1×1 branch + identity blocks
    ``"vgg"``               plain convolutions (fully collapsed training)
    ``"plain_residual"``    plain convolutions + short residuals (§5.5 ablation)
    """
    if block_type not in BLOCK_TYPES:
        raise ValueError(f"block_type must be one of {BLOCK_TYPES}")
    if block_type == "repvgg":
        return RepVGGSESR(
            scale=scale, f=f, m=m, activation=activation, seed=seed, **kwargs
        )
    flags = {
        "sesr": dict(linear_blocks=True, short_residuals=True),
        "expandnet": dict(linear_blocks=True, short_residuals=False),
        "vgg": dict(linear_blocks=False, short_residuals=False),
        "plain_residual": dict(linear_blocks=False, short_residuals=True),
    }[block_type]
    return SESR(
        scale=scale,
        f=f,
        m=m,
        expansion=expansion,
        activation=activation,
        seed=seed,
        **flags,
        **kwargs,
    )
