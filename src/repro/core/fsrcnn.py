"""FSRCNN baseline (Dong et al., ECCV 2016) — the paper's main tiny-CNN rival.

Standard FSRCNN(d, s, m) on the Y channel:

    5×5 conv  1 → d   + PReLU        feature extraction
    1×1 conv  d → s   + PReLU        shrinking
    m × [3×3 conv s → s + PReLU]     mapping
    1×1 conv  s → d   + PReLU        expanding
    9×9 deconv d → 1, stride=scale   upsampling

Defaults d=56, s=12, m=4 match the configuration benchmarked in the paper
("FSRCNN (our setup)", Tables 1–2).  The paper's §5.5/§5.6 hardware variant
replaces PReLU with ReLU; pass ``activation="relu"``.
"""

from __future__ import annotations

import numpy as np

from ..nn import Conv2d, ConvTranspose2d, Module, PReLU, ReLU, Tensor


class FSRCNN(Module):
    """Trainable FSRCNN on NHWC Y-channel images."""

    def __init__(
        self,
        scale: int = 2,
        d: int = 56,
        s: int = 12,
        m: int = 4,
        activation: str = "prelu",
        seed: int = 0,
    ) -> None:
        super().__init__()
        if activation not in ("prelu", "relu"):
            raise ValueError(f"unknown activation {activation!r}")
        rng = np.random.default_rng(seed)
        self.scale = scale
        self.d, self.s, self.m = d, s, m
        self.activation = activation

        def act(channels: int) -> Module:
            return PReLU(channels) if activation == "prelu" else ReLU()

        self.feature = Conv2d(1, d, 5, padding="same", rng=rng)
        self.act_feature = act(d)
        self.shrink = Conv2d(d, s, 1, padding="same", rng=rng)
        self.act_shrink = act(s)
        self.mapping = []
        self.map_acts = []
        for i in range(m):
            conv = Conv2d(s, s, 3, padding="same", rng=rng)
            a = act(s)
            setattr(self, f"map{i}", conv)
            setattr(self, f"map_act{i}", a)
            self.mapping.append(conv)
            self.map_acts.append(a)
        self.expand = Conv2d(s, d, 1, padding="same", rng=rng)
        self.act_expand = act(d)
        self.deconv = ConvTranspose2d(d, 1, 9, stride=scale, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Upscale NHWC input ``(N, H, W, 1)`` to ``(N, sH, sW, 1)``."""
        h = self.act_feature(self.feature(x))
        h = self.act_shrink(self.shrink(h))
        for conv, a in zip(self.mapping, self.map_acts):
            h = a(conv(h))
        h = self.act_expand(self.expand(h))
        return self.deconv(h)

    def conv_num_parameters(self) -> int:
        """Conv/deconv weights only (the convention of the paper's tables)."""
        d, s, m = self.d, self.s, self.m
        return 25 * d + d * s + m * 9 * s * s + s * d + 81 * d
