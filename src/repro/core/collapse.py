"""Analytic collapse of linear blocks and residuals (paper Algorithms 1 & 2).

These functions operate on plain NumPy weights and are the *export* path
(training-time collapse uses the differentiable ``repro.nn.ops.compose_*``
helpers — see :mod:`repro.core.linear_block`).  Algorithm 1 is implemented
line-for-line from the paper's pseudocode: run the linear block's convolution
stack over a zero-padded identity ("delta") input and read the impulse
response back out as the collapsed weight.  It works for *any* sequence of
linear convolutions, not just the k×k → 1×1 pair, which is what makes it the
trustworthy reference that the fast algebraic path is tested against.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..nn import Tensor, conv2d, no_grad


def collapse_linear_block(
    weights: Sequence[np.ndarray],
    kernel_size: Tuple[int, int],
    in_channels: int,
    out_channels: int,
) -> np.ndarray:
    """Paper **Algorithm 1** — collapse a stack of linear convs into one weight.

    Parameters
    ----------
    weights:
        HWIO weights ``W_1..W_L`` of the linear block's convolutions, in
        forward order (e.g. ``[W_kxk, W_1x1]``).
    kernel_size:
        Effective kernel ``(kh, kw)`` of the collapsed convolution; must equal
        the sum of the per-layer kernel extents minus overlaps
        (``1 + Σ(k_i - 1)``).
    in_channels, out_channels:
        ``N_in`` and ``N_out`` of the collapsed convolution.

    Returns
    -------
    np.ndarray
        Collapsed weight ``W_C`` of shape ``(kh, kw, in_channels, out_channels)``.
    """
    kh, kw = kernel_size
    expected_kh = 1 + sum(w.shape[0] - 1 for w in weights)
    expected_kw = 1 + sum(w.shape[1] - 1 for w in weights)
    if (expected_kh, expected_kw) != (kh, kw):
        raise ValueError(
            f"declared kernel {kernel_size} does not match stacked receptive "
            f"field {(expected_kh, expected_kw)}"
        )
    if weights[0].shape[2] != in_channels:
        raise ValueError("first weight's C_in must equal in_channels")
    if weights[-1].shape[3] != out_channels:
        raise ValueError("last weight's C_out must equal out_channels")

    # Δ ← identity(N_in); expand to NHWC; zero-pad spatially by (k-1, k-1).
    delta = np.eye(in_channels, dtype=weights[0].dtype)
    delta = delta[:, None, None, :]  # (N_in, 1, 1, N_in)
    delta = np.pad(delta, ((0, 0), (kh - 1, kh - 1), (kw - 1, kw - 1), (0, 0)))

    with no_grad():
        x = Tensor(delta, dtype=delta.dtype)
        for w in weights:
            x = conv2d(x, Tensor(np.asarray(w)), padding="valid")
    response = x.data  # (N_in, kh, kw, N_out)
    if response.shape != (in_channels, kh, kw, out_channels):
        raise AssertionError(
            f"unexpected collapsed response shape {response.shape}"
        )
    # W_C ← transpose(reverse(x, [1, 2]), [1, 2, 0, 3])
    w_c = np.flip(response, axis=(1, 2)).transpose(1, 2, 0, 3)
    return np.ascontiguousarray(w_c)


def collapse_bias(
    weights: Sequence[np.ndarray], biases: Sequence[Optional[np.ndarray]]
) -> np.ndarray:
    """Fold per-layer biases through the linear stack.

    A constant per-channel offset entering a convolution emerges as
    ``Σ_{h,w,i} W[h,w,i,o] · b_in[i] + b_layer[o]`` — the spatial taps all see
    the same constant.  Applying this recursively yields the bias of the
    collapsed convolution.
    """
    acc = np.zeros(weights[0].shape[2], dtype=np.float64)
    for w, b in zip(weights, biases):
        acc = np.tensordot(acc, w.sum(axis=(0, 1)), axes=(0, 0))
        if b is not None:
            acc = acc + b
    return acc.astype(weights[0].dtype)


def collapse_residual(w_c: np.ndarray) -> np.ndarray:
    """Paper **Algorithm 2** — the residual add as a convolution weight.

    Returns ``W_R`` with ``W_R[idx, idx, i, i] = 1`` at the spatial centre
    (``idx = 1`` for 3×3, ``idx = 2`` for 5×5), so that
    ``conv(x, W_C + W_R) == conv(x, W_C) + x``.
    """
    kh, kw, cin, cout = w_c.shape
    if cin != cout:
        raise ValueError(
            f"residual collapse needs C_in == C_out, got {cin} vs {cout}"
        )
    if kh % 2 == 0 or kw % 2 == 0:
        raise ValueError("residual collapse requires odd kernel sizes")
    return identity_conv_rect(kh, kw, cin)


def identity_conv_rect(kh: int, kw: int, channels: int) -> np.ndarray:
    """Identity kernel for (possibly non-square) odd kernel sizes."""
    if kh % 2 == 0 or kw % 2 == 0:
        raise ValueError("identity kernels require odd kernel sizes")
    w = np.zeros((kh, kw, channels, channels), dtype=np.float32)
    w[(kh - 1) // 2, (kw - 1) // 2, np.arange(channels), np.arange(channels)] = 1.0
    return w


def compose_pair(w_kxk: np.ndarray, w_1x1: np.ndarray) -> np.ndarray:
    """Fast algebraic collapse of the k×k → 1×1 pair (NumPy, export path).

    Equivalent to :func:`collapse_linear_block` for the two-layer case; kept
    as an independent implementation so tests can cross-validate the two.
    """
    kh, kw, cin, p = w_kxk.shape
    return np.tensordot(w_kxk, w_1x1[0, 0], axes=([3], [0]))


def expand_1x1_to_kxk(w_1x1: np.ndarray, kh: int, kw: int) -> np.ndarray:
    """Zero-pad a 1×1 weight to k×k with the tap at the spatial centre.

    Needed to fold RepVGG's parallel 1×1 branch into the main k×k weight.
    """
    if w_1x1.shape[0] != 1 or w_1x1.shape[1] != 1:
        raise ValueError(f"expected 1×1 weight, got {w_1x1.shape}")
    if kh % 2 == 0 or kw % 2 == 0:
        raise ValueError("centre-padding requires odd target kernel")
    out = np.zeros((kh, kw) + w_1x1.shape[2:], dtype=w_1x1.dtype)
    out[(kh - 1) // 2, (kw - 1) // 2] = w_1x1[0, 0]
    return out


def fold_batchnorm(
    w: np.ndarray,
    b: Optional[np.ndarray],
    gamma: np.ndarray,
    beta: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    eps: float = 1e-5,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold an (inference-mode) BatchNorm into the preceding convolution.

    ``BN(conv(x, w) + b) == conv(x, w') + b'`` with

        w' = w · γ/√(σ²+ε)   (per output channel)
        b' = (b − μ) · γ/√(σ²+ε) + β

    Used to collapse the BN-equipped RepVGG block (its published form) the
    same way Arm-style deployment pipelines do before reparameterization.
    """
    scale = gamma / np.sqrt(var + eps)
    w_f = (w * scale[None, None, None, :]).astype(w.dtype)
    b0 = np.zeros_like(mean) if b is None else b
    b_f = ((b0 - mean) * scale + beta).astype(w.dtype)
    return w_f, b_f


def max_abs_divergence(
    expanded_fn, collapsed_fn, x: np.ndarray
) -> float:
    """Max |expanded(x) − collapsed(x)| — used by collapse-equivalence tests."""
    with no_grad():
        a = expanded_fn(Tensor(x)).data
        b = collapsed_fn(Tensor(x)).data
    return float(np.abs(a - b).max())
