"""CARN-M-style cascading residual network (Ahn et al., ECCV 2018).

CARN-M is the strongest "large regime" competitor in the paper's Tables 1–2
(412K params, 91.2G MACs ×2) and the reference point for the paper's
"3.75× fewer MACs" SESR-XL comparison.  This is a faithful-at-architecture-
level implementation of its mobile variant: cascading connections at both
block and group level, with **efficient residual blocks** built from grouped
3×3 convolutions and a 1×1 pointwise mix — the technique the paper's related
work highlights ("CARN ... reduce[s] the compute complexity by combining
lightweight residual blocks with variants of group convolution").

The default configuration reproduces the published parameter count within a
few percent (the paper's 412K); ``width``/``blocks`` shrink it for
CPU-trainable experiments.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..metrics.complexity import LayerSpec
from ..nn import Conv2d, Module, ReLU, Tensor, concatenate, depth_to_space


class EfficientResidualBlock(Module):
    """CARN-M's residual-E block: grouped 3×3 → grouped 3×3 → 1×1 mix."""

    def __init__(self, channels: int, groups: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.conv1 = Conv2d(channels, channels, 3, groups=groups, rng=rng)
        self.act1 = ReLU()
        self.conv2 = Conv2d(channels, channels, 3, groups=groups, rng=rng)
        self.pointwise = Conv2d(channels, channels, 1, rng=rng)
        self.act2 = ReLU()

    def forward(self, x: Tensor) -> Tensor:
        h = self.act1(self.conv1(x))
        h = self.pointwise(self.conv2(h))
        return self.act2(h + x)

    def specs(self, channels: int, groups: int) -> List[LayerSpec]:
        # Grouped convs: per-output-pixel MACs divide by the group count —
        # encode via reduced cin.
        c = channels
        return [
            LayerSpec("conv", (3, 3), c // groups, c, 1.0, "eres_g3x3_a"),
            LayerSpec("act", (1, 1), c, c, 1.0, "relu"),
            LayerSpec("conv", (3, 3), c // groups, c, 1.0, "eres_g3x3_b"),
            LayerSpec("conv", (1, 1), c, c, 1.0, "eres_1x1"),
            LayerSpec("add", (1, 1), c, c, 1.0, "residual"),
            LayerSpec("act", (1, 1), c, c, 1.0, "relu"),
        ]


class CascadingBlock(Module):
    """A cascade of residual-E blocks with 1×1 fusion after each stage."""

    def __init__(self, channels: int, groups: int, depth: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.depth = depth
        self.blocks: List[EfficientResidualBlock] = []
        self.fusions: List[Conv2d] = []
        for i in range(depth):
            blk = EfficientResidualBlock(channels, groups, rng)
            fuse = Conv2d(channels * (i + 2), channels, 1, rng=rng)
            setattr(self, f"block{i}", blk)
            setattr(self, f"fuse{i}", fuse)
            self.blocks.append(blk)
            self.fusions.append(fuse)

    def forward(self, x: Tensor) -> Tensor:
        cascade = [x]
        h = x
        for blk, fuse in zip(self.blocks, self.fusions):
            cascade.append(blk(h))
            h = fuse(concatenate(cascade, axis=3))
        return h


class CARN_M(Module):
    """Mobile CARN: cascading blocks + sub-pixel upsampling head.

    Defaults (``width=64, groups=4, blocks=3, depth=3``) land within ~20%
    of the published 412K-parameter model of the paper's tables (the
    official implementation's recursive weight-sharing details differ);
    use small ``width``/``blocks`` for trainable-on-CPU experiments.
    """

    def __init__(
        self,
        scale: int = 2,
        width: int = 64,
        groups: int = 4,
        blocks: int = 3,
        depth: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if scale not in (2, 4):
            raise ValueError("CARN_M supports scale 2 or 4")
        rng = np.random.default_rng(seed)
        self.scale = scale
        self.width, self.groups = width, groups
        self.n_blocks, self.depth = blocks, depth
        self.entry = Conv2d(1, width, 3, rng=rng)
        self.cascades: List[CascadingBlock] = []
        self.fusions: List[Conv2d] = []
        for i in range(blocks):
            blk = CascadingBlock(width, groups, depth, rng)
            fuse = Conv2d(width * (i + 2), width, 1, rng=rng)
            setattr(self, f"cascade{i}", blk)
            setattr(self, f"cfuse{i}", fuse)
            self.cascades.append(blk)
            self.fusions.append(fuse)
        # Sub-pixel upsampling head (one conv + d2s per ×2 stage).
        self.up_convs: List[Conv2d] = []
        for i in range(scale // 2):
            conv = Conv2d(width, width * 4, 3, rng=rng)
            setattr(self, f"up{i}", conv)
            self.up_convs.append(conv)
        self.up_act = ReLU()
        self.exit = Conv2d(width, 1, 3, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        h = self.entry(x)
        cascade = [h]
        for blk, fuse in zip(self.cascades, self.fusions):
            cascade.append(blk(h))
            h = fuse(concatenate(cascade, axis=3))
        for conv in self.up_convs:
            h = depth_to_space(self.up_act(conv(h)), 2)
        return self.exit(h)

    def specs(self) -> List[LayerSpec]:
        """Layer specs for parameter/MAC accounting and the NPU estimator."""
        w, g = self.width, self.groups
        specs: List[LayerSpec] = [LayerSpec("conv", (3, 3), 1, w, 1.0, "entry")]
        eres = EfficientResidualBlock(w, g, np.random.default_rng(0))
        for i in range(self.n_blocks):
            for j in range(self.depth):
                specs += eres.specs(w, g)
                specs.append(
                    LayerSpec("conv", (1, 1), w * (j + 2), w, 1.0,
                              f"fuse_{i}_{j}")
                )
            specs.append(
                LayerSpec("conv", (1, 1), w * (i + 2), w, 1.0, f"cfuse_{i}")
            )
        res = 1.0
        for i in range(self.scale // 2):
            specs.append(LayerSpec("conv", (3, 3), w, 4 * w, res, f"up{i}"))
            specs.append(LayerSpec("act", (1, 1), 4 * w, 4 * w, res, "relu"))
            res *= 2
            specs.append(
                LayerSpec("depth_to_space", (1, 1), 4 * w, w, res, f"d2s{i}")
            )
        specs.append(LayerSpec("conv", (3, 3), w, 1, res, "exit"))
        return specs

    def conv_num_parameters(self) -> int:
        """Conv weights only (the tables' convention)."""
        from ..metrics.complexity import count_params

        return count_params(self.specs())
