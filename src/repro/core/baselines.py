"""Classic SISR baselines beyond FSRCNN.

The paper's tables quote VDSR; SRCNN and ESPCN are the two lineage
ancestors every efficient-SR paper (including this one — depth-to-space
comes from ESPCN's sub-pixel convolution) measures against.  All three are
fully trainable on the ``repro.nn`` substrate and expose layer specs for
the MAC counter and the NPU estimator.

SRCNN and VDSR follow the pre-upsampling paradigm: the LR input is
bicubic-upscaled first and the CNN refines it at HR resolution — which is
exactly why their MAC counts are 1–2 orders of magnitude above
post-upsampling designs like ESPCN/FSRCNN/SESR (see VDSR's 612.6G in
Table 1).  The bicubic pre-upsampling is input preprocessing (no gradients
flow through it).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..datasets.degradation import bicubic_upscale
from ..metrics.complexity import LayerSpec
from ..nn import Conv2d, Module, ReLU, Tensor, depth_to_space


def _bicubic_batch(x: Tensor, scale: int) -> Tensor:
    """Bicubic-upscale an NHWC batch (constant preprocessing, no grad)."""
    data = x.data
    n, h, w, c = data.shape
    out = np.empty((n, h * scale, w * scale, c), dtype=np.float32)
    for i in range(n):
        for ch in range(c):
            out[i, :, :, ch] = bicubic_upscale(data[i, :, :, ch], scale)
    return Tensor(out)


class SRCNN(Module):
    """SRCNN (Dong et al., 2014): 9-5-5 convolutions on bicubic-upscaled input."""

    def __init__(
        self,
        scale: int = 2,
        f1: int = 64,
        f2: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.scale = scale
        self.f1, self.f2 = f1, f2
        self.conv1 = Conv2d(1, f1, 9, padding="same", rng=rng)
        self.act1 = ReLU()
        self.conv2 = Conv2d(f1, f2, 5, padding="same", rng=rng)
        self.act2 = ReLU()
        self.conv3 = Conv2d(f2, 1, 5, padding="same", rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        up = _bicubic_batch(x, self.scale)
        h = self.act1(self.conv1(up))
        h = self.act2(self.conv2(h))
        return self.conv3(h) + up  # global residual speeds convergence

    def specs(self) -> List[LayerSpec]:
        rs = float(self.scale)
        return [
            LayerSpec("conv", (9, 9), 1, self.f1, rs, "conv1_9x9"),
            LayerSpec("act", (1, 1), self.f1, self.f1, rs, "relu1"),
            LayerSpec("conv", (5, 5), self.f1, self.f2, rs, "conv2_5x5"),
            LayerSpec("act", (1, 1), self.f2, self.f2, rs, "relu2"),
            LayerSpec("conv", (5, 5), self.f2, 1, rs, "conv3_5x5"),
            LayerSpec("add", (1, 1), 1, 1, rs, "global_residual"),
        ]


class ESPCN(Module):
    """ESPCN (Shi et al., 2016): the original sub-pixel convolution network.

    Its depth-to-space head is the direct ancestor of SESR's upsampling
    (paper §3.1 cites it via [28]).
    """

    def __init__(
        self,
        scale: int = 2,
        f1: int = 64,
        f2: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.scale = scale
        self.f1, self.f2 = f1, f2
        self.conv1 = Conv2d(1, f1, 5, padding="same", rng=rng)
        self.act1 = ReLU()
        self.conv2 = Conv2d(f1, f2, 3, padding="same", rng=rng)
        self.act2 = ReLU()
        self.conv3 = Conv2d(f2, scale * scale, 3, padding="same", rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        h = self.act1(self.conv1(x))
        h = self.act2(self.conv2(h))
        out = self.conv3(h) + x  # broadcast input residual, as in SESR
        return depth_to_space(out, self.scale)

    def specs(self) -> List[LayerSpec]:
        s2 = self.scale * self.scale
        return [
            LayerSpec("conv", (5, 5), 1, self.f1, 1.0, "conv1_5x5"),
            LayerSpec("act", (1, 1), self.f1, self.f1, 1.0, "relu1"),
            LayerSpec("conv", (3, 3), self.f1, self.f2, 1.0, "conv2_3x3"),
            LayerSpec("act", (1, 1), self.f2, self.f2, 1.0, "relu2"),
            LayerSpec("conv", (3, 3), self.f2, s2, 1.0, "conv3_3x3"),
            LayerSpec("add", (1, 1), 1, s2, 1.0, "input_residual"),
            LayerSpec("depth_to_space", (1, 1), s2, 1, float(self.scale), "d2s"),
        ]


class VDSR(Module):
    """VDSR (Kim et al., 2016): 20 3×3 convs at HR + global residual.

    The paper's headline comparison point: SESR-M11 matches its quality
    with 97× (×2) to 331× (×4) fewer MACs.  The default configuration is
    the 665K-parameter/612.6G-MAC network of Tables 1–2; ``depth``/``width``
    shrink it for CPU-trainable experiments.
    """

    def __init__(
        self,
        scale: int = 2,
        depth: int = 20,
        width: int = 64,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if depth < 3:
            raise ValueError("VDSR needs at least 3 layers")
        rng = np.random.default_rng(seed)
        self.scale = scale
        self.depth, self.width = depth, width
        self.conv_in = Conv2d(1, width, 3, padding="same", rng=rng)
        self.act_in = ReLU()
        self.body: List[Conv2d] = []
        self.body_acts: List[ReLU] = []
        for i in range(depth - 2):
            conv = Conv2d(width, width, 3, padding="same", rng=rng)
            act = ReLU()
            setattr(self, f"conv{i}", conv)
            setattr(self, f"act{i}", act)
            self.body.append(conv)
            self.body_acts.append(act)
        self.conv_out = Conv2d(width, 1, 3, padding="same", rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        up = _bicubic_batch(x, self.scale)
        h = self.act_in(self.conv_in(up))
        for conv, act in zip(self.body, self.body_acts):
            h = act(conv(h))
        return self.conv_out(h) + up  # the VDSR global residual

    def specs(self) -> List[LayerSpec]:
        from ..metrics.complexity import vdsr_specs

        return vdsr_specs(self.scale, self.depth, self.width)

    def conv_num_parameters(self) -> int:
        w, d = self.width, self.depth
        return 9 * w + (d - 2) * 9 * w * w + 9 * w
