"""``repro.obs`` — end-to-end observability: traces, profiling, exposition.

Three dependency-free layers, designed to make every later performance PR
measurable (ROADMAP north star: a production-scale serving system):

:mod:`~repro.obs.trace`
    Tracing spans with thread-local context propagation — threaded through
    the serving engine (request → tile fan-out → stitch, trace id surfaced
    as an ``X-Trace-Id`` response header) and the trainer (fit → epoch →
    step → forward/backward/optim).  Finished spans land in a bounded
    ring-buffer exporter and, optionally, a JSONL file.

:mod:`~repro.obs.profiler`
    Opt-in per-op profiler for the :mod:`repro.nn` substrate: wall-clock,
    call count, and analytic MACs per op (``conv2d``, ``im2col``,
    ``matmul``), so the paper's expanded-vs-collapsed training cost
    (§3.3, Fig. 3) is observable from the real implementation.  Zero
    overhead when disabled (a module-level flag, no per-call indirection).
    Front-end: ``python -m repro.cli profile``.

:mod:`~repro.obs.prom`
    Prometheus text-format exposition over the :mod:`repro.serve`
    telemetry registry plus trace/profiler aggregates — what
    ``GET /metrics`` serves (the JSON ``/stats`` endpoint is unchanged).

See ``docs/observability.md`` for the span model, the profiler's overhead
budget, and scraping examples.
"""

from .profiler import OpStats, Profiler, profile
from .prom import render_prometheus, sanitize_metric_name
from .trace import (
    JsonlExporter,
    RingBufferExporter,
    Span,
    SpanContext,
    Tracer,
    attach,
    current_span,
    get_tracer,
    new_trace_id,
    set_tracer,
    span,
    span_tree,
)

__all__ = [
    "OpStats",
    "Profiler",
    "profile",
    "render_prometheus",
    "sanitize_metric_name",
    "JsonlExporter",
    "RingBufferExporter",
    "Span",
    "SpanContext",
    "Tracer",
    "attach",
    "current_span",
    "get_tracer",
    "new_trace_id",
    "set_tracer",
    "span",
    "span_tree",
]
