"""Prometheus text-format exposition (version 0.0.4), dependency-free.

Renders the :class:`repro.serve.Telemetry` snapshot — plus live
:class:`~repro.obs.trace.Tracer` span aggregates and, when one is active,
:class:`~repro.obs.profiler.Profiler` per-op totals — as the plain-text
format every Prometheus-compatible scraper understands::

    # TYPE repro_engine_requests_total counter
    repro_engine_requests_total 42
    # TYPE repro_engine_request_latency_ms summary
    repro_engine_request_latency_ms{quantile="0.5"} 31.7
    repro_engine_request_latency_ms_sum 1234.5
    repro_engine_request_latency_ms_count 42

Conventions
-----------
* Metric names are the dotted telemetry names with dots mapped to
  underscores under a ``repro_`` prefix; counters gain a ``_total``
  suffix when they do not already carry one.
* Histograms are exposed as Prometheus *summaries* (the telemetry layer
  keeps exact reservoir percentiles, not fixed buckets).
* String-valued state gauges become one-hot labelled gauges
  (``...{state="open"} 1``), the standard enum-exposition idiom.
* Span aggregates become three labelled counters keyed by span name:
  ``repro_trace_spans_total``, ``repro_trace_span_ms_total``,
  ``repro_trace_span_errors_total``.

The JSON ``/stats`` endpoint is unaffected — this module only *adds* a
scrapeable view over the same registry.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional

__all__ = ["render_prometheus", "sanitize_metric_name"]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

SUMMARY_QUANTILES = ((50, "0.5"), (95, "0.95"), (99, "0.99"))


def sanitize_metric_name(name: str, prefix: str = "repro") -> str:
    """Map a dotted telemetry name to a legal Prometheus metric name."""
    flat = _BAD_CHARS.sub("_", name.replace(".", "_"))
    metric = f"{prefix}_{flat}" if prefix else flat
    if not _NAME_OK.match(metric):
        metric = "_" + metric
    return metric


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _fmt(value: float) -> str:
    """Render a sample value; Prometheus wants +Inf/-Inf/NaN spelled out."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _line(metric: str, labels: Optional[Dict[str, str]], value: float) -> str:
    if labels:
        body = ",".join(
            f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
        )
        return f"{metric}{{{body}}} {_fmt(value)}"
    return f"{metric} {_fmt(value)}"


class _Writer:
    """Accumulates exposition lines, emitting each # TYPE header once."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._typed: set = set()

    def header(self, metric: str, mtype: str, help_text: str = "") -> None:
        if metric in self._typed:
            return
        self._typed.add(metric)
        if help_text:
            self.lines.append(f"# HELP {metric} {help_text}")
        self.lines.append(f"# TYPE {metric} {mtype}")

    def sample(
        self,
        metric: str,
        value: float,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        self.lines.append(_line(metric, labels, value))


def render_prometheus(
    snapshot: Dict[str, Dict],
    tracer=None,
    profiler=None,
    prefix: str = "repro",
) -> str:
    """Render a telemetry snapshot (+ optional trace/profiler aggregates).

    Parameters
    ----------
    snapshot:
        A :meth:`repro.serve.Telemetry.snapshot` dict — the
        ``counters`` / ``gauges`` / ``histograms`` / ``states`` sections
        are rendered; any extra keys (``cache``, ``config``, ...) are the
        JSON endpoint's business and are ignored here.
    tracer:
        A :class:`repro.obs.trace.Tracer`; its per-span-name aggregates
        are exposed as labelled counters.
    profiler:
        A :class:`repro.obs.profiler.Profiler`; per-op call/ms/MAC totals
        are exposed as labelled counters (present only while profiling).

    Returns the exposition text, newline-terminated.
    """
    w = _Writer()

    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = sanitize_metric_name(name, prefix)
        if not metric.endswith("_total"):
            metric += "_total"
        w.header(metric, "counter")
        w.sample(metric, value)

    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = sanitize_metric_name(name, prefix)
        w.header(metric, "gauge")
        w.sample(metric, value)

    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        metric = sanitize_metric_name(name, prefix)
        w.header(metric, "summary")
        for pct, q in SUMMARY_QUANTILES:
            key = f"p{pct}"
            if key in summary:
                w.sample(metric, summary[key], {"quantile": q})
        count = summary.get("count", 0)
        w.sample(f"{metric}_sum", summary.get("mean", 0.0) * count)
        w.sample(f"{metric}_count", count)

    for name, state in sorted(snapshot.get("states", {}).items()):
        metric = sanitize_metric_name(name, prefix)
        w.header(metric, "gauge", "one-hot encoding of a string state")
        w.sample(metric, 1, {"state": state or "unknown"})

    if tracer is not None:
        spans_m = f"{prefix}_trace_spans_total"
        ms_m = f"{prefix}_trace_span_ms_total"
        err_m = f"{prefix}_trace_span_errors_total"
        aggregates = tracer.aggregates()
        if aggregates:
            w.header(spans_m, "counter", "finished spans by name")
            w.header(ms_m, "counter", "total span duration by name")
            w.header(err_m, "counter", "spans finished in error by name")
        for name, agg in aggregates.items():
            labels = {"name": name}
            w.sample(spans_m, agg["count"], labels)
            w.sample(ms_m, agg["total_ms"], labels)
            w.sample(err_m, agg["errors"], labels)

    if profiler is not None:
        calls_m = f"{prefix}_profile_op_calls_total"
        opms_m = f"{prefix}_profile_op_ms_total"
        macs_m = f"{prefix}_profile_op_macs_total"
        summary = profiler.summary()
        if summary:
            w.header(calls_m, "counter", "instrumented op invocations")
            w.header(opms_m, "counter", "wall-clock per instrumented op")
            w.header(macs_m, "counter", "analytic MACs per instrumented op")
        for op, st in summary.items():
            labels = {"op": op}
            w.sample(calls_m, st["calls"], labels)
            w.sample(opms_m, st["total_ms"], labels)
            w.sample(macs_m, st["macs"], labels)

    return "\n".join(w.lines) + "\n" if w.lines else "\n"
