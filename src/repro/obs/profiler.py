"""Per-op profiler for the ``repro.nn`` substrate.

Answers "where do the MACs and the milliseconds go?" from the real
substrate rather than from arithmetic alone: the instrumented primitives
in :mod:`repro.nn` (``conv2d`` and its im2col phase, ``Tensor.__matmul__``)
report wall-clock, call count, and *analytic* MACs into the active
:class:`Profiler`, so the expanded-vs-collapsed training cost of the paper
(§3.3, Fig. 3: 41.77B → 1.84B MACs per SESR-M5 forward) is observable by
running the actual model.

Zero overhead when disabled
---------------------------
Profiling is opt-in through :func:`profile`, and the instrumented ops are
guarded by the module-level :data:`ACTIVE` attribute — a single global
load and ``None`` check per op call, no wrapper functions and no per-call
indirection.  With no profiler installed the hot paths pay nothing that
a throughput benchmark can measure.

Op naming convention
--------------------
``conv2d``
    One record per convolution call: wall-clock of the whole call and the
    analytic MAC count ``N·Ho·Wo·kh·kw·Cin·Cout``.
``im2col``
    The patch-materialisation phase *inside* ``conv2d`` (pad + strided
    view + reshape-copy).  Wall-clock only — it moves bytes, it multiplies
    nothing — and it is contained in ``conv2d``'s wall-clock, so do not
    sum the two.
``matmul``
    Standalone :class:`~repro.nn.Tensor` matmuls (the collapsed-training
    weight composition, attention-style heads, ...).  The GEMM inside
    ``conv2d`` is *not* double-reported here; its MACs belong to
    ``conv2d``, which makes :meth:`Profiler.total_macs` additive.
``gemm.blas`` / ``gemm.blocked`` / ``gemm.direct``
    The GEMM phase *inside* a compiled conv step, tagged with the kernel
    that ran it (see :mod:`repro.kernels`).  Wall-clock only, contained
    in ``conv2d`` like ``im2col``.  The **call counts** are the kernel
    dispatch ledger: a coalesced exact batch of N samples records N
    ``gemm.blas`` calls per conv (per-sample sgemm) but exactly one
    ``gemm.blocked`` call per conv (the stacked GEMM) — which is how
    the single-stacked-GEMM claim is asserted, not just believed.
``conv2d_bwd``
    The convolution backward pass (weight + input gradients), recorded
    only when a profiler is active while autograd runs.

The profiler is process-wide (one active profiler at a time) and
thread-safe: the serving worker pool and HTTP handler threads may record
concurrently.

The compiled executor (:mod:`repro.compile`) reports into the same
records: its planned-buffer convolutions emit ``conv2d``/``im2col``
entries with the identical analytic MAC convention, so ``repro profile``
and the cross-consistency tests see one accounting regardless of which
engine ran the model.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

__all__ = ["OpStats", "Profiler", "profile", "ACTIVE"]

#: The installed profiler, or ``None`` when profiling is off.  Instrumented
#: ops read this module attribute directly (``profiler.ACTIVE``); it is the
#: whole fast-path guard.
ACTIVE: Optional["Profiler"] = None

_install_lock = threading.Lock()


@dataclass
class OpStats:
    """Running totals for one op name."""

    calls: int = 0
    total_ms: float = 0.0
    macs: int = 0

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.calls if self.calls else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "calls": self.calls,
            "total_ms": self.total_ms,
            "mean_ms": self.mean_ms,
            "macs": self.macs,
        }


class Profiler:
    """Accumulates per-op wall-clock, call counts, and analytic MACs."""

    #: Phase ops whose wall-clock is already contained in a parent op;
    #: excluded from additive totals.
    NESTED = frozenset(
        {"im2col", "gemm.blas", "gemm.blocked", "gemm.direct"}
    )

    def __init__(self) -> None:
        self._stats: Dict[str, OpStats] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def record(self, op: str, seconds: float, macs: int = 0) -> None:
        """Add one op invocation (``seconds`` of wall-clock, ``macs`` MACs)."""
        with self._lock:
            st = self._stats.get(op)
            if st is None:
                st = self._stats[op] = OpStats()
            st.calls += 1
            st.total_ms += seconds * 1e3
            st.macs += macs

    def reset(self) -> None:
        with self._lock:
            self._stats = {}

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, OpStats]:
        """Copy of the per-op totals (safe to read while recording)."""
        with self._lock:
            return {
                name: OpStats(st.calls, st.total_ms, st.macs)
                for name, st in self._stats.items()
            }

    def total_macs(self) -> int:
        """Additive MAC total (``conv2d`` + ``matmul``; phases carry 0)."""
        return sum(st.macs for st in self.stats().values())

    def total_ms(self) -> float:
        """Wall-clock total over non-nested ops (phases are contained)."""
        return sum(
            st.total_ms
            for name, st in self.stats().items()
            if name not in self.NESTED
        )

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Plain JSON-serialisable per-op summary, sorted by MACs then ms."""
        snap = self.stats()
        order = sorted(
            snap, key=lambda n: (-snap[n].macs, -snap[n].total_ms, n)
        )
        return {name: snap[name].to_dict() for name in order}

    # ------------------------------------------------------------------ #
    def write_jsonl(self, path: str, **meta) -> int:
        """Append one JSON line per op to ``path``; returns lines written.

        ``meta`` keys (model, mode, batch, ...) are merged into every line
        so a file can hold several profiling runs and stay self-describing.
        """
        lines: List[str] = []
        for name, st in self.summary().items():
            row = {"op": name, **st, **meta}
            lines.append(json.dumps(row, sort_keys=True))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n" if lines else "")
        return len(lines)


@contextmanager
def profile(profiler: Optional[Profiler] = None) -> Iterator[Profiler]:
    """Install a profiler for the duration of the block.

    Process-wide: every thread's instrumented ops record into it (which is
    how the serving worker pool gets profiled from the request thread).
    Only one profiler can be active at a time — nesting raises, because
    silently splitting records between two profilers would make both wrong.
    """
    global ACTIVE
    prof = profiler if profiler is not None else Profiler()
    with _install_lock:
        if ACTIVE is not None:
            raise RuntimeError("a profiler is already active")
        ACTIVE = prof
    try:
        yield prof
    finally:
        with _install_lock:
            ACTIVE = None
