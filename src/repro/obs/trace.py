"""Dependency-free tracing spans with thread-local context propagation.

The serving and training stacks need to answer "where did this request's
time go?" without pulling in an OpenTelemetry SDK.  This module provides
the minimal substrate real SR deployments assume:

* :func:`span` — a context manager that opens a named span under the
  current thread's active span, times it with a monotonic clock
  (``time.perf_counter``), and exports it when it closes.
* thread-local context — spans opened on the same thread nest
  automatically; :func:`attach` carries a :class:`SpanContext` across a
  thread boundary (the engine's tile workers run under the request's
  context this way).
* exporters — every :class:`Tracer` keeps a bounded
  :class:`RingBufferExporter` (what tests and ``/metrics`` aggregates
  read); a :class:`JsonlExporter` can additionally stream finished spans
  to a file for offline analysis.

Span identity follows the W3C-ish convention: a 16-hex ``trace_id``
shared by every span of one logical operation (one HTTP request, one
training step) and an 8-hex ``span_id`` per span, with ``parent_id``
linking the tree.  Spans are exported on *finish*, so children appear
before their parents in export order; :func:`span_tree` rebuilds the
hierarchy.

Everything is thread-safe and allocation-light: opening and closing a
span costs two ``perf_counter`` calls, one ``os.urandom``, and one
locked ring-buffer append — negligible next to a single conv2d tile.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "RingBufferExporter",
    "JsonlExporter",
    "span",
    "current_span",
    "attach",
    "get_tracer",
    "set_tracer",
    "new_trace_id",
    "span_tree",
]

_context = threading.local()


def new_trace_id() -> str:
    """Fresh 16-hex trace identifier."""
    return os.urandom(8).hex()


def _new_span_id() -> str:
    return os.urandom(4).hex()


@dataclass(frozen=True)
class SpanContext:
    """The portable identity of a span: enough to parent children to it."""

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One finished (or in-flight) timed operation.

    ``start_ms`` is a monotonic-clock offset (``time.perf_counter``), so
    differences between spans of one process are meaningful but absolute
    values are not; ``wall_time`` is the epoch timestamp at open, kept for
    JSONL readers that want to line spans up with external logs.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    start_ms: float = 0.0
    duration_ms: float = 0.0
    wall_time: float = 0.0
    status: str = "ok"
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def to_dict(self) -> Dict[str, object]:
        """Plain JSON-serialisable form (what the JSONL exporter writes)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ms": self.start_ms,
            "duration_ms": self.duration_ms,
            "wall_time": self.wall_time,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output (the wire form the
        dataplane's process workers ship finished spans back in)."""
        return cls(
            name=str(data["name"]),
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_id=(None if data.get("parent_id") is None
                       else str(data["parent_id"])),
            start_ms=float(data.get("start_ms", 0.0)),
            duration_ms=float(data.get("duration_ms", 0.0)),
            wall_time=float(data.get("wall_time", 0.0)),
            status=str(data.get("status", "ok")),
            attrs=dict(data.get("attrs", {})),  # type: ignore[arg-type]
        )


class RingBufferExporter:
    """Keeps the last ``capacity`` finished spans in memory.

    This is the exporter tests assert against and the one ``/metrics``
    reads for live span aggregates; it is always installed on a
    :class:`Tracer`.  Old spans fall off the end silently — it is a
    flight recorder, not an archive.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._spans: List[Span] = []
        self._next = 0
        self._lock = threading.Lock()

    def export(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) < self.capacity:
                self._spans.append(span)
            else:
                self._spans[self._next % self.capacity] = span
            self._next += 1

    def spans(self) -> List[Span]:
        """All retained spans, oldest first."""
        with self._lock:
            if len(self._spans) < self.capacity:
                return list(self._spans)
            cut = self._next % self.capacity
            return self._spans[cut:] + self._spans[:cut]

    def trace(self, trace_id: str) -> List[Span]:
        """Retained spans belonging to one trace, oldest first."""
        return [s for s in self.spans() if s.trace_id == trace_id]

    def clear(self) -> None:
        with self._lock:
            self._spans = []
            self._next = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class JsonlExporter:
    """Appends one JSON object per finished span to a file.

    The file handle opens lazily on the first span and is line-buffered;
    :meth:`close` (or use as a context manager) flushes it.  Writing is
    serialised by a lock, so concurrent engine workers produce valid,
    uninterleaved lines.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = None
        self._lock = threading.Lock()

    def export(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True)
        with self._lock:
            if self._fh is None:
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _stack() -> List[Span]:
    stack = getattr(_context, "stack", None)
    if stack is None:
        stack = _context.stack = []
    return stack


def current_span() -> Optional[Span]:
    """The innermost span open on this thread (or ``None``)."""
    stack = _stack()
    return stack[-1] if stack else None


def _current_parent() -> Optional[SpanContext]:
    """Active parent context: innermost span, else an attached context."""
    sp = current_span()
    if sp is not None:
        return sp.context
    return getattr(_context, "attached", None)


@contextmanager
def attach(ctx: Optional[SpanContext]) -> Iterator[None]:
    """Adopt ``ctx`` as this thread's parent context.

    Used to carry a trace across a thread boundary: the submitting side
    captures ``span.context``, the worker wraps its work in
    ``with attach(ctx): ...`` and any spans it opens become children of
    the original span.  ``attach(None)`` is a no-op, which lets callers
    pass contexts through unconditionally.
    """
    if ctx is None:
        yield
        return
    prev = getattr(_context, "attached", None)
    _context.attached = ctx
    try:
        yield
    finally:
        _context.attached = prev


class Tracer:
    """Factory for spans plus the exporters that receive them.

    Every tracer owns a :class:`RingBufferExporter` (``tracer.ring``) and
    running per-name aggregates (count / total duration / errors) that
    the Prometheus endpoint renders without scanning the ring.
    """

    def __init__(
        self,
        exporters: Optional[List] = None,
        ring_capacity: int = 4096,
    ) -> None:
        self.ring = RingBufferExporter(ring_capacity)
        self._exporters = [self.ring] + list(exporters or [])
        self._agg: Dict[str, List[float]] = {}  # name -> [count, ms, errors]
        self._agg_lock = threading.Lock()

    def add_exporter(self, exporter) -> None:
        self._exporters.append(exporter)

    # ------------------------------------------------------------------ #
    @contextmanager
    def span(
        self,
        name: str,
        parent: Optional[Union[Span, SpanContext]] = None,
        trace_id: Optional[str] = None,
        **attrs,
    ) -> Iterator[Span]:
        """Open a span; yields the live :class:`Span` so callers can set
        attributes (``sp.attrs["cached"] = True``) while it runs.

        ``parent`` overrides the thread-local context (pass a
        :class:`SpanContext` captured on another thread); ``trace_id``
        forces the trace identity of a *root* span (ignored when a parent
        exists — children always follow their parent's trace).
        """
        if isinstance(parent, Span):
            parent = parent.context
        if parent is None:
            parent = _current_parent()
        if parent is not None:
            tid, pid = parent.trace_id, parent.span_id
        else:
            tid, pid = trace_id or new_trace_id(), None
        sp = Span(
            name=name,
            trace_id=tid,
            span_id=_new_span_id(),
            parent_id=pid,
            wall_time=time.time(),
            attrs=attrs,
        )
        stack = _stack()
        stack.append(sp)
        start = time.perf_counter()
        sp.start_ms = start * 1e3
        try:
            yield sp
        except BaseException as exc:
            sp.status = f"error:{type(exc).__name__}"
            raise
        finally:
            sp.duration_ms = (time.perf_counter() - start) * 1e3
            stack.pop()
            self._export(sp)

    def _export(self, sp: Span) -> None:
        with self._agg_lock:
            agg = self._agg.setdefault(sp.name, [0, 0.0, 0])
            agg[0] += 1
            agg[1] += sp.duration_ms
            agg[2] += 0 if sp.status == "ok" else 1
        for exporter in self._exporters:
            exporter.export(sp)

    def ingest(self, sp: Span) -> None:
        """Adopt a span finished elsewhere (another process) as if it had
        been opened on this tracer: it lands in the ring, every exporter,
        and the per-name aggregates.

        This is how the dataplane keeps ``serve.request`` → tile →
        ``compile.execute`` trees intact across process workers: the
        worker runs its compute spans under the request's
        :class:`SpanContext` (carried in the job envelope), ships them
        back in the reply, and the engine ingests them here — ``/metrics``
        and :func:`span_tree` then see one tree, exactly as with thread
        workers.  Note ``start_ms`` stays in the *producing* process's
        monotonic clock; only durations are cross-process comparable.
        """
        self._export(sp)

    # ------------------------------------------------------------------ #
    def aggregates(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name totals since construction: count, ms, errors."""
        with self._agg_lock:
            return {
                name: {"count": int(c), "total_ms": ms, "errors": int(e)}
                for name, (c, ms, e) in sorted(self._agg.items())
            }


_default_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer (what :func:`span` uses)."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the default tracer; returns the previous one (for restoring)."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


def span(name: str, **attrs):
    """Open a span on the default tracer (see :meth:`Tracer.span`)."""
    return _default_tracer.span(name, **attrs)


def span_tree(
    spans: List[Span],
) -> Tuple[List[Span], Dict[str, List[Span]]]:
    """Rebuild a trace's hierarchy from a flat span list.

    Returns ``(roots, children)`` where ``children`` maps a span id to
    its child spans.  Spans whose parent is not in the list (e.g. fell
    off the ring) are treated as roots.
    """
    by_id = {s.span_id: s for s in spans}
    children: Dict[str, List[Span]] = {}
    roots: List[Span] = []
    for s in spans:
        if s.parent_id is not None and s.parent_id in by_id:
            children.setdefault(s.parent_id, []).append(s)
        else:
            roots.append(s)
    return roots, children
