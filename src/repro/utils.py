"""Shared utilities: formatting, timing, deterministic seeding."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence


def format_si(value: Optional[float], unit: str = "", digits: int = 2) -> str:
    """Human-readable engineering notation: 6.3e9 -> '6.30G'."""
    if value is None:
        return "-"
    for threshold, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= threshold:
            return f"{value / threshold:.{digits}f}{suffix}{unit}"
    return f"{value:.{digits}f}{unit}"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned plain-text table (benches print these)."""
    str_rows = [[("-" if c is None else str(c)) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@contextmanager
def timed(label: str = "") -> Iterator[dict]:
    """Context manager measuring wall-clock seconds into ``result['seconds']``."""
    result = {"label": label, "seconds": 0.0}
    start = time.perf_counter()
    try:
        yield result
    finally:
        result["seconds"] = time.perf_counter() - start
