"""Model zoo: every network of Tables 1–2 and Figs. 1(a)/(b).

Each :class:`ZooEntry` carries

* the paper's **reported** parameters / MACs / PSNR / SSIM (transcribed from
  Tables 1 and 2 — the ``-/-`` cells are ``None``),
* a **spec builder** (our own layer-level model) where the architecture is
  publicly specified well enough to recompute the parameter/MAC columns
  (all SESR variants, FSRCNN, VDSR), and
* a **factory** for the models we can actually train in this repo
  (SESR family, FSRCNN).

Benches use the registry to print the paper's rows next to measured rows and
to place every network on the Fig. 1(a) Pareto plot and the Fig. 1(b) NPU
throughput chart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .core.fsrcnn import FSRCNN
from .core.sesr import SESR
from .metrics.complexity import (
    LayerSpec,
    count_params,
    fsrcnn_specs,
    macs_to_720p,
    sesr_specs,
    vdsr_specs,
)

Quality = Tuple[Optional[float], Optional[float]]  # (PSNR, SSIM)

DATASETS = ("set5", "set14", "bsd100", "urban100", "manga109", "div2k")
REGIMES = ("small", "medium", "large")


@dataclass(frozen=True)
class ZooEntry:
    """One row of the paper's result tables."""

    name: str
    regime: str
    #: reported parameter count (in K) per scale, from Tables 1–2.
    reported_params_k: Dict[int, Optional[float]]
    #: reported MACs (in G, to 720p output) per scale.
    reported_macs_g: Dict[int, Optional[float]]
    #: reported quality: scale -> dataset -> (PSNR, SSIM).
    reported_quality: Dict[int, Dict[str, Quality]]
    #: layer-spec builder (scale -> specs) when the architecture is modelled.
    spec_fn: Optional[Callable[[int], List[LayerSpec]]] = None
    #: trainable-model factory (scale, seed -> Module) when implemented here.
    factory: Optional[Callable[..., object]] = None

    def computed_params(self, scale: int) -> Optional[int]:
        if self.spec_fn is None:
            return None
        return count_params(self.spec_fn(scale))

    def computed_macs_720p(self, scale: int) -> Optional[int]:
        if self.spec_fn is None:
            return None
        return macs_to_720p(self.spec_fn(scale), scale)


def _q(psnr: Optional[float], ssim: Optional[float]) -> Quality:
    return (psnr, ssim)


def _sesr_factory(f: int, m: int) -> Callable[..., SESR]:
    def make(scale: int = 2, seed: int = 0, **kwargs) -> SESR:
        return SESR(scale=scale, f=f, m=m, seed=seed, **kwargs)

    return make


def _sesr_specs(f: int, m: int) -> Callable[[int], List[LayerSpec]]:
    return lambda scale: sesr_specs(f, m, scale)


ZOO: Dict[str, ZooEntry] = {}


def _register(entry: ZooEntry) -> None:
    ZOO[entry.name] = entry


# ---------------------------------------------------------------------- #
# Small regime (≤ 25K parameters)
# ---------------------------------------------------------------------- #
_register(ZooEntry(
    name="Bicubic",
    regime="small",
    reported_params_k={2: None, 4: None},
    reported_macs_g={2: None, 4: None},
    reported_quality={
        2: {
            "set5": _q(33.68, 0.9307), "set14": _q(30.24, 0.8693),
            "bsd100": _q(29.56, 0.8439), "urban100": _q(26.88, 0.8408),
            "manga109": _q(30.82, 0.9349), "div2k": _q(32.45, 0.9043),
        },
        4: {
            "set5": _q(28.43, 0.8113), "set14": _q(26.00, 0.7025),
            "bsd100": _q(25.96, 0.6682), "urban100": _q(23.14, 0.6577),
            "manga109": _q(24.90, 0.7855), "div2k": _q(28.10, 0.7745),
        },
    },
))

_register(ZooEntry(
    name="FSRCNN",
    regime="small",
    reported_params_k={2: 12.46, 4: 12.46},
    reported_macs_g={2: 6.00, 4: 4.63},
    reported_quality={
        2: {
            "set5": _q(36.98, 0.9556), "set14": _q(32.62, 0.9087),
            "bsd100": _q(31.50, 0.8904), "urban100": _q(29.85, 0.9009),
            "manga109": _q(36.62, 0.9710), "div2k": _q(34.74, 0.9340),
        },
        4: {
            "set5": _q(30.70, 0.8657), "set14": _q(27.59, 0.7535),
            "bsd100": _q(26.96, 0.7128), "urban100": _q(24.60, 0.7258),
            "manga109": _q(27.89, 0.8590), "div2k": _q(29.36, 0.8110),
        },
    },
    spec_fn=lambda scale: fsrcnn_specs(scale),
    factory=lambda scale=2, seed=0, **kw: FSRCNN(scale=scale, seed=seed, **kw),
))

_register(ZooEntry(
    name="FSRCNN (our setup)",
    regime="small",
    reported_params_k={2: 12.46, 4: 12.46},
    reported_macs_g={2: 6.00, 4: 4.63},
    reported_quality={
        2: {
            "set5": _q(36.85, 0.9561), "set14": _q(32.47, 0.9076),
            "bsd100": _q(31.37, 0.8891), "urban100": _q(29.43, 0.8963),
            "manga109": _q(35.81, 0.9689), "div2k": _q(34.73, 0.9349),
        },
        4: {
            "set5": _q(30.45, 0.8648), "set14": _q(27.44, 0.7528),
            "bsd100": _q(26.89, 0.7124), "urban100": _q(24.39, 0.7212),
            "manga109": _q(27.40, 0.8539), "div2k": _q(29.37, 0.8117),
        },
    },
    spec_fn=lambda scale: fsrcnn_specs(scale),
    factory=lambda scale=2, seed=0, **kw: FSRCNN(scale=scale, seed=seed, **kw),
))

_register(ZooEntry(
    name="MOREMNAS-C",
    regime="small",
    reported_params_k={2: 25.0},
    reported_macs_g={2: 5.5},
    reported_quality={
        2: {
            "set5": _q(37.06, 0.9561), "set14": _q(32.75, 0.9094),
            "bsd100": _q(31.50, 0.8904), "urban100": _q(29.92, 0.9023),
            "manga109": _q(None, None), "div2k": _q(None, None),
        },
    },
))

for _name, _f, _m, _params, _macs, _q2, _q4 in [
    (
        "SESR-M3", 16, 3, {2: 8.91, 4: 13.71}, {2: 2.05, 4: 0.79},
        {
            "set5": _q(37.21, 0.9577), "set14": _q(32.70, 0.9100),
            "bsd100": _q(31.56, 0.8920), "urban100": _q(29.92, 0.9034),
            "manga109": _q(36.47, 0.9717), "div2k": _q(35.03, 0.9373),
        },
        {
            "set5": _q(30.75, 0.8714), "set14": _q(27.62, 0.7579),
            "bsd100": _q(27.00, 0.7166), "urban100": _q(24.61, 0.7304),
            "manga109": _q(27.90, 0.8644), "div2k": _q(29.52, 0.8155),
        },
    ),
    (
        "SESR-M5", 16, 5, {2: 13.52, 4: 18.32}, {2: 3.11, 4: 1.05},
        {
            "set5": _q(37.39, 0.9585), "set14": _q(32.84, 0.9115),
            "bsd100": _q(31.70, 0.8938), "urban100": _q(30.33, 0.9087),
            "manga109": _q(37.07, 0.9734), "div2k": _q(35.24, 0.9389),
        },
        {
            "set5": _q(30.99, 0.8764), "set14": _q(27.81, 0.7624),
            "bsd100": _q(27.11, 0.7199), "urban100": _q(24.80, 0.7389),
            "manga109": _q(28.29, 0.8734), "div2k": _q(29.65, 0.8189),
        },
    ),
    (
        "SESR-M7", 16, 7, {2: 18.12, 4: 22.92}, {2: 4.17, 4: 1.32},
        {
            "set5": _q(37.47, 0.9588), "set14": _q(32.91, 0.9118),
            "bsd100": _q(31.77, 0.8946), "urban100": _q(30.49, 0.9105),
            "manga109": _q(37.14, 0.9738), "div2k": _q(35.32, 0.9395),
        },
        {
            "set5": _q(31.14, 0.8787), "set14": _q(27.88, 0.7641),
            "bsd100": _q(27.13, 0.7209), "urban100": _q(24.90, 0.7436),
            "manga109": _q(28.53, 0.8778), "div2k": _q(29.72, 0.8204),
        },
    ),
]:
    _register(ZooEntry(
        name=_name, regime="small",
        reported_params_k=_params, reported_macs_g=_macs,
        reported_quality={2: _q2, 4: _q4},
        spec_fn=_sesr_specs(_f, _m), factory=_sesr_factory(_f, _m),
    ))

# ---------------------------------------------------------------------- #
# Medium regime (25K – 100K)
# ---------------------------------------------------------------------- #
_register(ZooEntry(
    name="TPSR-NoGAN",
    regime="medium",
    reported_params_k={2: 60.0, 4: 61.0},
    reported_macs_g={2: 14.0, 4: 3.6},
    reported_quality={
        2: {
            "set5": _q(37.38, 0.9583), "set14": _q(33.00, 0.9123),
            "bsd100": _q(31.75, 0.8942), "urban100": _q(30.61, 0.9119),
            "manga109": _q(None, None), "div2k": _q(None, None),
        },
        4: {
            "set5": _q(31.10, 0.8779), "set14": _q(27.95, 0.7663),
            "bsd100": _q(27.15, 0.7214), "urban100": _q(24.97, 0.7456),
            "manga109": _q(None, None), "div2k": _q(None, None),
        },
    },
))

_register(ZooEntry(
    name="SESR-M11",
    regime="medium",
    reported_params_k={2: 27.34, 4: 32.14},
    reported_macs_g={2: 6.30, 4: 1.85},
    reported_quality={
        2: {
            "set5": _q(37.58, 0.9593), "set14": _q(33.03, 0.9128),
            "bsd100": _q(31.85, 0.8956), "urban100": _q(30.72, 0.9136),
            "manga109": _q(37.40, 0.9746), "div2k": _q(35.45, 0.9404),
        },
        4: {
            "set5": _q(31.27, 0.8810), "set14": _q(27.94, 0.7660),
            "bsd100": _q(27.20, 0.7225), "urban100": _q(25.00, 0.7466),
            "manga109": _q(28.73, 0.8815), "div2k": _q(29.81, 0.8221),
        },
    },
    spec_fn=_sesr_specs(16, 11), factory=_sesr_factory(16, 11),
))

# ---------------------------------------------------------------------- #
# Large regime (> 100K)
# ---------------------------------------------------------------------- #
_register(ZooEntry(
    name="VDSR",
    regime="large",
    reported_params_k={2: 665.0, 4: 665.0},
    reported_macs_g={2: 612.6, 4: 612.6},
    reported_quality={
        2: {
            "set5": _q(37.53, 0.9587), "set14": _q(33.05, 0.9127),
            "bsd100": _q(31.90, 0.8960), "urban100": _q(30.77, 0.9141),
            "manga109": _q(37.16, 0.9740), "div2k": _q(35.43, 0.9410),
        },
        4: {
            "set5": _q(31.35, 0.8838), "set14": _q(28.02, 0.7678),
            "bsd100": _q(27.29, 0.7252), "urban100": _q(25.18, 0.7525),
            "manga109": _q(28.82, 0.8860), "div2k": _q(29.82, 0.8240),
        },
    },
    spec_fn=vdsr_specs,
))

_register(ZooEntry(
    name="LapSRN",
    regime="large",
    reported_params_k={2: 813.0, 4: 813.0},
    reported_macs_g={2: 29.9, 4: 149.4},
    reported_quality={
        2: {
            "set5": _q(37.52, 0.9590), "set14": _q(33.08, 0.9130),
            "bsd100": _q(31.80, 0.8950), "urban100": _q(30.41, 0.9100),
            "manga109": _q(37.53, 0.9740), "div2k": _q(35.31, 0.9400),
        },
        4: {
            "set5": _q(31.54, 0.8850), "set14": _q(28.19, 0.7720),
            "bsd100": _q(27.32, 0.7280), "urban100": _q(25.21, 0.7560),
            "manga109": _q(29.09, 0.8900), "div2k": _q(29.88, 0.8250),
        },
    },
))

_register(ZooEntry(
    name="BTSRN",
    regime="large",
    reported_params_k={2: 410.0, 4: 410.0},
    reported_macs_g={2: 207.7, 4: 165.2},
    reported_quality={
        2: {
            "set5": _q(37.75, None), "set14": _q(33.20, None),
            "bsd100": _q(32.05, None), "urban100": _q(31.63, None),
            "manga109": _q(None, None), "div2k": _q(None, None),
        },
        4: {
            "set5": _q(31.85, None), "set14": _q(28.20, None),
            "bsd100": _q(27.47, None), "urban100": _q(25.74, None),
            "manga109": _q(None, None), "div2k": _q(None, None),
        },
    },
))

_register(ZooEntry(
    name="CARN-M",
    regime="large",
    reported_params_k={2: 412.0, 4: 412.0},
    reported_macs_g={2: 91.2, 4: 32.5},
    reported_quality={
        2: {
            "set5": _q(37.53, 0.9583), "set14": _q(33.26, 0.9141),
            "bsd100": _q(31.92, 0.8960), "urban100": _q(31.23, 0.9193),
            "manga109": _q(None, None), "div2k": _q(None, None),
        },
        4: {
            "set5": _q(31.92, 0.8903), "set14": _q(28.42, 0.7762),
            "bsd100": _q(27.44, 0.7304), "urban100": _q(25.62, 0.7694),
            "manga109": _q(None, None), "div2k": _q(None, None),
        },
    },
))

_register(ZooEntry(
    name="MOREMNAS-B",
    regime="large",
    reported_params_k={2: 1118.0},
    reported_macs_g={2: 256.9},
    reported_quality={
        2: {
            "set5": _q(37.58, 0.9584), "set14": _q(33.22, 0.9135),
            "bsd100": _q(31.91, 0.8959), "urban100": _q(31.14, 0.9175),
            "manga109": _q(None, None), "div2k": _q(None, None),
        },
    },
))

_register(ZooEntry(
    name="SESR-XL",
    regime="large",
    reported_params_k={2: 105.37, 4: 114.97},
    reported_macs_g={2: 24.27, 4: 6.62},
    reported_quality={
        2: {
            "set5": _q(37.77, 0.9601), "set14": _q(33.24, 0.9145),
            "bsd100": _q(31.99, 0.8976), "urban100": _q(31.16, 0.9184),
            "manga109": _q(38.01, 0.9759), "div2k": _q(35.67, 0.9420),
        },
        4: {
            "set5": _q(31.54, 0.8866), "set14": _q(28.12, 0.7712),
            "bsd100": _q(27.31, 0.7277), "urban100": _q(25.31, 0.7604),
            "manga109": _q(29.04, 0.8901), "div2k": _q(29.94, 0.8266),
        },
    },
    spec_fn=_sesr_specs(32, 11), factory=_sesr_factory(32, 11),
))


# ---------------------------------------------------------------------- #
# queries
# ---------------------------------------------------------------------- #
def entries_for_scale(scale: int, regime: Optional[str] = None) -> List[ZooEntry]:
    """All zoo entries with reported quality at ``scale`` (optionally filtered)."""
    out = [
        e
        for e in ZOO.values()
        if scale in e.reported_quality and (regime is None or e.regime == regime)
    ]
    return out


def get(name: str) -> ZooEntry:
    if name not in ZOO:
        raise KeyError(f"unknown zoo entry {name!r}; know {sorted(ZOO)}")
    return ZOO[name]


def modelled_entries() -> List[ZooEntry]:
    """Entries whose parameter/MAC columns we recompute from specs."""
    return [e for e in ZOO.values() if e.spec_fn is not None]


def factory_names() -> List[str]:
    """Names of entries that can be instantiated (and therefore served)."""
    return sorted(e.name for e in ZOO.values() if e.factory is not None)
