"""Training loop reproducing the paper's protocol (§5.1) at configurable scale.

Paper setup: ADAM, constant lr 5e-4, batch 32, ℓ₁ loss, 300 epochs of
64×64 crops from DIV2K.  On a CPU NumPy substrate we run the same loop with
smaller datasets/steps; every knob is explicit so benches document their
scale-down factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..datasets.pipeline import PatchSampler, to_batch
from ..metrics import psnr as psnr_fn
from ..metrics import ssim as ssim_fn
from ..nn import Adam, Module, Tensor, no_grad
from ..nn.losses import LOSSES
from ..nn.schedulers import LRScheduler
from ..obs import trace as _trace
from ..resilience.guard import GUARD_OK, GUARD_ROLLBACK, NumericGuard
from .checkpoint import resume_checkpoint, save_checkpoint


@dataclass
class TrainResult:
    """Outcome of a training run."""

    steps: int
    loss_history: List[float] = field(default_factory=list)
    val_history: List[Tuple[int, float]] = field(default_factory=list)
    resumed_from: int = 0
    skipped_steps: int = 0
    rollbacks: int = 0
    checkpoints_written: int = 0

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")


class Trainer:
    """ADAM/ℓ₁ trainer for SISR models on paired-patch batches."""

    def __init__(
        self,
        model: Module,
        lr: float = 5e-4,
        loss: str = "l1",
        grad_clip: Optional[float] = None,
    ) -> None:
        if loss not in LOSSES:
            raise KeyError(f"unknown loss {loss!r}; know {sorted(LOSSES)}")
        self.model = model
        self.loss_fn = LOSSES[loss]
        self.optimizer = Adam(model.parameters(), lr=lr)
        self.grad_clip = grad_clip

    def train_step(self, lr_batch: np.ndarray, hr_batch: np.ndarray) -> float:
        """One optimisation step; returns the batch loss."""
        loss, _ = self.guarded_step(lr_batch, hr_batch, guard=None)
        return loss

    def guarded_step(
        self,
        lr_batch: np.ndarray,
        hr_batch: np.ndarray,
        guard: Optional[NumericGuard] = None,
    ) -> Tuple[float, str]:
        """One step with numeric guarding; returns ``(loss, verdict)``.

        The guard runs between ``backward()`` and ``optimizer.step()``:
        a ``"skip"``/``"rollback"`` verdict leaves the parameters and
        optimizer moments untouched by this batch.  Without a guard the
        verdict is always ``"ok"`` and this is exactly ``train_step``.
        """
        with _trace.span("train.step", batch=int(lr_batch.shape[0])) as sp:
            self.model.train()
            self.optimizer.zero_grad()
            with _trace.span("train.forward"):
                pred = self.model(Tensor(lr_batch))
                loss = self.loss_fn(pred, Tensor(hr_batch))
            with _trace.span("train.backward"):
                loss.backward()
                if self.grad_clip is not None:
                    self._clip_gradients(self.grad_clip)
            loss_val = loss.item()
            verdict = GUARD_OK
            if guard is not None:
                verdict = guard.check(
                    loss_val, (p.grad for p in self.optimizer.params)
                )
            if verdict == GUARD_OK:
                with _trace.span("train.optim"):
                    self.optimizer.step()
            sp.attrs["loss"] = loss_val
            sp.attrs["verdict"] = verdict
        return loss_val, verdict

    def _clip_gradients(self, max_norm: float) -> None:
        total = 0.0
        grads = [p.grad for p in self.optimizer.params if p.grad is not None]
        for g in grads:
            total += float((g * g).sum())
        norm = np.sqrt(total)
        if norm > max_norm:
            scale = max_norm / (norm + 1e-12)
            for g in grads:
                g *= scale

    def fit(
        self,
        sampler: PatchSampler,
        epochs: int = 1,
        eval_every: Optional[int] = None,
        eval_fn: Optional[Callable[[], float]] = None,
        log_fn: Optional[Callable[[int, float], None]] = None,
        scheduler: Optional["LRScheduler"] = None,
        early_stop_patience: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        resume: bool = True,
        guard: Optional[NumericGuard] = None,
    ) -> TrainResult:
        """Train for ``epochs`` passes of the sampler's schedule.

        ``scheduler`` (a :class:`repro.nn.schedulers.LRScheduler`) overrides
        the optimizer's learning rate each step when given.

        ``early_stop_patience`` (with ``eval_every``/``eval_fn``) stops the
        run once the validation metric has not improved for that many
        consecutive evaluations; the metric is treated as
        higher-is-better (e.g. PSNR).

        Crash safety (``checkpoint_path`` + ``checkpoint_every``): the
        trainer atomically checkpoints model/optimizer/step every
        ``checkpoint_every`` steps (keeping one ``.bak`` generation), and
        with ``resume=True`` a restarted ``fit`` reloads the newest
        readable checkpoint and replays the sampler *schedule* up to that
        step without training — the batch stream is seeded, so the resumed
        run sees exactly the batches the killed run would have, and the
        loss trajectory continues bit-exactly.

        ``guard`` (a :class:`repro.resilience.NumericGuard`) skips steps
        with NaN/Inf losses or gradients and, after its consecutive-bad
        limit, rolls the run back to the last good checkpoint with the
        learning rate scaled by ``guard.lr_decay``.
        """
        start_step = 0
        if checkpoint_path and resume:
            start_step = resume_checkpoint(
                checkpoint_path, self.model, self.optimizer
            )
        result = TrainResult(steps=start_step, resumed_from=start_step)
        best_val = -np.inf
        stale = 0
        base_lr = self.optimizer.lr
        lr_scale = 1.0  # compounds guard rollback decays, survives scheduler
        tracer = _trace.get_tracer()
        steps_per_epoch = sampler.steps_per_epoch()
        # Epoch spans are entered/exited manually at schedule boundaries;
        # the sampler hands out one flat step stream, so the epoch index is
        # derived from the step counter.  The try/finally closes the open
        # epoch span on early stop or error.
        epoch_cm = None
        epoch_idx = -1
        with tracer.span(
            "train.fit", epochs=epochs, steps_per_epoch=steps_per_epoch,
            resumed_from=start_step,
        ) as fit_span:
            try:
                for step, (lr_b, hr_b) in enumerate(
                    sampler.batches(epochs), start=1
                ):
                    if step <= start_step:
                        continue  # replay the seeded schedule; no training
                    epoch = (step - 1) // steps_per_epoch \
                        if steps_per_epoch else 0
                    if epoch != epoch_idx:
                        if epoch_cm is not None:
                            epoch_cm.__exit__(None, None, None)
                        epoch_idx = epoch
                        epoch_cm = tracer.span("train.epoch", epoch=epoch)
                        epoch_cm.__enter__()
                    if scheduler is not None:
                        scheduler.apply(self.optimizer, step - 1)
                        self.optimizer.lr *= lr_scale
                    elif lr_scale != 1.0:
                        self.optimizer.lr = base_lr * lr_scale
                    loss, verdict = self.guarded_step(lr_b, hr_b, guard)
                    if verdict != GUARD_OK:
                        result.skipped_steps += 1
                        if verdict == GUARD_ROLLBACK:
                            result.rollbacks += 1
                            if checkpoint_path:
                                resume_checkpoint(
                                    checkpoint_path, self.model,
                                    self.optimizer,
                                )
                            lr_scale *= guard.lr_decay
                    result.loss_history.append(loss)
                    result.steps = step
                    if log_fn is not None:
                        log_fn(step, loss)
                    if (checkpoint_path and checkpoint_every
                            and step % checkpoint_every == 0
                            and verdict == GUARD_OK):
                        save_checkpoint(
                            checkpoint_path, self.model, self.optimizer,
                            step=step, keep_backup=True,
                        )
                        result.checkpoints_written += 1
                    if eval_every and eval_fn and step % eval_every == 0:
                        val = eval_fn()
                        result.val_history.append((step, val))
                        if early_stop_patience is not None:
                            if val > best_val:
                                best_val = val
                                stale = 0
                            else:
                                stale += 1
                                if stale >= early_stop_patience:
                                    break
            finally:
                if epoch_cm is not None:
                    epoch_cm.__exit__(None, None, None)
            fit_span.attrs["steps"] = result.steps
            fit_span.attrs["skipped"] = result.skipped_steps
        return result


def predict_image(model: Module, lr_img: np.ndarray) -> np.ndarray:
    """Super-resolve one (H, W) Y image; returns the (sH, sW) prediction."""
    model.eval()
    with no_grad():
        out = model(Tensor(to_batch(lr_img))).data
    return np.clip(out[0, :, :, 0], 0.0, 1.0)


def evaluate_model(
    model: Module, dataset, border: Optional[int] = None
) -> Dict[str, float]:
    """Mean PSNR/SSIM of ``model`` over an (LR, HR) dataset.

    ``border`` defaults to the dataset's scale (SISR shaving convention).
    """
    border = border if border is not None else getattr(dataset, "scale", 0)
    psnrs, ssims = [], []
    for lr_img, hr_img in dataset:
        pred = predict_image(model, lr_img)
        psnrs.append(psnr_fn(pred, hr_img, border=border))
        ssims.append(ssim_fn(pred, hr_img, border=border))
    return {"psnr": float(np.mean(psnrs)), "ssim": float(np.mean(ssims))}


def evaluate_fn(
    fn: Callable[[np.ndarray], np.ndarray], dataset, border: Optional[int] = None
) -> Dict[str, float]:
    """Like :func:`evaluate_model` for a plain image->image function
    (e.g. the bicubic baseline)."""
    border = border if border is not None else getattr(dataset, "scale", 0)
    psnrs, ssims = [], []
    for lr_img, hr_img in dataset:
        pred = np.clip(fn(lr_img), 0.0, 1.0)
        psnrs.append(psnr_fn(pred, hr_img, border=border))
        ssims.append(ssim_fn(pred, hr_img, border=border))
    return {"psnr": float(np.mean(psnrs)), "ssim": float(np.mean(ssims))}
