"""Training loop reproducing the paper's protocol (§5.1) at configurable scale.

Paper setup: ADAM, constant lr 5e-4, batch 32, ℓ₁ loss, 300 epochs of
64×64 crops from DIV2K.  On a CPU NumPy substrate we run the same loop with
smaller datasets/steps; every knob is explicit so benches document their
scale-down factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..datasets.pipeline import PatchSampler, to_batch
from ..metrics import psnr as psnr_fn
from ..metrics import ssim as ssim_fn
from ..nn import Adam, Module, Tensor, no_grad
from ..nn.losses import LOSSES
from ..nn.schedulers import LRScheduler


@dataclass
class TrainResult:
    """Outcome of a training run."""

    steps: int
    loss_history: List[float] = field(default_factory=list)
    val_history: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")


class Trainer:
    """ADAM/ℓ₁ trainer for SISR models on paired-patch batches."""

    def __init__(
        self,
        model: Module,
        lr: float = 5e-4,
        loss: str = "l1",
        grad_clip: Optional[float] = None,
    ) -> None:
        if loss not in LOSSES:
            raise KeyError(f"unknown loss {loss!r}; know {sorted(LOSSES)}")
        self.model = model
        self.loss_fn = LOSSES[loss]
        self.optimizer = Adam(model.parameters(), lr=lr)
        self.grad_clip = grad_clip

    def train_step(self, lr_batch: np.ndarray, hr_batch: np.ndarray) -> float:
        """One optimisation step; returns the batch loss."""
        self.model.train()
        self.optimizer.zero_grad()
        pred = self.model(Tensor(lr_batch))
        loss = self.loss_fn(pred, Tensor(hr_batch))
        loss.backward()
        if self.grad_clip is not None:
            self._clip_gradients(self.grad_clip)
        self.optimizer.step()
        return loss.item()

    def _clip_gradients(self, max_norm: float) -> None:
        total = 0.0
        grads = [p.grad for p in self.optimizer.params if p.grad is not None]
        for g in grads:
            total += float((g * g).sum())
        norm = np.sqrt(total)
        if norm > max_norm:
            scale = max_norm / (norm + 1e-12)
            for g in grads:
                g *= scale

    def fit(
        self,
        sampler: PatchSampler,
        epochs: int = 1,
        eval_every: Optional[int] = None,
        eval_fn: Optional[Callable[[], float]] = None,
        log_fn: Optional[Callable[[int, float], None]] = None,
        scheduler: Optional["LRScheduler"] = None,
        early_stop_patience: Optional[int] = None,
    ) -> TrainResult:
        """Train for ``epochs`` passes of the sampler's schedule.

        ``scheduler`` (a :class:`repro.nn.schedulers.LRScheduler`) overrides
        the optimizer's learning rate each step when given.

        ``early_stop_patience`` (with ``eval_every``/``eval_fn``) stops the
        run once the validation metric has not improved for that many
        consecutive evaluations; the metric is treated as
        higher-is-better (e.g. PSNR).
        """
        result = TrainResult(steps=0)
        best_val = -np.inf
        stale = 0
        for step, (lr_b, hr_b) in enumerate(sampler.batches(epochs), start=1):
            if scheduler is not None:
                scheduler.apply(self.optimizer, step - 1)
            loss = self.train_step(lr_b, hr_b)
            result.loss_history.append(loss)
            result.steps = step
            if log_fn is not None:
                log_fn(step, loss)
            if eval_every and eval_fn and step % eval_every == 0:
                val = eval_fn()
                result.val_history.append((step, val))
                if early_stop_patience is not None:
                    if val > best_val:
                        best_val = val
                        stale = 0
                    else:
                        stale += 1
                        if stale >= early_stop_patience:
                            break
        return result


def predict_image(model: Module, lr_img: np.ndarray) -> np.ndarray:
    """Super-resolve one (H, W) Y image; returns the (sH, sW) prediction."""
    model.eval()
    with no_grad():
        out = model(Tensor(to_batch(lr_img))).data
    return np.clip(out[0, :, :, 0], 0.0, 1.0)


def evaluate_model(
    model: Module, dataset, border: Optional[int] = None
) -> Dict[str, float]:
    """Mean PSNR/SSIM of ``model`` over an (LR, HR) dataset.

    ``border`` defaults to the dataset's scale (SISR shaving convention).
    """
    border = border if border is not None else getattr(dataset, "scale", 0)
    psnrs, ssims = [], []
    for lr_img, hr_img in dataset:
        pred = predict_image(model, lr_img)
        psnrs.append(psnr_fn(pred, hr_img, border=border))
        ssims.append(ssim_fn(pred, hr_img, border=border))
    return {"psnr": float(np.mean(psnrs)), "ssim": float(np.mean(ssims))}


def evaluate_fn(
    fn: Callable[[np.ndarray], np.ndarray], dataset, border: Optional[int] = None
) -> Dict[str, float]:
    """Like :func:`evaluate_model` for a plain image->image function
    (e.g. the bicubic baseline)."""
    border = border if border is not None else getattr(dataset, "scale", 0)
    psnrs, ssims = [], []
    for lr_img, hr_img in dataset:
        pred = np.clip(fn(lr_img), 0.0, 1.0)
        psnrs.append(psnr_fn(pred, hr_img, border=border))
        ssims.append(ssim_fn(pred, hr_img, border=border))
    return {"psnr": float(np.mean(psnrs)), "ssim": float(np.mean(ssims))}
