"""Crash-safe resumable training state: model + optimizer + step in one file.

:func:`repro.nn.save_state` persists model weights only; long training
runs (the paper's full protocol is 480k steps) also need the ADAM moment
estimates and step count to resume bit-exactly.  This module packages all
of it into a single ``.npz`` — and makes that file survive the ways real
runs die:

* **Atomic writes.**  :func:`save_checkpoint` writes to ``path + ".tmp"``
  and ``os.replace``\\ s it into place, so a ``kill -9`` mid-save leaves
  either the old complete checkpoint or the new complete one, never a
  half-written file at ``path``.  With ``keep_backup=True`` the previous
  checkpoint is rotated to ``path + ".bak"`` first.
* **Content checksums.**  The payload carries a ``meta/checksum`` SHA-256
  over every key/dtype/shape/byte; :func:`load_checkpoint` recomputes and
  compares before touching the model, raising :class:`CheckpointCorrupt`
  on mismatch.  Truncations and flipped bytes are also caught at the zip
  layer and mapped to the same typed error — garbage weights are never
  loaded silently.
* **Validate-then-apply.**  All required keys (model state, optimizer
  kind/moments) are checked *before* any state is mutated, so a failed
  load leaves the model and optimizer exactly as they were.
* **Fallback resume.**  :func:`resume_checkpoint` tries ``path`` then
  ``path + ".bak"``, skipping corrupt files, and returns step 0 when
  nothing usable exists — the contract ``Trainer.fit`` builds auto-resume
  on.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, Optional

import numpy as np

from ..nn import Adam, Module
from ..nn.optim import SGD, Optimizer

CHECKSUM_KEY = "meta/checksum"


class CheckpointError(RuntimeError):
    """Base class for checkpoint load/save failures."""


class CheckpointCorrupt(CheckpointError):
    """The file on disk is unreadable, truncated, or fails its checksum."""


def _payload_checksum(payload: Dict[str, np.ndarray]) -> np.ndarray:
    """SHA-256 over every entry's key, dtype, shape, and raw bytes."""
    digest = hashlib.sha256()
    for key in sorted(payload):
        if key == CHECKSUM_KEY:
            continue
        arr = np.ascontiguousarray(payload[key])
        digest.update(key.encode())
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return np.frombuffer(digest.digest(), dtype=np.uint8)


def save_checkpoint(
    path: str,
    model: Module,
    optimizer: Optional[Optimizer] = None,
    step: int = 0,
    extra: Optional[Dict[str, np.ndarray]] = None,
    keep_backup: bool = False,
) -> None:
    """Atomically write model (+ optimizer) state to ``path``.

    Keys are namespaced: ``model/...``, ``optim/...``, ``meta/step``,
    ``meta/checksum``.  ``keep_backup=True`` rotates an existing ``path``
    to ``path + ".bak"`` before the new file replaces it, so one older
    good checkpoint always survives a later corruption.
    """
    payload: Dict[str, np.ndarray] = {
        f"model/{k}": v for k, v in model.state_dict().items()
    }
    payload["meta/step"] = np.asarray(step, dtype=np.int64)
    if optimizer is not None:
        payload["optim/lr"] = np.asarray(optimizer.lr, dtype=np.float64)
        if isinstance(optimizer, Adam):
            payload["optim/kind"] = np.frombuffer(b"adam", dtype=np.uint8)
            payload["optim/t"] = np.asarray(optimizer.t, dtype=np.int64)
            for i, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
                payload[f"optim/m/{i}"] = m
                payload[f"optim/v/{i}"] = v
        elif isinstance(optimizer, SGD):
            payload["optim/kind"] = np.frombuffer(b"sgd", dtype=np.uint8)
            if optimizer._velocity is not None:
                for i, vel in enumerate(optimizer._velocity):
                    payload[f"optim/vel/{i}"] = vel
        else:
            raise TypeError(
                f"cannot checkpoint optimizer type {type(optimizer).__name__}"
            )
    if extra:
        for k, v in extra.items():
            payload[f"extra/{k}"] = np.asarray(v)
    payload[CHECKSUM_KEY] = _payload_checksum(payload)

    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    tmp = path + ".tmp"
    # np.savez appends ".npz" to bare paths; a file object keeps the name.
    with open(tmp, "wb") as fh:
        np.savez_compressed(fh, **payload)
    if keep_backup and os.path.exists(path):
        os.replace(path, path + ".bak")
    os.replace(tmp, path)


def _read_payload(path: str) -> Dict[str, np.ndarray]:
    """Read and checksum-verify a checkpoint; typed errors, no mutation."""
    try:
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files}
    except FileNotFoundError:
        raise
    except Exception as exc:  # zipfile.BadZipFile, zlib.error, OSError, ...
        raise CheckpointCorrupt(
            f"checkpoint {path!r} is unreadable (truncated or damaged): {exc}"
        ) from exc
    stored = payload.pop(CHECKSUM_KEY, None)
    if stored is not None:  # pre-checksum checkpoints load unverified
        actual = _payload_checksum(payload)
        if not np.array_equal(np.asarray(stored, dtype=np.uint8), actual):
            raise CheckpointCorrupt(
                f"checkpoint {path!r} failed its content checksum"
            )
    return payload


def _validate_optimizer_payload(
    payload: Dict[str, np.ndarray], optimizer: Optimizer, path: str
) -> str:
    """Check every optimizer key exists *before* anything is applied."""
    kind_arr = payload.get("optim/kind")
    if kind_arr is None:
        raise KeyError("checkpoint has no optimizer state")
    kind = bytes(kind_arr.tobytes()).decode()
    if "optim/lr" not in payload:
        raise CheckpointCorrupt(f"checkpoint {path!r} lacks optim/lr")
    if isinstance(optimizer, Adam):
        if kind != "adam":
            raise TypeError(f"checkpoint optimizer is {kind!r}, not adam")
        required = ["optim/t"]
        required += [f"optim/m/{i}" for i in range(len(optimizer.params))]
        required += [f"optim/v/{i}" for i in range(len(optimizer.params))]
        missing = [k for k in required if k not in payload]
        if missing:
            raise CheckpointCorrupt(
                f"checkpoint {path!r} optimizer state is incomplete: "
                f"missing {missing[:4]}{'...' if len(missing) > 4 else ''}"
            )
    elif isinstance(optimizer, SGD):
        if kind != "sgd":
            raise TypeError(f"checkpoint optimizer is {kind!r}, not sgd")
        n_vel = sum(1 for k in payload if k.startswith("optim/vel/"))
        missing = [f"optim/vel/{i}" for i in range(n_vel)
                   if f"optim/vel/{i}" not in payload]
        if missing:
            raise CheckpointCorrupt(
                f"checkpoint {path!r} SGD velocity state is incomplete: "
                f"missing {missing[:4]}"
            )
    return kind


def load_checkpoint(
    path: str,
    model: Module,
    optimizer: Optional[Optimizer] = None,
    strict: bool = True,
) -> int:
    """Restore model (+ optimizer) state; returns the saved step count.

    Raises :class:`CheckpointCorrupt` on truncation, damage, or checksum
    mismatch; :class:`KeyError`/:class:`TypeError` on missing or
    mismatched optimizer state.  All validation happens before any state
    is written, so a failed load leaves ``model``/``optimizer`` intact.
    """
    payload = _read_payload(path)
    model_state = {
        k[len("model/"):]: v for k, v in payload.items()
        if k.startswith("model/")
    }
    step = int(payload.get("meta/step", np.asarray(0)))
    if optimizer is not None:
        _validate_optimizer_payload(payload, optimizer, path)

    model.load_state_dict(model_state, strict=strict)
    if optimizer is not None:
        optimizer.lr = float(payload["optim/lr"])
        if isinstance(optimizer, Adam):
            optimizer.t = int(payload["optim/t"])
            for i in range(len(optimizer.params)):
                optimizer._m[i][...] = payload[f"optim/m/{i}"]
                optimizer._v[i][...] = payload[f"optim/v/{i}"]
        elif isinstance(optimizer, SGD):
            vel_keys = [k for k in payload if k.startswith("optim/vel/")]
            if vel_keys:
                optimizer._velocity = [
                    payload[f"optim/vel/{i}"].copy()
                    for i in range(len(vel_keys))
                ]
    return step


def verify_checkpoint(path: str) -> int:
    """Read + checksum-verify ``path`` without touching any model.

    Returns the stored step count; raises :class:`CheckpointCorrupt` (or
    :class:`FileNotFoundError`) like :func:`load_checkpoint` would.
    """
    payload = _read_payload(path)
    return int(payload.get("meta/step", np.asarray(0)))


def resume_checkpoint(
    path: str,
    model: Module,
    optimizer: Optional[Optimizer] = None,
    strict: bool = True,
) -> int:
    """Best-effort resume: ``path`` first, then ``path + ".bak"``.

    Corrupt candidates are skipped (that is the point of the backup);
    missing files are skipped; anything else — e.g. an optimizer-kind
    mismatch, which means the *caller* is wrong, not the disk —
    propagates.  Returns the resumed step, or 0 for a fresh start.
    """
    for candidate in (path, path + ".bak"):
        if not os.path.exists(candidate):
            continue
        try:
            return load_checkpoint(candidate, model, optimizer, strict=strict)
        except CheckpointCorrupt:
            continue
    return 0


def load_extra(path: str) -> Dict[str, np.ndarray]:
    """Read back the ``extra`` entries of a checkpoint."""
    payload = _read_payload(path)
    return {
        k[len("extra/"):]: v
        for k, v in payload.items()
        if k.startswith("extra/")
    }
