"""Resumable training state: model + optimizer + step counter in one file.

:func:`repro.nn.save_state` persists model weights only; long training
runs (the paper's full protocol is 480k steps) also need the ADAM moment
estimates and step count to resume bit-exactly.  This module packages all
of it into a single ``.npz``.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

import numpy as np

from ..nn import Adam, Module
from ..nn.optim import SGD, Optimizer


def save_checkpoint(
    path: str,
    model: Module,
    optimizer: Optional[Optimizer] = None,
    step: int = 0,
    extra: Optional[Dict[str, np.ndarray]] = None,
) -> None:
    """Write model (+ optimizer) state to ``path``.

    Keys are namespaced: ``model/...``, ``optim/...``, ``meta/step``.
    """
    payload: Dict[str, np.ndarray] = {
        f"model/{k}": v for k, v in model.state_dict().items()
    }
    payload["meta/step"] = np.asarray(step, dtype=np.int64)
    if optimizer is not None:
        payload["optim/lr"] = np.asarray(optimizer.lr, dtype=np.float64)
        if isinstance(optimizer, Adam):
            payload["optim/kind"] = np.frombuffer(b"adam", dtype=np.uint8)
            payload["optim/t"] = np.asarray(optimizer.t, dtype=np.int64)
            for i, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
                payload[f"optim/m/{i}"] = m
                payload[f"optim/v/{i}"] = v
        elif isinstance(optimizer, SGD):
            payload["optim/kind"] = np.frombuffer(b"sgd", dtype=np.uint8)
            if optimizer._velocity is not None:
                for i, vel in enumerate(optimizer._velocity):
                    payload[f"optim/vel/{i}"] = vel
        else:
            raise TypeError(
                f"cannot checkpoint optimizer type {type(optimizer).__name__}"
            )
    if extra:
        for k, v in extra.items():
            payload[f"extra/{k}"] = np.asarray(v)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez_compressed(path, **payload)


def load_checkpoint(
    path: str,
    model: Module,
    optimizer: Optional[Optimizer] = None,
    strict: bool = True,
) -> int:
    """Restore model (+ optimizer) state; returns the saved step count."""
    with np.load(path) as archive:
        payload = {k: archive[k] for k in archive.files}
    model_state = {
        k[len("model/"):]: v for k, v in payload.items()
        if k.startswith("model/")
    }
    model.load_state_dict(model_state, strict=strict)
    step = int(payload.get("meta/step", np.asarray(0)))

    if optimizer is not None:
        kind_arr = payload.get("optim/kind")
        if kind_arr is None:
            raise KeyError("checkpoint has no optimizer state")
        kind = bytes(kind_arr.tobytes()).decode()
        optimizer.lr = float(payload["optim/lr"])
        if isinstance(optimizer, Adam):
            if kind != "adam":
                raise TypeError(f"checkpoint optimizer is {kind!r}, not adam")
            optimizer.t = int(payload["optim/t"])
            for i in range(len(optimizer.params)):
                optimizer._m[i][...] = payload[f"optim/m/{i}"]
                optimizer._v[i][...] = payload[f"optim/v/{i}"]
        elif isinstance(optimizer, SGD):
            if kind != "sgd":
                raise TypeError(f"checkpoint optimizer is {kind!r}, not sgd")
            vel_keys = [k for k in payload if k.startswith("optim/vel/")]
            if vel_keys:
                optimizer._velocity = [
                    payload[f"optim/vel/{i}"].copy()
                    for i in range(len(vel_keys))
                ]
    return step


def load_extra(path: str) -> Dict[str, np.ndarray]:
    """Read back the ``extra`` entries of a checkpoint."""
    with np.load(path) as archive:
        return {
            k[len("extra/"):]: archive[k]
            for k in archive.files
            if k.startswith("extra/")
        }
