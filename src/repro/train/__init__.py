"""``repro.train`` — training loop and experiment harness."""

from .trainer import (
    TrainResult,
    Trainer,
    evaluate_fn,
    evaluate_model,
    predict_image,
)
from .checkpoint import (
    CheckpointCorrupt,
    CheckpointError,
    load_checkpoint,
    load_extra,
    resume_checkpoint,
    save_checkpoint,
    verify_checkpoint,
)
from .experiment import (
    ExperimentConfig,
    ExperimentResult,
    bicubic_baseline,
    make_train_sampler,
    run_experiment,
)

__all__ = [
    "TrainResult",
    "Trainer",
    "evaluate_fn",
    "evaluate_model",
    "predict_image",
    "CheckpointCorrupt",
    "CheckpointError",
    "load_checkpoint",
    "load_extra",
    "resume_checkpoint",
    "save_checkpoint",
    "verify_checkpoint",
    "ExperimentConfig",
    "ExperimentResult",
    "bicubic_baseline",
    "make_train_sampler",
    "run_experiment",
]
