"""End-to-end experiment runner: train a model, evaluate it on suites.

This is the harness the quality benches (Tables 1–2, §5.4, §5.5) share: one
function call trains a model under the paper's protocol (scaled down for
CPU) and reports PSNR/SSIM per evaluation suite, deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..datasets import PatchSampler, SyntheticDataset, bicubic_upscale
from ..nn import Module
from .trainer import Trainer, TrainResult, evaluate_fn, evaluate_model


@dataclass
class ExperimentConfig:
    """Scaled-down rendition of the paper's §5.1 training protocol.

    The defaults are chosen so a model trains in seconds on CPU while the
    quality *orderings* of the paper emerge; benches may raise them.
    """

    scale: int = 2
    train_images: int = 12
    train_size: Tuple[int, int] = (96, 96)
    patch_size: int = 16
    crops_per_image: int = 16
    batch_size: int = 8
    epochs: int = 3
    lr: float = 5e-4
    loss: str = "l1"
    #: global gradient-norm clip; stabilises high-lr training of the larger
    #: expanded models (the paper's 5e-4/300-epoch schedule needs none).
    grad_clip: Optional[float] = None
    seed: int = 2022


@dataclass
class ExperimentResult:
    """Training curve plus per-suite quality numbers."""

    train: TrainResult
    metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def psnr(self, suite: str) -> float:
        return self.metrics[suite]["psnr"]

    def ssim(self, suite: str) -> float:
        return self.metrics[suite]["ssim"]


def make_train_sampler(config: ExperimentConfig) -> PatchSampler:
    """The training-data sampler for a config (deterministic)."""
    train_ds = SyntheticDataset(
        "div2k",
        n_images=config.train_images,
        size=config.train_size,
        scale=config.scale,
        seed=config.seed,
    )
    return PatchSampler(
        train_ds,
        scale=config.scale,
        patch_size=config.patch_size,
        crops_per_image=config.crops_per_image,
        batch_size=config.batch_size,
        seed=config.seed + 1,
    )


def run_experiment(
    model: Module,
    config: ExperimentConfig,
    suites: Optional[Dict[str, SyntheticDataset]] = None,
    log_fn: Optional[Callable[[int, float], None]] = None,
) -> ExperimentResult:
    """Train ``model`` per ``config`` and evaluate on ``suites``."""
    sampler = make_train_sampler(config)
    trainer = Trainer(model, lr=config.lr, loss=config.loss,
                      grad_clip=config.grad_clip)
    train_result = trainer.fit(sampler, epochs=config.epochs, log_fn=log_fn)
    result = ExperimentResult(train=train_result)
    for name, dataset in (suites or {}).items():
        result.metrics[name] = evaluate_model(model, dataset)
    return result


def bicubic_baseline(
    suites: Dict[str, SyntheticDataset], scale: int
) -> Dict[str, Dict[str, float]]:
    """PSNR/SSIM of bicubic upscaling on each suite (Tables 1–2 first row)."""
    return {
        name: evaluate_fn(lambda img: bicubic_upscale(img, scale), ds)
        for name, ds in suites.items()
    }
