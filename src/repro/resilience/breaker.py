"""Circuit breaker: stop hammering a failing model, probe for recovery.

Classic three-state machine, one breaker per deployed model key:

* **closed** — normal operation; consecutive failures are counted and
  ``failure_threshold`` of them in a row trip the breaker open.
* **open** — calls are refused (:meth:`CircuitBreaker.allow` returns
  ``False``; the engine serves its degraded bicubic path instead) until
  ``cooldown`` seconds elapse.
* **half_open** — after the cooldown, up to ``half_open_max`` trial
  calls are admitted.  One success closes the breaker; one failure
  re-opens it and restarts the cooldown.

Time comes from an injectable ``clock`` (default ``time.monotonic``) so
tests can drive transitions without sleeping.  All methods are
thread-safe, and ``on_transition(old, new)`` fires after the breaker lock
is released — the engine uses it to keep telemetry counters and the state
gauge current.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-model-key failure isolation with automatic recovery probing."""

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        half_open_max: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
        name: str = "",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if half_open_max < 1:
            raise ValueError("half_open_max must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.half_open_max = half_open_max
        self.name = name
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_inflight = 0
        self._transitions: Dict[str, int] = {
            BREAKER_CLOSED: 0, BREAKER_OPEN: 0, BREAKER_HALF_OPEN: 0,
        }

    # ------------------------------------------------------------------ #
    def _transition(self, new: str) -> Optional[Callable[[], None]]:
        """Switch state under the lock; return the deferred callback."""
        old = self._state
        if old == new:
            return None
        self._state = new
        self._transitions[new] += 1
        if new == BREAKER_OPEN:
            self._opened_at = self._clock()
        if new == BREAKER_HALF_OPEN:
            self._half_open_inflight = 0
        if new == BREAKER_CLOSED:
            self._consecutive_failures = 0
        cb = self._on_transition
        if cb is None:
            return None
        return lambda: cb(old, new)

    @staticmethod
    def _fire(notify: Optional[Callable[[], None]]) -> None:
        if notify is not None:
            notify()

    # ------------------------------------------------------------------ #
    def allow(self) -> bool:
        """May a request hit the model right now?

        Open breakers flip to half-open once the cooldown has elapsed;
        half-open admits at most ``half_open_max`` in-flight trials.
        """
        notify = None
        with self._lock:
            if self._state == BREAKER_OPEN:
                if self._clock() - self._opened_at >= self.cooldown:
                    notify = self._transition(BREAKER_HALF_OPEN)
                else:
                    return False
            if self._state == BREAKER_HALF_OPEN:
                if self._half_open_inflight >= self.half_open_max:
                    allowed = False
                else:
                    self._half_open_inflight += 1
                    allowed = True
            else:
                allowed = True
        self._fire(notify)
        return allowed

    def record_success(self) -> None:
        """A call that was allowed through completed cleanly."""
        with self._lock:
            if self._state == BREAKER_HALF_OPEN:
                notify = self._transition(BREAKER_CLOSED)
            else:
                self._consecutive_failures = 0
                notify = None
        self._fire(notify)

    def record_failure(self) -> None:
        """A call that was allowed through failed."""
        with self._lock:
            if self._state == BREAKER_HALF_OPEN:
                notify = self._transition(BREAKER_OPEN)
            elif self._state == BREAKER_CLOSED:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.failure_threshold:
                    notify = self._transition(BREAKER_OPEN)
                else:
                    notify = None
            else:
                notify = None
        self._fire(notify)

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def reset(self) -> None:
        """Force the breaker closed (operator override)."""
        with self._lock:
            notify = self._transition(BREAKER_CLOSED)
            self._consecutive_failures = 0
        self._fire(notify)

    def snapshot(self) -> Dict[str, object]:
        """JSON-shaped view for ``/stats`` and the chaos assertions."""
        with self._lock:
            remaining = 0.0
            if self._state == BREAKER_OPEN:
                remaining = max(
                    0.0, self.cooldown - (self._clock() - self._opened_at)
                )
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown,
                "cooldown_remaining_s": remaining,
                "transitions": dict(self._transitions),
            }
