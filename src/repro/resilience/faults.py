"""Deterministic fault injection for chaos testing the serving path.

A :class:`FaultInjector` is a hook the inference engine calls once per
tile-job *attempt* (:meth:`FaultInjector.on_tile`).  Every decision —
raise a transient fault, add latency, kill the worker thread — derives
from the constructor arguments and a seeded RNG, so a given injector
produces the same fault schedule on every run.  That determinism is what
lets the chaos suite assert exact outcomes ("attempts 1–2 fail, attempt 3
succeeds and the output is bit-identical to the clean engine") instead of
flaky probabilistic ones.

Faults come in three flavours:

* :class:`InjectedFault` — an ordinary exception, standing in for a
  poisoned tile / transient compute failure.  Retryable.
* latency — ``time.sleep`` inside the worker, standing in for a wedged
  BLAS call or an overloaded core.  Trips deadline / wedge detection.
* :class:`WorkerDeath` — derives from :class:`BaseException` so the
  worker's normal ``except Exception`` fault handling cannot swallow it;
  the worker loop re-queues the in-flight job and lets the thread die,
  standing in for ``kill -9`` of a worker.  The supervisor must respawn.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, FrozenSet, Iterable


class InjectedFault(RuntimeError):
    """A synthetic, retryable tile-compute failure."""


class WorkerDeath(BaseException):
    """Synthetic worker-thread death (``kill -9`` stand-in).

    Deliberately *not* an :class:`Exception`: retry loops and generic
    fault handlers must not catch it — only the worker loop's dedicated
    handler, which re-queues the job and terminates the thread.
    """


class FaultInjector:
    """Seedable, thread-safe source of deterministic faults.

    Parameters
    ----------
    seed:
        Seeds the RNG used by ``fail_rate`` draws.
    fail_first:
        The first ``n`` calls raise :class:`InjectedFault` (transient
        faults that retries should absorb).
    fail_rate:
        Probability in ``[0, 1]`` that any later call raises
        :class:`InjectedFault`; draws come from the seeded RNG under the
        injector lock, so the schedule is reproducible even with
        concurrent workers (the *assignment* of faults to call indices is
        fixed; which thread draws each index may vary).
    persistent:
        Every call fails — the "model is poisoned" scenario that must
        open the circuit breaker.
    latency, latency_every:
        Sleep ``latency`` seconds on every ``latency_every``-th call
        (0 disables), simulating a wedged worker.
    kill_on_calls:
        Call indices (1-based) that raise :class:`WorkerDeath`.
    """

    def __init__(
        self,
        seed: int = 0,
        fail_first: int = 0,
        fail_rate: float = 0.0,
        persistent: bool = False,
        latency: float = 0.0,
        latency_every: int = 0,
        kill_on_calls: Iterable[int] = (),
    ) -> None:
        if not 0.0 <= fail_rate <= 1.0:
            raise ValueError("fail_rate must be in [0, 1]")
        if fail_first < 0 or latency < 0 or latency_every < 0:
            raise ValueError("fault knobs must be non-negative")
        self.fail_first = fail_first
        self.fail_rate = fail_rate
        self.persistent = persistent
        self.latency = latency
        self.latency_every = latency_every
        self._kill_on: FrozenSet[int] = frozenset(kill_on_calls)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.calls = 0
        self.faults_injected = 0
        self.kills_injected = 0
        self.delays_injected = 0

    def on_tile(self) -> None:
        """Engine hook: called once per tile-job attempt, may raise/sleep."""
        with self._lock:
            self.calls += 1
            n = self.calls
            kill = n in self._kill_on
            fault = not kill and (
                self.persistent
                or n <= self.fail_first
                or (self.fail_rate > 0.0
                    and self._rng.random() < self.fail_rate)
            )
            delay = 0.0
            if (not kill and not fault and self.latency > 0.0
                    and self.latency_every > 0
                    and n % self.latency_every == 0):
                delay = self.latency
            if kill:
                self.kills_injected += 1
            elif fault:
                self.faults_injected += 1
            elif delay:
                self.delays_injected += 1
        if kill:
            raise WorkerDeath(f"injected worker death on call {n}")
        if fault:
            raise InjectedFault(f"injected tile fault on call {n}")
        if delay:
            time.sleep(delay)

    def stats(self) -> Dict[str, int]:
        """Injection accounting, shaped for ``engine.stats()``."""
        with self._lock:
            return {
                "calls": self.calls,
                "faults": self.faults_injected,
                "kills": self.kills_injected,
                "delays": self.delays_injected,
            }
