"""Retry policy: bounded exponential backoff with deterministic jitter.

The serving engine retries *transient* tile faults (a poisoned buffer, a
spurious numerical error) before giving up; persistent faults exhaust the
budget quickly and feed the circuit breaker instead.  Delays grow
geometrically from ``base_delay`` and are capped at ``max_delay``; jitter
subtracts a random fraction of each delay so synchronised retries from
many workers decorrelate instead of stampeding together.

Jitter draws are *supplied by the caller* (a ``u ∈ [0, 1)`` uniform, or a
seeded ``random.Random``), never from global RNG state — policies are
frozen value objects and the whole schedule stays reproducible under a
fixed seed, which the chaos tests rely on.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts to make and how long to wait between them.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    initial attempt plus up to two retries; ``max_attempts=1`` disables
    retrying entirely.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff(self, attempt: int, u: float = 0.0) -> float:
        """Delay before retry number ``attempt`` (1-based failed attempt).

        ``u`` is a uniform draw in ``[0, 1)``; the returned delay is the
        capped geometric value scaled into ``[(1 - jitter)·d, d]``.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        if not 0.0 <= u < 1.0 and u != 0.0:
            raise ValueError("jitter draw must be in [0, 1)")
        delay = min(self.max_delay,
                    self.base_delay * self.multiplier ** (attempt - 1))
        return delay * (1.0 - self.jitter * u)

    def rng(self) -> random.Random:
        """A fresh seeded jitter RNG for this policy."""
        return random.Random(self.seed)


def call_with_retry(
    fn: Callable,
    policy: RetryPolicy,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    rng: Optional[random.Random] = None,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
):
    """Run ``fn()`` under ``policy``; re-raise the last error when spent.

    ``on_retry(attempt, exc)`` fires before each backoff sleep — the
    engine uses it to bump its retry counter.  Exceptions outside
    ``retry_on`` (notably :class:`~repro.resilience.faults.WorkerDeath`,
    a ``BaseException``) propagate immediately.
    """
    rng = policy.rng() if rng is None else rng
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            if attempt >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(policy.backoff(attempt, rng.random()))
