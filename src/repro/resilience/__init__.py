"""``repro.resilience`` — fault tolerance for serving and training.

The primitives the rest of the system composes into "no request fails
without a fallback, no training run dies without a recovery path":

* :mod:`~repro.resilience.faults` — deterministic, seedable fault
  injection (:class:`FaultInjector`) used by the chaos test suite to
  prove the rest of this package actually works.
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy`, bounded
  exponential backoff with deterministic jitter, for transient tile
  faults in the serving engine.
* :mod:`~repro.resilience.breaker` — :class:`CircuitBreaker`
  (closed → open → half-open) so a persistently failing model degrades
  to the bicubic fallback instead of burning retries forever.
* :mod:`~repro.resilience.guard` — :class:`NumericGuard`, the training
  side: NaN/Inf and loss-spike detection with skip-step and
  rollback-to-checkpoint escalation.

Wiring lives in :mod:`repro.serve.engine` (retry/breaker/degraded mode,
supervised worker pool) and :mod:`repro.train` (atomic checkpoints,
auto-resume, rollback); behaviour contracts live in ``docs/robustness.md``
and are enforced by ``tests/resilience/``.
"""

from .breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)
from .faults import FaultInjector, InjectedFault, WorkerDeath
from .guard import GUARD_OK, GUARD_ROLLBACK, GUARD_SKIP, NumericGuard
from .retry import RetryPolicy, call_with_retry

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "FaultInjector",
    "InjectedFault",
    "WorkerDeath",
    "GUARD_OK",
    "GUARD_ROLLBACK",
    "GUARD_SKIP",
    "NumericGuard",
    "RetryPolicy",
    "call_with_retry",
]
