"""Numeric guard: keep a long training run alive through bad steps.

A 480k-step run (the paper's full §5.1 protocol) will eventually see a
poisoned batch, an fp32 overflow, or a divergent update.  Left alone, one
NaN loss contaminates the ADAM moments and the weights within a step or
two and the whole run is lost.  The guard sits between ``backward()`` and
``optimizer.step()`` and classifies each step:

* ``"ok"`` — finite loss/gradients, no spike: apply the update.
* ``"skip"`` — NaN/Inf loss or gradient, or loss above
  ``spike_factor ×`` the recent running mean: *don't* apply the update,
  keep going.  The model and optimizer state stay untouched.
* ``"rollback"`` — ``max_consecutive`` bad steps in a row: the run is
  genuinely diverging; the trainer restores the last good checkpoint and
  multiplies the learning rate by ``lr_decay``.

Skipped losses are excluded from the running mean so a burst of spikes
cannot drag the baseline up and mask later divergence.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Optional

import numpy as np

GUARD_OK = "ok"
GUARD_SKIP = "skip"
GUARD_ROLLBACK = "rollback"


class NumericGuard:
    """Classifies training steps as ok / skip / rollback.

    Parameters
    ----------
    spike_factor:
        A finite loss above ``spike_factor × mean(recent good losses)``
        counts as bad (only once ``min_history`` good losses are seen).
    window:
        How many recent good losses form the spike baseline.
    max_consecutive:
        Bad steps in a row before signalling a rollback.
    lr_decay:
        Factor the trainer applies to the learning rate on rollback.
    min_history:
        Good losses required before spike detection arms.
    """

    def __init__(
        self,
        spike_factor: float = 10.0,
        window: int = 20,
        max_consecutive: int = 3,
        lr_decay: float = 0.5,
        min_history: int = 5,
    ) -> None:
        if spike_factor <= 1.0:
            raise ValueError("spike_factor must be > 1")
        if window < 1 or max_consecutive < 1 or min_history < 1:
            raise ValueError("window/max_consecutive/min_history must be >= 1")
        if not 0.0 < lr_decay <= 1.0:
            raise ValueError("lr_decay must be in (0, 1]")
        self.spike_factor = spike_factor
        self.max_consecutive = max_consecutive
        self.lr_decay = lr_decay
        self.min_history = min_history
        self._history: "deque[float]" = deque(maxlen=window)
        self._consecutive = 0
        self.ok_steps = 0
        self.skipped_steps = 0
        self.rollbacks_signalled = 0
        self.last_reason = ""

    # ------------------------------------------------------------------ #
    def check(
        self,
        loss: float,
        grads: Optional[Iterable[Optional[np.ndarray]]] = None,
    ) -> str:
        """Classify one step given its loss and (optionally) gradients."""
        reason = ""
        if not np.isfinite(loss):
            reason = f"non-finite loss {loss!r}"
        elif grads is not None:
            for i, g in enumerate(grads):
                if g is not None and not np.all(np.isfinite(g)):
                    reason = f"non-finite gradient in parameter {i}"
                    break
        if not reason and len(self._history) >= self.min_history:
            baseline = sum(self._history) / len(self._history)
            if baseline > 0 and loss > self.spike_factor * baseline:
                reason = (
                    f"loss spike {loss:.4g} > "
                    f"{self.spike_factor:g} x mean {baseline:.4g}"
                )

        if reason:
            self.last_reason = reason
            self.skipped_steps += 1
            self._consecutive += 1
            if self._consecutive >= self.max_consecutive:
                self._consecutive = 0
                self.rollbacks_signalled += 1
                return GUARD_ROLLBACK
            return GUARD_SKIP

        self.ok_steps += 1
        self._consecutive = 0
        self._history.append(float(loss))
        return GUARD_OK

    def stats(self) -> Dict[str, object]:
        return {
            "ok_steps": self.ok_steps,
            "skipped_steps": self.skipped_steps,
            "rollbacks_signalled": self.rollbacks_signalled,
            "consecutive_bad": self._consecutive,
            "last_reason": self.last_reason,
        }
