"""Command-line interface: train / eval / upscale / collapse / compile /
estimate / nas / serve / profile / tune.

Examples
--------
Train a SESR-M5 on the synthetic corpus and save a checkpoint::

    python -m repro.cli train --model M5 --scale 2 --epochs 20 \
        --out sesr_m5_x2.npz

Evaluate it on the benchmark suites::

    python -m repro.cli eval --model M5 --scale 2 --ckpt sesr_m5_x2.npz

Upscale a real image (PGM/PPM; colour images are processed on the Y
channel, as in the paper)::

    python -m repro.cli upscale --model M5 --scale 2 --ckpt sesr_m5_x2.npz \
        --input photo.ppm --output photo_x2.ppm --tile 128

Simulate NPU performance for 1080p -> 4K (Table 3)::

    python -m repro.cli estimate --resolution 1920x1080

Serve the collapsed network over HTTP (see docs/serving.md)::

    python -m repro.cli serve --model M5 --scale 2 --workers 4 --port 8000
    curl --data-binary @photo.ppm http://127.0.0.1:8000/v1/upscale -o photo_x2.ppm

Profile where the MACs and milliseconds go, expanded vs collapsed (Fig 3)::

    python -m repro.cli profile --model M5 --scale 2 --size 64 \
        --jsonl profile.jsonl

Inspect what the graph compiler does to the collapsed net (see
docs/compiler.md)::

    python -m repro.cli compile --model M5 --scale 2 --size 96 --dump-ir

Time the GEMM kernels per conv shape and persist the per-host tuning
cache that ``--gemm-backend auto`` consults (see docs/kernels.md)::

    python -m repro.cli tune --model M5 --scale 2 --size 96
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


# ---------------------------------------------------------------------- #
# helpers
# ---------------------------------------------------------------------- #
def _build_model(name: str, scale: int, seed: int = 0):
    from .core import FSRCNN, SESR

    if name.upper() == "FSRCNN":
        return FSRCNN(scale=scale, seed=seed)
    return SESR.from_name(name, scale=scale, seed=seed)


def _resolution(text: str):
    """Parse ``WxH`` (e.g. ``1920x1080``) to ``(h, w)``; argparse-friendly."""
    parts = text.lower().split("x")
    if len(parts) != 2:
        raise argparse.ArgumentTypeError(
            f"expected WxH (e.g. 1920x1080), got {text!r}"
        )
    try:
        w, h = (int(p) for p in parts)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"resolution components must be integers, got {text!r}"
        ) from None
    if w <= 0 or h <= 0:
        raise argparse.ArgumentTypeError(
            f"resolution components must be positive, got {text!r}"
        )
    return h, w


# ---------------------------------------------------------------------- #
# commands
# ---------------------------------------------------------------------- #
def cmd_train(args: argparse.Namespace) -> int:
    from .datasets import benchmark_suites
    from .nn import save_state
    from .train import ExperimentConfig, run_experiment

    model = _build_model(args.model, args.scale, args.seed)
    config = ExperimentConfig(
        scale=args.scale, epochs=args.epochs, train_images=args.images,
        patch_size=args.patch, lr=args.lr, seed=args.seed,
    )
    suites = benchmark_suites(args.scale, names=("set5", "div2k-val"))
    print(f"training {args.model} (x{args.scale}) for {args.epochs} epochs ...")
    result = run_experiment(
        model, config, suites,
        log_fn=(lambda step, loss: print(f"  step {step}: loss {loss:.4f}"))
        if args.verbose else None,
    )
    print(f"final loss: {result.train.final_loss:.4f}")
    for suite, metrics in result.metrics.items():
        print(f"  {suite}: {metrics['psnr']:.2f} dB / {metrics['ssim']:.4f}")
    if args.out:
        save_state(model, args.out)
        print(f"saved checkpoint: {args.out}")
    return 0


def cmd_eval(args: argparse.Namespace) -> int:
    from .datasets import ImageFolderDataset, benchmark_suites
    from .nn import load_state
    from .train import evaluate_model
    from .utils import format_table

    model = _build_model(args.model, args.scale, args.seed)
    if args.ckpt:
        load_state(model, args.ckpt)
    if args.data:
        # Real images: a directory of PGM/PPM HR files.
        suites = {args.data: ImageFolderDataset(args.data, scale=args.scale)}
    else:
        suites = benchmark_suites(args.scale)
    rows = []
    for name, ds in suites.items():
        m = evaluate_model(model, ds)
        rows.append([name, f"{m['psnr']:.2f}", f"{m['ssim']:.4f}"])
    print(format_table(["suite", "PSNR (dB)", "SSIM"], rows,
                       title=f"{args.model} x{args.scale}"))
    return 0


def cmd_upscale(args: argparse.Namespace) -> int:
    from .datasets import load_image, rgb_to_ycbcr, save_image, ycbcr_to_rgb
    from .datasets.degradation import bicubic_upscale
    from .deploy import self_ensemble, tiled_upscale
    from .nn import load_state
    from .train import predict_image

    model = _build_model(args.model, args.scale, args.seed)
    if args.ckpt:
        load_state(model, args.ckpt)
    if not args.no_compile:
        # Default inference path: collapse (exact, Algorithm 2) and run the
        # compiled planned-buffer executor; --no-compile keeps the eager
        # training-shaped forward as an escape hatch.
        from .compile import CaptureError, compile_model

        deployed = model.collapse() if hasattr(model, "collapse") else model
        deployed.eval()
        try:
            model = compile_model(deployed)
        except CaptureError:
            model = deployed
    img = load_image(args.input)

    def run_y(y: np.ndarray) -> np.ndarray:
        if args.ensemble:
            return self_ensemble(model, y, args.scale)
        if args.tile:
            return tiled_upscale(model, y, args.scale,
                                 tile=(args.tile, args.tile))
        return predict_image(model, y)

    if img.ndim == 2:
        out = run_y(img)
    else:
        # Paper protocol: super-resolve Y, bicubic-upscale chroma.
        ycbcr = rgb_to_ycbcr(img)
        y_sr = run_y(ycbcr[..., 0])
        cb = bicubic_upscale(ycbcr[..., 1], args.scale)
        cr = bicubic_upscale(ycbcr[..., 2], args.scale)
        out = ycbcr_to_rgb(np.stack([y_sr, cb, cr], axis=2))
    save_image(args.output, out)
    print(f"{args.input} {img.shape[:2]} -> {args.output} {out.shape[:2]}")
    return 0


def cmd_collapse(args: argparse.Namespace) -> int:
    from .nn import load_state, save_state

    model = _build_model(args.model, args.scale, args.seed)
    if args.ckpt:
        load_state(model, args.ckpt)
    collapsed = model.collapse()
    save_state(collapsed, args.out)
    print(
        f"collapsed {args.model}: {model.num_parameters():,} training params "
        f"-> {model.collapsed_num_parameters():,} inference weights "
        f"({args.out})"
    )
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    from .compile import compile_model
    from .nn import load_state
    from .utils import format_table

    model = _build_model(args.model, args.scale, args.seed)
    if args.ckpt:
        load_state(model, args.ckpt)
    if hasattr(model, "collapse"):
        model = model.collapse()
    if args.precision == "int8":
        if not hasattr(model, "convs"):
            print(f"repro compile: error: --precision int8 requires a SESR "
                  f"model, got {args.model}", file=sys.stderr)
            return 2
        from .deploy import quantize_sesr

        model = quantize_sesr(model)
    model.eval()
    compiled = compile_model(model, optimize=not args.no_optimize)
    graph = compiled.graph

    rows = [
        [e.name, str(e.changes), f"{e.nodes_before} -> {e.nodes_after}"]
        for e in (compiled.pass_log or [])
    ]
    if rows:
        print(format_table(["pass", "changes", "nodes"], rows,
                           title=f"{compiled.source or args.model}: passes"))
    else:
        print(f"{compiled.source or args.model}: optimisation disabled "
              f"({len(graph.nodes)} nodes)")

    mem = compiled.memory_stats(args.size, args.size)
    print(format_table(
        ["metric", "value"],
        [
            ["nodes", f"{len(graph.nodes)}"],
            ["arena slots", f"{mem['slots']}"],
            ["planned peak", f"{mem['arena_bytes']:,} B"],
            ["naive peak", f"{mem['naive_bytes']:,} B"],
            ["liveness lower bound", f"{mem['lower_bound_bytes']:,} B"],
            ["scratch (cols/tmp/pads)", f"{mem['scratch_bytes']:,} B"],
            ["MACs", f"{graph.macs(args.size, args.size):,}"],
            ["receptive radius", f"{compiled.receptive_radius} px"],
        ],
        title=f"plan @ {args.size}x{args.size} LR ({args.precision})",
    ))
    if args.dump_ir:
        print(graph.pretty())
    return 0


def cmd_estimate(args: argparse.Namespace) -> int:
    from .hw import ETHOS_N78_4TOPS, compare_models, fsrcnn_graph, sesr_hw_graph

    h, w = args.resolution
    graphs = {
        "FSRCNN": fsrcnn_graph(args.scale, h, w),
        "SESR-M3": sesr_hw_graph(16, 3, args.scale, h, w),
        "SESR-M5": sesr_hw_graph(16, 5, args.scale, h, w),
        "SESR-M7": sesr_hw_graph(16, 7, args.scale, h, w),
        "SESR-M11": sesr_hw_graph(16, 11, args.scale, h, w),
        "SESR-XL": sesr_hw_graph(32, 11, args.scale, h, w),
    }
    tile = (args.tile, args.tile) if args.tile else None
    print(f"Simulated Ethos-N78 (4 TOP/s), {w}x{h} x{args.scale}")
    print(compare_models(graphs, ETHOS_N78_4TOPS, tile=tile))
    return 0


def cmd_nas(args: argparse.Namespace) -> int:
    from .datasets import PatchSampler, SyntheticDataset
    from .hw import ETHOS_N78_4TOPS
    from .nas import (
        DNASConfig,
        SESRSupernet,
        genotype_latency_ms,
        search,
        sesr_m_genotype,
    )

    ds = SyntheticDataset("div2k", n_images=8, size=(96, 96),
                          scale=args.scale, seed=args.seed)
    sampler = PatchSampler(ds, scale=args.scale, patch_size=12,
                           crops_per_image=8, batch_size=6, seed=args.seed)
    supernet = SESRSupernet(scale=args.scale, f=16, slots=args.slots,
                            expansion=32, seed=args.seed)
    config = DNASConfig(steps=args.steps, latency_weight=args.latency_weight)
    print(f"searching ({args.steps} steps, λ={args.latency_weight}) ...")
    result = search(supernet, sampler, config, npu=ETHOS_N78_4TOPS)
    lat = genotype_latency_ms(result.genotype, ETHOS_N78_4TOPS, 200, 200)
    base = sesr_m_genotype(args.slots, 16, args.scale)
    lat_base = genotype_latency_ms(base, ETHOS_N78_4TOPS, 200, 200)
    print(f"found: {result.genotype.describe()}")
    print(f"simulated latency @200x200: {lat:.3f} ms "
          f"(manual SESR-M{args.slots}: {lat_base:.3f} ms)")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from .nn import no_grad
    from .nn import Tensor as _Tensor
    from .obs import Profiler, profile
    from .utils import format_table

    def build(mode: str):
        if args.model.upper() == "FSRCNN":
            return _build_model(args.model, args.scale, args.seed)
        from .core import SESR

        return SESR.from_name(
            args.model, scale=args.scale, seed=args.seed, mode=mode
        )

    def run(mode: str) -> Profiler:
        rng = np.random.default_rng(args.seed)
        x = rng.random((args.batch, args.size, args.size, 1))
        prof = Profiler()
        if mode == "deployed":
            model = build("collapsed").collapse()
            if args.precision == "int8":
                from .deploy import quantize_sesr

                model = quantize_sesr(model)
            model.eval()
            with profile(prof), no_grad():
                for _ in range(args.repeats):
                    model(_Tensor(x))
        else:
            # Training-shaped forward (autograd on), the cost Fig. 3 plots.
            model = build(mode)
            model.train()
            with profile(prof):
                for _ in range(args.repeats):
                    model(_Tensor(x))
        return prof

    modes = (
        ("expanded", "collapsed") if args.mode == "both" else (args.mode,)
    )
    totals = {}
    for mode in modes:
        prof = run(mode)
        totals[mode] = prof.total_macs()
        rows = [
            [op, f"{st['calls']}", f"{st['macs']:,}",
             f"{st['total_ms']:.2f}", f"{st['mean_ms']:.3f}"]
            for op, st in prof.summary().items()
        ]
        rows.append(["TOTAL", "", f"{prof.total_macs():,}",
                     f"{prof.total_ms():.2f}", ""])
        precision = args.precision if mode == "deployed" else "fp32"
        print(format_table(
            ["op", "calls", "MACs", "total ms", "mean ms"], rows,
            title=(f"{args.model} x{args.scale} {mode} ({precision}), "
                   f"batch {args.batch}, {args.size}x{args.size}, "
                   f"{args.repeats} forward(s)"),
        ))
        if args.jsonl:
            prof.write_jsonl(
                args.jsonl, model=args.model, scale=args.scale, mode=mode,
                precision=precision, batch=args.batch, size=args.size,
                repeats=args.repeats,
            )
    if args.mode == "both" and totals.get("collapsed"):
        ratio = totals["expanded"] / totals["collapsed"]
        print(f"expanded/collapsed MAC ratio: {ratio:.2f}x "
              f"({totals['expanded']:,} vs {totals['collapsed']:,})")
    if args.jsonl:
        print(f"wrote per-op records: {args.jsonl}")
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    from .compile import CaptureError, compile_model
    from .kernels import save_cache, tune_model
    from .nn import load_state
    from .utils import format_table

    model = _build_model(args.model, args.scale, args.seed)
    if args.ckpt:
        load_state(model, args.ckpt)
    if hasattr(model, "collapse"):
        model = model.collapse()
    model.eval()
    try:
        compiled = compile_model(model)
    except CaptureError as exc:
        print(f"repro tune: error: cannot compile {args.model}: {exc}",
              file=sys.stderr)
        return 2
    print(f"timing GEMM kernels for {args.model} x{args.scale} "
          f"@ {args.size}x{args.size} LR (best of {args.repeats}) ...")
    rows = tune_model(
        compiled, size=(args.size, args.size),
        repeats=args.repeats, seed=args.seed,
    )
    table = [
        [key, row["kernel"]]
        + [f"{row['ms'][k]:.3f}" for k in ("blas", "blocked", "direct")]
        for key, row in rows.items()
    ]
    print(format_table(
        ["conv shape", "winner", "blas ms", "blocked ms", "direct ms"],
        table, title="per-shape kernel winners",
    ))
    if args.no_save:
        print("cache not written (--no-save)")
    else:
        path = save_cache(rows, path=args.cache or None)
        print(f"wrote {len(rows)} shape row(s): {path}")
    return 0


def _install_shutdown_handlers() -> None:
    """Route SIGINT/SIGTERM through KeyboardInterrupt for a clean drain.

    ``cmd_serve`` catches the KeyboardInterrupt, closes the server (which
    drains in-flight requests via ``engine.shutdown(wait=True)``), and
    exits 0 — instead of a traceback on Ctrl-C or an instant kill on a
    supervisor's SIGTERM.
    """
    import signal

    def _handler(signum, frame):
        raise KeyboardInterrupt

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, _handler)
        except (ValueError, OSError):  # not the main thread / unsupported
            pass


def cmd_serve(args: argparse.Namespace) -> int:
    from .resilience import RetryPolicy
    from .serve import (
        EngineConfig,
        InferenceEngine,
        ModelKey,
        ModelRegistry,
        make_server,
    )
    from .train import CheckpointCorrupt

    registry = ModelRegistry(seed=args.seed)
    key = ModelKey(
        name=args.model, scale=args.scale, ckpt=args.ckpt,
        precision=args.precision,
    )
    config_kwargs = dict(
        workers=args.workers,
        tile=args.tile,
        microbatch=args.microbatch,
        max_batch=args.max_batch,
        batch_window_ms=args.batch_window_ms,
        cache_size=args.cache_size,
        max_pending=args.queue_size,
        default_timeout=args.timeout,
        retry=RetryPolicy(max_attempts=args.retries),
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        degraded_mode=not args.no_degraded,
        wedge_timeout=args.timeout * 4,
        compiled=not args.no_compile,
    )
    # Omitted => EngineConfig's default applies, which honours the
    # REPRO_WORKER_BACKEND / REPRO_GEMM_BACKEND environment variables.
    if args.worker_backend:
        config_kwargs["worker_backend"] = args.worker_backend
    if args.gemm_backend:
        config_kwargs["gemm_backend"] = args.gemm_backend
    try:
        config = EngineConfig(**config_kwargs)
    except ValueError as exc:
        print(f"repro serve: error: {exc.args[0]}", file=sys.stderr)
        return 2
    try:
        engine = InferenceEngine(registry, key, config=config)
    except (KeyError, FileNotFoundError, CheckpointCorrupt) as exc:
        print(f"repro serve: error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.frontend == "async":
        from .dataplane import make_async_server

        server = make_async_server(
            engine, args.host, args.port, verbose=args.verbose,
            max_body_bytes=args.max_body_bytes,
        )
    else:
        server = make_server(
            engine, args.host, args.port, verbose=args.verbose,
            max_body_bytes=args.max_body_bytes,
        )
    host, port = server.server_address[:2]
    print(f"serving {args.model} x{args.scale} ({args.precision}) "
          f"on http://{host}:{port} [{args.frontend} frontend]")
    print(config.describe())
    print("endpoints: POST /v1/upscale  GET /v1/healthz  GET /v1/stats  "
          "GET /v1/metrics  (Ctrl-C stops)")
    _install_shutdown_handlers()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down (draining in-flight requests) ...")
    finally:
        server.close()
    return 0


# ---------------------------------------------------------------------- #
# parser
# ---------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SESR reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--model", default="M5",
                       help="M3|M5|M7|M11|XL|FSRCNN (default M5)")
        p.add_argument("--scale", type=int, default=2, choices=(2, 4))
        p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("train", help="train on the synthetic corpus")
    common(p)
    p.add_argument("--epochs", type=int, default=20)
    p.add_argument("--images", type=int, default=12)
    p.add_argument("--patch", type=int, default=16)
    p.add_argument("--lr", type=float, default=1e-3)
    p.add_argument("--out", default="", help="checkpoint path (.npz)")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=cmd_train)

    p = sub.add_parser("eval", help="evaluate on the benchmark suites")
    common(p)
    p.add_argument("--ckpt", default="")
    p.add_argument("--data", default="",
                   help="directory of PGM/PPM HR images to evaluate on "
                        "(default: built-in synthetic suites)")
    p.set_defaults(fn=cmd_eval)

    p = sub.add_parser("upscale", help="super-resolve a PGM/PPM image")
    common(p)
    p.add_argument("--ckpt", default="")
    p.add_argument("--input", required=True)
    p.add_argument("--output", required=True)
    p.add_argument("--tile", type=int, default=0,
                   help="tile size for tiled inference (0 = full frame)")
    p.add_argument("--ensemble", action="store_true",
                   help="geometric x8 self-ensemble (slower, ~+0.1 dB)")
    p.add_argument("--no-compile", action="store_true",
                   help="run the eager forward instead of the compiled "
                        "planned-buffer executor")
    p.set_defaults(fn=cmd_upscale)

    p = sub.add_parser("collapse", help="export the collapsed inference net")
    common(p)
    p.add_argument("--ckpt", default="")
    p.add_argument("--out", required=True)
    p.set_defaults(fn=cmd_collapse)

    p = sub.add_parser("estimate", help="simulate NPU performance (Table 3)")
    p.add_argument("--resolution", type=_resolution, default="1920x1080",
                   help="WxH input")
    p.add_argument("--scale", type=int, default=2, choices=(2, 4))
    p.add_argument("--tile", type=int, default=0)
    p.set_defaults(fn=cmd_estimate)

    p = sub.add_parser("serve", help="run the HTTP super-resolution server")
    common(p)
    p.add_argument("--ckpt", default="")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8000,
                   help="TCP port (0 = ephemeral)")
    p.add_argument("--workers", type=int, default=4,
                   help="inference workers (threads or processes, see "
                        "--worker-backend)")
    p.add_argument("--worker-backend", choices=("thread", "process"),
                   default=None,
                   help="where tile compute runs: 'thread' (in-process) "
                        "or 'process' (spawned workers + shared-memory "
                        "tile arenas; escapes the GIL).  Default: the "
                        "REPRO_WORKER_BACKEND env var, else 'thread'")
    p.add_argument("--gemm-backend", choices=("auto", "blas", "blocked"),
                   default=None,
                   help="GEMM kernel for compiled conv steps: 'blas' "
                        "(vendor sgemm, per-sample in exact batches), "
                        "'blocked' (fixed-order kernel; one stacked GEMM "
                        "per coalesced batch, still bit-exact), or "
                        "'auto' (per-shape winner from the 'repro tune' "
                        "cache).  Default: the REPRO_GEMM_BACKEND env "
                        "var, else 'blas'")
    p.add_argument("--frontend", choices=("sync", "async"), default="sync",
                   help="HTTP front-end: 'sync' (thread per connection) "
                        "or 'async' (single event loop; same /v1 wire "
                        "contract)")
    p.add_argument("--tile", type=int, default=96,
                   help="LR tile size fanned across workers")
    p.add_argument("--precision", choices=("fp32", "int8"), default="fp32",
                   help="deployed arithmetic (int8 = weights-only PTQ)")
    p.add_argument("--cache-size", type=int, default=128,
                   help="LRU output-cache entries (0 disables)")
    p.add_argument("--queue-size", type=int, default=32,
                   help="max in-flight requests before 503s")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="per-request deadline in seconds")
    p.add_argument("--microbatch", action="store_true",
                   help="batch same-shape tiles through one conv call "
                        "(faster; ~1-ulp divergence from exact mode)")
    p.add_argument("--batch-window-ms", type=float, default=0.0,
                   help="coalesce same-shape tiles from concurrent "
                        "requests that arrive within this window into "
                        "one bit-exact forward pass (0 disables)")
    p.add_argument("--max-batch", type=int, default=8,
                   help="largest coalesced (or micro-) batch fed to one "
                        "forward pass")
    p.add_argument("--max-body-bytes", type=int, default=64 * 1024 * 1024,
                   help="reject larger request bodies with HTTP 413 "
                        "before reading them (default 64 MiB)")
    p.add_argument("--retries", type=int, default=3,
                   help="attempts per tile job incl. the first "
                        "(exponential backoff between them)")
    p.add_argument("--breaker-threshold", type=int, default=5,
                   help="consecutive request failures that open the "
                        "circuit breaker")
    p.add_argument("--breaker-cooldown", type=float, default=30.0,
                   help="seconds the breaker stays open before probing "
                        "the model again")
    p.add_argument("--no-degraded", action="store_true",
                   help="fail requests instead of falling back to "
                        "bicubic when the model path is unavailable")
    p.add_argument("--no-compile", action="store_true",
                   help="serve the eager collapsed net instead of the "
                        "compiled plan-cache path")
    p.add_argument("--verbose", action="store_true",
                   help="log each HTTP request")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "compile",
        help="compile the collapsed net: dump IR, pass log, and plan stats",
    )
    common(p)
    p.add_argument("--ckpt", default="")
    p.add_argument("--precision", choices=("fp32", "int8"), default="fp32",
                   help="deployed arithmetic (int8 = weights-only PTQ)")
    p.add_argument("--size", type=int, default=96,
                   help="LR input height/width for plan/MAC stats")
    p.add_argument("--dump-ir", action="store_true",
                   help="print the optimised graph node by node")
    p.add_argument("--no-optimize", action="store_true",
                   help="skip the pass pipeline (capture + plan only)")
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser(
        "profile",
        help="per-op wall-clock/MAC profile of a model forward (Fig. 3)",
    )
    common(p)
    p.add_argument("--mode",
                   choices=("expanded", "collapsed", "deployed", "both"),
                   default="both",
                   help="training forward (expanded/collapsed, §3.3), the "
                        "deployed inference net, or both training modes "
                        "side by side (default)")
    p.add_argument("--precision", choices=("fp32", "int8"), default="fp32",
                   help="deployed-mode arithmetic (ignored otherwise)")
    p.add_argument("--batch", type=int, default=1)
    p.add_argument("--size", type=int, default=32,
                   help="LR input height/width (default 32)")
    p.add_argument("--repeats", type=int, default=1,
                   help="forward passes to accumulate (default 1)")
    p.add_argument("--jsonl", default="",
                   help="append one JSON line per op to this file")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser(
        "tune",
        help="time blas/blocked/direct per conv shape; write the "
             "per-host cache that --gemm-backend auto consults",
    )
    common(p)
    p.add_argument("--ckpt", default="")
    p.add_argument("--size", type=int, default=96,
                   help="LR input height/width to time at (default 96)")
    p.add_argument("--repeats", type=int, default=3,
                   help="timing repeats per kernel; best-of wins")
    p.add_argument("--cache", default="",
                   help="cache file to write (default: "
                        "$REPRO_TUNING_CACHE, else "
                        "~/.cache/repro/kernel_tuning.json)")
    p.add_argument("--no-save", action="store_true",
                   help="print the timings without writing the cache")
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser("nas", help="run a small hardware-aware DNAS")
    p.add_argument("--scale", type=int, default=2, choices=(2, 4))
    p.add_argument("--slots", type=int, default=5)
    p.add_argument("--steps", type=int, default=80)
    p.add_argument("--latency-weight", type=float, default=0.02)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_nas)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
