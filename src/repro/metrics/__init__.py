"""``repro.metrics`` — image quality and model complexity accounting."""

from .edges import edge_psnr, gms, gradient_magnitude
from .psnr import psnr, shave
from .ssim import gaussian_window, ssim
from .stats import (
    Summary,
    paired_bootstrap,
    paired_difference,
    per_image_scores,
    summarize,
)
from .complexity import (
    LayerSpec,
    count_macs,
    count_params,
    fsrcnn_specs,
    macs_to_720p,
    sesr_specs,
    specs_from_module,
    vdsr_specs,
)

__all__ = [
    "edge_psnr",
    "gms",
    "gradient_magnitude",
    "psnr",
    "shave",
    "gaussian_window",
    "ssim",
    "Summary",
    "paired_bootstrap",
    "paired_difference",
    "per_image_scores",
    "summarize",
    "LayerSpec",
    "count_macs",
    "count_params",
    "fsrcnn_specs",
    "macs_to_720p",
    "sesr_specs",
    "specs_from_module",
    "vdsr_specs",
]
