"""Structural similarity (SSIM), Wang et al. 2004 — the paper's second metric.

Standard single-scale SSIM with an 11×11 Gaussian window (σ = 1.5) and the
canonical stabilisers ``C1 = (0.01·L)²``, ``C2 = (0.03·L)²``.  Implemented
with separable correlation in pure NumPy (valid-mode windows, so no border
effects leak into the score).
"""

from __future__ import annotations

import numpy as np

from .psnr import shave


def gaussian_window(size: int = 11, sigma: float = 1.5) -> np.ndarray:
    """Normalised 1-D Gaussian window."""
    half = (size - 1) / 2.0
    coords = np.arange(size) - half
    g = np.exp(-(coords**2) / (2.0 * sigma**2))
    return g / g.sum()


def _filter2_valid(img: np.ndarray, window: np.ndarray) -> np.ndarray:
    """Separable 2-D correlation with ``window`` along both axes, valid mode."""
    k = window.size
    # Along axis 0.
    h, w = img.shape
    out = np.zeros((h - k + 1, w), dtype=np.float64)
    for i, coeff in enumerate(window):
        out += coeff * img[i : i + h - k + 1, :]
    # Along axis 1.
    out2 = np.zeros((h - k + 1, w - k + 1), dtype=np.float64)
    for j, coeff in enumerate(window):
        out2 += coeff * out[:, j : j + w - k + 1]
    return out2


def ssim(
    pred: np.ndarray,
    target: np.ndarray,
    border: int = 0,
    data_range: float = 1.0,
    window_size: int = 11,
    sigma: float = 1.5,
) -> float:
    """Mean SSIM over a single-channel image pair in ``[0, data_range]``."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    if pred.ndim == 3 and pred.shape[2] == 1:
        pred, target = pred[..., 0], target[..., 0]
    if pred.ndim != 2:
        raise ValueError("ssim expects single-channel (H, W) images")
    pred, target = shave(pred, border), shave(target, border)
    pred = np.clip(pred, 0.0, data_range)

    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2
    win = gaussian_window(window_size, sigma)

    mu_x = _filter2_valid(pred, win)
    mu_y = _filter2_valid(target, win)
    mu_xx, mu_yy, mu_xy = mu_x * mu_x, mu_y * mu_y, mu_x * mu_y
    sigma_x = _filter2_valid(pred * pred, win) - mu_xx
    sigma_y = _filter2_valid(target * target, win) - mu_yy
    sigma_xy = _filter2_valid(pred * target, win) - mu_xy

    numerator = (2 * mu_xy + c1) * (2 * sigma_xy + c2)
    denominator = (mu_xx + mu_yy + c1) * (sigma_x + sigma_y + c2)
    return float(np.mean(numerator / denominator))
