"""Parameter and MAC accounting (Tables 1–2 compute columns, Fig. 1(a)).

The unit of analysis is a :class:`LayerSpec` sequence — a tiny inference IR
describing each layer's kernel, channel counts, and the resolution it runs
at *relative to the network input*.  The same IR drives the NPU performance
estimator in :mod:`repro.hw`.

Counting conventions (matching the paper and the broader SISR literature):

* parameters — convolution weights only; biases and PReLU slopes excluded.
  (This reproduces the paper's 13.52K for SESR-M5 and 12.46K for FSRCNN.)
* MACs — ``kh·kw·C_in·C_out`` per *output* pixel, including for transposed
  convolutions (the convention under which FSRCNN ×2 → 720p costs 6.00G).
* elementwise adds / activations / depth-to-space — zero MACs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

LAYER_KINDS = ("conv", "deconv", "act", "add", "depth_to_space")


@dataclass(frozen=True)
class LayerSpec:
    """One inference-graph layer.

    Attributes
    ----------
    kind:
        One of :data:`LAYER_KINDS`.
    kernel:
        ``(kh, kw)`` for conv/deconv; ``(1, 1)`` otherwise.
    cin, cout:
        Channel counts (for ``add``: ``cin`` counts *source operand* channels
        read in addition to the main path, ``cout`` the result channels).
    res_scale:
        Output resolution relative to the network's low-res input (1 for
        LR-space layers, ``scale`` for HR-space layers such as VDSR's convs
        or FSRCNN's deconv output).
    name:
        Human-readable label for reports.
    """

    kind: str
    kernel: Tuple[int, int] = (1, 1)
    cin: int = 0
    cout: int = 0
    res_scale: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.kind not in LAYER_KINDS:
            raise ValueError(f"unknown layer kind {self.kind!r}")

    # -- accounting ---------------------------------------------------- #
    def weight_params(self) -> int:
        if self.kind in ("conv", "deconv"):
            kh, kw = self.kernel
            return kh * kw * self.cin * self.cout
        return 0

    def macs(self, in_h: int, in_w: int) -> int:
        """MACs for a network input of ``in_h × in_w`` pixels."""
        if self.kind not in ("conv", "deconv"):
            return 0
        kh, kw = self.kernel
        out_px = round(in_h * self.res_scale) * round(in_w * self.res_scale)
        return kh * kw * self.cin * self.cout * out_px


def count_params(specs: Sequence[LayerSpec]) -> int:
    """Total convolution weight parameters of a spec sequence."""
    return sum(s.weight_params() for s in specs)


def count_macs(specs: Sequence[LayerSpec], in_h: int, in_w: int) -> int:
    """Total MACs to process one ``in_h × in_w`` low-res input."""
    return sum(s.macs(in_h, in_w) for s in specs)


# ---------------------------------------------------------------------- #
# spec builders for the architectures we model exactly
# ---------------------------------------------------------------------- #
def sesr_specs(
    f: int,
    m: int,
    scale: int,
    input_residual: bool = True,
    feature_residual: bool = True,
    activation: str = "prelu",
    two_stage_head: bool = False,
) -> List[LayerSpec]:
    """Inference-time (collapsed) SESR layer specs (Fig. 2(d)).

    ``two_stage_head`` models the future-work ×4 variant (two conv+d2s
    upsampling stages, the second at 2× resolution — costing the "extra
    MACs" the paper's single-conv head avoids, §5.1/§5.2).
    """
    s2 = scale * scale
    specs: List[LayerSpec] = [
        LayerSpec("conv", (5, 5), 1, f, 1.0, "first_5x5"),
        LayerSpec("act", (1, 1), f, f, 1.0, f"{activation}_first"),
    ]
    for i in range(m):
        specs.append(LayerSpec("conv", (3, 3), f, f, 1.0, f"conv3x3_{i}"))
        specs.append(LayerSpec("act", (1, 1), f, f, 1.0, f"{activation}_{i}"))
    if feature_residual:
        specs.append(LayerSpec("add", (1, 1), f, f, 1.0, "long_blue_residual"))
    if two_stage_head:
        if scale != 4:
            raise ValueError("two_stage_head applies to scale 4 only")
        return specs + [
            LayerSpec("conv", (5, 5), f, 4 * f, 1.0, "up1_5x5"),
            LayerSpec("act", (1, 1), 4 * f, 4 * f, 1.0, f"{activation}_up1"),
            LayerSpec("depth_to_space", (1, 1), 4 * f, f, 2.0, "d2s_0"),
            LayerSpec("conv", (5, 5), f, 4, 2.0, "up2_5x5"),
            LayerSpec("depth_to_space", (1, 1), 4, 1, 4.0, "d2s_1"),
        ]
    specs.append(LayerSpec("conv", (5, 5), f, s2, 1.0, "last_5x5"))
    if input_residual:
        specs.append(LayerSpec("add", (1, 1), 1, s2, 1.0, "long_black_residual"))
    # The paper applies depth-to-space once for ×2 and *twice* for ×4
    # (§5.1), and its Table 3 ×4 hardware numbers are estimated with the
    # same two-step schedule (§5.6) — so the spec mirrors it.
    res, ch = 1.0, s2
    for step, _ in enumerate(range(scale // 2)):
        res *= 2.0
        ch //= 4
        specs.append(
            LayerSpec("depth_to_space", (1, 1), ch * 4, ch, res, f"d2s_{step}")
        )
    return specs


def fsrcnn_specs(
    scale: int, d: int = 56, s: int = 12, m: int = 4, activation: str = "prelu"
) -> List[LayerSpec]:
    """FSRCNN(d, s, m) layer specs; the 9×9 deconv runs at HR resolution."""
    specs: List[LayerSpec] = [
        LayerSpec("conv", (5, 5), 1, d, 1.0, "feature_5x5"),
        LayerSpec("act", (1, 1), d, d, 1.0, f"{activation}_feature"),
        LayerSpec("conv", (1, 1), d, s, 1.0, "shrink_1x1"),
        LayerSpec("act", (1, 1), s, s, 1.0, f"{activation}_shrink"),
    ]
    for i in range(m):
        specs.append(LayerSpec("conv", (3, 3), s, s, 1.0, f"map3x3_{i}"))
        specs.append(LayerSpec("act", (1, 1), s, s, 1.0, f"{activation}_map{i}"))
    specs += [
        LayerSpec("conv", (1, 1), s, d, 1.0, "expand_1x1"),
        LayerSpec("act", (1, 1), d, d, 1.0, f"{activation}_expand"),
        LayerSpec("deconv", (9, 9), d, 1, float(scale), "deconv_9x9"),
    ]
    return specs


def vdsr_specs(scale: int, depth: int = 20, width: int = 64) -> List[LayerSpec]:
    """VDSR: ``depth`` 3×3 convs at HR resolution (input is bicubic-upscaled)."""
    rs = float(scale)
    specs = [LayerSpec("conv", (3, 3), 1, width, rs, "conv_in")]
    specs.append(LayerSpec("act", (1, 1), width, width, rs, "relu_in"))
    for i in range(depth - 2):
        specs.append(LayerSpec("conv", (3, 3), width, width, rs, f"conv_{i}"))
        specs.append(LayerSpec("act", (1, 1), width, width, rs, f"relu_{i}"))
    specs.append(LayerSpec("conv", (3, 3), width, 1, rs, "conv_out"))
    specs.append(LayerSpec("add", (1, 1), 1, 1, rs, "global_residual"))
    return specs


def specs_from_module(model) -> List[LayerSpec]:
    """Derive specs from a live ``repro`` model (SESR/FSRCNN instances).

    Routed through the compiler IR (:mod:`repro.compile`) so accounting,
    the NPU estimator, and the compiled executor all describe the model
    identically; :func:`sesr_specs`/:func:`fsrcnn_specs` above remain the
    independent closed-form builders the IR export is cross-checked
    against.
    """
    # Imported lazily to keep metrics importable without the core package
    # (and because repro.compile itself imports this module).
    from ..compile import fsrcnn_ir, sesr_ir, to_layer_specs
    from ..core.fsrcnn import FSRCNN
    from ..core.sesr import SESR, CollapsedSESR

    if isinstance(model, (SESR, CollapsedSESR)):
        return to_layer_specs(sesr_ir(
            model.f,
            model.m,
            model.scale,
            input_residual=model.input_residual,
            feature_residual=model.feature_residual,
            activation=model.activation,
            two_stage_head=model.two_stage_head,
        ))
    if isinstance(model, FSRCNN):
        return to_layer_specs(fsrcnn_ir(
            model.scale, model.d, model.s, model.m,
            activation=model.activation,
        ))
    raise TypeError(f"no spec builder for {type(model).__name__}")


def macs_to_720p(specs: Sequence[LayerSpec], scale: int) -> int:
    """MACs to produce a 1280×720 output (the unit of Tables 1–2)."""
    return count_macs(specs, 720 // scale, 1280 // scale)
