"""Statistics over per-image quality scores.

The paper notes that 0.1–0.2 dB gaps between tiny models are significant
because the run-to-run standard deviation is ~0.02 dB (§5.5).  These
helpers put error bars and paired tests behind that kind of statement:

* :func:`summarize` — mean / std / 95% CI of a score list;
* :func:`paired_bootstrap` — probability that model A beats model B on the
  *same* images (paired, so image difficulty cancels out);
* :func:`paired_difference` — mean per-image gap with a CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Mean ± spread of a metric over a suite."""

    mean: float
    std: float
    ci_low: float
    ci_high: float
    n: int

    def __str__(self) -> str:  # pragma: no cover
        return f"{self.mean:.2f} ± {self.std:.2f} (n={self.n})"


def summarize(scores: Sequence[float], confidence: float = 0.95) -> Summary:
    """Mean, standard deviation, and normal-approximation CI."""
    arr = np.asarray(scores, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no scores to summarize")
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    from scipy.stats import norm

    z = float(norm.ppf(0.5 + confidence / 2))
    half = z * std / np.sqrt(arr.size)
    return Summary(mean=mean, std=std, ci_low=mean - half,
                   ci_high=mean + half, n=int(arr.size))


def paired_bootstrap(
    scores_a: Sequence[float],
    scores_b: Sequence[float],
    n_resamples: int = 2000,
    seed: int = 0,
) -> float:
    """P(mean(A) > mean(B)) under paired bootstrap resampling of images."""
    a = np.asarray(scores_a, dtype=np.float64)
    b = np.asarray(scores_b, dtype=np.float64)
    if a.shape != b.shape or a.size == 0:
        raise ValueError("paired scores must be same-length and non-empty")
    diff = a - b
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, diff.size, size=(n_resamples, diff.size))
    means = diff[idx].mean(axis=1)
    return float(np.mean(means > 0))


def paired_difference(
    scores_a: Sequence[float],
    scores_b: Sequence[float],
    confidence: float = 0.95,
) -> Summary:
    """Summary of per-image differences A − B (positive = A better)."""
    a = np.asarray(scores_a, dtype=np.float64)
    b = np.asarray(scores_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("paired scores must be same-length")
    return summarize(a - b, confidence=confidence)


def per_image_scores(model, dataset, metric: str = "psnr") -> np.ndarray:
    """Per-image PSNR (or SSIM) of a model over an (LR, HR) dataset."""
    from .psnr import psnr as psnr_fn
    from .ssim import ssim as ssim_fn
    from ..train.trainer import predict_image

    fn = psnr_fn if metric == "psnr" else ssim_fn
    border = getattr(dataset, "scale", 0)
    return np.array([
        fn(predict_image(model, lr), hr, border=border)
        for lr, hr in dataset
    ])
