"""Peak signal-to-noise ratio on the Y channel (the paper's quality metric).

Standard SISR evaluation protocol: compare Y channels in [0, 1], shave a
``scale``-pixel border (boundary pixels are ill-defined for all methods),
and report ``10·log10(1 / MSE)``.
"""

from __future__ import annotations

import numpy as np


def shave(img: np.ndarray, border: int) -> np.ndarray:
    """Remove ``border`` pixels from each spatial edge of (H, W[, C])."""
    if border <= 0:
        return img
    if img.shape[0] <= 2 * border or img.shape[1] <= 2 * border:
        raise ValueError(
            f"image {img.shape[:2]} too small to shave border {border}"
        )
    return img[border:-border, border:-border]


def psnr(
    pred: np.ndarray,
    target: np.ndarray,
    border: int = 0,
    data_range: float = 1.0,
) -> float:
    """PSNR in dB between two images of identical shape.

    Parameters
    ----------
    pred, target:
        Arrays in ``[0, data_range]``; any shape, compared elementwise after
        border shaving (first two axes are treated as spatial).
    border:
        Pixels to shave from each edge; SISR convention is ``border=scale``.
    """
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    pred, target = shave(pred, border), shave(target, border)
    pred = np.clip(pred, 0.0, data_range)
    mse = float(np.mean((pred - target) ** 2))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(data_range**2 / mse)
