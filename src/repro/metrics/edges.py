"""Edge-fidelity metrics for the qualitative comparison (paper Figs. 5–8).

The paper's qualitative claims — "significantly sharper edges and less
unwanted halo" — are visual; to make them testable we score edge
reconstruction explicitly:

* :func:`gradient_magnitude` — Sobel gradient magnitude map;
* :func:`gms` — Gradient Magnitude Similarity (the per-pixel core of
  GMSD, Xue et al. 2014): how closely the reconstruction's edge structure
  matches the ground truth's, in [0, 1];
* :func:`edge_psnr` — PSNR restricted to high-gradient (edge) pixels,
  where sharpening/haloing differences concentrate.
"""

from __future__ import annotations

import numpy as np

_SOBEL_X = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=np.float64) / 8
_SOBEL_Y = _SOBEL_X.T


def _correlate2d_same(img: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """3×3 correlation with edge padding (vectorized shifts)."""
    padded = np.pad(img, 1, mode="edge")
    out = np.zeros_like(img, dtype=np.float64)
    h, w = img.shape
    for dy in range(3):
        for dx in range(3):
            out += kernel[dy, dx] * padded[dy : dy + h, dx : dx + w]
    return out


def gradient_magnitude(img: np.ndarray) -> np.ndarray:
    """Sobel gradient magnitude of a (H, W) image."""
    img = np.asarray(img, dtype=np.float64)
    if img.ndim != 2:
        raise ValueError(f"expected (H, W) image, got {img.shape}")
    gx = _correlate2d_same(img, _SOBEL_X)
    gy = _correlate2d_same(img, _SOBEL_Y)
    return np.sqrt(gx * gx + gy * gy)


def gms(pred: np.ndarray, target: np.ndarray, c: float = 0.0026) -> float:
    """Mean Gradient Magnitude Similarity in [0, 1] (1 = identical edges)."""
    mp = gradient_magnitude(pred)
    mt = gradient_magnitude(target)
    sim = (2 * mp * mt + c) / (mp * mp + mt * mt + c)
    return float(sim.mean())


def edge_psnr(
    pred: np.ndarray,
    target: np.ndarray,
    percentile: float = 90.0,
    data_range: float = 1.0,
) -> float:
    """PSNR over the top-``percentile`` gradient pixels of the target.

    Halo artefacts and blur both concentrate at edges, so this metric
    amplifies exactly the differences Figs. 5–8 display.
    """
    pred = np.clip(np.asarray(pred, dtype=np.float64), 0, data_range)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    mag = gradient_magnitude(target)
    # Strict inequality so large flat (zero-gradient) regions never flood
    # the mask when the chosen percentile lands on zero.
    threshold = np.percentile(mag, percentile)
    mask = mag > threshold
    if not mask.any():
        mask = mag > 0
    if not mask.any():
        raise ValueError("no edge pixels selected (constant target image)")
    mse = float(np.mean((pred[mask] - target[mask]) ** 2))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(data_range**2 / mse)
