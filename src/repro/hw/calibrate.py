"""Calibration of the NPU model's free constants against Table 3.

The paper publishes five (runtime, DRAM) anchor rows produced by Arm's
proprietary Ethos-N78 estimator.  Our analytical model has three free
memory-system constants — DRAM bandwidth, SRAM residency threshold, and the
activation-compression ratio — which :func:`fit_spec` fits by least squares
on log-space residuals over all ten observables.  Compute-side constants
(2·10¹² MAC/s peak, 16-lane channel granularity) are architectural facts
and stay fixed.

The fitted values are frozen into :data:`repro.hw.spec.ETHOS_N78_4TOPS`;
a regression test re-runs the fit and checks it reproduces them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np
from scipy.optimize import least_squares

from .estimator import estimate
from .graph import InferenceGraph, fsrcnn_graph, sesr_hw_graph
from .spec import NPUSpec
from .tiling import estimate_tiled


@dataclass(frozen=True)
class Anchor:
    """One published Table 3 row."""

    name: str
    runtime_ms: float
    dram_mb: float
    macs_g: float  # published MAC count (sanity-checked, not fitted)


def anchor_rows() -> List[Tuple[Anchor, Callable[[NPUSpec], Tuple[float, float]]]]:
    """The five Table 3 anchors and evaluators returning (ms, MB)."""
    g_fsr_x2 = fsrcnn_graph(2, 1080, 1920)
    g_m5_x2 = sesr_hw_graph(16, 5, 2, 1080, 1920)
    g_m5_x4 = sesr_hw_graph(16, 5, 4, 1080, 1920)

    def full(graph: InferenceGraph) -> Callable[[NPUSpec], Tuple[float, float]]:
        def run(npu: NPUSpec) -> Tuple[float, float]:
            r = estimate(graph, npu)
            return r.runtime_ms, r.dram_mb

        return run

    def tiled(graph: InferenceGraph) -> Callable[[NPUSpec], Tuple[float, float]]:
        def run(npu: NPUSpec) -> Tuple[float, float]:
            r = estimate_tiled(graph, npu, 300, 400)
            return r.tile.runtime_ms, r.tile.dram_mb

        return run

    return [
        (Anchor("FSRCNN (x2) 1080p->4K", 167.38, 564.11, 54.0), full(g_fsr_x2)),
        (Anchor("SESR-M5 (x2) 1080p->4K", 27.22, 282.03, 28.0), full(g_m5_x2)),
        (Anchor("SESR-M5 (tiled, x2) 400x300", 1.26, 6.46, 1.62), tiled(g_m5_x2)),
        (Anchor("SESR-M5 (x4) 1080p->8K", 45.09, 389.86, 38.0), full(g_m5_x4)),
        (Anchor("SESR-M5 (tiled, x4) 400x300", 2.12, 9.84, 2.19), tiled(g_m5_x4)),
    ]


def _spec_from_params(params: np.ndarray, base: NPUSpec) -> NPUSpec:
    log_bw, log_sram, logit_comp = params
    return base.with_(
        dram_bandwidth=float(np.exp(log_bw)),
        sram_bytes=float(np.exp(log_sram)),
        compression_ratio=float(1.0 / (1.0 + np.exp(-logit_comp))),
    )


def residuals(npu: NPUSpec) -> Dict[str, Tuple[float, float]]:
    """Relative error (runtime, dram) per anchor for a given spec."""
    out: Dict[str, Tuple[float, float]] = {}
    for anchor, evaluator in anchor_rows():
        ms, mb = evaluator(npu)
        out[anchor.name] = (
            ms / anchor.runtime_ms - 1.0,
            mb / anchor.dram_mb - 1.0,
        )
    return out


def fit_spec(base: NPUSpec = NPUSpec()) -> NPUSpec:
    """Fit (bandwidth, SRAM, compression) to the Table 3 anchors."""
    rows = anchor_rows()

    def objective(params: np.ndarray) -> np.ndarray:
        npu = _spec_from_params(params, base)
        res = []
        for anchor, evaluator in rows:
            ms, mb = evaluator(npu)
            res.append(np.log(ms / anchor.runtime_ms))
            res.append(np.log(mb / anchor.dram_mb))
        return np.asarray(res)

    x0 = np.array([np.log(10e9), np.log(1e6), 0.0])
    fit = least_squares(objective, x0, method="lm")
    return _spec_from_params(fit.x, base).with_(name=f"{base.name}-calibrated")
