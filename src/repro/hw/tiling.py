"""Tiled-inference performance model (paper §5.6, "up to 8× better runtime").

SISR feature maps at 1080p are tens of megabytes, so DRAM traffic dominates.
The paper's optimisation splits the input into tiles (400×300 in Table 3)
small enough that intermediate maps stay in SRAM, then multiplies one tile's
cost by the tile count ``(1920/400)·(1080/300) = 17.28``.  We reproduce that
accounting, including the paper's explicit caveats: fractional tile counts
and an optional halo (boundary) overhead factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from .estimator import PerfReport, estimate
from .graph import InferenceGraph
from .spec import NPUSpec


@dataclass(frozen=True)
class TiledReport:
    """Cost of covering a full frame with repeated tile inference."""

    tile: PerfReport
    n_tiles: float
    halo_factor: float

    @property
    def total_runtime_sec(self) -> float:
        return self.tile.runtime_sec * self.n_tiles * self.halo_factor

    @property
    def total_runtime_ms(self) -> float:
        return self.total_runtime_sec * 1e3

    @property
    def fps(self) -> float:
        return 1.0 / self.total_runtime_sec

    @property
    def total_dram_mb(self) -> float:
        return self.tile.dram_mb * self.n_tiles


def estimate_tiled(
    graph: InferenceGraph,
    npu: NPUSpec,
    tile_h: int,
    tile_w: int,
    halo_factor: float = 1.0,
) -> TiledReport:
    """Estimate full-frame cost via ``tile_h × tile_w`` tiles.

    ``halo_factor`` ≥ 1 models the boundary overlap needed for functional
    correctness at tile edges (the paper's numbers ignore it, i.e. 1.0).
    """
    if tile_h > graph.in_h or tile_w > graph.in_w:
        raise ValueError(
            f"tile {(tile_h, tile_w)} larger than frame {(graph.in_h, graph.in_w)}"
        )
    tile_graph = graph.with_resolution(tile_h, tile_w)
    tile_report = estimate(tile_graph, npu)
    # Fractional tile count, exactly as the paper computes 17.28.
    n_tiles = (graph.in_h / tile_h) * (graph.in_w / tile_w)
    return TiledReport(tile=tile_report, n_tiles=n_tiles, halo_factor=halo_factor)
