"""``repro.hw`` — analytical mobile-NPU performance estimator (Table 3 substrate)."""

from .spec import (
    ETHOS_N78_4TOPS,
    ETHOS_N78_FAMILY,
    IDEAL_4TOPS,
    NPUSpec,
    scaled_variant,
)
from .graph import (
    InferenceGraph,
    fsrcnn_graph,
    graph_from_specs,
    sesr_hw_graph,
    sesr_paper_graph,
)
from .estimator import LayerEstimate, PerfReport, estimate, theoretical_fps
from .tiling import TiledReport, estimate_tiled
from .calibrate import Anchor, anchor_rows, fit_spec, residuals
from .report import bottleneck, compare_models, layer_breakdown, markdown_report

__all__ = [
    "ETHOS_N78_4TOPS",
    "ETHOS_N78_FAMILY",
    "scaled_variant",
    "IDEAL_4TOPS",
    "NPUSpec",
    "InferenceGraph",
    "fsrcnn_graph",
    "graph_from_specs",
    "sesr_hw_graph",
    "sesr_paper_graph",
    "LayerEstimate",
    "PerfReport",
    "estimate",
    "theoretical_fps",
    "TiledReport",
    "estimate_tiled",
    "Anchor",
    "bottleneck",
    "compare_models",
    "layer_breakdown",
    "markdown_report",
    "anchor_rows",
    "fit_spec",
    "residuals",
]
