"""Analytical NPU performance estimator (the Table 3 / Fig. 1(b) substrate).

Per-layer roofline model:

* **compute time** = MACs / (peak MAC rate × lane utilisation), where lane
  utilisation penalises channel counts that are not multiples of the MAC
  array's 16-lane granularity.  Transposed convolutions are modelled as
  their sub-pixel (depth-to-space) equivalent — a conv with ``s²·C_out``
  output channels at LR resolution — which is how NPU compilers lower them.
* **memory time** = DRAM traffic / bandwidth.  A feature map travels through
  DRAM iff it exceeds SRAM (or is the graph input/output); spilled traffic
  is charged once on write and once on read, then scaled by the NPU's
  activation-compression ratio.  Weights are read once, uncompressed.
* **layer time** = max(compute, memory) — DMA overlaps compute — and the
  network runtime is the sum over layers.

The paper's headline hardware phenomenon — SESR-M5 with 2× fewer MACs than
FSRCNN running 6.15× faster — reproduces because FSRCNN (a) moves ~2× more
DRAM traffic (56-channel maps vs 16) and (b) wastes MAC lanes on its
1-channel 9×9 deconv head, while collapsed SESR keeps every conv at a
lane-aligned 16 channels.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import List, Tuple

from .graph import InferenceGraph
from .spec import NPUSpec


@dataclass(frozen=True)
class LayerEstimate:
    """Per-layer cost breakdown."""

    name: str
    kind: str
    macs: float
    utilization: float
    compute_sec: float
    dram_bytes: float
    memory_sec: float

    @property
    def time_sec(self) -> float:
        return max(self.compute_sec, self.memory_sec)

    @property
    def bound(self) -> str:
        return "compute" if self.compute_sec >= self.memory_sec else "memory"


@dataclass(frozen=True)
class PerfReport:
    """Whole-network performance estimate (one Table 3 row)."""

    name: str
    total_macs: float
    dram_bytes: float
    runtime_sec: float
    layers: Tuple[LayerEstimate, ...] = field(default_factory=tuple)

    @property
    def dram_mb(self) -> float:
        return self.dram_bytes / 1e6

    @property
    def runtime_ms(self) -> float:
        return self.runtime_sec * 1e3

    @property
    def fps(self) -> float:
        return 1.0 / self.runtime_sec if self.runtime_sec > 0 else float("inf")


def _tensor_bytes(px: float, channels: int, spec: NPUSpec) -> float:
    return px * channels * spec.act_bytes


def _spills(bytes_: float, spec: NPUSpec) -> bool:
    return bytes_ > spec.sram_bytes


def estimate(graph: InferenceGraph, npu: NPUSpec) -> PerfReport:
    """Estimate runtime / DRAM usage of ``graph`` on ``npu``."""
    layers: List[LayerEstimate] = []
    in_px_base = graph.in_h * graph.in_w
    current_res = 1.0  # resolution scale of the tensor flowing through

    n_layers = len(graph.specs)
    for i, spec in enumerate(graph.specs):
        in_res = current_res
        out_res = spec.res_scale
        in_px = in_px_base * in_res * in_res
        out_px = in_px_base * out_res * out_res
        is_input = i == 0
        is_output = i == n_layers - 1

        macs = 0.0
        compute = 0.0
        traffic = 0.0
        util = 1.0

        if spec.kind in ("conv", "deconv"):
            kh, kw = spec.kernel
            cin, cout = spec.cin, spec.cout
            macs = float(kh * kw * cin * cout * out_px)
            if spec.kind == "deconv":
                # Lower to the sub-pixel equivalent: LR conv with s²·cout
                # output channels, then a pixel-shuffle DMA pass.
                ratio = (out_res / in_res) ** 2
                cout_eff = int(round(cout * ratio))
                util = npu.lane_utilization(cin) * npu.lane_utilization(cout_eff)
                out_bytes = _tensor_bytes(in_px, cout_eff, npu)
                if is_output or _spills(out_bytes, npu):
                    # Shuffle: read the lowered conv's output, write HR.
                    traffic += 2 * out_bytes * npu.compression_ratio
            else:
                util = npu.lane_utilization(cin) * npu.lane_utilization(cout)
                out_bytes = _tensor_bytes(out_px, cout, npu)
            compute = macs / (npu.peak_macs_per_sec * util)
            in_bytes = _tensor_bytes(in_px, cin, npu)
            if is_input or _spills(in_bytes, npu):
                traffic += in_bytes * npu.compression_ratio
                # Maps that exceed SRAM are processed in horizontal stripes;
                # each stripe boundary re-fetches (kh−1) halo rows of input.
                n_stripes = math.ceil(in_bytes / npu.sram_bytes)
                if n_stripes > 1:
                    row_bytes = graph.in_w * in_res * cin * npu.act_bytes
                    traffic += (
                        (kh - 1) * row_bytes * (n_stripes - 1)
                        * npu.compression_ratio
                    )
            if is_output or _spills(out_bytes, npu):
                traffic += out_bytes * npu.compression_ratio
            traffic += kh * kw * cin * cout * npu.weight_bytes
        elif spec.kind == "add":
            # Elementwise add: re-read the residual operand (spec.cin
            # channels) if it lives in DRAM; result replaces main path.
            operand_bytes = _tensor_bytes(out_px, spec.cin, npu)
            if _spills(operand_bytes, npu):
                traffic += operand_bytes * npu.compression_ratio
        elif spec.kind == "depth_to_space":
            # Pixel shuffle is a pure DMA pass: read the channel-packed map,
            # write the spatially-expanded one (same byte count each way).
            io_bytes = _tensor_bytes(in_px, spec.cin, npu)
            if is_input or is_output or _spills(io_bytes, npu):
                traffic += 2 * io_bytes * npu.compression_ratio
        elif spec.kind == "act":
            # Fused into the producing convolution.
            pass

        mem = traffic / npu.dram_bandwidth if npu.dram_bandwidth else 0.0
        layers.append(
            LayerEstimate(
                name=spec.name or f"layer{i}",
                kind=spec.kind,
                macs=macs,
                utilization=util,
                compute_sec=compute + npu.layer_overhead_sec,
                dram_bytes=traffic,
                memory_sec=mem,
            )
        )
        current_res = out_res

    total_macs = sum(layer.macs for layer in layers)
    dram = sum(layer.dram_bytes for layer in layers)
    runtime = sum(layer.time_sec for layer in layers)
    return PerfReport(
        name=graph.name,
        total_macs=total_macs,
        dram_bytes=dram,
        runtime_sec=runtime,
        layers=tuple(layers),
    )


def theoretical_fps(graph: InferenceGraph, npu: NPUSpec) -> float:
    """Best-case FPS = peak MAC rate / network MACs (the Fig. 1(b) metric)."""
    return npu.peak_macs_per_sec / graph.total_macs()
