"""Mobile-NPU hardware description (Arm Ethos-N78-class accelerator).

The paper's Table 3 / Fig. 1(b) numbers come from Arm's proprietary
Ethos-N78 performance estimator.  Our substitute is an analytical model of
the same accelerator class, parameterised by:

* ``peak_macs_per_sec`` — a 4-TOP/s NPU executes 2·10¹² MACs/s (1 MAC =
  2 ops); this is the "theoretical best case" rate the paper's Fig. 1(b)
  FPS numbers are computed from.
* ``lane_channels`` — the MAC array processes channels in groups of 16;
  layers whose input/output channel counts are not multiples of 16 waste
  lanes (this is why FSRCNN's 1-channel deconv head is so slow on the NPU).
* ``dram_bandwidth``, ``sram_bytes`` — the memory system: feature maps
  larger than SRAM spill to DRAM, and every spilled transfer competes for
  bandwidth.
* ``compression_ratio`` — Ethos-N78 applies lossless activation compression
  to DRAM traffic; the effective ratio is a calibrated constant.

The three free parameters (bandwidth, SRAM, compression) are calibrated once
against the five published Table 3 anchor rows — see
:mod:`repro.hw.calibrate`; compute-side constants are architectural facts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class NPUSpec:
    """Parameters of the analytical NPU performance model."""

    name: str = "ethos-n78-4tops"
    #: MAC throughput at 100% utilisation (4 TOP/s => 2e12 MAC/s).
    peak_macs_per_sec: float = 2.0e12
    #: channel granularity of the MAC array (lanes).
    lane_channels: int = 16
    #: effective DRAM bandwidth available to the NPU, bytes/second.
    dram_bandwidth: float = 8.0e9
    #: on-chip SRAM usable for feature-map residency, bytes.
    sram_bytes: float = 1.0e6
    #: bytes per activation element (int8 inference).
    act_bytes: float = 1.0
    #: bytes per weight element (int8 inference).
    weight_bytes: float = 1.0
    #: lossless activation-compression factor applied to DRAM traffic.
    compression_ratio: float = 1.0
    #: fixed per-layer scheduling overhead, seconds.
    layer_overhead_sec: float = 0.0

    def lane_utilization(self, channels: int) -> float:
        """Fraction of MAC lanes doing useful work for ``channels``."""
        if channels <= 0:
            return 1.0
        lanes = self.lane_channels
        return channels / (math.ceil(channels / lanes) * lanes)

    def with_(self, **kwargs) -> "NPUSpec":
        """Functional update (used by the calibration fit)."""
        return replace(self, **kwargs)


#: Theoretical-peak spec used for Fig. 1(b)'s "best case" FPS numbers.
IDEAL_4TOPS = NPUSpec(
    name="ideal-4tops",
    dram_bandwidth=float("inf"),
    sram_bytes=float("inf"),
    lane_channels=1,
)

#: Calibrated Ethos-N78-class spec (fit against the Table 3 anchors by
#: ``repro.hw.calibrate.fit_spec``; see EXPERIMENTS.md for residuals).
ETHOS_N78_4TOPS = NPUSpec(
    name="ethos-n78-4tops-calibrated",
    peak_macs_per_sec=2.0e12,
    lane_channels=16,
    dram_bandwidth=10.54e9,
    sram_bytes=1.00e6,
    compression_ratio=0.446,
)


def scaled_variant(tops: float, base: NPUSpec = ETHOS_N78_4TOPS) -> NPUSpec:
    """An Ethos-N78-family configuration scaled from the calibrated 4-TOP/s
    point.

    The N78 ships from 1 to 10 TOP/s; compute and SRAM scale with the MAC
    array while the DRAM interface is shared system bandwidth (held fixed).
    Useful for what-if studies ("would SESR-XL hit 30 FPS on the 8-TOP/s
    part?") — see ``examples/npu_deployment.py``.
    """
    if tops <= 0:
        raise ValueError("tops must be positive")
    factor = tops / (2.0 * base.peak_macs_per_sec / 1e12)
    return base.with_(
        name=f"ethos-n78-{tops:g}tops-scaled",
        peak_macs_per_sec=base.peak_macs_per_sec * factor,
        sram_bytes=base.sram_bytes * factor,
    )


#: The Ethos-N78 product line, scaled from the calibrated 4-TOP/s point.
ETHOS_N78_FAMILY = {
    tops: scaled_variant(tops) for tops in (1.0, 2.0, 4.0, 8.0, 10.0)
}
