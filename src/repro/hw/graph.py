"""Inference-graph IR for the NPU estimator.

An :class:`InferenceGraph` binds a :class:`repro.metrics.LayerSpec` sequence
(the same IR the MAC counter uses) to a concrete input resolution.  Builders
are provided for the two networks Table 3 simulates — the hardware variants
of SESR (ReLU, no input residual, §5.5) and FSRCNN (ReLU) — plus a generic
constructor for any spec list.

Spec sequences come from the compiler IR (:mod:`repro.compile`): the
builders construct the typed static graph with
:func:`repro.compile.sesr_ir` / :func:`repro.compile.fsrcnn_ir` and export
it through :func:`repro.compile.to_layer_specs`, so the estimator, the MAC
counter, and the compiled executor all consume one model description
(cross-checked against the analytic ``sesr_specs``/``fsrcnn_specs``
formulas by ``tests/compile/test_ir.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..compile import fsrcnn_ir, sesr_ir, to_layer_specs
from ..metrics.complexity import LayerSpec, count_macs


@dataclass(frozen=True)
class InferenceGraph:
    """A layer-spec sequence at a concrete input resolution."""

    name: str
    specs: Sequence[LayerSpec]
    in_h: int
    in_w: int

    def total_macs(self) -> int:
        return count_macs(self.specs, self.in_h, self.in_w)

    def with_resolution(self, in_h: int, in_w: int) -> "InferenceGraph":
        return InferenceGraph(self.name, self.specs, in_h, in_w)


def sesr_hw_graph(
    f: int,
    m: int,
    scale: int,
    in_h: int,
    in_w: int,
    name: str = "",
) -> InferenceGraph:
    """SESR hardware variant (§5.5): ReLU, long input residual removed."""
    specs = to_layer_specs(sesr_ir(
        f, m, scale,
        input_residual=False,
        feature_residual=True,
        activation="relu",
    ))
    return InferenceGraph(name or f"SESR(f={f},m={m})x{scale}", specs, in_h, in_w)


def sesr_paper_graph(
    f: int, m: int, scale: int, in_h: int, in_w: int, name: str = ""
) -> InferenceGraph:
    """Full-quality SESR (PReLU + both long residuals)."""
    specs = to_layer_specs(sesr_ir(f, m, scale))
    return InferenceGraph(name or f"SESR(f={f},m={m})x{scale}", specs, in_h, in_w)


def fsrcnn_graph(
    scale: int, in_h: int, in_w: int, activation: str = "relu", name: str = ""
) -> InferenceGraph:
    """FSRCNN with the §5.6 ReLU substitution."""
    specs = to_layer_specs(fsrcnn_ir(scale, activation=activation))
    return InferenceGraph(name or f"FSRCNN x{scale}", specs, in_h, in_w)


def graph_from_specs(
    name: str, specs: Sequence[LayerSpec], in_h: int, in_w: int
) -> InferenceGraph:
    """Wrap an arbitrary spec list as an estimator-ready graph."""
    return InferenceGraph(name, list(specs), in_h, in_w)
