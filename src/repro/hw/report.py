"""Human-readable reports for NPU performance estimates.

Turns :class:`~repro.hw.estimator.PerfReport` objects into the per-layer
breakdown tables and model-comparison summaries that
``examples/npu_deployment.py`` and the CLI print — kept in the library so
downstream users get the same reporting for their own graphs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..utils import format_si, format_table
from .estimator import PerfReport, estimate, theoretical_fps
from .graph import InferenceGraph
from .spec import IDEAL_4TOPS, NPUSpec
from .tiling import estimate_tiled


def layer_breakdown(report: PerfReport, skip_free: bool = True) -> str:
    """Per-layer table: MACs, utilisation, compute/memory time, bound."""
    rows: List[List[str]] = []
    for layer in report.layers:
        if skip_free and layer.time_sec == 0:
            continue
        rows.append([
            layer.name,
            layer.kind,
            format_si(layer.macs),
            f"{layer.utilization:.2f}",
            f"{layer.compute_sec * 1e3:.2f}",
            f"{layer.memory_sec * 1e3:.2f}",
            layer.bound,
        ])
    title = (
        f"{report.name}: {report.runtime_ms:.2f} ms total, "
        f"{report.dram_mb:.1f} MB DRAM, {report.fps:.1f} FPS"
    )
    return format_table(
        ["layer", "kind", "MACs", "util", "compute ms", "mem ms", "bound"],
        rows,
        title=title,
    )


def bottleneck(report: PerfReport) -> Tuple[str, float]:
    """The layer consuming the largest share of runtime: (name, fraction)."""
    if not report.layers or report.runtime_sec == 0:
        raise ValueError("empty report")
    worst = max(report.layers, key=lambda layer: layer.time_sec)
    return worst.name, worst.time_sec / report.runtime_sec


def compare_models(
    graphs: Dict[str, InferenceGraph],
    npu: NPUSpec,
    tile: Optional[Tuple[int, int]] = None,
) -> str:
    """Side-by-side summary table for several networks on one NPU."""
    rows: List[List[str]] = []
    for name, graph in graphs.items():
        report = estimate(graph, npu)
        row = [
            name,
            format_si(report.total_macs),
            f"{report.dram_mb:.1f}MB",
            f"{report.runtime_ms:.2f}ms",
            f"{theoretical_fps(graph, IDEAL_4TOPS):.1f}",
            f"{report.fps:.1f}",
        ]
        if tile is not None:
            tiled = estimate_tiled(graph, npu, *tile)
            row.append(f"{tiled.fps:.1f}")
        rows.append(row)
    headers = ["model", "MACs", "DRAM", "runtime", "FPS (ideal)", "FPS (model)"]
    if tile is not None:
        headers.append(f"FPS (tiled {tile[1]}x{tile[0]})")
    return format_table(headers, rows, title=f"NPU: {npu.name}")


def markdown_report(
    graphs: Dict[str, InferenceGraph],
    npu: NPUSpec,
    include_layers: Iterable[str] = (),
) -> str:
    """A markdown document: comparison table + selected layer breakdowns."""
    parts = [
        f"# NPU performance report — {npu.name}",
        "",
        "```",
        compare_models(graphs, npu),
        "```",
    ]
    for name in include_layers:
        if name not in graphs:
            raise KeyError(f"unknown graph {name!r}")
        parts += ["", f"## {name}", "", "```",
                  layer_breakdown(estimate(graphs[name], npu)), "```"]
    return "\n".join(parts) + "\n"
