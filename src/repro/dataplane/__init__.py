"""Process-based execution plane: shared-memory tiles, spawned workers,
and an asyncio HTTP front-end.

The thread backend in :mod:`repro.serve` keeps the engine's *control
plane* (scheduling, retries, circuit breaking, tracing) simple, but its
compute runs under the GIL: the committed throughput table shows four
thread workers delivering *less* than one.  This package is the escape
hatch — a **data plane** of spawned worker processes that the existing
dispatcher threads proxy compute to:

* :mod:`~repro.dataplane.arena` — one ``multiprocessing.shared_memory``
  segment partitioned into generation-tagged slots, free-list allocated;
  tile pixels cross the process boundary by being *mapped*, never
  pickled, and a crashed worker's slot cannot be recycled into a live
  frame.
* :mod:`~repro.dataplane.envelope` — the few-dozen-byte job/reply
  messages that travel the pipes instead, carrying slot leases and the
  request's :class:`TraceContext` outbound and finished
  :class:`~repro.obs.Span`\\ s inbound.
* :mod:`~repro.dataplane.worker` — the child-process main loop: rebuild
  the :class:`~repro.compile.CompiledModel` from the pickled
  plan/weights handoff, then serve envelopes with the *same*
  ``predict_batch``/``predict_batch_exact`` the thread backend calls —
  thread and process outputs are bit-identical by construction.
* :mod:`~repro.dataplane.pool` — :class:`ProcessWorkerPool`, the
  supervised pool behind ``EngineConfig(worker_backend="process")``:
  mid-job deaths become retryable :class:`ProcessWorkerDied` (the
  engine's existing retry/requeue machinery absorbs them, so the chaos
  suite passes unmodified), idle deaths are respawned by the engine's
  supervisor heartbeat, and shutdown reaps every process and unlinks the
  arena — nothing is left in ``/dev/shm``.
* :mod:`~repro.dataplane.aserver` — :class:`AsyncSRServer`, an event-loop
  front-end serving the exact ``/v1`` wire contract of
  :class:`repro.serve.SRServer` (routes, error schema, trace-id
  round-trip) without a thread per connection.

Select the backend per engine via
``EngineConfig(worker_backend="process")`` (or the
``REPRO_WORKER_BACKEND`` environment variable), and the front-end via
``repro serve --frontend async``.  See ``docs/serving.md`` for the full
data-plane architecture.
"""

from .arena import (
    ArenaExhausted,
    ArenaSlot,
    SharedTileArena,
    StaleSlot,
    attach_arena,
    slot_layout,
)
from .aserver import AsyncSRServer, make_async_server
from .envelope import MODE_EXACT, MODE_STACK, JobEnvelope, ReplyEnvelope, TraceContext
from .pool import PoolClosed, ProcessWorkerDied, ProcessWorkerPool, RemoteComputeError
from .worker import worker_main

__all__ = [
    "ArenaExhausted",
    "ArenaSlot",
    "AsyncSRServer",
    "JobEnvelope",
    "MODE_EXACT",
    "MODE_STACK",
    "PoolClosed",
    "ProcessWorkerDied",
    "ProcessWorkerPool",
    "RemoteComputeError",
    "ReplyEnvelope",
    "SharedTileArena",
    "StaleSlot",
    "TraceContext",
    "attach_arena",
    "make_async_server",
    "slot_layout",
    "worker_main",
]
