"""Shared-memory tile arenas: zero-copy input/output transfer to workers.

A :class:`SharedTileArena` is one ``multiprocessing.shared_memory``
segment partitioned into fixed-size **slots**.  For every tile (or
coalesced tile batch) the engine's dispatcher thread allocates a slot,
writes the halo-padded input patch into the slot's *input region*, and
sends only a tiny :class:`~repro.dataplane.envelope.JobEnvelope` (slot
index + generation + shape) down the worker's pipe; the worker process
maps the same segment, computes, writes the upscaled result into the
slot's *output region*, and replies with another small envelope.  Pixels
never transit the pipe — the only per-job pickling is a few dozen bytes
of metadata, which is what makes the process data plane cheap enough to
beat GIL-bound threads.

Slot sizing comes from the same arithmetic the compile-side liveness
planner uses (per-pixel float32 units, see
:class:`repro.compile.planner.BufferPlan`): the input region holds
``max_batch`` halo-padded LR tiles and the output region holds their
``scale²``-upsampled results — :func:`slot_layout` computes both from the
engine's tile/halo/batch configuration.  Each worker's *intermediate*
activations never touch this arena at all; they live in the worker's own
planner-sized :class:`~repro.compile.CompiledModel` arenas.

**Free list + generation tags.**  Allocation is a lock-guarded free list
(O(1) alloc/free, blocking when every slot is in flight — admission
control already bounds that above).  Every slot carries a monotonically
increasing *generation*, bumped on each free and stamped both in the
parent's table and in an 8-byte header inside the slot itself.  A job
envelope names ``(slot, generation)``; workers verify the in-slot header
against the envelope before reading and echo the pair in the reply, and
the parent re-verifies on receipt (:meth:`SharedTileArena.check`).  A
slot owned by a crashed worker is only recycled *after* the pool has
confirmed the process dead (terminate + join), so a half-dead worker can
never scribble over a frame that a later request is using — and if
bookkeeping is ever wrong anyway, the generation check turns silent
corruption into a loud :class:`StaleSlot`.

**Lifecycle.**  The creating process (the engine) owns the segment:
:meth:`close` unmaps *and unlinks* it, so a drained engine leaves nothing
in ``/dev/shm`` (asserted by ``tests/dataplane/test_shutdown_reap.py``).
Workers attach by name with ``create=False`` and merely unmap on exit;
attachment deregisters from the child's ``resource_tracker`` so an
exiting worker cannot unlink a segment the parent still serves from.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "ArenaSlot",
    "ArenaExhausted",
    "SharedTileArena",
    "StaleSlot",
    "attach_arena",
    "slot_layout",
]

#: bytes reserved at the head of every slot for the generation stamp.
_HEADER_BYTES = 8

_GEN_DTYPE = np.uint64


class StaleSlot(RuntimeError):
    """A slot/generation pair no longer names live data.

    Raised when a reply (or a worker-side read) carries a generation that
    does not match the slot's current stamp — the signature of a write
    landing after its slot was recycled.
    """


class ArenaExhausted(RuntimeError):
    """No free slot became available within the allocation timeout."""


@dataclass(frozen=True)
class ArenaSlot:
    """A leased slot: index + the generation it was leased under."""

    index: int
    generation: int


def slot_layout(
    tile: Tuple[int, int], halo: int, scale: int, max_batch: int
) -> Tuple[int, int]:
    """``(in_bytes, out_bytes)`` one slot must hold for an engine config.

    Same per-pixel accounting the buffer planner uses: a slot carries up
    to ``max_batch`` float32 halo-padded LR tiles in and their ``scale²``
    upsampled cores out.  Tiles at an image edge are smaller, never
    larger, so this is the worst case.
    """
    th, tw = tile
    hpix = (th + 2 * halo) * (tw + 2 * halo)
    in_bytes = 4 * max_batch * hpix
    out_bytes = in_bytes * scale * scale
    return in_bytes, out_bytes


def _new_segment_name() -> str:
    return f"repro-dp-{os.getpid()}-{os.urandom(4).hex()}"


class SharedTileArena:
    """Free-list allocator over one shared-memory segment of tile slots.

    Parameters
    ----------
    in_bytes, out_bytes:
        Capacity of each slot's input and output region (see
        :func:`slot_layout`).
    slots:
        Number of slots.  The pool sizes this to ``workers + spares`` —
        each dispatcher thread holds at most one slot per in-flight job.
    name:
        Attach to an existing segment instead of creating one (worker
        side — see :func:`attach_arena`).
    """

    def __init__(
        self,
        in_bytes: int,
        out_bytes: int,
        slots: int,
        name: Optional[str] = None,
    ) -> None:
        if in_bytes < 1 or out_bytes < 1:
            raise ValueError("slot regions must be at least one byte")
        if slots < 1:
            raise ValueError("need at least one slot")
        from multiprocessing import shared_memory

        self.in_bytes = int(in_bytes)
        self.out_bytes = int(out_bytes)
        self.slots = int(slots)
        self.slot_bytes = _HEADER_BYTES + self.in_bytes + self.out_bytes
        self._owner = name is None
        if self._owner:
            self._shm = shared_memory.SharedMemory(
                name=_new_segment_name(), create=True,
                size=self.slot_bytes * self.slots,
            )
        else:
            self._shm = shared_memory.SharedMemory(name=name, create=False)
            _untrack_attachment(self._shm)
        self.name = self._shm.name.lstrip("/")
        self._buf = np.frombuffer(self._shm.buf, dtype=np.uint8)
        self._lock = threading.Lock()
        self._free_cond = threading.Condition(self._lock)
        self._free = list(range(self.slots - 1, -1, -1))
        self._gens = [0] * self.slots
        self._closed = False
        if self._owner:
            for i in range(self.slots):
                self._stamp(i, 0)

    # ------------------------------------------------------------------ #
    # generation stamps (in-segment, visible to both sides)
    # ------------------------------------------------------------------ #
    def _header(self, index: int) -> np.ndarray:
        off = index * self.slot_bytes
        return self._buf[off:off + _HEADER_BYTES].view(_GEN_DTYPE)

    def _stamp(self, index: int, generation: int) -> None:
        self._header(index)[0] = _GEN_DTYPE(generation)

    def generation(self, index: int) -> int:
        """The slot's current in-segment generation stamp."""
        return int(self._header(index)[0])

    def check(self, slot: ArenaSlot) -> None:
        """Raise :class:`StaleSlot` unless ``slot`` still names live data."""
        seen = self.generation(slot.index)
        if seen != slot.generation:
            raise StaleSlot(
                f"slot {slot.index} is at generation {seen}, "
                f"job was leased at {slot.generation}"
            )

    # ------------------------------------------------------------------ #
    # allocation (engine side)
    # ------------------------------------------------------------------ #
    def alloc(self, timeout: Optional[float] = None) -> ArenaSlot:
        """Lease a free slot; blocks up to ``timeout`` seconds.

        Raises :class:`ArenaExhausted` on timeout — callers treat it like
        any other transient tile failure (retryable).
        """
        with self._free_cond:
            if not self._free:
                self._free_cond.wait_for(lambda: bool(self._free),
                                         timeout=timeout)
            if not self._free:
                raise ArenaExhausted(
                    f"no free slot in {self.slots}-slot arena "
                    f"{self.name!r} after {timeout}s"
                )
            index = self._free.pop()
            return ArenaSlot(index, self._gens[index])

    def free(self, slot: ArenaSlot) -> None:
        """Return a leased slot; bumps its generation so in-flight
        references to the old lease go stale."""
        with self._free_cond:
            if self._closed:
                return
            gen = self._gens[slot.index] + 1
            self._gens[slot.index] = gen
            self._stamp(slot.index, gen)
            self._free.append(slot.index)
            self._free_cond.notify()

    def in_use(self) -> int:
        """Slots currently leased."""
        with self._lock:
            return self.slots - len(self._free)

    # ------------------------------------------------------------------ #
    # views (both sides)
    # ------------------------------------------------------------------ #
    def in_view(self, slot: ArenaSlot, shape: Tuple[int, ...]) -> np.ndarray:
        """Float32 view of the slot's input region shaped ``shape``."""
        return self._region(slot.index, _HEADER_BYTES, self.in_bytes, shape)

    def out_view(self, slot: ArenaSlot, shape: Tuple[int, ...]) -> np.ndarray:
        """Float32 view of the slot's output region shaped ``shape``."""
        return self._region(
            slot.index, _HEADER_BYTES + self.in_bytes, self.out_bytes, shape
        )

    def _region(self, index: int, offset: int, capacity: int,
                shape: Tuple[int, ...]) -> np.ndarray:
        need = 4 * int(np.prod(shape))
        if need > capacity:
            raise ValueError(
                f"shape {shape} needs {need} bytes, region holds {capacity}"
            )
        start = index * self.slot_bytes + offset
        return self._buf[start:start + need].view(np.float32).reshape(shape)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Unmap, and (when owner) unlink the segment.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._buf = None  # release the exported memoryview before close()
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover — already gone
                pass

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SharedTileArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> Dict[str, object]:
        return {
            "segment": self.name,
            "slots": self.slots,
            "slot_bytes": self.slot_bytes,
            "in_use": self.in_use(),
            "total_bytes": self.slot_bytes * self.slots,
        }


def attach_arena(name: str, in_bytes: int, out_bytes: int,
                 slots: int) -> SharedTileArena:
    """Worker-side attach to the arena the engine created (no unlink)."""
    return SharedTileArena(in_bytes, out_bytes, slots, name=name)


def _untrack_attachment(shm) -> None:
    """Keep attachment bookkeeping from fighting the owner's cleanup.

    On 3.9–3.12 attaching *also* registers the segment with the resource
    tracker (3.13 grew ``track=False`` for this).  Our workers are
    spawned from the engine, so they inherit the engine's tracker
    process: the duplicate registration lands in the same set and
    dedupes, and the engine's ``unlink`` is the single cleanup point —
    unregistering here would strip the engine's own registration and
    make that unlink double-unregister.  So attachment-side untracking
    is deliberately a no-op for tracker-sharing processes; the hook
    stays as the seam where a foreign-process attach (its own tracker,
    which would unlink on exit and yank memory from under the engine)
    would need ``resource_tracker.unregister``.
    """
