"""Supervised process worker pool: the engine's GIL-free execution plane.

:class:`ProcessWorkerPool` owns N **spawned** worker processes (fork is
never used: the engine is heavily threaded and a forked child would
inherit arbitrarily-held locks), one duplex pipe each, and one
:class:`~repro.dataplane.SharedTileArena` they all map.  The engine's
dispatcher threads call :meth:`submit` — check out an idle worker, lease
an arena slot, copy the input tiles in, exchange envelopes, copy the
result out — and block on ``conn.recv()`` in between, which releases the
GIL: with the heavy NumPy work in child processes, N workers give true
parallel tile compute instead of the thread backend's GIL convoy.

Supervision mirrors the engine's thread supervisor, one layer down:

* a worker that dies mid-job (``kill -9``, segfault, OOM) surfaces as a
  broken pipe in :meth:`submit`; the pool confirms the death (terminate +
  join) **before** recycling the job's arena slot, replaces the worker,
  and raises :class:`ProcessWorkerDied` — an ordinary ``Exception``, so
  the engine's existing per-tile retry budget re-runs the job on a live
  worker and the request survives;
* a worker that dies while idle is found by :meth:`supervise` (the engine
  supervisor thread calls it every heartbeat) or lazily at checkout, and
  replaced the same way;
* replacement workers get the same pickled plan/weights handoff the
  originals got, so a respawn never recompiles or reloads checkpoints.

:meth:`shutdown` drains politely (shutdown envelope, bounded join),
terminates stragglers, and closes + unlinks the arena — after it returns
there is no worker process and no ``/dev/shm`` segment left (the CLI's
SIGINT/SIGTERM drain path relies on this; pinned by
``tests/dataplane/test_shutdown_reap.py``).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs import trace as _trace
from .arena import SharedTileArena, slot_layout
from .envelope import JobEnvelope, ReplyEnvelope, TraceContext
from .worker import worker_main

__all__ = [
    "PoolClosed",
    "ProcessWorkerDied",
    "ProcessWorkerPool",
    "RemoteComputeError",
]


class ProcessWorkerDied(RuntimeError):
    """A worker process died with a job in flight (retryable)."""


class PoolClosed(RuntimeError):
    """The pool is shut down and no longer accepts work."""


class _WorkerHandle:
    """One worker process plus its parent-side pipe end."""

    __slots__ = ("proc", "conn", "wid")

    def __init__(self, proc, conn, wid: int) -> None:
        self.proc = proc
        self.conn = conn
        self.wid = wid

    def alive(self) -> bool:
        return self.proc.is_alive()


class ProcessWorkerPool:
    """N spawned workers + shared arena behind a thread-safe ``submit``.

    Parameters
    ----------
    model:
        The deployable network every worker rebuilds from a pickled
        handoff (normally a :class:`~repro.compile.CompiledModel`; any
        picklable module with the predict contract works).
    workers:
        Process count (>= 1).
    tile, halo, scale, max_batch:
        Arena slot geometry — see :func:`~repro.dataplane.slot_layout`.
    spare_slots:
        Extra arena slots beyond ``workers`` so slot recycling after a
        crash never starves dispatch.
    alloc_timeout:
        Seconds to wait for a free slot/worker before treating the
        condition as a transient (retryable) failure.
    """

    def __init__(
        self,
        model,
        workers: int,
        tile: Tuple[int, int],
        halo: int,
        scale: int,
        max_batch: int = 8,
        spare_slots: int = 2,
        alloc_timeout: float = 30.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        try:
            self._model_bytes = pickle.dumps(model)
        except Exception as exc:
            raise ValueError(
                "worker_backend='process' needs a picklable model "
                f"(plan/weights handoff failed: {exc!r}); compiled zoo "
                "models pickle — custom modules must too, or use the "
                "thread backend"
            ) from exc
        self.workers = workers
        self.alloc_timeout = alloc_timeout
        in_bytes, out_bytes = slot_layout(tile, halo, scale, max_batch)
        self.arena = SharedTileArena(
            in_bytes, out_bytes, slots=workers + spare_slots
        )
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._idle_cond = threading.Condition(self._lock)
        self._idle: deque = deque()
        self._handles: List[_WorkerHandle] = []
        self._closed = False
        self._seq = 0
        self._next_wid = 0
        self._deaths = 0
        self._respawns = 0
        self._submitted = 0
        with self._lock:
            for _ in range(workers):
                h = self._spawn()
                self._handles.append(h)
                self._idle.append(h)

    # ------------------------------------------------------------------ #
    # spawning
    # ------------------------------------------------------------------ #
    def _spawn(self) -> _WorkerHandle:
        """Start one worker (caller holds the lock)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        self._next_wid += 1
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self._model_bytes, self.arena.name,
                  self.arena.in_bytes, self.arena.out_bytes,
                  self.arena.slots),
            name=f"sr-dataplane-{self._next_wid}",
            daemon=True,
        )
        with _spawn_pythonpath():
            proc.start()
        child_conn.close()  # the child holds its own copy
        return _WorkerHandle(proc, parent_conn, self._next_wid)

    def _replace(self, handle: _WorkerHandle) -> None:
        """Confirm ``handle`` dead and staff a replacement (locked)."""
        # Join/terminate FIRST: only a confirmed-dead worker's slot may be
        # recycled (see arena generation contract).
        _reap(handle)
        with self._idle_cond:
            if self._closed:
                return
            try:
                self._handles.remove(handle)
            except ValueError:  # already replaced by another thread
                return
            self._deaths += 1
            self._respawns += 1
            fresh = self._spawn()
            self._handles.append(fresh)
            self._idle.append(fresh)
            self._idle_cond.notify()

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def _checkout(self) -> _WorkerHandle:
        deadline_left = self.alloc_timeout
        with self._idle_cond:
            while True:
                if self._closed:
                    raise PoolClosed("pool is shut down")
                while self._idle:
                    handle = self._idle.popleft()
                    if handle.alive():
                        return handle
                    # Died while idle: replace outside the wait.
                    threading.Thread(
                        target=self._replace, args=(handle,), daemon=True
                    ).start()
                if not self._idle_cond.wait(timeout=deadline_left):
                    raise ProcessWorkerDied(
                        f"no live worker became idle in {self.alloc_timeout}s"
                    )

    def _checkin(self, handle: _WorkerHandle) -> None:
        with self._idle_cond:
            if self._closed:
                return
            self._idle.append(handle)
            self._idle_cond.notify()

    def submit(
        self,
        patches: np.ndarray,
        mode: str = "exact",
        ctx: Optional[_trace.SpanContext] = None,
    ) -> np.ndarray:
        """Run an ``(N, h, w, 1)`` float32 tile stack on a worker process.

        Returns the ``(N, s·h, s·w)`` result (a fresh array — the arena
        slot is recycled before this returns).  Worker spans finished
        during the job are ingested into this process's tracer under
        ``ctx``.  Raises :class:`ProcessWorkerDied` when the worker dies
        mid-job (retryable) and re-raises compute errors as
        :class:`RemoteComputeError`.
        """
        if patches.ndim != 4 or patches.shape[-1] != 1:
            raise ValueError(
                f"expected an (N, h, w, 1) stack, got {patches.shape}"
            )
        n, h, w = patches.shape[:3]
        handle = self._checkout()
        slot = None
        worker_dead = False
        try:
            slot = self.arena.alloc(timeout=self.alloc_timeout)
            view = self.arena.in_view(slot, (n, h, w, 1))
            np.copyto(view, patches)
            del view
            with self._lock:
                self._seq += 1
                seq = self._seq
                self._submitted += 1
            job = JobEnvelope(
                kind="run", seq=seq, slot=slot.index,
                generation=slot.generation, shape=(n, h, w), mode=mode,
                trace=TraceContext.from_span_context(ctx),
            )
            try:
                handle.conn.send(job)
                reply: ReplyEnvelope = handle.conn.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                worker_dead = True
                raise ProcessWorkerDied(
                    f"worker pid={handle.proc.pid} died mid-job "
                    f"(seq {seq}): {exc!r}"
                ) from exc
            return self._accept(reply, seq, slot)
        finally:
            if worker_dead:
                # Reap (which also makes slot recycling safe), replace,
                # and only then free the dead worker's slot.
                self._replace(handle)
                if slot is not None:
                    self.arena.free(slot)
            else:
                if slot is not None:
                    self.arena.free(slot)
                self._checkin(handle)

    def _accept(self, reply: ReplyEnvelope, seq: int, slot) -> np.ndarray:
        """Validate a reply and copy the result out of the arena."""
        from .arena import StaleSlot

        if reply.seq != seq or (reply.ok and (
                reply.slot != slot.index
                or reply.generation != slot.generation)):
            raise StaleSlot(
                f"reply names seq={reply.seq} slot={reply.slot} "
                f"gen={reply.generation}, expected seq={seq} "
                f"slot={slot.index} gen={slot.generation}"
            )
        tracer = _trace.get_tracer()
        for sp in reply.spans:
            tracer.ingest(sp)
        if not reply.ok:
            raise RemoteComputeError(reply.error_type, reply.error_message)
        self.arena.check(slot)
        return np.array(self.arena.out_view(slot, reply.shape))

    def ping(self, timeout: Optional[float] = None) -> int:
        """Round-trip a liveness probe through one worker; returns its pid."""
        handle = self._checkout()
        try:
            with self._lock:
                self._seq += 1
                seq = self._seq
            handle.conn.send(JobEnvelope(kind="ping", seq=seq))
            if timeout is not None and not handle.conn.poll(timeout):
                raise ProcessWorkerDied("ping timed out")
            reply = handle.conn.recv()
        except (EOFError, OSError) as exc:
            self._replace(handle)
            raise ProcessWorkerDied(f"worker died during ping: {exc!r}")
        self._checkin(handle)
        return reply.pid

    # ------------------------------------------------------------------ #
    # supervision
    # ------------------------------------------------------------------ #
    def supervise(self) -> int:
        """Replace workers that died while idle; returns replacements made.

        Called from the engine's supervisor heartbeat.  Workers dead
        *mid-job* are handled inline by :meth:`submit`; this sweep covers
        deaths that nothing was waiting on.
        """
        with self._idle_cond:
            if self._closed:
                return 0
            dead = [h for h in self._handles if not h.alive()]
        for handle in dead:
            self._replace(handle)
        return len(dead)

    def pids(self) -> List[int]:
        """Live worker process ids."""
        with self._lock:
            return [h.proc.pid for h in self._handles if h.alive()]

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self, timeout: float = 10.0) -> None:
        """Drain workers, reap every process, unlink the arena.  Idempotent."""
        with self._idle_cond:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles)
            self._handles.clear()
            self._idle.clear()
            self._idle_cond.notify_all()
        for h in handles:
            try:
                h.conn.send(JobEnvelope(kind="shutdown", seq=0))
            except (OSError, BrokenPipeError):
                pass
        for h in handles:
            h.proc.join(timeout=timeout)
        for h in handles:
            _reap(h)
        self.arena.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def stats(self) -> Dict[str, object]:
        with self._lock:
            alive = sum(1 for h in self._handles if h.alive())
            out = {
                "backend": "process",
                "workers": len(self._handles),
                "alive": alive,
                "deaths": self._deaths,
                "respawns": self._respawns,
                "jobs_submitted": self._submitted,
            }
        out["arena"] = self.arena.stats()
        return out


class RemoteComputeError(RuntimeError):
    """A worker's compute failed; carries the remote type name + message."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type


def _reap(handle: _WorkerHandle) -> None:
    """Make absolutely sure a worker process is dead and its pipe closed."""
    try:
        handle.conn.close()
    except OSError:  # pragma: no cover
        pass
    if handle.proc.is_alive():
        handle.proc.terminate()
        handle.proc.join(timeout=5.0)
        if handle.proc.is_alive():  # pragma: no cover — kill of last resort
            handle.proc.kill()
            handle.proc.join(timeout=5.0)
    else:
        handle.proc.join(timeout=1.0)


class _spawn_pythonpath:
    """Make ``repro`` importable in spawned children even when the parent
    got it from ``sys.path`` manipulation rather than an install.

    Spawn re-imports everything from scratch; ``PYTHONPATH`` is the one
    channel that survives into the child's fresh interpreter.
    """

    def __enter__(self) -> None:
        import repro

        src_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)
        ))
        self._prev = os.environ.get("PYTHONPATH")
        parts = [src_root] + (
            self._prev.split(os.pathsep) if self._prev else []
        )
        os.environ["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))

    def __exit__(self, *exc) -> None:
        if self._prev is None:
            os.environ.pop("PYTHONPATH", None)
        else:
            os.environ["PYTHONPATH"] = self._prev
