"""Process-worker main loop: attach, compute, reply.

Spawned (never forked — a threaded parent's locks must not leak into
children) with three pickled arguments: its end of a duplex pipe, the
**plan/weights handoff** — ``pickle.dumps`` of the engine's model, a
:class:`~repro.compile.CompiledModel` whose ``__getstate__`` carries just
the optimised graph (weights by reference) and buffer plan — and the
shared arena's name/geometry.  The worker rebuilds the model once at
startup (plan and steps re-prepared, per-shape arenas grown lazily, all
planner-sized) and then serves :class:`~repro.dataplane.JobEnvelope`\\ s
until told to shut down.

Compute goes through the *same* functions the thread backend calls —
:func:`repro.serve.predict_batch_exact` / ``predict_batch`` — so process
and thread workers are bit-identical by construction, not by testing
luck (the tests pin it anyway).

Observability: the worker installs a fresh process-local
:class:`~repro.obs.Tracer` whose only job is collecting the spans each
job finishes; they are shipped back in the reply for the engine to
:meth:`~repro.obs.Tracer.ingest`.  The job's
:class:`~repro.dataplane.TraceContext` is re-attached around compute so
worker spans parent correctly under the engine's dispatching span.

Failure containment: any ``Exception`` during compute becomes an
``ok=False`` reply (type name + message only) and the worker lives on;
only pipe loss (the engine died) or an explicit shutdown envelope ends
the loop.  The worker double-checks the slot's generation stamp before
reading input and before writing output, so even a severely delayed job
cannot scribble over a recycled slot.
"""

from __future__ import annotations

import os
import pickle
from typing import List

import numpy as np

from ..obs import trace as _trace
from .arena import attach_arena
from .envelope import MODE_STACK, JobEnvelope, ReplyEnvelope

__all__ = ["worker_main"]


class _SpanCollector:
    """Tracer exporter that batches finished spans per job."""

    def __init__(self) -> None:
        self._spans: List[_trace.Span] = []

    def export(self, span: _trace.Span) -> None:
        self._spans.append(span)

    def drain(self) -> List[_trace.Span]:
        spans, self._spans = self._spans, []
        return spans


def worker_main(conn, model_bytes: bytes, arena_name: str,
                in_bytes: int, out_bytes: int, slots: int) -> None:
    """Entry point of one dataplane worker process."""
    collector = _SpanCollector()
    _trace.set_tracer(_trace.Tracer(exporters=[collector]))
    model = pickle.loads(model_bytes)
    arena = attach_arena(arena_name, in_bytes, out_bytes, slots)
    # predict_* live in repro.serve.engine; imported here (not at module
    # top) so a worker only pays for the serving imports it really uses.
    from ..serve.engine import predict_batch, predict_batch_exact

    scale = getattr(model, "scale", 1)
    try:
        while True:
            try:
                job: JobEnvelope = conn.recv()
            except (EOFError, OSError):
                return  # engine side went away; nothing left to serve
            if job.kind == "shutdown":
                conn.send(ReplyEnvelope(seq=job.seq, ok=True, pid=os.getpid()))
                return
            if job.kind == "ping":
                conn.send(ReplyEnvelope(seq=job.seq, ok=True, pid=os.getpid()))
                continue
            conn.send(_run_job(
                job, model, arena, scale, collector,
                predict_batch, predict_batch_exact,
            ))
    finally:
        arena.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover — already torn down
            pass


def _run_job(job, model, arena, scale, collector,
             predict_batch, predict_batch_exact) -> ReplyEnvelope:
    """Compute one envelope; never raises (errors travel in the reply)."""
    from .arena import ArenaSlot, StaleSlot

    slot = ArenaSlot(job.slot, job.generation)
    n, h, w = job.shape
    try:
        arena.check(slot)
        patches = arena.in_view(slot, (n, h, w, 1))
        ctx = None if job.trace is None else job.trace.to_span_context()
        with _trace.attach(ctx):
            with _trace.span(
                "dataplane.compute", pid=os.getpid(), tiles=n,
                h=h, w=w, mode=job.mode,
            ):
                if job.mode == MODE_STACK:
                    outs = predict_batch(model, patches)
                else:
                    outs = predict_batch_exact(model, patches)
        out_shape = (n, h * scale, w * scale)
        # Re-verify before publishing: if the engine recycled the slot
        # while we computed (it only does that once it believes this
        # process dead), refuse to touch it.
        arena.check(slot)
        np.copyto(arena.out_view(slot, out_shape), outs)
        return ReplyEnvelope(
            seq=job.seq, slot=job.slot, generation=job.generation,
            ok=True, shape=out_shape, spans=collector.drain(),
            pid=os.getpid(),
        )
    except StaleSlot as exc:
        collector.drain()
        return ReplyEnvelope(
            seq=job.seq, slot=job.slot, generation=job.generation,
            ok=False, error_type="StaleSlot", error_message=str(exc),
            pid=os.getpid(),
        )
    except Exception as exc:  # noqa: BLE001 — reported to the engine
        return ReplyEnvelope(
            seq=job.seq, slot=job.slot, generation=job.generation,
            ok=False, error_type=type(exc).__name__,
            error_message=str(exc), spans=collector.drain(),
            pid=os.getpid(),
        )
