"""Job/reply envelopes: the tiny pickled messages on a worker's pipe.

Pixels travel through the :mod:`~repro.dataplane.arena`; the pipe only
carries control metadata — which slot, which generation, what shape, and
the request's trace identity.  Keeping the envelope small (a few dozen
bytes) is what keeps per-job IPC overhead negligible next to a conv2d
tile.

:class:`TraceContext` is the explicit cross-process form of
:class:`repro.obs.SpanContext`: the engine stamps the dispatching span's
identity into the envelope, the worker re-attaches it so every span it
opens parents under the engine's ``serve.tile``/``serve.batch`` span, and
the finished spans ride back in :attr:`ReplyEnvelope.spans` for the
engine to :meth:`~repro.obs.Tracer.ingest` — one unbroken
``serve.request`` → tile → ``compile.execute`` tree in ``/metrics``, no
matter which process did the work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..obs.trace import Span, SpanContext

__all__ = [
    "MODE_EXACT",
    "MODE_STACK",
    "JobEnvelope",
    "ReplyEnvelope",
    "TraceContext",
]

#: compute modes a job may request (mirrors the engine's tile paths).
MODE_EXACT = "exact"    # bit-identical per sample (predict_batch_exact)
MODE_STACK = "stack"    # legacy stacked micro-batch (predict_batch)


@dataclass(frozen=True)
class TraceContext:
    """Wire form of a span's identity — picklable, dependency-free."""

    trace_id: str
    span_id: str

    @classmethod
    def from_span_context(
        cls, ctx: Optional[SpanContext]
    ) -> Optional["TraceContext"]:
        """Capture a live :class:`~repro.obs.SpanContext` (or ``None``)."""
        if ctx is None:
            return None
        return cls(ctx.trace_id, ctx.span_id)

    def to_span_context(self) -> SpanContext:
        """Rebuild the :class:`~repro.obs.SpanContext` worker-side."""
        return SpanContext(self.trace_id, self.span_id)


@dataclass(frozen=True)
class JobEnvelope:
    """One unit of work for a process worker.

    ``kind`` is ``"run"`` (compute the slot), ``"ping"`` (liveness probe,
    no slot), or ``"shutdown"`` (drain and exit).  ``shape`` is the
    ``(N, h, w)`` stack of halo-padded LR tiles sitting in the slot's
    input region; ``mode`` selects the exact or legacy-stacked batch
    semantics.  ``trace`` parents the worker's spans under the engine's
    dispatching span.
    """

    kind: str = "run"
    seq: int = 0
    slot: int = -1
    generation: int = -1
    shape: Tuple[int, int, int] = (0, 0, 0)
    mode: str = MODE_EXACT
    trace: Optional[TraceContext] = None


@dataclass(frozen=True)
class ReplyEnvelope:
    """A worker's answer: where the pixels are and what happened.

    ``ok=False`` carries the exception's type name and message (the
    original object never crosses the boundary — a worker cannot poison
    the engine with an unpicklable or malicious exception payload).
    ``spans`` holds the :class:`~repro.obs.Span` objects finished while
    the job ran, for parent-side ingestion.
    """

    seq: int
    slot: int = -1
    generation: int = -1
    ok: bool = True
    shape: Tuple[int, int, int] = (0, 0, 0)
    error_type: str = ""
    error_message: str = ""
    spans: List[Span] = field(default_factory=list)
    pid: int = 0
