"""Asyncio HTTP front-end: the data plane's replacement for ``SRServer``.

Same API, different concurrency model.  :class:`AsyncSRServer` serves the
exact wire contract of :class:`repro.serve.SRServer` — the ``/v1`` route
table, the 308 redirects that retired the unversioned paths, the
one-shape JSON error schema, header-first 415/413 rejection, and the
``X-Trace-Id``/``X-Degraded`` response headers are all imported from (or
pinned against) :mod:`repro.serve.http`, not re-invented — but
connections are multiplexed on a single event loop instead of one
thread per socket.  A blocking thread-per-connection
front-end wastes a thread (and its GIL churn) per idle keep-alive
connection; the event loop holds thousands of idle connections for free
and hands actual inference to the engine via ``run_in_executor``, where
the process worker pool does the heavy lifting outside the GIL
entirely.

The listening socket binds **eagerly in the constructor** (like
``SRServer``), so ``server_address`` is final — including a resolved
ephemeral port — before ``serve_forever()``/``start()`` runs; tests and
the CLI print the address without racing the loop.

Lifecycle mirrors ``SRServer``: ``serve_forever()`` runs the loop in the
calling thread (the CLI does this; ``KeyboardInterrupt`` from the
SIGINT/SIGTERM handlers unwinds it cleanly), ``start()`` runs it on a
background thread for tests, and ``close()`` — idempotent, callable from
any thread — stops the loop, joins the thread, closes the socket, and
drains the engine (which reaps process workers and unlinks shared-memory
arenas when the process backend is active).
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from email.utils import formatdate
from typing import Dict, Optional, Tuple

from ..datasets import decode_netpbm, encode_netpbm
from ..obs import get_tracer, render_prometheus
from ..obs import profiler as _profiler
from ..obs.trace import new_trace_id
from ..serve.engine import (
    EngineClosed,
    EngineOverloaded,
    InferenceEngine,
    RequestTimeout,
)
from ..serve.http import (
    _ACCEPTED_MEDIA_PREFIXES,
    _ACCEPTED_MEDIA_TYPES,
    _ROUTES,
    _TRACE_ID_RE,
    API_VERSION,
    MAX_BODY_BYTES,
    PROMETHEUS_CONTENT_TYPE,
    upscale_array_ex,
)

__all__ = ["AsyncSRServer", "make_async_server"]

_REASONS = {
    200: "OK", 308: "Permanent Redirect", 400: "Bad Request",
    404: "Not Found", 413: "Request Entity Too Large",
    415: "Unsupported Media Type", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

_SERVER_ID = "repro-serve/1.0"


def _resolve_route(path: str) -> Tuple[Optional[str], Optional[str]]:
    """Same resolution as ``SRRequestHandler._route``: ``(route,
    redirect_location)`` — a legacy unversioned path resolves to the
    ``/v1`` location it 308-redirects to, not to a servable route."""
    path = path.split("?", 1)[0]
    prefix = f"/{API_VERSION}"
    if path.startswith(prefix + "/"):
        route = path[len(prefix):]
        return (route, None) if route in _ROUTES else (None, None)
    if path in _ROUTES:
        return None, prefix + path
    return None, None


class _Response:
    """One buffered HTTP response (status + headers + body)."""

    __slots__ = ("code", "body", "ctype", "headers", "close")

    def __init__(self, code: int, body: bytes, ctype: str,
                 headers: Optional[Dict[str, str]] = None,
                 close: bool = False) -> None:
        self.code = code
        self.body = body
        self.ctype = ctype
        self.headers = headers or {}
        self.close = close

    def render(self, keep_alive: bool) -> bytes:
        reason = _REASONS.get(self.code, "Unknown")
        lines = [
            f"HTTP/1.1 {self.code} {reason}",
            f"Server: {_SERVER_ID}",
            f"Date: {formatdate(usegmt=True)}",
        ]
        if self.ctype is not None:  # redirects have no body, no type
            lines.append(f"Content-Type: {self.ctype}")
        lines.append(f"Content-Length: {len(self.body)}")
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        if self.close or not keep_alive:
            lines.append("Connection: close")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


def _redirect_response(location: str, close: bool = False) -> _Response:
    """308 Permanent Redirect to the versioned route; empty body."""
    return _Response(308, b"", None, {"Location": location}, close)


def _json_response(code: int, obj: dict,
                   headers: Optional[Dict[str, str]] = None,
                   close: bool = False) -> _Response:
    # Byte-identical to SRRequestHandler._send_json: indent=2 + newline.
    body = json.dumps(obj, indent=2).encode() + b"\n"
    return _Response(code, body, "application/json", headers, close)


def _error_response(code: int, error_code: str, message: str,
                    trace_id: Optional[str] = None,
                    headers: Optional[Dict[str, str]] = None,
                    close: bool = False) -> _Response:
    trace_id = trace_id or new_trace_id()
    hdrs = dict(headers or {})
    hdrs["X-Trace-Id"] = trace_id
    return _json_response(code, {
        "error": {
            "code": error_code,
            "message": message,
            "trace_id": trace_id,
        },
    }, headers=hdrs, close=close)


class AsyncSRServer:
    """Event-loop HTTP server over one :class:`InferenceEngine`.

    Construction binds the socket; nothing is served until
    :meth:`serve_forever` (foreground) or :meth:`start` (background
    thread) runs.  Use as a context manager in tests::

        with AsyncSRServer(engine, ("127.0.0.1", 0)) as srv:
            host, port = srv.server_address
            ...

    ``close()`` is idempotent and shuts the engine down, exactly like
    ``SRServer.close``.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        address: Tuple[str, int] = ("127.0.0.1", 8000),
        verbose: bool = False,
        max_body_bytes: int = MAX_BODY_BYTES,
    ) -> None:
        if max_body_bytes < 1:
            raise ValueError("max_body_bytes must be positive")
        self.engine = engine
        self.verbose = verbose
        self.max_body_bytes = max_body_bytes
        self._sock = socket.create_server(address)
        self.server_address = self._sock.getsockname()[:2]
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Future] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def serve_forever(self) -> None:
        """Run the accept loop in the calling thread until :meth:`close`."""
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        with self._lock:
            if self._closed:
                loop.close()
                return
            self._loop = loop
            self._stop = loop.create_future()
        server = loop.run_until_complete(
            asyncio.start_server(self._handle_client, sock=self._sock)
        )
        self._started.set()
        try:
            loop.run_until_complete(self._stop)
        finally:
            self._teardown(loop, server)

    def start(self) -> "AsyncSRServer":
        """Serve on a daemon thread (test harness convenience)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="sr-aserver", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        return self

    def close(self) -> None:
        """Stop serving and drain the engine.  Idempotent, thread-safe."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            loop, stop = self._loop, self._stop
        if loop is not None and not loop.is_closed():
            def _finish() -> None:
                if stop is not None and not stop.done():
                    stop.set_result(None)
            try:
                loop.call_soon_threadsafe(_finish)
            except RuntimeError:  # loop closed between check and call
                pass
        if (self._thread is not None
                and self._thread is not threading.current_thread()):
            self._thread.join(timeout=10.0)
        try:
            self._sock.close()
        except OSError:  # pragma: no cover — already closed by the loop
            pass
        self.engine.shutdown()

    def _teardown(self, loop: asyncio.AbstractEventLoop, server) -> None:
        server.close()
        try:
            loop.run_until_complete(server.wait_closed())
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            asyncio.set_event_loop(None)
            loop.close()
            with self._lock:
                self._loop = None

    def __enter__(self) -> "AsyncSRServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_head(reader)
                if request is None:
                    break
                method, path, headers = request
                response = await self._dispatch(
                    method, path, headers, reader
                )
                keep_alive = (
                    headers.get("connection", "").lower() != "close"
                )
                writer.write(response.render(keep_alive))
                await writer.drain()
                if response.close or not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_head(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str]]]:
        """Parse one request line + headers; ``None`` on EOF/garbage."""
        line = await reader.readline()
        if not line or b" " not in line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, path = parts[0], parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return method, path, headers

    @staticmethod
    def _client_trace_id(headers: Dict[str, str]) -> Optional[str]:
        """A well-formed client ``X-Trace-Id`` (adopted, same as the
        threaded front-end), else ``None``."""
        trace_id = headers.get("x-trace-id", "").strip().lower()
        return trace_id if _TRACE_ID_RE.fullmatch(trace_id) else None

    async def _dispatch(self, method: str, path: str,
                        headers: Dict[str, str],
                        reader: asyncio.StreamReader) -> _Response:
        route, redirect = _resolve_route(path)
        if redirect is not None:
            # A redirected POST's body is never read: close the
            # connection so the unread bytes cannot corrupt a keep-alive
            # stream (same semantics as the threaded front-end).
            return _redirect_response(redirect, close=(method == "POST"))
        if method == "GET" and route in ("/healthz", "/stats", "/metrics"):
            return await self._do_get(route)
        if method == "POST" and route == "/upscale":
            return await self._do_upscale(headers, reader)
        return _error_response(
            404, "not_found", f"unknown path {path!r}",
            trace_id=self._client_trace_id(headers),
        )

    async def _do_get(self, route: str) -> _Response:
        loop = asyncio.get_event_loop()
        if route == "/healthz":
            key = self.engine.key
            return _json_response(200, {
                "status": ("ok" if not self.engine.closed
                           else "shutting-down"),
                "model": key.name,
                "scale": key.scale,
                "precision": key.precision,
                "api_version": API_VERSION,
            })
        if route == "/stats":
            stats = await loop.run_in_executor(None, self.engine.stats)
            return _json_response(200, stats)
        text = await loop.run_in_executor(
            None,
            lambda: render_prometheus(
                self.engine.stats(),
                tracer=get_tracer(),
                profiler=_profiler.ACTIVE,
            ),
        )
        return _Response(
            200, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE,
        )

    async def _do_upscale(self, headers: Dict[str, str],
                          reader: asyncio.StreamReader) -> _Response:
        # Header-first validation, same order and same close-connection
        # semantics as the threaded front-end: an unacceptable upload is
        # refused before one body byte is read, and the connection drops
        # (the unread body would corrupt the keep-alive stream).
        trace_id = self._client_trace_id(headers)
        ctype = headers.get("content-type", "")
        ctype = ctype.split(";", 1)[0].strip().lower()
        if (ctype not in _ACCEPTED_MEDIA_TYPES
                and not ctype.startswith(_ACCEPTED_MEDIA_PREFIXES)):
            return _error_response(
                415, "unsupported_media_type",
                f"unsupported Content-Type {ctype!r}; send a netpbm image "
                "as image/* or application/octet-stream",
                trace_id=trace_id, close=True,
            )
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length > self.max_body_bytes:
            return _error_response(
                413, "payload_too_large",
                f"body of {length} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit",
                trace_id=trace_id, close=True,
            )
        if length <= 0:
            return _error_response(
                400, "bad_request", "missing or invalid body",
                trace_id=trace_id,
            )
        body = await reader.readexactly(length)
        try:
            img = decode_netpbm(body)
        except ValueError as exc:
            return _error_response(
                400, "bad_request", f"bad netpbm payload: {exc}",
                trace_id=trace_id,
            )
        loop = asyncio.get_event_loop()
        try:
            result = await loop.run_in_executor(
                None,
                lambda: upscale_array_ex(
                    self.engine, img, trace_id=trace_id
                ),
            )
        except (EngineOverloaded, EngineClosed) as exc:
            return _error_response(
                503, "unavailable", str(exc),
                trace_id=trace_id,
            )
        except RequestTimeout as exc:
            return _error_response(
                504, "deadline_exceeded", str(exc),
                trace_id=trace_id,
            )
        except Exception as exc:  # noqa: BLE001 — reported as HTTP 500
            return _error_response(
                500, "internal", f"inference failed: {exc}",
                trace_id=trace_id,
            )
        payload = encode_netpbm(result.image)
        out = {
            "X-Degraded": "true" if result.degraded else "false",
            "X-Trace-Id": result.trace_id,
        }
        return _Response(
            200, payload, "application/octet-stream", headers=out
        )


def make_async_server(
    engine: InferenceEngine,
    host: str = "127.0.0.1",
    port: int = 8000,
    verbose: bool = False,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> AsyncSRServer:
    """Bind an :class:`AsyncSRServer`; ``port=0`` picks an ephemeral port."""
    return AsyncSRServer(engine, (host, port), verbose=verbose,
                         max_body_bytes=max_body_bytes)
