"""Real-image datasets from a directory of netpbm files.

The synthetic corpus keeps this repo self-contained, but the evaluation
pipeline is dataset-agnostic: drop the *real* Set5/Set14/... images into a
folder as PGM/PPM (``convert img.png img.ppm``) and
:class:`ImageFolderDataset` serves (LR, HR) pairs through exactly the same
protocol as :class:`repro.datasets.SyntheticDataset` — bicubic degradation,
Y-channel extraction, scale-multiple cropping — so every evaluator, bench
helper, and the CLI work on natural images unchanged.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Tuple

import numpy as np

from .color import luminance
from .degradation import bicubic_downscale, crop_to_multiple
from .io import read_netpbm

IMAGE_EXTENSIONS = (".pgm", ".ppm", ".pnm")


class ImageFolderDataset:
    """(LR, HR) pairs from HR images stored in a directory.

    Parameters
    ----------
    root:
        Directory containing ``.pgm``/``.ppm`` HR images (sorted by name).
    scale:
        Degradation factor; HR images are cropped to a multiple of it and
        bicubic-downscaled, mirroring the standard benchmark protocol.
    y_only:
        Convert colour images to the Y channel (the paper's footnote-1
        protocol).  Greyscale images pass through.
    """

    def __init__(self, root: str, scale: int = 2, y_only: bool = True) -> None:
        if not os.path.isdir(root):
            raise FileNotFoundError(f"no such directory: {root}")
        self.root = root
        self.scale = scale
        self.y_only = y_only
        self.paths: List[str] = sorted(
            os.path.join(root, name)
            for name in os.listdir(root)
            if name.lower().endswith(IMAGE_EXTENSIONS)
        )
        if not self.paths:
            raise FileNotFoundError(
                f"no netpbm images ({'/'.join(IMAGE_EXTENSIONS)}) in {root}"
            )
        self._cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def __len__(self) -> int:
        return len(self.paths)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        if not 0 <= index < len(self.paths):
            raise IndexError(index)
        if index not in self._cache:
            img = read_netpbm(self.paths[index])
            if img.ndim == 3:
                if not self.y_only:
                    raise ValueError(
                        "colour evaluation is Y-channel only; pass y_only=True"
                    )
                img = luminance(img).astype(np.float32)
            hr = crop_to_multiple(np.clip(img, 0.0, 1.0), self.scale)
            lr = bicubic_downscale(hr, self.scale)
            self._cache[index] = (lr, hr)
        return self._cache[index]

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        for i in range(len(self)):
            yield self[i]

    def name(self, index: int) -> str:
        """Basename of image ``index`` (for per-image reporting)."""
        return os.path.basename(self.paths[index])
