"""Netpbm image I/O (PGM/PPM), dependency-free.

The evaluation corpus is synthetic, but downstream users want to run the
models on their own images without pulling in an imaging library.  Netpbm
is the simplest widely-convertible format (``convert photo.png photo.ppm``
or ``ffmpeg -i photo.png photo.ppm``); this module reads/writes both the
binary (P5/P6) and ASCII (P2/P3) variants with 8- or 16-bit samples.

Images are exchanged as float32 arrays in [0, 1]: ``(H, W)`` for
greyscale, ``(H, W, 3)`` for colour.  Combine with
:func:`repro.datasets.color.rgb_to_ycbcr` for the paper's Y-channel
processing.
"""

from __future__ import annotations

import re
from typing import Tuple

import numpy as np

_MAGIC_TO_KIND = {
    b"P2": ("pgm", False),
    b"P5": ("pgm", True),
    b"P3": ("ppm", False),
    b"P6": ("ppm", True),
}


def _read_header(data: bytes) -> Tuple[bytes, int, int, int, int]:
    """Parse magic, width, height, maxval; return them + header length."""
    # Strip comments while tracking position: tokenize until 4 tokens seen.
    tokens = []
    pos = 0
    while len(tokens) < 4:
        match = re.compile(rb"\s*(#[^\n]*\n|\S+)").match(data, pos)
        if match is None:
            raise ValueError("truncated netpbm header")
        pos = match.end()
        tok = match.group(1)
        if not tok.startswith(b"#"):
            tokens.append(tok)
    magic, width, height, maxval = tokens
    if magic not in _MAGIC_TO_KIND:
        raise ValueError(f"unsupported netpbm magic {magic!r}")
    # Exactly one whitespace byte separates the header from binary data.
    return magic, int(width), int(height), int(maxval), pos


def decode_netpbm(data: bytes) -> np.ndarray:
    """Decode PGM/PPM bytes to float32 in [0, 1] ((H, W) or (H, W, 3)).

    The bytes-level counterpart of :func:`read_netpbm`, used where images
    arrive over the wire rather than from disk (e.g. the
    ``repro.serve`` HTTP ``/upscale`` endpoint).
    """
    magic, width, height, maxval, offset = _read_header(data)
    kind, binary = _MAGIC_TO_KIND[magic]
    channels = 3 if kind == "ppm" else 1
    count = width * height * channels
    if maxval <= 0 or maxval > 65535:
        raise ValueError(f"invalid maxval {maxval}")

    if binary:
        dtype = np.dtype(">u2") if maxval > 255 else np.uint8
        # Exactly one whitespace byte separates maxval from the payload.
        raw = np.frombuffer(data, dtype=dtype, count=count, offset=offset + 1)
    else:
        values = data[offset:].split()
        if len(values) < count:
            raise ValueError("truncated netpbm pixel data")
        raw = np.array(values[:count], dtype=np.float64)
    img = raw.astype(np.float32).reshape(height, width, channels) / maxval
    return img[..., 0] if channels == 1 else img


def read_netpbm(path: str) -> np.ndarray:
    """Read a PGM/PPM file to float32 in [0, 1] ((H, W) or (H, W, 3))."""
    with open(path, "rb") as fh:
        data = fh.read()
    return decode_netpbm(data)


def encode_netpbm(img: np.ndarray, maxval: int = 255) -> bytes:
    """Encode a float [0, 1] image as binary PGM (2-D) or PPM (3-D) bytes.

    Byte-for-byte identical to what :func:`write_netpbm` puts on disk, so a
    served response can be compared bitwise against a CLI-written file.
    """
    img = np.asarray(img, dtype=np.float64)
    if img.ndim == 2:
        magic, channels = b"P5", 1
    elif img.ndim == 3 and img.shape[2] == 3:
        magic, channels = b"P6", 3
    else:
        raise ValueError(f"expected (H, W) or (H, W, 3) image, got {img.shape}")
    if not 1 <= maxval <= 65535:
        raise ValueError(f"invalid maxval {maxval}")
    h, w = img.shape[:2]
    quantised = np.clip(np.round(img * maxval), 0, maxval)
    dtype = np.dtype(">u2") if maxval > 255 else np.uint8
    payload = quantised.astype(dtype).tobytes()
    return magic + b"\n%d %d\n%d\n" % (w, h, maxval) + payload


def write_netpbm(path: str, img: np.ndarray, maxval: int = 255) -> None:
    """Write float [0, 1] image as binary PGM (2-D) or PPM (3-D)."""
    with open(path, "wb") as fh:
        fh.write(encode_netpbm(img, maxval))


# Friendlier aliases.
def load_image(path: str) -> np.ndarray:
    """Alias of :func:`read_netpbm`."""
    return read_netpbm(path)


def save_image(path: str, img: np.ndarray, maxval: int = 255) -> None:
    """Alias of :func:`write_netpbm`."""
    write_netpbm(path, img, maxval)
