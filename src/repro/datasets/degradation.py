"""Bicubic resampling — the SISR degradation and upscaling baseline.

Implements MATLAB-``imresize``-compatible bicubic interpolation (Keys kernel
with a = −0.5, antialiasing when downscaling, symmetric boundary handling).
This is the degradation model under which DIV2K/Set5/... low-resolution
inputs are produced in the paper's evaluation, and also the "Bicubic" row of
Tables 1–2.

Everything is vectorized: per-axis contribution weights form a small dense
matrix, and resizing is two matrix products.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def cubic_kernel(x: np.ndarray, a: float = -0.5) -> np.ndarray:
    """Keys cubic convolution kernel (support [−2, 2])."""
    x = np.abs(x)
    x2, x3 = x * x, x * x * x
    out = np.where(
        x <= 1,
        (a + 2) * x3 - (a + 3) * x2 + 1,
        np.where(x < 2, a * x3 - 5 * a * x2 + 8 * a * x - 4 * a, 0.0),
    )
    return out


def _axis_weights(
    in_size: int, out_size: int, antialias: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Contribution weights and source indices for one axis.

    Returns ``(weights, indices)`` of shape ``(out_size, taps)``; indices are
    clipped symmetric-boundary source positions.
    """
    scale = out_size / in_size
    if scale < 1 and antialias:
        kernel_scale = scale
        support = 2.0 / scale
    else:
        kernel_scale = 1.0
        support = 2.0

    # Output pixel centres mapped to input coordinates.
    u = (np.arange(out_size) + 0.5) / scale - 0.5
    left = np.floor(u - support).astype(int) + 1
    taps = int(np.ceil(2 * support)) + 2
    indices = left[:, None] + np.arange(taps)[None, :]
    weights = cubic_kernel((u[:, None] - indices) * kernel_scale) * kernel_scale
    # Normalise (kernel truncation near boundaries / non-integer scales).
    weights /= weights.sum(axis=1, keepdims=True)

    # Symmetric (reflect-including-edge) boundary indexing.
    reflected = np.abs(indices)
    reflected = np.where(
        reflected >= in_size, 2 * in_size - 1 - reflected, reflected
    )
    reflected = np.clip(reflected, 0, in_size - 1)
    return weights.astype(np.float64), reflected


def _build_matrix(in_size: int, out_size: int, antialias: bool) -> np.ndarray:
    """Dense (out_size, in_size) resampling matrix for one axis."""
    weights, indices = _axis_weights(in_size, out_size, antialias)
    mat = np.zeros((out_size, in_size), dtype=np.float64)
    rows = np.repeat(np.arange(out_size), weights.shape[1])
    np.add.at(mat, (rows, indices.ravel()), weights.ravel())
    return mat


def bicubic_resize(
    img: np.ndarray, out_h: int, out_w: int, antialias: bool = True
) -> np.ndarray:
    """Resize (H, W) or (H, W, C) image to ``(out_h, out_w)``.

    Antialiasing (kernel widening) is applied per axis only when that axis
    shrinks, matching MATLAB ``imresize`` defaults.
    """
    img = np.asarray(img, dtype=np.float64)
    squeeze = img.ndim == 2
    if squeeze:
        img = img[..., None]
    h, w, c = img.shape
    mh = _build_matrix(h, out_h, antialias)
    mw = _build_matrix(w, out_w, antialias)
    # (out_h, H) @ (H, W·C) -> (out_h, W, C); then along width.
    out = np.tensordot(mh, img, axes=(1, 0))  # (out_h, W, C)
    out = np.tensordot(mw, out, axes=(1, 1)).transpose(1, 0, 2)  # (out_h, out_w, C)
    out = out.astype(np.float32)
    return out[..., 0] if squeeze else out


def bicubic_downscale(img: np.ndarray, scale: int) -> np.ndarray:
    """Downscale by an integer factor (the LR degradation)."""
    h, w = img.shape[:2]
    if h % scale or w % scale:
        raise ValueError(f"image {img.shape[:2]} not divisible by scale {scale}")
    return bicubic_resize(img, h // scale, w // scale, antialias=True)


def bicubic_upscale(img: np.ndarray, scale: int) -> np.ndarray:
    """Upscale by an integer factor (the "Bicubic" baseline of Tables 1–2)."""
    h, w = img.shape[:2]
    return bicubic_resize(img, h * scale, w * scale, antialias=False)


def crop_to_multiple(img: np.ndarray, multiple: int) -> np.ndarray:
    """Crop trailing rows/cols so spatial dims divide ``multiple``."""
    h, w = img.shape[:2]
    return img[: h - h % multiple if h % multiple else h,
               : w - w % multiple if w % multiple else w]
