"""Colour-space utilities (ITU-R BT.601, the SISR evaluation convention).

The paper follows standard practice (footnote 1): RGB images are converted
to YCbCr and only the Y (luma) channel is super-resolved and scored.
Coefficients match the MATLAB ``rgb2ycbcr`` convention used across the SISR
literature, normalised to inputs/outputs in [0, 1].
"""

from __future__ import annotations

import numpy as np

# BT.601 full-swing weights scaled to studio swing (16..235 for Y).
_Y_COEFF = np.array([65.481, 128.553, 24.966], dtype=np.float64)
_CB_COEFF = np.array([-37.797, -74.203, 112.0], dtype=np.float64)
_CR_COEFF = np.array([112.0, -93.786, -18.214], dtype=np.float64)


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """Convert (H, W, 3) RGB in [0,1] to YCbCr in [0,1] (studio swing)."""
    rgb = np.asarray(rgb, dtype=np.float64)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) RGB, got {rgb.shape}")
    y = (rgb @ _Y_COEFF + 16.0) / 255.0
    cb = (rgb @ _CB_COEFF + 128.0) / 255.0
    cr = (rgb @ _CR_COEFF + 128.0) / 255.0
    return np.stack([y, cb, cr], axis=2).astype(np.float32)


def ycbcr_to_rgb(ycbcr: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rgb_to_ycbcr` (clipped to [0,1])."""
    ycbcr = np.asarray(ycbcr, dtype=np.float64) * 255.0
    y = ycbcr[..., 0] - 16.0
    cb = ycbcr[..., 1] - 128.0
    cr = ycbcr[..., 2] - 128.0
    r = 0.00456621 * y + 0.00625893 * cr
    g = 0.00456621 * y - 0.00153632 * cb - 0.00318811 * cr
    b = 0.00456621 * y + 0.00791071 * cb
    rgb = np.stack([r, g, b], axis=2) * 255.0 / 255.0
    return np.clip(rgb, 0.0, 1.0).astype(np.float32)


def luminance(rgb: np.ndarray) -> np.ndarray:
    """Extract the Y channel of an RGB image as (H, W) in [0,1]-ish range."""
    return rgb_to_ycbcr(rgb)[..., 0]
