"""Training-data pipeline: random paired LR/HR crops, batched (paper §5.1).

The paper takes 64 random 64×64 crops per DIV2K image per epoch with batch
size 32.  :class:`PatchSampler` reproduces that scheme at configurable
scale-down (our synthetic images and crop sizes are smaller so CPU training
stays tractable; the *protocol* is identical).
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from .synthetic import SyntheticDataset


class PatchSampler:
    """Random paired-crop sampler over an (LR, HR) dataset.

    Yields NHWC float32 batches ``(lr, hr)`` where ``lr`` has shape
    ``(B, p, p, 1)`` and ``hr`` has shape ``(B, p·scale, p·scale, 1)``.

    Parameters
    ----------
    dataset:
        Any indexable of ``(lr, hr)`` pairs (e.g. :class:`SyntheticDataset`).
    patch_size:
        LR crop side ``p`` (the paper uses 64 on DIV2K).
    crops_per_image:
        Random crops drawn per image per epoch (paper: 64).
    batch_size:
        Patches per batch (paper: 32).
    """

    def __init__(
        self,
        dataset: SyntheticDataset,
        scale: int,
        patch_size: int = 24,
        crops_per_image: int = 8,
        batch_size: int = 8,
        seed: int = 0,
        augment: bool = False,
    ) -> None:
        self.dataset = dataset
        self.scale = scale
        self.patch_size = patch_size
        self.crops_per_image = crops_per_image
        self.batch_size = batch_size
        self.augment = augment
        self.rng = np.random.default_rng(seed)

    def steps_per_epoch(self) -> int:
        total = len(self.dataset) * self.crops_per_image
        return max(total // self.batch_size, 1)

    def _sample_pair(self) -> Tuple[np.ndarray, np.ndarray]:
        idx = int(self.rng.integers(len(self.dataset)))
        lr, hr = self.dataset[idx]
        p, s = self.patch_size, self.scale
        lh, lw = lr.shape[:2]
        if lh < p or lw < p:
            raise ValueError(
                f"LR image {lr.shape[:2]} smaller than patch size {p}"
            )
        y = int(self.rng.integers(lh - p + 1))
        x = int(self.rng.integers(lw - p + 1))
        lr_crop = lr[y : y + p, x : x + p]
        hr_crop = hr[y * s : (y + p) * s, x * s : (x + p) * s]
        if self.augment:
            lr_crop, hr_crop = self._dihedral(lr_crop, hr_crop)
        return lr_crop, hr_crop

    def _dihedral(
        self, lr_crop: np.ndarray, hr_crop: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Apply one of the 8 flip/rotation symmetries to both crops.

        Standard SISR augmentation: the degradation model is equivariant to
        the dihedral group, so every transform yields a valid (LR, HR) pair.
        """
        k = int(self.rng.integers(4))
        flip = bool(self.rng.integers(2))
        lr_crop = np.rot90(lr_crop, k)
        hr_crop = np.rot90(hr_crop, k)
        if flip:
            lr_crop = np.fliplr(lr_crop)
            hr_crop = np.fliplr(hr_crop)
        return np.ascontiguousarray(lr_crop), np.ascontiguousarray(hr_crop)

    def batches(self, epochs: int = 1) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``steps_per_epoch × epochs`` random batches."""
        for _ in range(epochs * self.steps_per_epoch()):
            lrs, hrs = zip(*(self._sample_pair() for _ in range(self.batch_size)))
            yield (
                np.stack(lrs)[..., None].astype(np.float32),
                np.stack(hrs)[..., None].astype(np.float32),
            )


def to_batch(img: np.ndarray) -> np.ndarray:
    """Lift a single (H, W) Y image to a (1, H, W, 1) NHWC batch."""
    img = np.asarray(img, dtype=np.float32)
    if img.ndim != 2:
        raise ValueError(f"expected (H, W) image, got {img.shape}")
    return img[None, :, :, None]


def from_batch(batch: np.ndarray) -> np.ndarray:
    """Inverse of :func:`to_batch` for single-image batches."""
    batch = np.asarray(batch)
    if batch.ndim != 4 or batch.shape[0] != 1 or batch.shape[3] != 1:
        raise ValueError(f"expected (1, H, W, 1) batch, got {batch.shape}")
    return batch[0, :, :, 0]
