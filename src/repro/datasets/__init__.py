"""``repro.datasets`` — synthetic SISR corpus, bicubic degradation, pipeline."""

from .color import luminance, rgb_to_ycbcr, ycbcr_to_rgb
from .degradation import (
    bicubic_downscale,
    bicubic_resize,
    bicubic_upscale,
    crop_to_multiple,
    cubic_kernel,
)
from .synthetic import (
    PROFILES,
    SUITE_SIZES,
    ContentProfile,
    SyntheticDataset,
    benchmark_suites,
    generate_image,
)
from .folder import ImageFolderDataset
from .io import (
    decode_netpbm,
    encode_netpbm,
    load_image,
    read_netpbm,
    save_image,
    write_netpbm,
)
from .pipeline import PatchSampler, from_batch, to_batch

__all__ = [
    "luminance",
    "rgb_to_ycbcr",
    "ycbcr_to_rgb",
    "bicubic_downscale",
    "bicubic_resize",
    "bicubic_upscale",
    "crop_to_multiple",
    "cubic_kernel",
    "PROFILES",
    "SUITE_SIZES",
    "ContentProfile",
    "SyntheticDataset",
    "benchmark_suites",
    "generate_image",
    "ImageFolderDataset",
    "decode_netpbm",
    "encode_netpbm",
    "load_image",
    "read_netpbm",
    "save_image",
    "write_netpbm",
    "PatchSampler",
    "from_batch",
    "to_batch",
]
