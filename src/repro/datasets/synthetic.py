"""Procedural synthetic image corpus — the offline stand-in for DIV2K et al.

The paper trains on DIV2K and evaluates on Set5, Set14, BSD100, Urban100,
Manga109 and the DIV2K validation split.  None of those are available in
this offline environment, so this module synthesises Y-channel images whose
*content statistics* mimic each benchmark's character:

* ``div2k`` / ``bsd100`` — natural-image-like: smooth shaded backgrounds,
  soft blobs, moderate texture, occasional geometry;
* ``urban100``           — repetitive structure: gratings, grids, rectangles
  (the hardest case for SISR, as in the real benchmark);
* ``manga109``           — line art: flat regions, high-contrast strokes and
  screen-tone patterns;
* ``set5`` / ``set14``   — small mixed suites.

Why this preserves the paper's claims: the quality *ordering* between models
(SESR-M11 > SESR-M5 > FSRCNN > bicubic) is driven by model capacity and
trainability on edge/texture reconstruction, which these images exercise.
Absolute PSNR values differ from the natural-image benchmarks; EXPERIMENTS.md
reports paper-vs-measured side by side.

Every image is a deterministic function of ``(profile, seed, index, size)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple
from zlib import crc32

import numpy as np

from .degradation import bicubic_downscale, bicubic_resize, crop_to_multiple


# ---------------------------------------------------------------------- #
# drawing primitives (all vectorized over the full pixel grid)
# ---------------------------------------------------------------------- #
def _grid(h: int, w: int) -> Tuple[np.ndarray, np.ndarray]:
    ys, xs = np.mgrid[0:h, 0:w]
    return ys.astype(np.float64), xs.astype(np.float64)


def _smoothstep(sdf: np.ndarray, edge: float = 1.0) -> np.ndarray:
    """Anti-aliased coverage from a signed distance field (inside < 0)."""
    t = np.clip(0.5 - sdf / (2.0 * edge), 0.0, 1.0)
    return t * t * (3.0 - 2.0 * t)


def smooth_background(h: int, w: int, rng: np.random.Generator) -> np.ndarray:
    """Low-frequency shaded background: a few oriented cosine ramps."""
    ys, xs = _grid(h, w)
    img = np.full((h, w), rng.uniform(0.25, 0.75))
    for _ in range(rng.integers(2, 5)):
        theta = rng.uniform(0, np.pi)
        freq = rng.uniform(0.5, 2.0) / max(h, w)
        phase = rng.uniform(0, 2 * np.pi)
        amp = rng.uniform(0.05, 0.18)
        img += amp * np.cos(
            2 * np.pi * freq * (xs * np.cos(theta) + ys * np.sin(theta)) + phase
        )
    return img


def add_blob(img: np.ndarray, rng: np.random.Generator) -> None:
    """Soft Gaussian blob (shading / out-of-focus structure)."""
    h, w = img.shape
    ys, xs = _grid(h, w)
    cy, cx = rng.uniform(0, h), rng.uniform(0, w)
    sy, sx = rng.uniform(0.05, 0.3) * h, rng.uniform(0.05, 0.3) * w
    amp = rng.uniform(-0.3, 0.3)
    img += amp * np.exp(-(((ys - cy) / sy) ** 2 + ((xs - cx) / sx) ** 2))


def add_ellipse(img: np.ndarray, rng: np.random.Generator) -> None:
    """Anti-aliased filled ellipse with a random rotation and grey level."""
    h, w = img.shape
    ys, xs = _grid(h, w)
    cy, cx = rng.uniform(0.1, 0.9) * h, rng.uniform(0.1, 0.9) * w
    ry, rx = rng.uniform(0.04, 0.25) * h, rng.uniform(0.04, 0.25) * w
    theta = rng.uniform(0, np.pi)
    ct, st = np.cos(theta), np.sin(theta)
    u = (xs - cx) * ct + (ys - cy) * st
    v = -(xs - cx) * st + (ys - cy) * ct
    sdf = (np.sqrt((u / rx) ** 2 + (v / ry) ** 2) - 1.0) * min(rx, ry)
    alpha = _smoothstep(sdf)
    value = rng.uniform(0.05, 0.95)
    img *= 1.0 - alpha
    img += alpha * value


def add_rectangle(img: np.ndarray, rng: np.random.Generator) -> None:
    """Anti-aliased rotated rectangle (building/window-like structure)."""
    h, w = img.shape
    ys, xs = _grid(h, w)
    cy, cx = rng.uniform(0.1, 0.9) * h, rng.uniform(0.1, 0.9) * w
    hh, hw = rng.uniform(0.05, 0.3) * h, rng.uniform(0.05, 0.3) * w
    theta = rng.uniform(-0.3, 0.3)
    ct, st = np.cos(theta), np.sin(theta)
    u = (xs - cx) * ct + (ys - cy) * st
    v = -(xs - cx) * st + (ys - cy) * ct
    sdf = np.maximum(np.abs(u) - hw, np.abs(v) - hh)
    alpha = _smoothstep(sdf)
    value = rng.uniform(0.05, 0.95)
    img *= 1.0 - alpha
    img += alpha * value


def add_stroke(img: np.ndarray, rng: np.random.Generator) -> None:
    """High-contrast line segment (manga/line-art stroke)."""
    h, w = img.shape
    ys, xs = _grid(h, w)
    p0 = np.array([rng.uniform(0, h), rng.uniform(0, w)])
    angle = rng.uniform(0, 2 * np.pi)
    length = rng.uniform(0.2, 0.9) * max(h, w)
    p1 = p0 + length * np.array([np.sin(angle), np.cos(angle)])
    d = p1 - p0
    denom = float(d @ d) + 1e-12
    t = np.clip(((ys - p0[0]) * d[0] + (xs - p0[1]) * d[1]) / denom, 0.0, 1.0)
    dist = np.sqrt((ys - (p0[0] + t * d[0])) ** 2 + (xs - (p0[1] + t * d[1])) ** 2)
    width = rng.uniform(0.8, 2.5)
    alpha = _smoothstep(dist - width)
    value = 0.0 if rng.random() < 0.8 else 1.0
    img *= 1.0 - alpha
    img += alpha * value


def add_grating(img: np.ndarray, rng: np.random.Generator) -> None:
    """Windowed sinusoidal grating (urban facades, screen tones)."""
    h, w = img.shape
    ys, xs = _grid(h, w)
    theta = rng.uniform(0, np.pi)
    period = rng.uniform(3.0, 12.0)
    phase = rng.uniform(0, 2 * np.pi)
    wave = 0.5 + 0.5 * np.sign(
        np.cos(2 * np.pi / period * (xs * np.cos(theta) + ys * np.sin(theta)) + phase)
    ) * rng.uniform(0.5, 1.0)
    # Rectangular window where the grating applies.
    cy, cx = rng.uniform(0.2, 0.8) * h, rng.uniform(0.2, 0.8) * w
    hh, hw = rng.uniform(0.15, 0.45) * h, rng.uniform(0.15, 0.45) * w
    sdf = np.maximum(np.abs(ys - cy) - hh, np.abs(xs - cx) - hw)
    alpha = _smoothstep(sdf) * rng.uniform(0.5, 1.0)
    img *= 1.0 - alpha
    img += alpha * wave


def add_texture(img: np.ndarray, rng: np.random.Generator, strength: float) -> None:
    """Band-limited noise texture: small noise field upscaled bicubically."""
    h, w = img.shape
    base = rng.integers(6, 16)
    noise = rng.standard_normal((max(h // base, 2), max(w // base, 2)))
    field = bicubic_resize(noise, h, w, antialias=False)
    img += strength * rng.uniform(0.3, 1.0) * field.astype(np.float64)


# ---------------------------------------------------------------------- #
# content profiles
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ContentProfile:
    """Mixture weights describing a benchmark's content statistics."""

    name: str
    n_shapes: Tuple[int, int]
    n_blobs: Tuple[int, int]
    n_strokes: Tuple[int, int]
    n_gratings: Tuple[int, int]
    texture: float
    flat_background: bool = False


# Densities are tuned so bicubic ×2 lands in a realistic PSNR range on
# 96×96 crops (real benchmarks: ~27–34 dB) — edge-rich content is where
# learned SR separates from bicubic, exactly as on the natural suites.
PROFILES: Dict[str, ContentProfile] = {
    "div2k": ContentProfile("div2k", (5, 10), (1, 4), (2, 5), (0, 2), 0.03),
    "div2k-val": ContentProfile(
        "div2k-val", (5, 10), (1, 4), (2, 5), (0, 2), 0.03
    ),
    "set5": ContentProfile("set5", (4, 8), (1, 3), (1, 4), (0, 1), 0.02),
    "set14": ContentProfile("set14", (5, 10), (1, 3), (2, 5), (0, 2), 0.03),
    "bsd100": ContentProfile("bsd100", (4, 8), (2, 5), (1, 4), (0, 1), 0.06),
    "urban100": ContentProfile("urban100", (6, 12), (0, 2), (1, 3), (2, 5), 0.02),
    "manga109": ContentProfile(
        "manga109", (2, 6), (0, 1), (5, 12), (1, 3), 0.0, flat_background=True
    ),
}

#: Benchmark suite sizes (image counts mirror the real suites, scaled down
#: where the real suite is large — the full 100/109 images are available by
#: passing ``n_images`` explicitly).
SUITE_SIZES: Dict[str, int] = {
    "set5": 5,
    "set14": 14,
    "bsd100": 12,
    "urban100": 12,
    "manga109": 12,
    "div2k-val": 10,
}


def generate_image(
    height: int, width: int, rng: np.random.Generator, profile: ContentProfile
) -> np.ndarray:
    """Render one synthetic Y-channel image in [0, 1]."""
    if profile.flat_background:
        img = np.full((height, width), rng.uniform(0.75, 0.95))
    else:
        img = smooth_background(height, width, rng)
    for _ in range(rng.integers(*profile.n_blobs) if profile.n_blobs[1] else 0):
        add_blob(img, rng)
    for _ in range(rng.integers(*profile.n_shapes)):
        (add_rectangle if rng.random() < 0.5 else add_ellipse)(img, rng)
    for _ in range(rng.integers(*profile.n_gratings) if profile.n_gratings[1] else 0):
        add_grating(img, rng)
    for _ in range(rng.integers(*profile.n_strokes) if profile.n_strokes[1] else 0):
        add_stroke(img, rng)
    if profile.texture > 0:
        add_texture(img, rng, profile.texture)
    return np.clip(img, 0.0, 1.0).astype(np.float32)


class SyntheticDataset:
    """A deterministic collection of (LR, HR) Y-channel image pairs.

    Parameters
    ----------
    profile:
        Key into :data:`PROFILES` (``"div2k"``, ``"urban100"``, ...).
    n_images:
        Number of images; defaults to the suite size for benchmark profiles.
    size:
        HR image size ``(H, W)``; cropped to a multiple of ``scale``.
    scale:
        Super-resolution factor the LR images are degraded for.
    seed:
        Base seed; image ``i`` uses an independent child generator.
    """

    def __init__(
        self,
        profile: str = "div2k",
        n_images: Optional[int] = None,
        size: Tuple[int, int] = (96, 96),
        scale: int = 2,
        seed: int = 2022,
    ) -> None:
        if profile not in PROFILES:
            raise KeyError(f"unknown profile {profile!r}; know {sorted(PROFILES)}")
        if n_images is None:
            n_images = SUITE_SIZES.get(profile, 16)
        self.profile = PROFILES[profile]
        self.scale = scale
        self.seed = seed
        h = size[0] - size[0] % scale
        w = size[1] - size[1] % scale
        self.size = (h, w)
        self.n_images = int(n_images)
        self._cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def __len__(self) -> int:
        return self.n_images

    def hr_image(self, index: int) -> np.ndarray:
        """The HR ground-truth image ``index`` (H, W) in [0, 1]."""
        return self[index][1]

    def __getitem__(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(lr, hr)`` for image ``index`` (deterministic, cached)."""
        if not 0 <= index < self.n_images:
            raise IndexError(index)
        if index not in self._cache:
            # zlib.crc32 is stable across processes (str hash is salted).
            profile_key = crc32(self.profile.name.encode()) & 0xFFFF
            rng = np.random.default_rng(
                np.random.SeedSequence([self.seed, profile_key, index])
            )
            hr = generate_image(self.size[0], self.size[1], rng, self.profile)
            hr = crop_to_multiple(hr, self.scale)
            lr = bicubic_downscale(hr, self.scale)
            self._cache[index] = (lr, hr)
        return self._cache[index]

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        for i in range(self.n_images):
            yield self[i]


def benchmark_suites(
    scale: int,
    names: Sequence[str] = ("set5", "set14", "bsd100", "urban100", "manga109", "div2k-val"),
    size: Tuple[int, int] = (96, 96),
    seed: int = 2022,
    n_images: Optional[int] = None,
) -> Dict[str, SyntheticDataset]:
    """Build the six evaluation suites of Tables 1–2 (synthetic analogues)."""
    return {
        name: SyntheticDataset(
            profile=name, scale=scale, size=size, seed=seed, n_images=n_images
        )
        for name in names
    }
