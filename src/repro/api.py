"""``repro.api`` — the supported entry points, in one place.

The repo grew subsystem by subsystem (training, collapse, compiler,
serving), and with it the import paths a user must know.  This module is
the stable facade over that growth: everything a typical consumer of the
reproduction needs — build a model, load a checkpoint, collapse it to
the inference net (Algorithm 2), compile it, run it on an image, and
serve it over HTTP — importable from one namespace whose contents are
the compatibility surface (``docs/api.md`` is generated from it).

>>> from repro import api
>>> model = api.collapse(api.load("M5", scale=2, ckpt="sesr_m5_x2.npz"))
>>> sr = api.upscale(api.compile_model(model), lr_image)

Serving::

>>> config = api.EngineConfig(workers=4, batch_window_ms=3.0,
...                           gemm_backend="blocked")
>>> engine = api.InferenceEngine(
...     api.ModelRegistry(), api.ModelKey("M5", 2), config=config)
>>> server = api.make_server(engine, port=8000)

``make_async_server`` binds the event-loop front-end instead (same
``/v1`` wire contract); ``AsyncSRServer`` / ``ProcessWorkerPool`` are
the classes behind ``--frontend async`` / ``worker_backend="process"``.
:func:`tune` measures the GEMM kernels per conv shape and writes the
per-host cache that ``gemm_backend="auto"`` consults.

Deeper machinery (custom training loops, the NAS searcher, the NPU
estimator, chaos tooling) stays in its subsystem package; this module
deliberately re-exports only the pieces whose signatures we keep stable.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from .compile import compile_model
from .core import FSRCNN, SESR
from .dataplane import AsyncSRServer, ProcessWorkerPool, make_async_server
from .datasets import rgb_to_ycbcr, ycbcr_to_rgb
from .datasets.degradation import bicubic_upscale
from .deploy import tiled_upscale
from .kernels import save_cache, tune_model
from .nn import Module, load_state
from .serve import (
    EngineConfig,
    InferenceEngine,
    ModelKey,
    ModelRegistry,
    make_server,
)
from .train import predict_image

__all__ = [
    "load",
    "collapse",
    "compile_model",
    "tune",
    "upscale",
    "AsyncSRServer",
    "EngineConfig",
    "InferenceEngine",
    "ModelKey",
    "ModelRegistry",
    "ProcessWorkerPool",
    "make_async_server",
    "make_server",
]


def load(name: str = "M5", scale: int = 2, ckpt: str = "",
         seed: int = 0) -> Module:
    """Build a training-shaped model, optionally loading a checkpoint.

    ``name`` is a SESR size (``M3``/``M5``/``M7``/``M11``/``XL``) or
    ``FSRCNN``; ``ckpt`` is an ``.npz`` written by
    :func:`repro.nn.save_state` (e.g. by ``repro.cli train``).
    """
    if name.upper() == "FSRCNN":
        model: Module = FSRCNN(scale=scale, seed=seed)
    else:
        model = SESR.from_name(name, scale=scale, seed=seed)
    if ckpt:
        load_state(model, ckpt)
    return model


def collapse(model: Module) -> Module:
    """The deployable inference net: Algorithm 2, in eval mode.

    Models without a ``collapse`` method (FSRCNN and friends) pass
    through unchanged — they are already inference-shaped.
    """
    deployed = model.collapse() if hasattr(model, "collapse") else model
    deployed.eval()
    return deployed


def tune(model: Module, size: Tuple[int, int] = (96, 96),
         repeats: int = 3, save: bool = True,
         cache: Optional[str] = None) -> Dict[str, Dict[str, Any]]:
    """Time blas/blocked/direct per conv shape; optionally persist.

    ``model`` is a collapsed (or any compilable) model — it is compiled
    first if needed.  Returns the measured rows keyed by conv shape
    (see :func:`repro.kernels.shape_key`); with ``save=True`` they are
    merged into the per-host cache (``cache`` path, else
    ``$REPRO_TUNING_CACHE``, else ``~/.cache/repro/kernel_tuning.json``)
    that ``EngineConfig(gemm_backend="auto")`` consults.  The CLI
    equivalent is ``repro tune``.
    """
    from .compile.executor import CompiledModel

    compiled = (model if isinstance(model, CompiledModel)
                else compile_model(collapse(model)))
    rows = tune_model(compiled, size=size, repeats=repeats)
    if save:
        save_cache(rows, path=cache)
    return rows


def upscale(
    model: Module,
    image: np.ndarray,
    scale: Optional[int] = None,
    tile: Optional[Union[int, Tuple[int, int]]] = None,
) -> np.ndarray:
    """Super-resolve one image with the paper's colour protocol.

    Grey ``(H, W)`` inputs go straight through the model; colour
    ``(H, W, 3)`` inputs are super-resolved on the Y channel with
    bicubic-upscaled chroma — the same pixels ``repro.cli upscale`` and
    the HTTP server produce.  ``scale`` defaults to ``model.scale``;
    ``tile`` switches to halo-exact tiled inference (identical bytes,
    bounded memory) for large frames.
    """
    if scale is None:
        scale = getattr(model, "scale", None)
        if scale is None:
            raise ValueError(
                "model has no .scale attribute; pass scale= explicitly"
            )
    image = np.asarray(image, dtype=np.float32)

    def run_y(y: np.ndarray) -> np.ndarray:
        if tile is not None:
            t = (tile, tile) if isinstance(tile, int) else tuple(tile)
            return tiled_upscale(model, y, scale, tile=t)
        return predict_image(model, y)

    if image.ndim == 2:
        return run_y(image)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(
            f"expected (H, W) grey or (H, W, 3) colour, got {image.shape}"
        )
    ycbcr = rgb_to_ycbcr(image)
    y_sr = run_y(np.ascontiguousarray(ycbcr[..., 0]))
    cb = bicubic_upscale(ycbcr[..., 1], scale)
    cr = bicubic_upscale(ycbcr[..., 2], scale)
    return ycbcr_to_rgb(np.stack([y_sr, cb, cr], axis=2))
