"""repro — reproduction of *Collapsible Linear Blocks for Super-Efficient
Super Resolution* (SESR, Bhardwaj et al., MLSYS 2022).

Package layout
--------------
``repro.nn``        from-scratch NumPy deep-learning substrate (autograd,
                    NHWC convolutions, ADAM, ...)
``repro.core``      the paper's contribution: collapsible linear blocks,
                    Algorithms 1-2, SESR models, overparameterization
                    baselines, FSRCNN
``repro.datasets``  synthetic SISR corpus + bicubic degradation pipeline
``repro.metrics``   PSNR / SSIM / parameter & MAC accounting
``repro.train``     training loop and experiment harness (§5.1 protocol)
``repro.hw``        analytical Ethos-N78-class NPU performance estimator
``repro.theory``    §4 gradient-update analysis testbed
``repro.nas``       hardware-aware DNAS over SESR backbones (§3.4)
``repro.zoo``       registry of every network in Tables 1-2 with the
                    paper's reported numbers
``repro.obs``       observability: tracing spans, per-op profiler,
                    Prometheus ``/metrics`` exposition
``repro.serve``     batched, cached, multi-worker inference engine with an
                    HTTP front-end (``python -m repro.cli serve``)
``repro.resilience`` fault tolerance: retry/backoff, circuit breaker,
                    numeric guard, deterministic fault injection
``repro.api``       the stable facade: load / collapse / compile_model /
                    upscale / EngineConfig / make_server (start here)

Quickstart
----------
>>> from repro import api
>>> model = api.collapse(api.load("M5", scale=2))
>>> sr = api.upscale(api.compile_model(model), lr_image)

or, for training-side work:

>>> from repro.core import SESR
>>> from repro.train import ExperimentConfig, run_experiment
>>> model = SESR.from_name("M5", scale=2)
>>> # train on synthetic data, then export the collapsed inference net:
>>> inference_net = model.collapse()
"""

from . import (
    core,
    datasets,
    deploy,
    hw,
    metrics,
    nas,
    nn,
    obs,
    resilience,
    serve,
    theory,
    train,
    utils,
    zoo,
)
from . import api  # after the subsystems: the facade imports from them
from .core import SESR, CollapsibleLinearBlock, FSRCNN

__version__ = "1.0.0"

__all__ = [
    "api",
    "core",
    "datasets",
    "deploy",
    "hw",
    "metrics",
    "nas",
    "nn",
    "obs",
    "resilience",
    "serve",
    "theory",
    "train",
    "utils",
    "zoo",
    "SESR",
    "CollapsibleLinearBlock",
    "FSRCNN",
    "__version__",
]
