"""Overparameterized linear-regression testbed (empirical side of §4).

Each model below *actually* parameterises β the way its scheme prescribes
and runs exact gradient descent on the factors; the tests and the §4 bench
then check the paper's claims:

* one GD step on the factors matches the predicted collapsed-space update
  of Eqs. 3–5 up to O(η²);
* RepVGG's β trajectory coincides (exactly, not just to first order) with a
  VGG trajectory run at λ = 2η from the same collapsed initialisation;
* SESR/ExpandNet trajectories differ from VGG (they are genuinely adaptive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .updates import grad_beta, loss

SCHEMES = ("vgg", "expandnet", "sesr", "repvgg")


def make_regression(
    d: int, k: int, n: int, rng: np.random.Generator, noise: float = 0.01
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random well-conditioned regression data: X (n,d), Y (n,k), true B (d,k)."""
    x = rng.standard_normal((n, d))
    b_true = rng.standard_normal((d, k))
    y = x @ b_true + noise * rng.standard_normal((n, k))
    return x, y, b_true


class LinearModel:
    """Base: a parameterisation of β with exact factored gradient descent."""

    def beta(self) -> np.ndarray:
        raise NotImplementedError

    def step(self, x: np.ndarray, y: np.ndarray, lr: float) -> None:
        raise NotImplementedError


class VGGLinear(LinearModel):
    """β = w₁ (no overparameterization)."""

    def __init__(self, beta0: np.ndarray) -> None:
        self.w1 = beta0.copy()

    def beta(self) -> np.ndarray:
        return self.w1.copy()

    def step(self, x: np.ndarray, y: np.ndarray, lr: float) -> None:
        self.w1 -= lr * grad_beta(self.w1, x, y)


class ExpandNetLinear(LinearModel):
    """β = w₁·w₂ with scalar w₂ (Fig. 4(a))."""

    def __init__(self, beta0: np.ndarray, w2: float = 1.0) -> None:
        self.w2 = float(w2)
        self.w1 = beta0 / self.w2

    def beta(self) -> np.ndarray:
        return self.w1 * self.w2

    def step(self, x: np.ndarray, y: np.ndarray, lr: float) -> None:
        g = grad_beta(self.beta(), x, y)
        grad_w1 = g * self.w2
        grad_w2 = float(np.sum(g * self.w1))
        self.w1 -= lr * grad_w1
        self.w2 -= lr * grad_w2


class SESRLinear(LinearModel):
    """β = w₁·w₂ + I with scalar w₂ (Fig. 4(b))."""

    def __init__(self, beta0: np.ndarray, w2: float = 1.0) -> None:
        self.w2 = float(w2)
        self._eye = np.eye(*beta0.shape)
        self.w1 = (beta0 - self._eye) / self.w2

    def beta(self) -> np.ndarray:
        return self.w1 * self.w2 + self._eye

    def step(self, x: np.ndarray, y: np.ndarray, lr: float) -> None:
        g = grad_beta(self.beta(), x, y)
        grad_w1 = g * self.w2
        grad_w2 = float(np.sum(g * self.w1))
        self.w1 -= lr * grad_w1
        self.w2 -= lr * grad_w2


class RepVGGLinear(LinearModel):
    """β = w₁ + w₂ + I, w₂ the 1×1-branch matrix (Fig. 4(c))."""

    def __init__(self, beta0: np.ndarray, branch_scale: float = 0.5) -> None:
        self._eye = np.eye(*beta0.shape)
        self.w2 = branch_scale * (beta0 - self._eye)
        self.w1 = beta0 - self.w2 - self._eye

    def beta(self) -> np.ndarray:
        return self.w1 + self.w2 + self._eye

    def step(self, x: np.ndarray, y: np.ndarray, lr: float) -> None:
        g = grad_beta(self.beta(), x, y)
        # By the chain rule both branches see the full collapsed gradient.
        self.w1 -= lr * g
        self.w2 -= lr * g


def build(scheme: str, beta0: np.ndarray, **kwargs) -> LinearModel:
    """Instantiate a scheme by name with a given collapsed initialisation."""
    cls = {
        "vgg": VGGLinear,
        "expandnet": ExpandNetLinear,
        "sesr": SESRLinear,
        "repvgg": RepVGGLinear,
    }[scheme]
    return cls(beta0, **kwargs)


@dataclass
class Trajectory:
    """GD trajectory of one scheme."""

    scheme: str
    losses: List[float]
    betas: List[np.ndarray]

    @property
    def final_loss(self) -> float:
        return self.losses[-1]


def train(
    model: LinearModel,
    x: np.ndarray,
    y: np.ndarray,
    lr: float,
    steps: int,
    scheme: str = "",
) -> Trajectory:
    """Full-batch gradient descent, recording loss and β each step."""
    losses, betas = [], []
    for _ in range(steps):
        beta = model.beta()
        betas.append(beta)
        losses.append(loss(beta, x, y))
        model.step(x, y, lr)
    betas.append(model.beta())
    losses.append(loss(model.beta(), x, y))
    return Trajectory(scheme=scheme, losses=losses, betas=betas)


def compare_schemes(
    d: int = 6,
    k: int = 6,
    n: int = 256,
    lr: float = 0.02,
    steps: int = 150,
    seed: int = 0,
) -> Dict[str, Trajectory]:
    """Run all four schemes from the same collapsed initialisation."""
    rng = np.random.default_rng(seed)
    x, y, _ = make_regression(d, k, n, rng)
    beta0 = 0.1 * rng.standard_normal((d, k))
    out: Dict[str, Trajectory] = {}
    for scheme in SCHEMES:
        model = build(scheme, beta0)
        out[scheme] = train(model, x, y, lr, steps, scheme=scheme)
    return out
