"""``repro.theory`` — §4 gradient-update analysis of overparameterization."""

from .updates import (
    adaptive_coefficients,
    chain_gradient_magnitude,
    grad_beta,
    grad_w2_scalar,
    loss,
    predicted_update_expandnet,
    predicted_update_repvgg,
    predicted_update_sesr,
    predicted_update_vgg,
)
from .linreg import (
    SCHEMES,
    ExpandNetLinear,
    LinearModel,
    RepVGGLinear,
    SESRLinear,
    Trajectory,
    VGGLinear,
    build,
    compare_schemes,
    make_regression,
    train,
)

__all__ = [
    "adaptive_coefficients",
    "chain_gradient_magnitude",
    "grad_beta",
    "grad_w2_scalar",
    "loss",
    "predicted_update_expandnet",
    "predicted_update_repvgg",
    "predicted_update_sesr",
    "predicted_update_vgg",
    "SCHEMES",
    "ExpandNetLinear",
    "LinearModel",
    "RepVGGLinear",
    "SESRLinear",
    "Trajectory",
    "VGGLinear",
    "build",
    "compare_schemes",
    "make_regression",
    "train",
]
