"""Closed-form gradient-update rules of §4 (Eqs. 2–5).

The paper analyses linear overparameterization on the ℓ₂ regression problem

    L(β) = E[ ½‖xᵀβ − y‖² ],      ∇β = E[(xᵀβ − y)xᵀ]            (Eqs. 1–2)

for four parameterizations of the same collapsed weight β (Fig. 4):

=============  =======================  ==========================================
scheme         collapsed weight         one-step update for β (lr η)
=============  =======================  ==========================================
VGG            β = w₁                   β ← β − η∇β
ExpandNet      β = w₁·w₂                β ← β − ρ∇β − γβ               (Eq. 3)
SESR           β = w₁·w₂ + I            β ← β − ρ∇β − γβ + γ           (Eq. 4)
RepVGG         β = w₁ + w₂ + I          β ← β − 2η∇β                   (Eq. 5)
=============  =======================  ==========================================

with ρ(t) = η·w₂², γ(t) = η·∇w₂·w₂⁻¹.  The punchline the tests verify:
**RepVGG's update contains no adaptive term at all** — it is exactly a VGG
update with doubled learning rate — while SESR adds an extra ``+γ·I`` pull
on top of ExpandNet's time-varying momentum/learning rate.

Everything here is exact NumPy linear algebra (no autograd) so the property
tests can compare the *actual* factored-parameter gradient descent in
:mod:`repro.theory.linreg` against these predictions to O(η²).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def loss(beta: np.ndarray, x: np.ndarray, y: np.ndarray) -> float:
    """Empirical ℓ₂ regression loss (Eq. 1) for β of shape (d, k)."""
    resid = x @ beta - y
    return float(0.5 * np.mean(np.sum(resid**2, axis=1)))


def grad_beta(beta: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Gradient of Eq. 1 w.r.t. the collapsed weight (Eq. 2)."""
    n = x.shape[0]
    return x.T @ (x @ beta - y) / n


def predicted_update_vgg(
    beta: np.ndarray, g: np.ndarray, lr: float
) -> np.ndarray:
    """Plain gradient descent on β."""
    return beta - lr * g


def predicted_update_repvgg(
    beta: np.ndarray, g: np.ndarray, lr: float
) -> np.ndarray:
    """Eq. 5: ``β − 2η∇β`` — identical to VGG with λ = 2η, no adaptivity."""
    return beta - 2.0 * lr * g


def predicted_update_expandnet(
    beta: np.ndarray, g: np.ndarray, w2: float, grad_w2: float, lr: float
) -> np.ndarray:
    """Eq. 3: ``β − ρ∇β − γβ`` with ρ = ηw₂², γ = η∇w₂/w₂."""
    rho = lr * w2 * w2
    gamma = lr * grad_w2 / w2
    return beta - rho * g - gamma * beta


def predicted_update_sesr(
    beta: np.ndarray, g: np.ndarray, w2: float, grad_w2: float, lr: float
) -> np.ndarray:
    """Eq. 4: ``β − ρ∇β − γβ + γI`` — ExpandNet's update plus the extra
    identity-directed term contributed by the collapsible short residual."""
    rho = lr * w2 * w2
    gamma = lr * grad_w2 / w2
    eye = np.eye(*beta.shape, dtype=beta.dtype)
    return beta - rho * g - gamma * beta + gamma * eye


def grad_w2_scalar(g: np.ndarray, w1: np.ndarray) -> float:
    """∇w₂ for a scalar w₂ with β = w₁·w₂ (+I): ⟨∇β, w₁⟩ by the chain rule."""
    return float(np.sum(g * w1))


def adaptive_coefficients(
    w2: float, grad_w2: float, lr: float
) -> Tuple[float, float]:
    """(ρ, γ): the time-varying learning rate and momentum-like coefficient."""
    return lr * w2 * w2, lr * grad_w2 / w2


def chain_gradient_magnitude(
    depth: int,
    residual: bool,
    rng: np.random.Generator,
    init_scale: float = 0.7,
) -> float:
    """|∂out/∂w₁| through a depth-``depth`` linear chain (vanishing-gradient demo).

    Without residuals the first factor's gradient is ``∏_{i>1} w_i`` which
    decays exponentially for |w| < 1 — the paper's explanation of why
    ExpandNet-style doubling of depth (13 → 26 layers) hurts trainability.
    With residuals each factor is ``(w_i + 1)`` and the product stays Θ(1).
    """
    weights = rng.uniform(-init_scale, init_scale, size=depth)
    factors = weights + 1.0 if residual else weights
    # d(out)/d(w_1) = prod of the other factors.
    return float(np.abs(np.prod(factors[1:])))
