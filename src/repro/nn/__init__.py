"""``repro.nn`` — a from-scratch NumPy deep-learning substrate.

The SESR paper's reference implementation is TensorFlow; this package is the
substitute substrate (see DESIGN.md §2): reverse-mode autograd, NHWC/HWIO
convolutions, PReLU, depth-to-space, ADAM, and ℓ₁ training — everything the
paper's training and collapse machinery needs, with no external framework.
"""

from .tensor import Tensor, as_tensor, concatenate, no_grad, stack, where
from .modules import Module, Parameter, Sequential
from .layers import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    ConvTranspose2d,
    DepthToSpace,
    Identity,
    PReLU,
    ReLU,
    SpaceToDepth,
)
from .ops import (
    batch_norm,
    compose_bias_1x1,
    compose_conv_1x1,
    conv2d,
    conv2d_transpose,
    conv2d_transpose_reference,
    depth_to_space,
    dilate,
    prelu,
    relu,
    resolve_padding,
    sigmoid,
    softmax,
    space_to_depth,
)
from .optim import SGD, Adam, Optimizer
from .losses import LOSSES, charbonnier_loss, l1_loss, l2_loss, mse_loss
from .schedulers import (
    SCHEDULERS,
    ConstantLR,
    CosineDecay,
    LRScheduler,
    StepDecay,
    WarmupCosine,
)
from .serialization import load_state, save_state
from . import init

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "no_grad",
    "stack",
    "where",
    "Module",
    "Parameter",
    "Sequential",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Flatten",
    "Linear",
    "ConvTranspose2d",
    "DepthToSpace",
    "Identity",
    "PReLU",
    "ReLU",
    "SpaceToDepth",
    "batch_norm",
    "compose_bias_1x1",
    "compose_conv_1x1",
    "conv2d",
    "conv2d_transpose",
    "conv2d_transpose_reference",
    "depth_to_space",
    "dilate",
    "prelu",
    "relu",
    "resolve_padding",
    "sigmoid",
    "softmax",
    "space_to_depth",
    "SGD",
    "Adam",
    "Optimizer",
    "LOSSES",
    "charbonnier_loss",
    "l1_loss",
    "l2_loss",
    "mse_loss",
    "SCHEDULERS",
    "ConstantLR",
    "CosineDecay",
    "LRScheduler",
    "StepDecay",
    "WarmupCosine",
    "load_state",
    "save_state",
    "init",
]
