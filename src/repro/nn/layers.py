"""Standard layers used by SESR, its baselines, and the NAS supernet."""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from . import init as init_mod
from .modules import Module, Parameter
from .ops import (
    Padding,
    conv2d,
    conv2d_transpose,
    depth_to_space,
    prelu,
    relu,
    space_to_depth,
)
from .tensor import Tensor


def _as_pair(k: Union[int, Tuple[int, int]]) -> Tuple[int, int]:
    return (k, k) if isinstance(k, int) else (int(k[0]), int(k[1]))


class Conv2d(Module):
    """2-D convolution, NHWC activations, HWIO weight.

    ``kernel_size`` may be a pair to support the even-sized / asymmetric
    kernels explored by the paper's NAS section (e.g. ``(2, 2)``, ``(3, 2)``).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: Union[int, Tuple[int, int]],
        stride: int = 1,
        padding: Padding = "same",
        bias: bool = True,
        groups: int = 1,
        initializer: str = "glorot_uniform",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        kh, kw = _as_pair(kernel_size)
        if in_channels % groups or out_channels % groups:
            raise ValueError(
                f"channels ({in_channels}, {out_channels}) not divisible by "
                f"groups={groups}"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.groups = groups
        fn = init_mod.INITIALIZERS[initializer]
        self.weight = Parameter(
            fn((kh, kw, in_channels // groups, out_channels), rng)
        )
        self.bias = Parameter(np.zeros(out_channels, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, stride=self.stride,
                      padding=self.padding, groups=self.groups)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"groups={self.groups})"
        )


class ConvTranspose2d(Module):
    """Transposed convolution with output = stride · input (TF SAME geometry).

    Used by the FSRCNN baseline's 9×9 deconvolution upsampling head.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: Union[int, Tuple[int, int]],
        stride: int = 2,
        bias: bool = True,
        initializer: str = "glorot_uniform",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        kh, kw = _as_pair(kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        fn = init_mod.INITIALIZERS[initializer]
        self.weight = Parameter(fn((kh, kw, in_channels, out_channels), rng))
        self.bias = Parameter(np.zeros(out_channels, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d_transpose(x, self.weight, self.bias, stride=self.stride)


class ReLU(Module):
    """Stateless rectifier."""

    def forward(self, x: Tensor) -> Tensor:
        return relu(x)


class BatchNorm2d(Module):
    """Batch normalisation over NHWC activations (per-channel affine).

    The SESR blocks themselves are BN-free (BN between the linear convs
    would break collapsibility), but RepVGG — one of the paper's §5.4
    comparisons — places BN on every branch; this layer plus
    :func:`repro.core.collapse.fold_batchnorm` reproduces that faithfully.
    """

    def __init__(self, channels: int, eps: float = 1e-5,
                 momentum: float = 0.1) -> None:
        super().__init__()
        self.channels = channels
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(channels, dtype=np.float32))
        self.beta = Parameter(np.zeros(channels, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(channels, dtype=np.float32))
        self.register_buffer("running_var", np.ones(channels, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mu = x.mean(axis=(0, 1, 2))
            centred = x - mu.reshape(1, 1, 1, self.channels)
            var = (centred * centred).mean(axis=(0, 1, 2))
            inv = (var.reshape(1, 1, 1, self.channels) + self.eps) ** -0.5
            out = centred * inv * self.gamma + self.beta
            # Update running statistics outside the graph.
            m = self.momentum
            self.running_mean *= 1 - m
            self.running_mean += m * mu.data
            self.running_var *= 1 - m
            self.running_var += m * var.data
            return out
        from .ops import batch_norm

        return batch_norm(
            x, self.gamma, self.beta, self.running_mean, self.running_var,
            self.eps,
        )


class PReLU(Module):
    """Parametric ReLU with one learnable slope per channel (init 0.25)."""

    def __init__(self, channels: int, init: float = 0.25) -> None:
        super().__init__()
        self.alpha = Parameter(np.full(channels, init, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return prelu(x, self.alpha)


class Identity(Module):
    """No-op layer (placeholder in ablations and NAS skip branches)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Fully-connected layer ``y = x·W + b`` on ``(..., in_features)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        initializer: str = "glorot_uniform",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        fn = init_mod.INITIALIZERS[initializer]
        self.weight = Parameter(fn((in_features, out_features), rng))
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        return out if self.bias is None else out + self.bias


class Flatten(Module):
    """Collapse all but the leading (batch) axis."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], int(np.prod(x.shape[1:])))


class Dropout(Module):
    """Inverted dropout (identity in eval mode).

    Not used by SESR itself — the paper's nets are fully convolutional
    without regularisation — but part of a complete training substrate.
    The mask stream is seeded for reproducibility.
    """

    def __init__(self, p: float = 0.5, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * Tensor(mask)


class DepthToSpace(Module):
    """Pixel-shuffle upsampling layer (paper's depth-to-space op)."""

    def __init__(self, block: int) -> None:
        super().__init__()
        self.block = block

    def forward(self, x: Tensor) -> Tensor:
        return depth_to_space(x, self.block)


class SpaceToDepth(Module):
    """Inverse pixel-shuffle."""

    def __init__(self, block: int) -> None:
        super().__init__()
        self.block = block

    def forward(self, x: Tensor) -> Tensor:
        return space_to_depth(x, self.block)
