"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the foundation of the ``repro.nn`` substrate: a small,
tape-based autograd engine in the spirit of (but much smaller than)
PyTorch/TensorFlow.  The SESR paper's training-time machinery — linear
overparameterization, per-step analytic collapse, Adam — only needs a
modest set of differentiable primitives, all of which live here or in
:mod:`repro.nn.ops`.

Design notes
------------
* Activations are **NHWC** and convolution weights **HWIO** throughout,
  matching the TensorFlow-style pseudocode of Algorithm 1 in the paper.
* Every primitive records a backward closure on a tape; calling
  :meth:`Tensor.backward` walks the tape in reverse topological order and
  accumulates gradients into ``Tensor.grad`` (a plain ``np.ndarray``).
* Gradients broadcast exactly like NumPy; :func:`_unbroadcast` reduces a
  gradient back to the shape of its source operand.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs import profiler as _profiler

DEFAULT_DTYPE = np.float32

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

# Grad mode is per-thread so inference threads (e.g. the repro.serve worker
# pool) can enter/exit no_grad without racing a training thread's tape.
_grad_state = threading.local()


class no_grad:
    """Context manager that disables graph construction (inference mode)."""

    def __enter__(self) -> "no_grad":
        self._prev = is_grad_enabled()
        _grad_state.enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _grad_state.enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients (per thread)."""
    return getattr(_grad_state, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with an autograd tape.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float32`` by default.
    requires_grad:
        Whether gradients should be accumulated for this tensor.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "_grad_buffer",
        "name",
    )

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        dtype: Optional[np.dtype] = None,
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        if dtype is None:
            # Preserve an existing floating dtype (float64 workflows keep
            # full precision); promote everything else to float32.
            if isinstance(data, np.ndarray) and np.issubdtype(
                data.dtype, np.floating
            ):
                dtype = data.dtype
            else:
                dtype = DEFAULT_DTYPE
        arr = np.asarray(data, dtype=dtype)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._grad_buffer: Optional[np.ndarray] = None
        self.name = name

    # ------------------------------------------------------------------ #
    # basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """The scalar value of a 1-element tensor."""
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Deep copy of the payload (graph links are not copied)."""
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{tag})"

    # ------------------------------------------------------------------ #
    # graph machinery
    # ------------------------------------------------------------------ #
    @staticmethod
    def _result(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op result, wiring the tape if gradients are enabled."""
        req = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=req, dtype=data.dtype)
        if req:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to ``1.0`` for scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order via iterative DFS (avoids recursion limits on
        # deep expanded-space graphs).
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in visited:
                    stack.append((p, False))

        grads = {id(self): grad}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node._backward is None:
                node._accumulate(g)
                continue
            # Leaf-style accumulation also happens for interior nodes that
            # the user marked requires_grad explicitly (e.g. probes).
            node._backward(g)
            for p in node._parents:
                if p.requires_grad and p._grad_buffer is not None:
                    pg = p._grad_buffer
                    p._grad_buffer = None
                    if p._backward is None:
                        p._accumulate(pg)
                    else:
                        key = id(p)
                        if key in grads:
                            grads[key] = grads[key] + pg
                        else:
                            grads[key] = pg

    def _send(self, grad: np.ndarray) -> None:
        """Deliver ``grad`` to this parent during the reverse sweep."""
        if self._grad_buffer is None:
            self._grad_buffer = grad
        else:
            self._grad_buffer = self._grad_buffer + grad

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._send(_unbroadcast(g, self.shape))
            if other.requires_grad:
                other._send(_unbroadcast(g, other.shape))

        return Tensor._result(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self._send(-g)

        return Tensor._result(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._send(_unbroadcast(g * other.data, self.shape))
            if other.requires_grad:
                other._send(_unbroadcast(g * self.data, other.shape))

        return Tensor._result(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._send(_unbroadcast(g / other.data, self.shape))
            if other.requires_grad:
                other._send(
                    _unbroadcast(-g * self.data / (other.data**2), other.shape)
                )

        return Tensor._result(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(g: np.ndarray) -> None:
            self._send(g * exponent * self.data ** (exponent - 1))

        return Tensor._result(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data
        prof = _profiler.ACTIVE  # None check only when profiling is off
        if prof is not None:
            t0 = time.perf_counter()
        out_data = a @ b
        if prof is not None:
            prof.record(
                "matmul",
                time.perf_counter() - t0,
                macs=int(out_data.size) * int(a.shape[-1]),
            )

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                ga = g @ np.swapaxes(b, -1, -2)
                self._send(_unbroadcast(ga, self.shape))
            if other.requires_grad:
                gb = np.swapaxes(a, -1, -2) @ g
                other._send(_unbroadcast(gb, other.shape))

        return Tensor._result(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            self._send(g * out_data)

        return Tensor._result(out_data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""

        def backward(g: np.ndarray) -> None:
            self._send(g / self.data)

        return Tensor._result(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        return self**0.5

    def abs(self) -> "Tensor":
        """Elementwise absolute value (subgradient 0 at the kink)."""
        sign = np.sign(self.data)

        def backward(g: np.ndarray) -> None:
            self._send(g * sign)

        return Tensor._result(np.abs(self.data), (self,), backward)

    def maximum(self, other: ArrayLike) -> "Tensor":
        """Elementwise maximum (ties route gradient to ``self``)."""
        other = as_tensor(other)
        out_data = np.maximum(self.data, other.data)
        mask = self.data >= other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._send(_unbroadcast(g * mask, self.shape))
            if other.requires_grad:
                other._send(_unbroadcast(g * ~mask, other.shape))

        return Tensor._result(out_data, (self, other), backward)

    def minimum(self, other: ArrayLike) -> "Tensor":
        """Elementwise minimum (ties route gradient to ``self``)."""
        other = as_tensor(other)
        out_data = np.minimum(self.data, other.data)
        mask = self.data <= other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._send(_unbroadcast(g * mask, self.shape))
            if other.requires_grad:
                other._send(_unbroadcast(g * ~mask, other.shape))

        return Tensor._result(out_data, (self, other), backward)

    def clip(self, lo: float, hi: float) -> "Tensor":
        """Clamp values to [lo, hi]; gradient is 1 inside, 0 outside."""
        mask = (self.data >= lo) & (self.data <= hi)

        def backward(g: np.ndarray) -> None:
            self._send(g * mask)

        return Tensor._result(np.clip(self.data, lo, hi), (self,), backward)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(
        self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False
    ) -> "Tensor":
        """Sum over ``axis`` (all axes when None)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        in_shape = self.shape

        def backward(g: np.ndarray) -> None:
            if axis is None:
                self._send(np.broadcast_to(g, in_shape).copy())
                return
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            if not keepdims:
                g = np.expand_dims(g, tuple(a % len(in_shape) for a in axes))
            self._send(np.broadcast_to(g, in_shape).copy())

        return Tensor._result(out_data, (self,), backward)

    def mean(
        self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False
    ) -> "Tensor":
        """Arithmetic mean over ``axis`` (all axes when None)."""
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        """Maximum over ``axis``; gradient splits evenly across ties."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            expanded = out_data
            gg = g
            if axis is not None and not keepdims:
                expanded = np.expand_dims(out_data, axis)
                gg = np.expand_dims(g, axis)
            mask = self.data == expanded
            # Split the gradient evenly across ties (matches JAX semantics).
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._send(gg * mask / counts)

        return Tensor._result(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: Union[int, Tuple[int, ...]]) -> "Tensor":
        """View with a new shape (same number of elements)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        in_shape = self.shape

        def backward(g: np.ndarray) -> None:
            self._send(g.reshape(in_shape))

        return Tensor._result(self.data.reshape(shape), (self,), backward)

    def transpose(self, axes: Sequence[int]) -> "Tensor":
        """Permute axes."""
        axes = tuple(axes)
        inv = tuple(np.argsort(axes))

        def backward(g: np.ndarray) -> None:
            self._send(g.transpose(inv))

        return Tensor._result(self.data.transpose(axes), (self,), backward)

    def flip(self, axes: Union[int, Tuple[int, ...]]) -> "Tensor":
        """Reverse the order of elements along ``axes``."""
        axes = (axes,) if isinstance(axes, int) else tuple(axes)

        def backward(g: np.ndarray) -> None:
            self._send(np.flip(g, axes))

        return Tensor._result(np.flip(self.data, axes).copy(), (self,), backward)

    def pad(self, pad_width: Sequence[Tuple[int, int]]) -> "Tensor":
        """Zero-pad each axis by ``(before, after)`` amounts."""
        pad_width = tuple((int(a), int(b)) for a, b in pad_width)
        out_data = np.pad(self.data, pad_width)
        slices = tuple(
            slice(a, dim + a) for (a, _), dim in zip(pad_width, self.shape)
        )

        def backward(g: np.ndarray) -> None:
            self._send(g[slices])

        return Tensor._result(out_data, (self,), backward)

    def __getitem__(self, idx) -> "Tensor":
        out_data = self.data[idx]
        in_shape = self.shape

        def backward(g: np.ndarray) -> None:
            full = np.zeros(in_shape, dtype=g.dtype)
            np.add.at(full, idx, g)
            self._send(full)

        return Tensor._result(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # comparisons (non-differentiable, return numpy)
    # ------------------------------------------------------------------ #
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > as_tensor(other).data

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < as_tensor(other).data


def as_tensor(x: ArrayLike) -> Tensor:
    """Coerce array-likes and scalars to :class:`Tensor` (no copy for tensors)."""
    return x if isinstance(x, Tensor) else Tensor(x)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.stack``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray) -> None:
        pieces = np.split(g, len(tensors), axis=axis)
        for t, piece in zip(tensors, pieces):
            if t.requires_grad:
                t._send(np.squeeze(piece, axis=axis))

    return Tensor._result(out_data, tuple(tensors), backward)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.concatenate``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(start, stop)
                t._send(g[tuple(sl)])

    return Tensor._result(out_data, tuple(tensors), backward)


def where(mask: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Differentiable select; ``mask`` is a constant boolean array."""
    a, b = as_tensor(a), as_tensor(b)
    mask = np.asarray(mask, dtype=bool)
    out_data = np.where(mask, a.data, b.data)

    def backward(g: np.ndarray) -> None:
        if a.requires_grad:
            a._send(_unbroadcast(np.where(mask, g, 0.0), a.shape))
        if b.requires_grad:
            b._send(_unbroadcast(np.where(mask, 0.0, g), b.shape))

    return Tensor._result(out_data, (a, b), backward)
