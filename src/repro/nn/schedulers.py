"""Learning-rate schedules.

The paper trains with a *constant* 5e-4 (§5.1); schedules are provided for
the scaled-down regimes this repo runs in (short schedules benefit from
decay) and for ablation studies.  All schedules are pure functions of the
step index so training runs stay exactly reproducible.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .optim import Optimizer


class LRScheduler:
    """Base: computes the lr for a step and applies it to an optimizer."""

    def __init__(self, base_lr: float) -> None:
        if base_lr <= 0:
            raise ValueError("base_lr must be positive")
        self.base_lr = float(base_lr)

    def lr_at(self, step: int) -> float:
        """Learning rate for 0-indexed ``step``."""
        raise NotImplementedError

    def apply(self, optimizer: Optimizer, step: int) -> float:
        lr = self.lr_at(step)
        optimizer.lr = lr
        return lr


class ConstantLR(LRScheduler):
    """The paper's schedule: a constant learning rate."""

    def lr_at(self, step: int) -> float:
        return self.base_lr


class StepDecay(LRScheduler):
    """Multiply lr by ``gamma`` at each milestone step."""

    def __init__(self, base_lr: float, milestones: Sequence[int],
                 gamma: float = 0.5) -> None:
        super().__init__(base_lr)
        if sorted(milestones) != list(milestones):
            raise ValueError("milestones must be sorted ascending")
        self.milestones: List[int] = list(milestones)
        self.gamma = float(gamma)

    def lr_at(self, step: int) -> float:
        passed = sum(1 for m in self.milestones if step >= m)
        return self.base_lr * self.gamma**passed


class CosineDecay(LRScheduler):
    """Cosine anneal from ``base_lr`` to ``min_lr`` over ``total_steps``."""

    def __init__(self, base_lr: float, total_steps: int,
                 min_lr: float = 0.0) -> None:
        super().__init__(base_lr)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.total_steps = int(total_steps)
        self.min_lr = float(min_lr)

    def lr_at(self, step: int) -> float:
        t = min(step, self.total_steps) / self.total_steps
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * t)
        )


class WarmupCosine(LRScheduler):
    """Linear warmup for ``warmup_steps`` then cosine decay to ``min_lr``."""

    def __init__(self, base_lr: float, total_steps: int, warmup_steps: int,
                 min_lr: float = 0.0) -> None:
        super().__init__(base_lr)
        if not 0 <= warmup_steps < total_steps:
            raise ValueError("need 0 <= warmup_steps < total_steps")
        self.total_steps = int(total_steps)
        self.warmup_steps = int(warmup_steps)
        self.min_lr = float(min_lr)

    def lr_at(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        span = self.total_steps - self.warmup_steps
        t = min(step - self.warmup_steps, span) / span
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * t)
        )


SCHEDULERS = {
    "constant": ConstantLR,
    "step": StepDecay,
    "cosine": CosineDecay,
    "warmup_cosine": WarmupCosine,
}
