"""Checkpoint (de)serialization for module state dicts (.npz files)."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .modules import Module


def save_state(module: Module, path: str) -> None:
    """Write a module's state dict to ``path`` as a compressed ``.npz``."""
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    # np.savez keys cannot contain "/" reliably across versions; dots are fine.
    np.savez_compressed(path, **state)


def load_state(module: Module, path: str, strict: bool = True) -> None:
    """Load a ``.npz`` checkpoint written by :func:`save_state` in place."""
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {k: archive[k] for k in archive.files}
    module.load_state_dict(state, strict=strict)
