"""Weight initializers.

All initializers take an explicit ``rng`` so every experiment in the
benchmark harness is reproducible from a single seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for dense or HWIO conv weight shapes."""
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        kh, kw, cin, cout = shape
        rf = kh * kw
        return cin * rf, cout * rf
    raise ValueError(f"unsupported weight shape {shape}")


def glorot_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform — TensorFlow's default, used by reference SESR."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def he_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Kaiming/He normal, suited to ReLU-family activations."""
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(np.float32)


def zeros(shape: Tuple[int, ...], rng: np.random.Generator = None) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def identity_conv(k: int, channels: int) -> np.ndarray:
    """HWIO weight implementing the identity map (paper Algorithm 2).

    A residual connection equals a ``k×k`` convolution whose weight has a
    single 1 at the spatial centre on each diagonal channel pair:
    ``W[idx, idx, i, i] = 1`` with ``idx = (k - 1) // 2``.
    """
    if k % 2 == 0:
        raise ValueError("identity kernels require odd kernel size")
    w = np.zeros((k, k, channels, channels), dtype=np.float32)
    idx = (k - 1) // 2
    for i in range(channels):
        w[idx, idx, i, i] = 1.0
    return w


INITIALIZERS = {
    "glorot_uniform": glorot_uniform,
    "he_normal": he_normal,
    "zeros": zeros,
}
