"""Training losses.

The paper trains all networks with mean absolute error (ℓ₁) between the
generated and high-resolution images (§5.1); ℓ₂ and Charbonnier are kept
for ablations and the theory module's regression experiments.
"""

from __future__ import annotations

from .tensor import Tensor, as_tensor


def l1_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error — the paper's training loss."""
    return (as_tensor(pred) - as_tensor(target)).abs().mean()


def l2_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Half mean squared error (matches Eq. 1 of the paper's theory section)."""
    diff = as_tensor(pred) - as_tensor(target)
    return (diff * diff).mean() * 0.5


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Plain mean squared error."""
    diff = as_tensor(pred) - as_tensor(target)
    return (diff * diff).mean()


def charbonnier_loss(pred: Tensor, target: Tensor, eps: float = 1e-3) -> Tensor:
    """Charbonnier (smooth ℓ₁) loss, common in SISR (e.g. LapSRN)."""
    diff = as_tensor(pred) - as_tensor(target)
    return ((diff * diff + eps * eps) ** 0.5).mean()


LOSSES = {
    "l1": l1_loss,
    "l2": l2_loss,
    "mse": mse_loss,
    "charbonnier": charbonnier_loss,
}
