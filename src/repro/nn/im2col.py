"""Patch extraction (im2col) and folding (col2im) for NHWC tensors.

Convolution in :mod:`repro.nn.ops` is implemented as

    patches = extract_patches(x_padded)        # (N, Ho, Wo, kh, kw, C)
    y = patches.reshape(-1, kh*kw*C) @ W.reshape(kh*kw*C, Cout)

which pushes all arithmetic into a single BLAS matmul — the vectorized-NumPy
idiom the project guides call for.  ``extract_patches`` is a zero-copy view
built with ``numpy.lib.stride_tricks.as_strided``; ``fold_patches`` is its
adjoint (scatter-add), used by the convolution backward pass.

The compiled executor and the kernel autotuner
(:func:`repro.kernels.time_conv_kernels`) reuse ``extract_patches`` for
their im2col phase, feeding the patch matrix to either the vendor sgemm
or the deterministic blocked kernel (:mod:`repro.kernels.blocked`) — the
patch layout here is the one both GEMM backends contract over.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided


def extract_patches(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int] = (1, 1)
) -> np.ndarray:
    """View ``x`` (N, H, W, C) as sliding patches (N, Ho, Wo, kh, kw, C).

    The result is a strided **view**; callers must not write to it and should
    reshape/copy before mutating.
    """
    n, h, w, c = x.shape
    kh, kw = kernel
    sh, sw = stride
    ho = (h - kh) // sh + 1
    wo = (w - kw) // sw + 1
    if ho <= 0 or wo <= 0:
        raise ValueError(
            f"kernel {kernel} with stride {stride} does not fit input {x.shape}"
        )
    sn, sH, sW, sC = x.strides
    return as_strided(
        x,
        shape=(n, ho, wo, kh, kw, c),
        strides=(sn, sH * sh, sW * sw, sH, sW, sC),
        writeable=False,
    )


def fold_patches(
    patches: np.ndarray,
    out_shape: Tuple[int, int, int, int],
    stride: Tuple[int, int] = (1, 1),
) -> np.ndarray:
    """Adjoint of :func:`extract_patches`: scatter-add patches into an image.

    Parameters
    ----------
    patches:
        Array of shape (N, Ho, Wo, kh, kw, C).
    out_shape:
        Target (N, H, W, C) — the *padded* input shape of the forward conv.

    Notes
    -----
    The kernel loop runs only ``kh*kw`` times (≤ 25 for this project), with a
    fully vectorized strided-slice add per tap, so the cost is dominated by
    the adds, not the Python loop.
    """
    n, ho, wo, kh, kw, c = patches.shape
    sh, sw = stride
    out = np.zeros(out_shape, dtype=patches.dtype)
    for i in range(kh):
        for j in range(kw):
            out[:, i : i + sh * ho : sh, j : j + sw * wo : sw, :] += patches[
                :, :, :, i, j, :
            ]
    return out


def dilate2d(x: np.ndarray, stride: Tuple[int, int]) -> np.ndarray:
    """Insert ``stride-1`` zeros between spatial elements of (N, H, W, C).

    Used to express transposed convolution (FSRCNN's deconv head) in terms of
    ordinary convolution.
    """
    sh, sw = stride
    if sh == 1 and sw == 1:
        return x
    n, h, w, c = x.shape
    out = np.zeros((n, (h - 1) * sh + 1, (w - 1) * sw + 1, c), dtype=x.dtype)
    out[:, ::sh, ::sw, :] = x
    return out
