"""Module system: parameter containers with nested registration.

A tiny analogue of ``torch.nn.Module`` / ``tf.Module``: subclasses assign
:class:`Parameter` and :class:`Module` instances as attributes and get
recursive parameter iteration, state-dict (de)serialization, and train/eval
mode switching for free.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is a trainable leaf (``requires_grad=True``)."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training: bool = True

    # ------------------------------------------------------------------ #
    # attribute registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def register_buffer(self, name: str, array: np.ndarray) -> np.ndarray:
        """Register non-trainable persistent state (e.g. BN running stats).

        Buffers travel with :meth:`state_dict` but receive no gradients.
        The array is also set as a plain attribute for direct access.
        """
        arr = np.asarray(array)
        self._buffers[name] = arr
        object.__setattr__(self, name, arr)
        return arr

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` over the module tree."""
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for name, m in self._modules.items():
            yield from m.named_parameters(prefix=f"{prefix}{name}.")

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, buffer)`` over the module tree."""
        for name in self._buffers:
            # Read through the attribute so in-place replacement works.
            yield (f"{prefix}{name}", getattr(self, name))
        for name, m in self._modules.items():
            yield from m.named_buffers(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        """All trainable parameters in the module tree."""
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` including self (empty name)."""
        yield (prefix.rstrip("."), self)
        for name, m in self._modules.items():
            yield from m.named_modules(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------ #
    # modes
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects e.g. BatchNorm)."""
        self.training = mode
        for m in self._modules.values():
            m.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch to inference mode (``train(False)``)."""
        return self.train(False)

    # ------------------------------------------------------------------ #
    # state dict
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat mapping of dotted parameter/buffer names to arrays (copies)."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        state.update(
            {name: b.copy() for name, b in self.named_buffers()}
        )
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load arrays produced by :meth:`state_dict` in place."""
        own = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        missing = (set(own) | set(own_buffers)) - set(state)
        unexpected = set(state) - set(own) - set(own_buffers)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            if name in state:
                arr = np.asarray(state[name], dtype=p.data.dtype)
                if arr.shape != p.shape:
                    raise ValueError(
                        f"shape mismatch for {name!r}: {arr.shape} vs {p.shape}"
                    )
                p.data[...] = arr
        for name, buf in own_buffers.items():
            if name in state:
                arr = np.asarray(state[name], dtype=buf.dtype)
                if arr.shape != buf.shape:
                    raise ValueError(
                        f"shape mismatch for buffer {name!r}: "
                        f"{arr.shape} vs {buf.shape}"
                    )
                buf[...] = arr

    # ------------------------------------------------------------------ #
    # call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        """Compute the module's output; subclasses must override."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)
