"""Gradient-based optimizers.

The paper trains SESR with ADAM at a constant learning rate of 5e-4
(§5.1); SGD(+momentum) is provided for the §4 theory experiments, which
analyse plain gradient-descent update rules.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .modules import Parameter


class Optimizer:
    """Base optimizer over a fixed list of parameters."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Vanilla / momentum SGD."""

    def __init__(
        self, params: Iterable[Parameter], lr: float = 1e-2, momentum: float = 0.0
    ) -> None:
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self._velocity: Optional[List[np.ndarray]] = None

    def step(self) -> None:
        if self.momentum and self._velocity is None:
            self._velocity = [np.zeros_like(p.data) for p in self.params]
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            if self.momentum:
                v = self._velocity[i]
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """ADAM (Kingma & Ba, 2015) with bias correction.

    Defaults match the paper's training setup: constant ``lr=5e-4``.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 5e-4,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.t += 1
        b1, b2 = self.beta1, self.beta2
        bc1 = 1.0 - b1**self.t
        bc2 = 1.0 - b2**self.t
        for i, p in enumerate(self.params):
            g = p.grad
            if g is None:
                continue
            m, v = self._m[i], self._v[i]
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * (g * g)
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
