"""Differentiable neural-network primitives on :class:`repro.nn.Tensor`.

Layout conventions (TensorFlow-style, matching the paper's Algorithm 1):

* activations: ``(N, H, W, C)`` (NHWC)
* convolution weights: ``(kh, kw, C_in, C_out)`` (HWIO)
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..obs import profiler as _profiler
from .im2col import dilate2d, extract_patches, fold_patches
from .tensor import Tensor, as_tensor

Padding = Union[str, int, Sequence[Tuple[int, int]]]


def resolve_padding(
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Padding,
    in_size: Optional[Tuple[int, int]] = None,
) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    """Resolve a padding spec to ``((top, bottom), (left, right))``.

    ``"same"`` follows TensorFlow semantics — total padding per axis is
    ``max((ceil(n/s) − 1)·s + k − n, 0)``, split with the extra pixel at the
    end — which is what the SESR reference implementation uses.  When
    ``in_size`` is omitted the stride-1 formula ``k − 1`` applies (the two
    coincide for stride 1).  ``"valid"`` pads nothing.
    """
    kh, kw = kernel
    if padding == "valid":
        return (0, 0), (0, 0)
    if padding == "same":

        def total(n: Optional[int], k: int, s: int) -> int:
            if n is None or s == 1:
                return k - 1
            return max((-(-n // s) - 1) * s + k - n, 0)

        nh, nw = in_size if in_size is not None else (None, None)
        th = total(nh, kh, stride[0])
        tw = total(nw, kw, stride[1])
        return (th // 2, th - th // 2), (tw // 2, tw - tw // 2)
    if isinstance(padding, int):
        return (padding, padding), (padding, padding)
    (pt, pb), (pl, pr) = padding
    return (int(pt), int(pb)), (int(pl), int(pr))


def _normalize_stride(stride: Union[int, Tuple[int, int]]) -> Tuple[int, int]:
    return (stride, stride) if isinstance(stride, int) else tuple(stride)


def conv2d(
    x: Tensor,
    w: Tensor,
    b: Optional[Tensor] = None,
    stride: Union[int, Tuple[int, int]] = 1,
    padding: Padding = "same",
    groups: int = 1,
) -> Tensor:
    """2-D cross-correlation (the deep-learning "convolution").

    Parameters
    ----------
    x:
        Input activations, shape ``(N, H, W, C_in)``.
    w:
        Filter bank, shape ``(kh, kw, C_in/groups, C_out)``.
    b:
        Optional bias, shape ``(C_out,)``.
    stride, padding:
        Standard conv hyper-parameters; padding is ``"same"``, ``"valid"``,
        an int, or explicit per-side pairs.
    groups:
        Grouped convolution (used by lightweight-SISR baselines such as
        CARN variants); input and output channels are split into ``groups``
        independent convolutions.

    Notes
    -----
    The forward is im2col + one ``np.matmul`` (BLAS sgemm).  This is the
    *training-time* path; the inference executor
    (:mod:`repro.compile.executor`) runs the same contraction through a
    selectable kernel — ``blas``, the deterministic m-invariant
    ``blocked`` kernel, or tap-loop ``direct`` (:mod:`repro.kernels`) —
    because BLAS output bits depend on the GEMM row count, which matters
    once the serving engine stacks samples (``docs/kernels.md``).
    """
    x, w = as_tensor(x), as_tensor(w)
    if groups > 1:
        return _grouped_conv2d(x, w, b, stride, padding, groups)
    if x.ndim != 4:
        raise ValueError(f"conv2d expects NHWC input, got shape {x.shape}")
    if w.ndim != 4:
        raise ValueError(f"conv2d expects HWIO weight, got shape {w.shape}")
    kh, kw, cin, cout = w.shape
    if x.shape[3] != cin:
        raise ValueError(
            f"input channels {x.shape[3]} do not match weight C_in {cin}"
        )
    sh, sw = _normalize_stride(stride)
    (pt, pb), (pl, pr) = resolve_padding(
        (kh, kw), (sh, sw), padding, in_size=(x.shape[1], x.shape[2])
    )

    # Profiling guard: one module-attribute load + None check when off
    # (see repro.obs.profiler — this is the entire disabled-path overhead).
    prof = _profiler.ACTIVE
    if prof is not None:
        t0 = time.perf_counter()
    xd = x.data
    if pt or pb or pl or pr:
        xp = np.pad(xd, ((0, 0), (pt, pb), (pl, pr), (0, 0)))
    else:
        xp = xd
    patches = extract_patches(xp, (kh, kw), (sh, sw))  # (N,Ho,Wo,kh,kw,C)
    n, ho, wo = patches.shape[:3]
    cols = patches.reshape(n * ho * wo, kh * kw * cin)
    if prof is not None:
        prof.record("im2col", time.perf_counter() - t0)
    wmat = w.data.reshape(kh * kw * cin, cout)
    out_data = (cols @ wmat).reshape(n, ho, wo, cout)

    parents = [x, w]
    if b is not None:
        b = as_tensor(b)
        out_data = out_data + b.data
        parents.append(b)
    if prof is not None:
        prof.record(
            "conv2d",
            time.perf_counter() - t0,
            macs=n * ho * wo * kh * kw * cin * cout,
        )

    def backward(g: np.ndarray) -> None:
        prof_b = _profiler.ACTIVE
        if prof_b is not None:
            tb = time.perf_counter()
        macs_b = 0
        gmat = g.reshape(n * ho * wo, cout)
        if w.requires_grad:
            gw = cols.T @ gmat
            w._send(gw.reshape(kh, kw, cin, cout))
            macs_b += n * ho * wo * kh * kw * cin * cout
        if x.requires_grad:
            gcols = gmat @ wmat.T
            gpatches = gcols.reshape(n, ho, wo, kh, kw, cin)
            gxp = fold_patches(gpatches, xp.shape, (sh, sw))
            h, wdt = xd.shape[1], xd.shape[2]
            x._send(gxp[:, pt : pt + h, pl : pl + wdt, :])
            macs_b += n * ho * wo * kh * kw * cin * cout
        if b is not None and b.requires_grad:
            b._send(g.sum(axis=(0, 1, 2)))
        if prof_b is not None:
            prof_b.record(
                "conv2d_bwd", time.perf_counter() - tb, macs=macs_b
            )

    return Tensor._result(out_data, tuple(parents), backward)


def _grouped_conv2d(
    x: Tensor,
    w: Tensor,
    b: Optional[Tensor],
    stride: Union[int, Tuple[int, int]],
    padding: Padding,
    groups: int,
) -> Tensor:
    """Grouped convolution composed from per-group dense convolutions."""
    from .tensor import concatenate

    cin, cout = x.shape[3], w.shape[3]
    if cin % groups or cout % groups:
        raise ValueError(
            f"channels ({cin} in, {cout} out) not divisible by groups={groups}"
        )
    if w.shape[2] != cin // groups:
        raise ValueError(
            f"grouped weight C_in must be {cin // groups}, got {w.shape[2]}"
        )
    gc_in, gc_out = cin // groups, cout // groups
    outs = []
    for g in range(groups):
        xg = x[:, :, :, g * gc_in : (g + 1) * gc_in]
        wg = w[:, :, :, g * gc_out : (g + 1) * gc_out]
        bg = None if b is None else as_tensor(b)[g * gc_out : (g + 1) * gc_out]
        outs.append(conv2d(xg, wg, bg, stride=stride, padding=padding))
    return concatenate(outs, axis=3)


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    mean: np.ndarray,
    var: np.ndarray,
    eps: float = 1e-5,
) -> Tensor:
    """Normalise NHWC activations with given per-channel statistics."""
    x = as_tensor(x)
    inv = Tensor((1.0 / np.sqrt(var + eps)).astype(np.float32))
    shift = Tensor(mean.astype(np.float32))
    return (x - shift) * inv * as_tensor(gamma) + as_tensor(beta)


def dilate(x: Tensor, stride: Union[int, Tuple[int, int]]) -> Tensor:
    """Differentiable zero-insertion between spatial elements of NHWC ``x``."""
    x = as_tensor(x)
    sh, sw = _normalize_stride(stride)
    if sh == 1 and sw == 1:
        return x
    out_data = dilate2d(x.data, (sh, sw))

    def backward(g: np.ndarray) -> None:
        x._send(g[:, ::sh, ::sw, :])

    return Tensor._result(out_data, (x,), backward)


def conv2d_transpose(
    x: Tensor,
    w: Tensor,
    b: Optional[Tensor] = None,
    stride: Union[int, Tuple[int, int]] = 2,
) -> Tensor:
    """Transposed convolution with TF ``SAME`` output geometry (out = s·in).

    Implemented via the **sub-pixel decomposition** (how NPU compilers lower
    deconvolution — see :mod:`repro.hw`): for each of the ``s²`` output
    phases, the full kernel subsamples to a small per-phase kernel applied
    as an ordinary stride-1 convolution at LR resolution; a depth-to-space
    interleave then assembles the HR output.  This avoids computing over
    the zero-inserted grid of the naive form (a 16× MAC waste at stride 4),
    and — being composed of differentiable primitives — gets its backward
    pass from autograd.  Used by the FSRCNN baseline's 9×9 deconv head.

    The naive zero-insertion form is kept as
    :func:`conv2d_transpose_reference` for cross-validation.
    """
    x, w = as_tensor(x), as_tensor(w)
    kh, kw, _, cout = w.shape
    sh, sw = _normalize_stride(stride)
    if kh < sh or kw < sw:
        raise ValueError("kernel must be at least as large as the stride")
    if sh != sw:
        # The depth-to-space interleave assumes a square stride; the naive
        # form handles the anisotropic case.
        return conv2d_transpose_reference(x, w, b=b, stride=stride)
    from .tensor import concatenate

    # Geometry of the equivalent zero-insertion form (see the reference
    # implementation): total 'same' pad of the adjoint forward conv.
    ph = kh - 1 - (kh - sh) // 2
    pw = kw - 1 - (kw - sw) // 2
    f = w.flip((0, 1))

    phases = []
    for rh in range(sh):
        q0h = (ph - rh) % sh
        taps_h = -(-(kh - q0h) // sh)
        dh = (rh + q0h - ph) // sh
        for rw in range(sw):
            q0w = (pw - rw) % sw
            taps_w = -(-(kw - q0w) // sw)
            dw = (rw + q0w - pw) // sw
            xp = x.pad((
                (0, 0),
                (-dh, dh + taps_h - 1),
                (-dw, dw + taps_w - 1),
                (0, 0),
            ))
            fk = f[q0h :: sh, q0w :: sw][:taps_h, :taps_w]
            phases.append(conv2d(xp, fk, padding="valid"))
    out = depth_to_space(concatenate(phases, axis=3), sh)
    if b is not None:
        out = out + as_tensor(b)
    return out


def conv2d_transpose_reference(
    x: Tensor,
    w: Tensor,
    b: Optional[Tensor] = None,
    stride: Union[int, Tuple[int, int]] = 2,
) -> Tensor:
    """Naive transposed convolution (zero insertion + full-kernel conv).

    The textbook form — dilate, pad, convolve with the spatially flipped
    kernel — kept as the gold standard the fast sub-pixel path is tested
    against.
    """
    x, w = as_tensor(x), as_tensor(w)
    kh, kw, _, _ = w.shape
    sh, sw = _normalize_stride(stride)
    if kh < sh or kw < sw:
        raise ValueError("kernel must be at least as large as the stride")
    # Forward conv with SAME padding and stride s pads (k - s) in total.
    pbh = (kh - sh) // 2
    pbw = (kw - sw) // 2
    # The adjoint pads (k - 1 - p_begin) before and (k - 1 - p_end) after.
    pads = (
        (0, 0),
        (kh - 1 - pbh, kh - 1 - (kh - sh - pbh)),
        (kw - 1 - pbw, kw - 1 - (kw - sw - pbw)),
        (0, 0),
    )
    xd = dilate(x, (sh, sw)).pad(pads)
    return conv2d(xd, w.flip((0, 1)), b=b, stride=1, padding="valid")


def depth_to_space(x: Tensor, block: int) -> Tensor:
    """Pixel-shuffle: ``(N, H, W, C·r²) -> (N, H·r, W·r, C)``.

    Matches ``tf.nn.depth_to_space`` channel ordering, i.e. the channel index
    decomposes as ``(i·r + j)·C + c`` for output offset ``(i, j)``.
    """
    x = as_tensor(x)
    n, h, w, c = x.shape
    r = int(block)
    if c % (r * r) != 0:
        raise ValueError(f"channels {c} not divisible by block²={r * r}")
    co = c // (r * r)
    out = x.reshape(n, h, w, r, r, co)
    out = out.transpose((0, 1, 3, 2, 4, 5))  # (N, H, r, W, r, Co)
    return out.reshape(n, h * r, w * r, co)


def space_to_depth(x: Tensor, block: int) -> Tensor:
    """Inverse of :func:`depth_to_space`."""
    x = as_tensor(x)
    n, h, w, c = x.shape
    r = int(block)
    if h % r or w % r:
        raise ValueError(f"spatial dims {(h, w)} not divisible by block {r}")
    out = x.reshape(n, h // r, r, w // r, r, c)
    out = out.transpose((0, 1, 3, 2, 4, 5))  # (N, H/r, W/r, r, r, C)
    return out.reshape(n, h // r, w // r, r * r * c)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return as_tensor(x).maximum(0.0)


def prelu(x: Tensor, alpha: Tensor) -> Tensor:
    """Parametric ReLU with per-channel slope ``alpha`` (shape ``(C,)``)."""
    x = as_tensor(x)
    return x.maximum(0.0) + as_tensor(alpha) * x.minimum(0.0)


def sigmoid(x: Tensor) -> Tensor:
    """Numerically-stable logistic sigmoid."""
    x = as_tensor(x)
    # sigmoid(x) = exp(min(x,0)) / (1 + exp(-|x|))
    neg = x.minimum(0.0)
    return neg.exp() / ((x.abs() * -1.0).exp() + 1.0)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (max-shifted for stability)."""
    x = as_tensor(x)
    shift = Tensor(x.data.max(axis=axis, keepdims=True))  # constant
    e = (x - shift).exp()
    return e / e.sum(axis=axis, keepdims=True)


def compose_conv_1x1(w_kxk: Tensor, w_1x1: Tensor) -> Tensor:
    """Collapse ``k×k (x→p)`` followed by ``1×1 (p→y)`` into one ``k×k (x→y)``.

    This is the weight-space composition at the heart of the Collapsible
    Linear Block: because no non-linearity separates the two convolutions,

        conv1x1(convkxk(X, W1), W2) == convkxk(X, compose(W1, W2)).

    It is expressed with differentiable matmul/reshape ops, so the efficient
    training path (paper §3.3 / Fig. 3) — forward in collapsed space,
    backward into the expanded weights — works through plain autograd.
    """
    w_kxk, w_1x1 = as_tensor(w_kxk), as_tensor(w_1x1)
    kh, kw, cin, p = w_kxk.shape
    p2, cout = w_1x1.shape[2], w_1x1.shape[3]
    if w_1x1.shape[0] != 1 or w_1x1.shape[1] != 1:
        raise ValueError(f"second weight must be 1×1, got {w_1x1.shape}")
    if p != p2:
        raise ValueError(f"intermediate channels mismatch: {p} vs {p2}")
    flat = w_kxk.reshape(kh * kw * cin, p) @ w_1x1.reshape(p, cout)
    return flat.reshape(kh, kw, cin, cout)


def compose_bias_1x1(b_inner: Tensor, w_1x1: Tensor, b_outer: Tensor) -> Tensor:
    """Fold the inner conv's bias through the 1×1 projection.

    A constant per-channel offset ``b_inner`` after the k×k conv becomes
    ``W2ᵀ · b_inner + b_outer`` after the 1×1 conv.
    """
    b_inner, w_1x1, b_outer = map(as_tensor, (b_inner, w_1x1, b_outer))
    p, cout = w_1x1.shape[2], w_1x1.shape[3]
    folded = b_inner.reshape(1, p) @ w_1x1.reshape(p, cout)
    return folded.reshape(cout) + b_outer
