"""LRU output cache for served super-resolution results.

SR serving traffic is heavy-tailed: thumbnails, logos, and popular frames
recur, and a collapsed-SESR forward pass — cheap as it is — still costs
orders of magnitude more than a dict lookup.  The cache keys on the
**content digest** of the input plus the full model key, so two requests
for the same pixels through the same (checkpoint, precision) pipeline share
one computation while a different checkpoint or precision misses.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Hashable, Optional

import numpy as np


def array_digest(img: np.ndarray) -> str:
    """Content digest of an image: sha256 over shape, dtype and raw bytes."""
    img = np.ascontiguousarray(img)
    h = hashlib.sha256()
    h.update(str(img.shape).encode())
    h.update(str(img.dtype).encode())
    h.update(img.tobytes())
    return h.hexdigest()


class LRUCache:
    """Thread-safe least-recently-used cache with hit/miss accounting.

    ``capacity`` counts entries; ``capacity == 0`` disables caching (every
    lookup misses, nothing is stored) so callers don't need a separate
    code path.  Stored and returned arrays are copies: a caller mutating
    its response must not poison later hits.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._store: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Optional[np.ndarray]:
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                self.hits += 1
                return self._store[key].copy()
            self.misses += 1
            return None

    def put(self, key: Hashable, value: np.ndarray) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                self._store[key] = value.copy()
                return
            self._store[key] = value.copy()
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._store

    def clear(self) -> None:
        with self._lock:
            self._store.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._store),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
