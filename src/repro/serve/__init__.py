"""``repro.serve`` — batched, cached, multi-worker SR inference serving.

The deployment pipeline the paper's efficiency story points at: collapsed
SESR networks loaded once (:mod:`~repro.serve.registry`), requests tiled
and fanned across a worker pool (:mod:`~repro.serve.engine`) whose
configuration is one frozen :class:`EngineConfig` value, same-shape tile
jobs from concurrent requests coalesced bit-exactly by a dynamic
:class:`BatchScheduler` (:mod:`~repro.serve.scheduler`), repeated inputs
answered from an LRU output cache (:mod:`~repro.serve.cache`), everything
measured (:mod:`~repro.serve.telemetry`) and exposed over a stdlib HTTP
server with a versioned ``/v1`` API (:mod:`~repro.serve.http`).
Front-end: ``python -m repro.cli serve``.
"""

from .cache import LRUCache, array_digest
from .config import EngineConfig
from .engine import (
    BreakerOpen,
    EngineClosed,
    EngineError,
    EngineOverloaded,
    InferenceEngine,
    RequestTimeout,
    UpscaleResult,
    plan_tiles,
    predict_batch,
    predict_batch_exact,
)
from .scheduler import BatchScheduler, TileJob
from .http import (
    SRRequestHandler,
    SRServer,
    make_server,
    upscale_array,
    upscale_array_ex,
)
from .registry import ModelKey, ModelRegistry, build_training_model
from .telemetry import Counter, Gauge, Histogram, StateGauge, Telemetry

__all__ = [
    "LRUCache",
    "array_digest",
    "EngineConfig",
    "BatchScheduler",
    "TileJob",
    "BreakerOpen",
    "EngineClosed",
    "EngineError",
    "EngineOverloaded",
    "InferenceEngine",
    "RequestTimeout",
    "UpscaleResult",
    "plan_tiles",
    "predict_batch",
    "predict_batch_exact",
    "SRRequestHandler",
    "SRServer",
    "make_server",
    "upscale_array",
    "upscale_array_ex",
    "ModelKey",
    "ModelRegistry",
    "build_training_model",
    "Counter",
    "Gauge",
    "Histogram",
    "StateGauge",
    "Telemetry",
]
