"""``repro.serve`` — batched, cached, multi-worker SR inference serving.

The deployment pipeline the paper's efficiency story points at: collapsed
SESR networks loaded once (:mod:`~repro.serve.registry`), requests tiled
and fanned across a worker pool with optional same-shape micro-batching
(:mod:`~repro.serve.engine`), repeated inputs answered from an LRU output
cache (:mod:`~repro.serve.cache`), everything measured
(:mod:`~repro.serve.telemetry`) and exposed over a stdlib HTTP server
(:mod:`~repro.serve.http`).  Front-end: ``python -m repro.cli serve``.
"""

from .cache import LRUCache, array_digest
from .engine import (
    BreakerOpen,
    EngineClosed,
    EngineError,
    EngineOverloaded,
    InferenceEngine,
    RequestTimeout,
    UpscaleResult,
    plan_tiles,
    predict_batch,
)
from .http import (
    SRRequestHandler,
    SRServer,
    make_server,
    upscale_array,
    upscale_array_ex,
)
from .registry import ModelKey, ModelRegistry, build_training_model
from .telemetry import Counter, Gauge, Histogram, StateGauge, Telemetry

__all__ = [
    "LRUCache",
    "array_digest",
    "BreakerOpen",
    "EngineClosed",
    "EngineError",
    "EngineOverloaded",
    "InferenceEngine",
    "RequestTimeout",
    "UpscaleResult",
    "plan_tiles",
    "predict_batch",
    "SRRequestHandler",
    "SRServer",
    "make_server",
    "upscale_array",
    "upscale_array_ex",
    "ModelKey",
    "ModelRegistry",
    "build_training_model",
    "Counter",
    "Gauge",
    "Histogram",
    "StateGauge",
    "Telemetry",
]
