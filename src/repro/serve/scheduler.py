"""Cross-request dynamic batching: the tile-job scheduler.

The paper's collapsed networks are so small (Table 3) that per-tile
inference cost is dominated by *dispatch* — Python layer traversal, pad +
im2col setup, BLAS call overhead — not MACs.  Within one request the
engine already amortises that via tile fan-out; this module amortises it
*across* requests: concurrent small requests (the "millions of users"
case, where each request is often a single tile) coalesce into one
forward pass instead of each paying full freight.

:class:`BatchScheduler` replaces the engine's plain FIFO queue.  Workers
ask it for work and receive a *batch*: a list of :class:`TileJob` whose
tiles all share one ``(ModelKey, halo-shape)`` group and therefore stack
into a single im2col conv call per layer (executed bit-exactly — see
``CompiledModel.run(exact_batch=True)``).

Dispatch policy
---------------
A group's jobs are dispatched when any of:

* the group holds ``max_batch`` jobs (a full batch),
* its oldest job has waited ``window`` seconds (bounded queueing delay),
* the window is zero (coalescing disabled — every job dispatches
  immediately, singleton, preserving the pre-batching engine exactly), or
* the scheduler is closed (drain fast, never strand work).

**Fair share.**  Within a group, jobs are kept in per-request FIFO lanes
and batches are assembled round-robin across lanes, so a 1000-tile
request contributes at most ⌈max_batch / lanes⌉ tiles to each batch and
a one-tile request never waits behind a giant neighbour.  Across groups,
the one whose head job is oldest dispatches first (global FIFO in
arrival terms).

Jobs marked non-batchable (legacy within-request micro-batch groups, or
models without an exact batched path) bypass the window entirely and
dispatch alone, in arrival order, ahead of batchable work of the same
age — they have already been grouped or cannot benefit from waiting.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Callable, Deque, Hashable, List, Optional, Tuple

__all__ = ["BatchScheduler", "TileJob"]


class TileJob:
    """One unit of worker work: tile spec(s) of one in-flight request.

    ``specs`` is usually a single :class:`~repro.serve.engine.TileSpec`;
    legacy micro-batch jobs carry several (and are never re-coalesced).
    ``group`` identifies the batchable shape class — the engine uses
    ``(model key, halo shape)`` — and ``request`` is opaque to the
    scheduler except for fair-share identity.
    """

    __slots__ = ("request", "specs", "group", "batchable", "seq", "enqueued")

    def __init__(self, request, specs, group: Hashable = None,
                 batchable: bool = True) -> None:
        self.request = request
        self.specs = list(specs)
        self.group = group
        self.batchable = batchable and group is not None
        self.seq = 0          # assigned by the scheduler
        self.enqueued = 0.0   # assigned by the scheduler


class _Group:
    """Per-shape pending jobs, in per-request FIFO lanes."""

    __slots__ = ("lanes", "size")

    def __init__(self) -> None:
        # request id -> FIFO of TileJob; OrderedDict gives the round-robin
        # rotation order (move_to_end after each take).
        self.lanes: "OrderedDict[int, Deque[TileJob]]" = OrderedDict()
        self.size = 0

    def add(self, job: TileJob, front: bool = False) -> None:
        rid = id(job.request)
        lane = self.lanes.get(rid)
        if lane is None:
            lane = deque()
            self.lanes[rid] = lane
        if front:
            lane.appendleft(job)
        else:
            lane.append(job)
        self.size += 1

    def oldest(self) -> float:
        """Enqueue time of the oldest pending job (lanes are FIFO)."""
        return min(lane[0].enqueued for lane in self.lanes.values())

    def take(self, limit: int) -> List[TileJob]:
        """Assemble up to ``limit`` jobs round-robin across request lanes."""
        out: List[TileJob] = []
        while len(out) < limit and self.lanes:
            for rid in list(self.lanes):
                lane = self.lanes[rid]
                out.append(lane.popleft())
                self.size -= 1
                if not lane:
                    del self.lanes[rid]
                else:
                    self.lanes.move_to_end(rid)
                if len(out) >= limit:
                    break
        return out


class BatchScheduler:
    """Coalesces same-group tile jobs from concurrent requests.

    Thread-safe; many producers (request threads) and many consumers
    (workers).  ``clock`` is injectable so the window policy is testable
    without sleeping.
    """

    def __init__(self, max_batch: int = 8, window: float = 0.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if window < 0:
            raise ValueError("window must be non-negative")
        self.max_batch = max_batch
        self.window = window
        self._clock = clock
        self._cond = threading.Condition()
        self._groups: "OrderedDict[Hashable, _Group]" = OrderedDict()
        self._express: Deque[TileJob] = deque()   # non-batchable, FIFO
        self._seq = 0
        self._depth = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #
    def put(self, job: TileJob) -> None:
        """Enqueue one job (accepted even while draining after close)."""
        with self._cond:
            self._seq += 1
            job.seq = self._seq
            job.enqueued = self._clock()
            self._admit(job, front=False)
            self._cond.notify_all()

    def requeue(self, jobs: List[TileJob]) -> None:
        """Hand back jobs a dying worker could not finish, at the front.

        Original enqueue times are kept, so requeued work is already
        past its window and dispatches to the next free worker.
        """
        with self._cond:
            for job in reversed(jobs):
                self._admit(job, front=True)
            self._cond.notify_all()

    def _admit(self, job: TileJob, front: bool) -> None:
        if job.batchable:
            group = self._groups.get(job.group)
            if group is None:
                group = _Group()
                self._groups[job.group] = group
            group.add(job, front=front)
        else:
            if front:
                self._express.appendleft(job)
            else:
                self._express.append(job)
        self._depth += 1

    # ------------------------------------------------------------------ #
    # consumer side
    # ------------------------------------------------------------------ #
    def get(self, timeout: Optional[float] = None) -> Optional[List[TileJob]]:
        """Block for the next batch; ``None`` = closed and drained.

        With ``timeout`` set, also returns ``None`` when nothing became
        ready in time (callers distinguish via :attr:`closed`).
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._cond:
            while True:
                if self._express:
                    job = self._express.popleft()
                    self._depth -= 1
                    return [job]
                batch, next_ready = self._try_assemble()
                if batch is not None:
                    return batch
                if self._closed and self._depth == 0:
                    return None
                now = self._clock()
                waits = []
                if next_ready is not None:
                    waits.append(next_ready - now)
                if deadline is not None:
                    if deadline <= now:
                        return None
                    waits.append(deadline - now)
                self._cond.wait(min(waits) if waits else None)

    def _try_assemble(self) -> Tuple[Optional[List[TileJob]], Optional[float]]:
        """(ready batch, earliest future ready time) under the lock."""
        now = self._clock()
        best_key, best_oldest = None, None
        next_ready: Optional[float] = None
        for key, group in self._groups.items():
            if group.size == 0:
                continue
            oldest = group.oldest()
            ready = (
                self._closed
                or self.window == 0.0
                or group.size >= self.max_batch
                or now - oldest >= self.window
            )
            if ready:
                if best_oldest is None or oldest < best_oldest:
                    best_key, best_oldest = key, oldest
            else:
                due = oldest + self.window
                if next_ready is None or due < next_ready:
                    next_ready = due
        if best_key is None:
            return None, next_ready
        group = self._groups[best_key]
        # Window 0 pins the legacy contract: one job per dispatch, strict
        # arrival order, no coalescing even under backlog.
        limit = 1 if self.window == 0.0 else self.max_batch
        batch = group.take(limit)
        if group.size == 0:
            del self._groups[best_key]
        self._depth -= len(batch)
        return batch, next_ready

    # ------------------------------------------------------------------ #
    # lifecycle / introspection
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop waiting on windows; remaining jobs drain, then ``get``
        returns ``None`` to every worker."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain(self) -> List[TileJob]:
        """Remove and return every pending job (abrupt shutdown)."""
        with self._cond:
            jobs = list(self._express)
            self._express.clear()
            for group in self._groups.values():
                while group.size:
                    jobs.extend(group.take(group.size))
            self._groups.clear()
            self._depth = 0
            self._cond.notify_all()
            return jobs

    @property
    def closed(self) -> bool:
        return self._closed

    def depth(self) -> int:
        """Jobs currently queued (all groups + express lane)."""
        with self._cond:
            return self._depth
