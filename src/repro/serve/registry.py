"""Model registry: lazy load → collapse → (optional) quantize → memoize.

The registry is the serving-side counterpart of the paper's deploy story:
training artifacts are *expanded* SESR checkpoints, but what a server must
run is the collapsed inference network (Fig. 2(d)), optionally int8-
quantized for NPU parity.  Collapse is exact but not free, so the registry
performs it **exactly once** per :class:`ModelKey` — ``(name, scale, ckpt,
precision)`` — under a lock, and memoizes the resulting network for every
later request, worker, and engine to share (collapsed nets are stateless at
inference time, so sharing across threads is safe).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict

from .. import zoo
from ..nn import Module, load_state
from ..train.checkpoint import CheckpointCorrupt

PRECISIONS = ("fp32", "int8")


@dataclass(frozen=True)
class ModelKey:
    """Identity of one deployable network variant.

    ``name`` accepts both zoo names (``"SESR-M5"``, ``"FSRCNN"``) and the
    CLI short forms (``"M5"``, ``"XL"``).  ``ckpt`` is a path to an
    expanded-checkpoint ``.npz`` (empty = paper initialisation), and
    ``precision`` selects the deployed arithmetic: ``"fp32"`` or ``"int8"``
    (weights-only post-training quantization via
    :func:`repro.deploy.quantize_sesr`).
    """

    name: str = "M5"
    scale: int = 2
    ckpt: str = ""
    precision: str = "fp32"

    def __post_init__(self) -> None:
        if self.precision not in PRECISIONS:
            raise ValueError(
                f"unknown precision {self.precision!r}; know {PRECISIONS}"
            )


def build_training_model(name: str, scale: int, seed: int = 0) -> Module:
    """Instantiate the expanded (training-time) network for ``name``.

    Resolution goes through the zoo registry so serving names stay in sync
    with the paper's tables; CLI short forms are expanded to ``SESR-*``.
    """
    for candidate in (name, name.upper(), f"SESR-{name.upper()}"):
        entry = zoo.ZOO.get(candidate)
        if entry is not None and entry.factory is not None:
            return entry.factory(scale=scale, seed=seed)
    raise KeyError(
        f"unknown model {name!r}; deployable zoo entries: "
        f"{zoo.factory_names()}"
    )


class ModelRegistry:
    """Thread-safe memoizing loader of collapsed inference networks."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._models: Dict[ModelKey, Module] = {}
        self._lock = threading.Lock()
        self._collapse_counts: Dict[ModelKey, int] = {}
        # Plan cache: ModelKey -> CompiledModel.  A separate lock so a slow
        # compile never blocks plain get() callers (and because _lock is
        # not reentrant — get_compiled calls get()).
        self._compiled: Dict[ModelKey, Module] = {}
        self._compile_lock = threading.Lock()
        self._compile_counts: Dict[ModelKey, int] = {}

    def get(self, key: ModelKey) -> Module:
        """Return the deployable network for ``key``, building it once.

        The build (load → collapse → quantize) runs under the registry
        lock: concurrent first requests for the same key block instead of
        collapsing twice.
        """
        model = self._models.get(key)
        if model is not None:
            return model
        with self._lock:
            if key not in self._models:
                self._models[key] = self._build(key)
            return self._models[key]

    def _build(self, key: ModelKey) -> Module:
        trained = build_training_model(key.name, key.scale, self.seed)
        if key.ckpt:
            try:
                load_state(trained, key.ckpt)
            except FileNotFoundError:
                raise
            except (KeyError, ValueError) as exc:
                # Wrong architecture / missing keys: a caller error, but
                # keep the message pointed at the offending file.
                raise type(exc)(
                    f"checkpoint {key.ckpt!r} does not match model "
                    f"{key.name!r}: {exc}"
                ) from exc
            except Exception as exc:  # zipfile.BadZipFile, zlib.error, ...
                raise CheckpointCorrupt(
                    f"checkpoint {key.ckpt!r} is unreadable (truncated or "
                    f"damaged): {exc}"
                ) from exc
        if hasattr(trained, "collapse"):
            deployed = trained.collapse()
            self._collapse_counts[key] = self._collapse_counts.get(key, 0) + 1
        else:
            # FSRCNN has no linear blocks to collapse; deploy it as-is.
            deployed = trained
        if key.precision == "int8":
            from ..deploy import quantize_sesr

            deployed = quantize_sesr(deployed)
        deployed.eval()
        return deployed

    def get_compiled(self, key: ModelKey) -> Module:
        """Return the compiled plan for ``key``, compiling at most once.

        This is the serving plan cache: capture → optimise → plan runs
        once per key; every engine/worker thereafter executes the same
        :class:`~repro.compile.CompiledModel` (its per-shape arenas are
        thread-local, so sharing is safe).  Unsupported models raise
        :class:`~repro.compile.CaptureError` — callers fall back to
        :meth:`get`.
        """
        compiled = self._compiled.get(key)
        if compiled is not None:
            return compiled
        eager = self.get(key)  # outside _compile_lock: get() takes _lock
        with self._compile_lock:
            if key not in self._compiled:
                from ..compile import compile_model

                self._compiled[key] = compile_model(eager)
                self._compile_counts[key] = (
                    self._compile_counts.get(key, 0) + 1
                )
            return self._compiled[key]

    def compile_count(self, key: ModelKey) -> int:
        """How many times ``key`` was compiled (tests pin this to <= 1)."""
        return self._compile_counts.get(key, 0)

    def collapse_count(self, key: ModelKey) -> int:
        """How many times ``key`` was collapsed (tests pin this to <= 1)."""
        return self._collapse_counts.get(key, 0)

    def loaded_keys(self) -> list:
        return sorted(self._models, key=lambda k: (k.name, k.scale, k.ckpt,
                                                   k.precision))

    def evict(self, key: ModelKey) -> bool:
        """Drop a memoized network (e.g. after a checkpoint refresh)."""
        with self._compile_lock:
            self._compiled.pop(key, None)
        with self._lock:
            return self._models.pop(key, None) is not None

    def stats(self) -> Dict[str, object]:
        with self._lock:
            out = {
                "models_loaded": len(self._models),
                "collapses": dict(
                    (f"{k.name}:x{k.scale}:{k.precision}", v)
                    for k, v in self._collapse_counts.items()
                ),
            }
        with self._compile_lock:
            out["plans_compiled"] = len(self._compiled)
            out["compiles"] = dict(
                (f"{k.name}:x{k.scale}:{k.precision}", v)
                for k, v in self._compile_counts.items()
            )
        return out
