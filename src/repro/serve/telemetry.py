"""Serving metrics: counters, gauges, latency histograms.

Instrumentation for :mod:`repro.serve` in the shape production metric
systems expect (Prometheus-style counter/gauge/histogram triplet), but
dependency-free and process-local.  Everything is thread-safe — the engine
worker pool and the HTTP handler threads all write concurrently — and
:meth:`Telemetry.snapshot` renders the whole registry as one plain dict,
which is what the ``/stats`` endpoint serialises and what the tests and the
throughput benchmark assert against.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional


class Counter:
    """Monotonically increasing event count."""

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Instantaneous level (queue depth, in-flight requests, ...)."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Reservoir of observations with exact percentiles.

    Keeps up to ``capacity`` samples; beyond that, each new observation
    overwrites a slot chosen by a deterministic stride (uniform reservoir
    without RNG state, so snapshots are reproducible).  Count/sum/min/max
    are exact regardless of the reservoir size.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._samples: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            if len(self._samples) < self.capacity:
                self._samples.append(value)
            else:
                self._samples[self._count % self.capacity] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @staticmethod
    def _nearest_rank(ordered: List[float], p: float) -> float:
        if not ordered:
            return 0.0
        rank = max(0, math.ceil(p / 100.0 * len(ordered)) - 1)
        return ordered[rank]

    def percentile(self, p: float) -> float:
        """Exact percentile (nearest-rank) over the retained samples."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            ordered = sorted(self._samples)
        return self._nearest_rank(ordered, p)

    def summary(self) -> Dict[str, float]:
        # One lock acquisition for everything: count/sum/min/max and the
        # percentile source all describe the same instant, so a snapshot
        # taken while workers observe concurrently is never torn
        # (e.g. a count that outruns its sum, or p95 > max).
        with self._lock:
            count = self._count
            total = self._sum
            lo, hi = self._min, self._max
            ordered = sorted(self._samples)
        return {
            "count": count,
            "mean": total / count if count else 0.0,
            "min": lo if count else 0.0,
            "max": hi if count else 0.0,
            "p50": self._nearest_rank(ordered, 50),
            "p95": self._nearest_rank(ordered, 95),
            "p99": self._nearest_rank(ordered, 99),
        }


class StateGauge:
    """Labelled state indicator (e.g. circuit-breaker state).

    Unlike a numeric :class:`Gauge` it holds a short string and counts
    transitions, so ``/stats`` can show ``"open"`` instead of a magic
    number and alerting can key off flap counts.
    """

    def __init__(self, initial: str = "") -> None:
        self._value = initial
        self._changes = 0
        self._lock = threading.Lock()

    def set(self, value: str) -> None:
        with self._lock:
            if value != self._value:
                self._changes += 1
            self._value = value

    @property
    def value(self) -> str:
        return self._value

    @property
    def changes(self) -> int:
        return self._changes


class Telemetry:
    """Named registry of counters/gauges/histograms with one-shot export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._states: Dict[str, StateGauge] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str, capacity: Optional[int] = None) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(capacity or 4096)
            return self._histograms[name]

    def state(self, name: str, initial: str = "") -> StateGauge:
        with self._lock:
            return self._states.setdefault(name, StateGauge(initial))

    def snapshot(self) -> Dict[str, Dict]:
        """Render every metric as a plain (JSON-serialisable) dict."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            states = dict(self._states)
        return {
            "counters": {k: c.value for k, c in counters.items()},
            "gauges": {k: g.value for k, g in gauges.items()},
            "histograms": {k: h.summary() for k, h in histograms.items()},
            "states": {k: s.value for k, s in states.items()},
        }
