"""Batched, multi-worker tile inference engine (the serving hot path).

A request is one LR Y-channel image.  The engine splits it into halo-padded
tiles exactly like :func:`repro.deploy.tiled.tiled_upscale` (same tile
planner, same :func:`~repro.deploy.tiled.receptive_radius` halo default),
fans the tiles out across a thread worker pool, and stitches the upscaled
cores back into the response — so a single 1080p frame saturates every
worker instead of serialising behind one thread.  NumPy releases the GIL
inside the im2col matmuls, which is where collapsed-SESR inference spends
its time, so plain threads give real parallelism without pickling images
across processes.

Configuration is one frozen :class:`~repro.serve.EngineConfig` value —
``InferenceEngine(registry, key, config=EngineConfig(...))`` is the
*only* constructor signature (the historical kwarg-soup shim warned for
two releases and is gone; stray keywords now raise :class:`TypeError`).
``config.gemm_backend`` is applied to the compiled model at construction
(:meth:`repro.compile.CompiledModel.set_gemm_backend`), and the resolved
per-conv kernel selection is echoed under ``stats()["kernels"]``.

Execution modes per tile job:

* **exact** (default): each tile runs through
  :func:`repro.train.predict_image`, the same call the CLI uses — output is
  bit-identical to ``tiled_upscale`` at the same tile/halo, and to
  full-frame inference whenever one tile covers the frame.
* **cross-request batched** (``batch_window_ms > 0``): the
  :class:`~repro.serve.BatchScheduler` coalesces same-shape tile jobs from
  *different* in-flight requests, bounded by ``max_batch`` and the window,
  with round-robin fair share so a huge request cannot starve small ones.
  Coalesced batches share one pad + im2col pass and run the conv matmul
  per sample (``CompiledModel.run(exact_batch=True)``), so the output
  stays **byte-identical** to unbatched serving — the collapsed nets are
  dispatch-bound, which is where coalescing pays (see ``docs/serving.md``).
* **micro-batched** (``microbatch=True``, legacy): same-shape tiles *of
  one request* are stacked through a single stacked matmul.  Fewer Python
  round-trips at the cost of bit-exactness (BLAS may reassociate across
  batch layouts; results agree to ~1 ulp).

Requests are admitted through a bounded slot pool (load-shedding beats
unbounded queueing), carry a deadline (:class:`RequestTimeout`), and
:meth:`InferenceEngine.shutdown` drains workers gracefully.

Fault tolerance (see ``docs/robustness.md`` and ``tests/resilience/``):

* Tile jobs retry transient failures under a
  :class:`~repro.resilience.RetryPolicy` (exponential backoff, seeded
  jitter) before the request is failed.
* A **poisoned batch** never takes its batchmates down: if a coalesced
  batch fails, its jobs re-run singly — each with the full retry budget —
  so only the actually-faulty request fails.
* A per-model-key :class:`~repro.resilience.CircuitBreaker` trips after
  consecutive request failures; while open, requests skip the model
  entirely.
* With ``degraded_mode=True`` a request that exhausts retries — or
  arrives while the breaker is open — returns the bicubic-upscaled input
  tagged ``degraded=True`` (:class:`UpscaleResult`) instead of raising;
  identical bytes to :func:`repro.datasets.degradation.bicubic_upscale`.
* A supervisor thread heartbeat-checks the worker pool: dead workers
  (e.g. an injected :class:`~repro.resilience.WorkerDeath`) re-queue
  their in-flight jobs and are respawned; workers busy past
  ``wedge_timeout`` are retired and replaced so one stuck BLAS call
  cannot eat a pool slot forever.
* A seedable :class:`~repro.resilience.FaultInjector` hook fires before
  every tile-job attempt (and once per coalesced-batch attempt), which is
  how the chaos suite drives all of the above deterministically.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.degradation import bicubic_upscale
from ..deploy.tiled import receptive_radius
from ..nn import Module, Tensor, no_grad
from ..obs import trace as _trace
from ..resilience import CircuitBreaker, FaultInjector, WorkerDeath
from ..train import predict_image
from .cache import LRUCache, array_digest
from .config import EngineConfig
from .registry import ModelKey, ModelRegistry
from .scheduler import BatchScheduler, TileJob
from .telemetry import Telemetry


class EngineError(RuntimeError):
    """Base class for serving failures."""


class EngineClosed(EngineError):
    """The engine is shut down and no longer accepts requests."""


class EngineOverloaded(EngineError):
    """All request slots are busy; the caller should shed or retry."""


class RequestTimeout(EngineError):
    """The request missed its deadline; remaining tiles were cancelled."""


class BreakerOpen(EngineError):
    """The circuit breaker is open and degraded mode is disabled."""


@dataclass(frozen=True)
class TileSpec:
    """One tile: output core ``[y0:y1, x0:x1]`` + halo window in LR coords."""

    y0: int
    y1: int
    x0: int
    x1: int
    hy0: int
    hy1: int
    hx0: int
    hx1: int

    @property
    def halo_shape(self) -> Tuple[int, int]:
        return (self.hy1 - self.hy0, self.hx1 - self.hx0)


@dataclass
class UpscaleResult:
    """An upscaled image plus how it was produced.

    ``degraded=True`` means the model path failed (retries exhausted or
    breaker open) and ``image`` is the bicubic fallback — bit-identical
    to ``bicubic_upscale(lr, scale)``; ``reason`` says why.
    ``trace_id`` identifies the request's span tree in the tracer's ring
    buffer / JSONL export (surfaced as the ``X-Trace-Id`` HTTP header).
    """

    image: np.ndarray
    degraded: bool = False
    cached: bool = False
    reason: str = ""
    trace_id: str = ""


def plan_tiles(
    h: int, w: int, tile: Tuple[int, int], halo: int
) -> List[TileSpec]:
    """Tile grid identical to :func:`repro.deploy.tiled.tiled_upscale`."""
    th, tw = tile
    if th <= 0 or tw <= 0:
        raise ValueError("tile dimensions must be positive")
    specs = []
    for y0 in range(0, h, th):
        for x0 in range(0, w, tw):
            y1, x1 = min(y0 + th, h), min(x0 + tw, w)
            specs.append(TileSpec(
                y0, y1, x0, x1,
                max(y0 - halo, 0), min(y1 + halo, h),
                max(x0 - halo, 0), min(x1 + halo, w),
            ))
    return specs


def predict_batch(model: Module, patches: np.ndarray) -> np.ndarray:
    """Run a ``(N, H, W, 1)`` stack through one forward pass per layer.

    The batch axis rides through the same im2col ``conv2d`` the single-image
    path uses — one matmul covers all N tiles, which is the micro-batching
    win.  Returns ``(N, sH, sW)`` clipped to [0, 1] like ``predict_image``.
    Approximate across the batch axis (~1 ulp); for the bit-exact batched
    path see :func:`predict_batch_exact`.
    """
    model.eval()
    with no_grad():
        out = model(Tensor(patches)).data
    return np.clip(out[..., 0], 0.0, 1.0)


def predict_batch_exact(model: Module, patches: np.ndarray) -> np.ndarray:
    """Like :func:`predict_batch`, but bit-identical per sample to
    :func:`~repro.train.predict_image` on each tile alone.

    Compiled models share one pad/im2col pass across the batch and run
    the conv GEMM per sample (``run(exact_batch=True)``); anything else
    (eager fallback, duck-typed test doubles) is computed tile by tile —
    no conv coalescing, but the parity contract always holds.
    """
    from ..compile.executor import CompiledModel

    if isinstance(model, CompiledModel):
        return np.clip(
            model.run(patches, exact_batch=True)[..., 0], 0.0, 1.0
        )
    return np.stack([predict_image(model, p[..., 0]) for p in patches])


class _Request:
    """In-flight request state shared between the caller and the workers."""

    def __init__(self, lr: np.ndarray, scale: int) -> None:
        self.lr = lr
        self.out = np.zeros(
            (lr.shape[0] * scale, lr.shape[1] * scale), dtype=np.float32
        )
        self.ctx: Optional[_trace.SpanContext] = None
        self.pending = 0
        self.error: Optional[BaseException] = None
        self.cancelled = False
        self.done = threading.Event()
        self._lock = threading.Lock()

    def finish_jobs(self, n: int) -> None:
        with self._lock:
            self.pending -= n
            if self.pending <= 0:
                self.done.set()

    def fail(self, exc: BaseException) -> None:
        with self._lock:
            if self.error is None:
                self.error = exc
            self.cancelled = True


class InferenceEngine:
    """Scheduler → worker pool → stitched response, with cache + telemetry.

    Parameters
    ----------
    registry, key:
        Where the deployable network comes from; the model is resolved
        eagerly so a bad name/checkpoint fails at construction, not on the
        first request.
    config:
        An :class:`~repro.serve.EngineConfig` holding every serving knob
        (workers, tiling, batching, cache, admission, resilience,
        compilation).  ``None`` = defaults.
    telemetry, breaker, fault_injector:
        Stateful collaborators, injectable for sharing and testing: a
        metrics registry, a pre-built circuit breaker (default: one built
        from ``config.breaker_threshold``/``config.breaker_cooldown``),
        and the chaos-testing fault hook.

    The pre-``EngineConfig`` keyword surface (``workers=``, ``tile=``,
    ``retry=``, ...) was removed after a two-release deprecation window;
    passing those keywords now raises :class:`TypeError` like any other
    unknown argument.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        key: ModelKey,
        config: Optional[EngineConfig] = None,
        *,
        telemetry: Optional[Telemetry] = None,
        breaker: Optional[CircuitBreaker] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        self.config = config = config or EngineConfig()

        self.registry = registry
        self.key = key
        # Run the compiled plan by default (bit-identical to eager, see
        # repro.compile); models the compiler cannot capture fall back to
        # the eager network transparently.
        self.compiled = False
        self.compile_fallback = False
        if config.compiled:
            from ..compile import CaptureError

            try:
                self.model = registry.get_compiled(key)
                self.compiled = True
                # The registry shares one CompiledModel per key across
                # engines, so the backend applied last wins — concurrent
                # engines over one key should agree (see EngineConfig).
                self.model.set_gemm_backend(config.gemm_backend)
            except CaptureError:
                self.model = registry.get(key)
                self.compile_fallback = True
        else:
            self.model = registry.get(key)
        self.scale = key.scale
        self.tile = config.tile
        self.halo = (receptive_radius(self.model) if config.halo is None
                     else config.halo)
        self.microbatch = config.microbatch
        self.max_batch = config.max_batch
        self.batch_window = config.batch_window_ms / 1e3
        self.default_timeout = config.default_timeout
        self.cache = LRUCache(config.cache_size)
        self.telemetry = telemetry or Telemetry()
        self.retry = config.retry
        self.degraded_mode = config.degraded_mode
        self.fault_injector = fault_injector
        breaker_name = f"{key.name}:x{key.scale}:{key.precision}"
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=config.breaker_threshold,
            cooldown=config.breaker_cooldown,
            name=breaker_name,
        )
        if self.breaker._on_transition is None:
            self.breaker._on_transition = self._on_breaker_transition
        self._breaker_state = self.telemetry.state(
            "engine.breaker_state", self.breaker.state
        )

        self._scheduler = BatchScheduler(
            max_batch=config.max_batch, window=self.batch_window
        )
        self._slots = threading.Semaphore(config.max_pending)
        self._closed = False
        self._state_lock = threading.Lock()
        self._queue_depth = self.telemetry.gauge("engine.queue_depth")
        self._inflight = self.telemetry.gauge("engine.inflight_requests")
        self._latency = self.telemetry.histogram("engine.request_latency_ms")
        self._batch_size = self.telemetry.histogram("engine.batch_size")
        self._retry_rng = random.Random(self.retry.seed)
        self._rng_lock = threading.Lock()
        self._workers_lock = threading.Lock()
        self._worker_seq = 0
        self._busy_since: Dict[str, float] = {}
        self._retired: set = set()
        self.supervise_interval = config.supervise_interval
        self.wedge_timeout = config.wedge_timeout
        # Process data plane: dispatcher threads keep the whole control
        # plane (scheduling, retries, chaos hooks, spans, stitching) and
        # proxy only the stacked forward pass to spawned workers over
        # shared-memory arenas.  Imported lazily — repro.dataplane imports
        # back into this module.
        self._pool = None
        if config.worker_backend == "process":
            from ..dataplane.pool import ProcessWorkerPool

            self._pool = ProcessWorkerPool(
                self.model,
                workers=config.workers,
                tile=self.tile,
                halo=self.halo,
                scale=self.scale,
                max_batch=config.max_batch,
            )
        self._workers = [self._spawn_worker() for _ in range(config.workers)]
        self._supervisor: Optional[threading.Thread] = None
        if config.supervise:
            self._supervisor = threading.Thread(
                target=self._supervisor_loop, name="sr-supervisor", daemon=True
            )
            self._supervisor.start()

    # ------------------------------------------------------------------ #
    # request path
    # ------------------------------------------------------------------ #
    def upscale(
        self, lr_img: np.ndarray, timeout: Optional[float] = None
    ) -> np.ndarray:
        """Super-resolve one (H, W) Y image; blocks until done or deadline."""
        return self.upscale_ex(lr_img, timeout=timeout).image

    def upscale_ex(
        self,
        lr_img: np.ndarray,
        timeout: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> UpscaleResult:
        """Like :meth:`upscale` but reports degradation/caching metadata.

        ``trace_id`` (16 hex chars) forces the trace identity of the
        request's span tree — callers that received an ``X-Trace-Id``
        upstream pass it here so the whole path shares one trace.  The id
        actually used (given or generated) comes back on
        :attr:`UpscaleResult.trace_id`.
        """
        if self._closed:
            raise EngineClosed("engine is shut down")
        lr_img = np.asarray(lr_img, dtype=np.float32)
        if lr_img.ndim != 2:
            raise ValueError(f"expected a 2-D Y image, got shape {lr_img.shape}")
        timeout = self.default_timeout if timeout is None else timeout
        with _trace.get_tracer().span(
            "serve.request",
            trace_id=trace_id,
            model=self.key.name,
            scale=self.scale,
            h=int(lr_img.shape[0]),
            w=int(lr_img.shape[1]),
        ) as root:
            result = self._handle_request(lr_img, timeout, root)
            result.trace_id = root.trace_id
            root.attrs["cached"] = result.cached
            root.attrs["degraded"] = result.degraded
            return result

    def _handle_request(
        self, lr_img: np.ndarray, timeout: float, root: _trace.Span
    ) -> UpscaleResult:
        self.telemetry.counter("engine.requests_total").inc()

        cache_key = (self.key, array_digest(lr_img))
        cached = self.cache.get(cache_key)
        if cached is not None:
            self.telemetry.counter("engine.cache_hits").inc()
            return UpscaleResult(cached, cached=True)
        self.telemetry.counter("engine.cache_misses").inc()

        if not self._slots.acquire(blocking=False):
            self.telemetry.counter("engine.requests_overloaded").inc()
            raise EngineOverloaded("all request slots busy")
        start = time.perf_counter()
        self._inflight.inc()
        try:
            # Breaker check happens with the slot held so a half-open
            # trial admitted here always reaches record_success/failure.
            if not self.breaker.allow():
                self.telemetry.counter("engine.breaker_short_circuits").inc()
                return self._degrade(lr_img, "circuit breaker open")
            request = self._submit(lr_img, root)
            if not request.done.wait(timeout):
                request.cancelled = True
                self.telemetry.counter("engine.requests_timeout").inc()
                self.breaker.record_failure()
                raise RequestTimeout(
                    f"request missed its {timeout:.3f}s deadline"
                )
            if request.error is not None:
                self.telemetry.counter("engine.requests_error").inc()
                self.breaker.record_failure()
                if self.degraded_mode:
                    return self._degrade(
                        lr_img, f"retries exhausted: {request.error!r}"
                    )
                raise EngineError(
                    f"worker failed: {request.error!r}"
                ) from request.error
        finally:
            self._inflight.dec()
            self._slots.release()
        self.breaker.record_success()
        self._latency.observe((time.perf_counter() - start) * 1e3)
        self.telemetry.counter("engine.requests_ok").inc()
        self.cache.put(cache_key, request.out)
        return UpscaleResult(request.out)

    def _degrade(self, lr_img: np.ndarray, reason: str) -> UpscaleResult:
        """Bicubic fallback (or typed failure when degraded mode is off)."""
        if not self.degraded_mode:
            raise BreakerOpen(
                f"model path unavailable ({reason}) and degraded mode is off"
            )
        self.telemetry.counter("engine.requests_degraded").inc()
        out = np.clip(
            bicubic_upscale(lr_img, self.scale), 0.0, 1.0
        ).astype(np.float32)
        # Degraded outputs are never cached: the model path should get a
        # fresh chance (and real pixels) once it recovers.
        return UpscaleResult(out, degraded=True, reason=reason)

    def _submit(self, lr_img: np.ndarray, root: _trace.Span) -> _Request:
        h, w = lr_img.shape
        specs = plan_tiles(h, w, self.tile, self.halo)
        request = _Request(lr_img, self.scale)
        # Workers adopt the request span as parent: tile/stitch spans land
        # in this trace no matter which pool thread runs them.
        request.ctx = root.context
        jobs = self._group(specs)
        root.attrs["tiles"] = len(specs)
        root.attrs["jobs"] = len(jobs)
        request.pending = len(jobs)
        for spec_group in jobs:
            # Only singleton jobs coalesce across requests; legacy
            # micro-batch groups are already stacked and ride the express
            # lane.
            job = TileJob(
                request, spec_group,
                group=(self.key, spec_group[0].halo_shape),
                batchable=len(spec_group) == 1,
            )
            self._scheduler.put(job)
            self._queue_depth.inc()
        return request

    def _group(self, specs: Sequence[TileSpec]) -> List[List[TileSpec]]:
        """Group tiles into jobs: singletons, or same-shape micro-batches."""
        if not self.microbatch:
            return [[s] for s in specs]
        by_shape: Dict[Tuple[int, int], List[TileSpec]] = {}
        for s in specs:
            by_shape.setdefault(s.halo_shape, []).append(s)
        jobs = []
        for group in by_shape.values():
            for i in range(0, len(group), self.max_batch):
                jobs.append(group[i : i + self.max_batch])
        return jobs

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    def _spawn_worker(self) -> threading.Thread:
        # Callers serialise: the constructor runs alone, the supervisor
        # holds ``_workers_lock``.
        self._worker_seq += 1
        t = threading.Thread(
            target=self._worker_loop,
            name=f"sr-worker-{self._worker_seq}",
            daemon=True,
        )
        t.start()
        return t

    def _worker_loop(self) -> None:
        name = threading.current_thread().name
        while True:
            batch = self._scheduler.get()
            if batch is None:
                return  # scheduler closed and drained
            self._queue_depth.dec(len(batch))
            self._busy_since[name] = time.monotonic()
            remaining = list(batch)
            try:
                self._dispatch(batch, remaining)
            except WorkerDeath:
                # Simulated kill -9: hand unfinished jobs back to a live
                # worker and let this thread die; the supervisor respawns
                # it.  Finished batchmates are NOT requeued — their tiles
                # are stitched and accounted.
                self._busy_since.pop(name, None)
                self.telemetry.counter("engine.worker_deaths").inc()
                if self._closed:
                    for job in remaining:
                        job.request.fail(EngineClosed("engine shut down"))
                        job.request.finish_jobs(1)
                else:
                    self._scheduler.requeue(remaining)
                    self._queue_depth.inc(len(remaining))
                return
            finally:
                self._busy_since.pop(name, None)
            if name in self._retired:
                return

    def _dispatch(self, batch: List[TileJob],
                  remaining: List[TileJob]) -> None:
        """Run one dispatched batch; ``remaining`` tracks unfinished jobs.

        Every job leaves through exactly one of: computed + stitched,
        failed (request tagged), or still in ``remaining`` when a
        :class:`WorkerDeath` propagates (the caller requeues those).
        """
        self._batch_size.observe(len(batch))
        self.telemetry.counter("engine.batches").inc()
        if len(batch) > 1:
            self.telemetry.counter("engine.coalesced_batches").inc()
            self.telemetry.counter("engine.coalesced_tiles").inc(len(batch))
            try:
                if self._run_batch(batch):
                    for job in batch:
                        self._finish(job, remaining)
                    return
            except WorkerDeath:
                raise
            # Poisoned batch: isolate the fault — every job re-runs singly
            # below with its own full retry budget, so only the genuinely
            # faulty request(s) fail.
            self.telemetry.counter("engine.batch_fallbacks").inc()
        for job in batch:
            try:
                if not job.request.cancelled:
                    self._run_job(job.request, job.specs)
            except WorkerDeath:
                raise
            except BaseException as exc:  # noqa: BLE001 — reported to caller
                job.request.fail(exc)
            self._finish(job, remaining)

    @staticmethod
    def _finish(job: TileJob, remaining: List[TileJob]) -> None:
        job.request.finish_jobs(1)
        try:
            remaining.remove(job)
        except ValueError:  # pragma: no cover — defensive
            pass

    def _run_batch(self, batch: List[TileJob]) -> bool:
        """One attempt at a coalesced cross-request batch.

        Returns ``True`` when every live job was computed and stitched;
        ``False`` signals the caller to fall back to singles.  Raises
        only :class:`WorkerDeath`.
        """
        live = [j for j in batch if not j.request.cancelled]
        if not live:
            return True  # nothing to compute; jobs just need finishing
        try:
            if self.fault_injector is not None:
                self.fault_injector.on_tile()
            self._compute_coalesced(live)
            return True
        except WorkerDeath:
            raise
        except Exception:
            return False

    def _compute_coalesced(self, jobs: List[TileJob]) -> None:
        """Stack same-shape tiles of several requests into one exact pass."""
        s = self.scale
        specs = [j.specs[0] for j in jobs]
        shape = specs[0].halo_shape
        requests = len({id(j.request) for j in jobs})
        with _trace.span(
            "serve.batch", tiles=len(jobs), requests=requests,
            h=shape[0], w=shape[1],
        ) as bspan:
            patches = np.stack([
                j.request.lr[t.hy0:t.hy1, t.hx0:t.hx1]
                for j, t in zip(jobs, specs)
            ])[..., None]
            outs = self._predict_stack(patches, exact=True)
            for j, t, sr in zip(jobs, specs, outs):
                cy0, cx0 = (t.y0 - t.hy0) * s, (t.x0 - t.hx0) * s
                cy1 = cy0 + (t.y1 - t.y0) * s
                cx1 = cx0 + (t.x1 - t.x0) * s
                j.request.out[t.y0 * s:t.y1 * s, t.x0 * s:t.x1 * s] = (
                    sr[cy0:cy1, cx0:cx1]
                )
        self.telemetry.counter("engine.tiles").inc(len(jobs))
        # Keep each request's trace tree complete: a zero-cost tile span
        # per job, linked to the batch it actually ran in.
        for j, t in zip(jobs, specs):
            with _trace.attach(j.request.ctx):
                with _trace.span(
                    "serve.tile", y0=t.y0, x0=t.x0,
                    h=t.y1 - t.y0, w=t.x1 - t.x0,
                    batched=True, batch_trace=bspan.trace_id,
                ):
                    pass

    def _run_job(self, request: _Request, specs: List[TileSpec]) -> None:
        """One tile job, with per-attempt fault injection and retries."""
        with _trace.attach(request.ctx):
            attempts = self.retry.max_attempts
            for attempt in range(1, attempts + 1):
                try:
                    if self.fault_injector is not None:
                        self.fault_injector.on_tile()
                    self._compute(request, specs)
                    return
                except WorkerDeath:
                    raise
                except Exception:
                    if attempt >= attempts or request.cancelled or self._closed:
                        raise
                    self.telemetry.counter("engine.tile_retries").inc()
                    with self._rng_lock:
                        u = self._retry_rng.random()
                    time.sleep(self.retry.backoff(attempt, u))

    def _predict_stack(self, patches: np.ndarray, exact: bool) -> np.ndarray:
        """Run an ``(N, h, w, 1)`` tile stack on the configured backend.

        Thread backend: the in-process forward pass.  Process backend:
        ship the stack through the shared-memory pool — same predict
        functions worker-side, so the result is bit-identical either
        way.  A :class:`~repro.dataplane.ProcessWorkerDied` escapes as an
        ordinary exception, which the callers' retry/fallback machinery
        absorbs exactly like any transient tile fault.
        """
        if self._pool is not None:
            sp = _trace.current_span()
            return self._pool.submit(
                patches,
                mode="exact" if exact else "stack",
                ctx=None if sp is None else sp.context,
            )
        if exact:
            return predict_batch_exact(self.model, patches)
        return predict_batch(self.model, patches)

    def _compute(self, request: _Request, specs: List[TileSpec]) -> None:
        lr, s = request.lr, self.scale
        if len(specs) > 1:
            with _trace.span("serve.tile_batch", tiles=len(specs)):
                patches = np.stack(
                    [lr[t.hy0 : t.hy1, t.hx0 : t.hx1] for t in specs]
                )[..., None]
                outs = self._predict_stack(patches, exact=False)
            self.telemetry.counter("engine.microbatches").inc()
        else:
            t = specs[0]
            with _trace.span(
                "serve.tile", y0=t.y0, x0=t.x0,
                h=t.y1 - t.y0, w=t.x1 - t.x0,
            ):
                patch = lr[t.hy0 : t.hy1, t.hx0 : t.hx1]
                if self._pool is not None:
                    # predict_batch_exact on a 1-stack is bit-identical
                    # to predict_image on the tile (the parity contract),
                    # so both backends stitch the same pixels.
                    outs = self._predict_stack(
                        patch[None, ..., None], exact=True
                    )
                else:
                    outs = [predict_image(self.model, patch)]
        self.telemetry.counter("engine.tiles").inc(len(specs))
        with _trace.span("serve.stitch", tiles=len(specs)):
            for t, sr in zip(specs, outs):
                cy0, cx0 = (t.y0 - t.hy0) * s, (t.x0 - t.hx0) * s
                cy1 = cy0 + (t.y1 - t.y0) * s
                cx1 = cx0 + (t.x1 - t.x0) * s
                request.out[t.y0 * s : t.y1 * s, t.x0 * s : t.x1 * s] = sr[
                    cy0:cy1, cx0:cx1
                ]

    # ------------------------------------------------------------------ #
    # supervision
    # ------------------------------------------------------------------ #
    def _supervisor_loop(self) -> None:
        """Heartbeat loop: respawn dead workers, retire wedged ones.

        With the process backend the same heartbeat also sweeps the
        process pool for workers that died *idle* (mid-job deaths are
        handled inline by the dispatcher that was waiting on them).
        """
        while not self._closed:
            time.sleep(self.supervise_interval)
            if self._closed:
                return
            if self._pool is not None:
                replaced = self._pool.supervise()
                if replaced:
                    self.telemetry.counter(
                        "engine.process_worker_respawns"
                    ).inc(replaced)
            now = time.monotonic()
            with self._workers_lock:
                if self._closed:
                    return
                for i, t in enumerate(self._workers):
                    if not t.is_alive():
                        self._workers[i] = self._spawn_worker()
                        self.telemetry.counter("engine.worker_respawns").inc()
                        continue
                    if self.wedge_timeout is None or t.name in self._retired:
                        continue
                    started = self._busy_since.get(t.name)
                    if started is not None and now - started > self.wedge_timeout:
                        # Python threads cannot be killed; retire it (it
                        # exits after its current job) and staff a spare.
                        self._retired.add(t.name)
                        self._workers[i] = self._spawn_worker()
                        self.telemetry.counter("engine.workers_wedged").inc()
                        self.telemetry.counter("engine.worker_respawns").inc()

    def _on_breaker_transition(self, old: str, new: str) -> None:
        self.telemetry.counter(f"engine.breaker_to_{new}").inc()
        self._breaker_state.set(new)

    # ------------------------------------------------------------------ #
    # lifecycle / introspection
    # ------------------------------------------------------------------ #
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting requests and stop workers.

        ``wait=True`` lets queued jobs finish first (the scheduler drains
        before handing workers their exit signal); ``wait=False`` cancels
        whatever has not started yet.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        if self._supervisor is not None:
            self._supervisor.join(timeout=self.supervise_interval + 5.0)
        if not wait:
            for job in self._scheduler.drain():
                self._queue_depth.dec()
                job.request.fail(EngineClosed("engine shut down"))
                job.request.finish_jobs(1)
        self._scheduler.close()
        with self._workers_lock:
            workers = list(self._workers)
        for t in workers:
            t.join(timeout=30.0)
        if self._pool is not None:
            # After the dispatcher threads are gone nothing submits to the
            # pool: reap every worker process and unlink the shared-memory
            # arena so a drained engine leaves no /dev/shm residue.
            self._pool.shutdown()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def _batching_stats(self) -> Dict[str, object]:
        counters = self.telemetry
        batches = counters.counter("engine.batches").value
        tiles = counters.counter("engine.tiles").value
        coalesced = counters.counter("engine.coalesced_tiles").value
        return {
            "window_ms": self.config.batch_window_ms,
            "max_batch": self.max_batch,
            "batches": batches,
            "coalesced_batches":
                counters.counter("engine.coalesced_batches").value,
            "coalesced_tiles": coalesced,
            "batch_fallbacks":
                counters.counter("engine.batch_fallbacks").value,
            "mean_batch_size": self._batch_size.mean,
            "coalesce_ratio": (coalesced / tiles) if tiles else 0.0,
        }

    def stats(self) -> Dict[str, object]:
        """Everything ``/stats`` reports: telemetry + cache + registry."""
        snap = self.telemetry.snapshot()
        snap["cache"] = self.cache.stats()
        snap["registry"] = self.registry.stats()
        snap["breaker"] = self.breaker.snapshot()
        snap["batching"] = self._batching_stats()
        # The resolved per-conv kernel selection (repro.kernels): backend
        # plus one {node, shape, kernel, source} row per conv.  getattr —
        # tests swap self.model for duck-typed doubles.
        kernel_plan = getattr(self.model, "kernel_plan", None)
        if self.compiled and kernel_plan is not None:
            snap["kernels"] = kernel_plan.stats()
        if self._pool is not None:
            snap["dataplane"] = self._pool.stats()
        if self.fault_injector is not None:
            snap["fault_injector"] = self.fault_injector.stats()
        config = self.config.to_dict()
        config.update({
            "model": self.key.name,
            "scale": self.key.scale,
            "precision": self.key.precision,
            "workers": len(self._workers),
            "halo": self.halo,
            "compiled": self.compiled,
            "compile_fallback": self.compile_fallback,
            "supervised": self._supervisor is not None,
        })
        snap["config"] = config
        return snap
