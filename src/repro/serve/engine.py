"""Batched, multi-worker tile inference engine (the serving hot path).

A request is one LR Y-channel image.  The engine splits it into halo-padded
tiles exactly like :func:`repro.deploy.tiled.tiled_upscale` (same tile
planner, same :func:`~repro.deploy.tiled.receptive_radius` halo default),
fans the tiles out across a thread worker pool, and stitches the upscaled
cores back into the response — so a single 1080p frame saturates every
worker instead of serialising behind one thread.  NumPy releases the GIL
inside the im2col matmuls, which is where collapsed-SESR inference spends
its time, so plain threads give real parallelism without pickling images
across processes.

Two execution modes per tile group:

* **exact** (default): each tile runs through
  :func:`repro.train.predict_image`, the same call the CLI uses — output is
  bit-identical to ``tiled_upscale`` at the same tile/halo, and to
  full-frame inference whenever one tile covers the frame.
* **micro-batched** (``microbatch=True``): same-shape tiles are stacked on
  the batch axis and run through a *single* im2col convolution call per
  layer.  Fewer Python round-trips and larger matmuls buy throughput at the
  cost of bit-exactness (BLAS may reassociate across batch layouts; results
  agree to ~1 ulp).

Requests are admitted through a bounded slot pool (load-shedding beats
unbounded queueing), carry a deadline (:class:`RequestTimeout`), and
:meth:`InferenceEngine.shutdown` drains workers gracefully.

Fault tolerance (see ``docs/robustness.md`` and ``tests/resilience/``):

* Tile jobs retry transient failures under a
  :class:`~repro.resilience.RetryPolicy` (exponential backoff, seeded
  jitter) before the request is failed.
* A per-model-key :class:`~repro.resilience.CircuitBreaker` trips after
  consecutive request failures; while open, requests skip the model
  entirely.
* With ``degraded_mode=True`` a request that exhausts retries — or
  arrives while the breaker is open — returns the bicubic-upscaled input
  tagged ``degraded=True`` (:class:`UpscaleResult`) instead of raising;
  identical bytes to :func:`repro.datasets.degradation.bicubic_upscale`.
* A supervisor thread heartbeat-checks the worker pool: dead workers
  (e.g. an injected :class:`~repro.resilience.WorkerDeath`) re-queue
  their in-flight job and are respawned; workers busy past
  ``wedge_timeout`` are retired and replaced so one stuck BLAS call
  cannot eat a pool slot forever.
* A seedable :class:`~repro.resilience.FaultInjector` hook fires before
  every tile-job attempt, which is how the chaos suite drives all of the
  above deterministically.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..datasets.degradation import bicubic_upscale
from ..deploy.tiled import receptive_radius
from ..nn import Module, Tensor, no_grad
from ..obs import trace as _trace
from ..resilience import CircuitBreaker, FaultInjector, RetryPolicy, WorkerDeath
from ..train import predict_image
from .cache import LRUCache, array_digest
from .registry import ModelKey, ModelRegistry
from .telemetry import Telemetry


class EngineError(RuntimeError):
    """Base class for serving failures."""


class EngineClosed(EngineError):
    """The engine is shut down and no longer accepts requests."""


class EngineOverloaded(EngineError):
    """All request slots are busy; the caller should shed or retry."""


class RequestTimeout(EngineError):
    """The request missed its deadline; remaining tiles were cancelled."""


class BreakerOpen(EngineError):
    """The circuit breaker is open and degraded mode is disabled."""


@dataclass(frozen=True)
class TileSpec:
    """One tile: output core ``[y0:y1, x0:x1]`` + halo window in LR coords."""

    y0: int
    y1: int
    x0: int
    x1: int
    hy0: int
    hy1: int
    hx0: int
    hx1: int

    @property
    def halo_shape(self) -> Tuple[int, int]:
        return (self.hy1 - self.hy0, self.hx1 - self.hx0)


@dataclass
class UpscaleResult:
    """An upscaled image plus how it was produced.

    ``degraded=True`` means the model path failed (retries exhausted or
    breaker open) and ``image`` is the bicubic fallback — bit-identical
    to ``bicubic_upscale(lr, scale)``; ``reason`` says why.
    ``trace_id`` identifies the request's span tree in the tracer's ring
    buffer / JSONL export (surfaced as the ``X-Trace-Id`` HTTP header).
    """

    image: np.ndarray
    degraded: bool = False
    cached: bool = False
    reason: str = ""
    trace_id: str = ""


def plan_tiles(
    h: int, w: int, tile: Tuple[int, int], halo: int
) -> List[TileSpec]:
    """Tile grid identical to :func:`repro.deploy.tiled.tiled_upscale`."""
    th, tw = tile
    if th <= 0 or tw <= 0:
        raise ValueError("tile dimensions must be positive")
    specs = []
    for y0 in range(0, h, th):
        for x0 in range(0, w, tw):
            y1, x1 = min(y0 + th, h), min(x0 + tw, w)
            specs.append(TileSpec(
                y0, y1, x0, x1,
                max(y0 - halo, 0), min(y1 + halo, h),
                max(x0 - halo, 0), min(x1 + halo, w),
            ))
    return specs


def predict_batch(model: Module, patches: np.ndarray) -> np.ndarray:
    """Run a ``(N, H, W, 1)`` stack through one forward pass per layer.

    The batch axis rides through the same im2col ``conv2d`` the single-image
    path uses — one matmul covers all N tiles, which is the micro-batching
    win.  Returns ``(N, sH, sW)`` clipped to [0, 1] like ``predict_image``.
    """
    model.eval()
    with no_grad():
        out = model(Tensor(patches)).data
    return np.clip(out[..., 0], 0.0, 1.0)


class _Request:
    """In-flight request state shared between the caller and the workers."""

    def __init__(self, lr: np.ndarray, scale: int) -> None:
        self.lr = lr
        self.out = np.zeros(
            (lr.shape[0] * scale, lr.shape[1] * scale), dtype=np.float32
        )
        self.ctx: Optional[_trace.SpanContext] = None
        self.pending = 0
        self.error: Optional[BaseException] = None
        self.cancelled = False
        self.done = threading.Event()
        self._lock = threading.Lock()

    def finish_jobs(self, n: int) -> None:
        with self._lock:
            self.pending -= n
            if self.pending <= 0:
                self.done.set()

    def fail(self, exc: BaseException) -> None:
        with self._lock:
            if self.error is None:
                self.error = exc
            self.cancelled = True


class InferenceEngine:
    """Queue → worker pool → stitched response, with cache and telemetry.

    Parameters
    ----------
    registry, key:
        Where the deployable network comes from; the model is resolved
        eagerly so a bad name/checkpoint fails at construction, not on the
        first request.
    workers:
        Worker threads sharing the tile queue (≥ 1).
    tile:
        Core tile size in LR pixels (int or ``(th, tw)``).
    halo:
        Context pixels per tile; defaults to the model's receptive radius,
        which makes tiling exact.
    microbatch, max_batch:
        Enable same-shape tile micro-batching, and the largest stack fed to
        one forward pass.
    cache_size:
        LRU entries for finished outputs (0 disables).
    max_pending:
        Bounded request-slot pool; admission beyond it raises
        :class:`EngineOverloaded`.
    default_timeout:
        Per-request deadline in seconds when the caller passes none.
    retry:
        :class:`~repro.resilience.RetryPolicy` for transient tile faults
        (default: 3 attempts, 50 ms base backoff).
    breaker:
        :class:`~repro.resilience.CircuitBreaker` guarding this model key
        (default: 5 consecutive failures, 30 s cooldown).
    degraded_mode:
        When ``True``, failed requests return the bicubic fallback tagged
        ``degraded=True`` instead of raising; when ``False`` (default,
        matching the pre-resilience API) failures raise
        :class:`EngineError`/:class:`BreakerOpen`.
    fault_injector:
        Optional :class:`~repro.resilience.FaultInjector` fired before
        every tile-job attempt (chaos testing).
    supervise, supervise_interval, wedge_timeout:
        Worker-pool supervision: every ``supervise_interval`` seconds dead
        workers are respawned, and (when ``wedge_timeout`` is set) workers
        stuck on one job longer than that are retired and replaced.
    compiled:
        When ``True`` (default) run the model through
        :func:`repro.compile.compile_model` via the registry's plan cache
        (bit-identical output, fused ops, planned buffers); models the
        compiler cannot capture fall back to eager transparently
        (``compile_fallback`` in ``/stats``).  ``False`` — the
        ``--no-compile`` escape hatch — always runs the eager network.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        key: ModelKey,
        workers: int = 4,
        tile: Union[int, Tuple[int, int]] = 96,
        halo: Optional[int] = None,
        microbatch: bool = False,
        max_batch: int = 8,
        cache_size: int = 128,
        max_pending: int = 32,
        default_timeout: float = 30.0,
        telemetry: Optional[Telemetry] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        degraded_mode: bool = False,
        fault_injector: Optional[FaultInjector] = None,
        supervise: bool = True,
        supervise_interval: float = 0.2,
        wedge_timeout: Optional[float] = None,
        compiled: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if supervise_interval <= 0:
            raise ValueError("supervise_interval must be positive")
        self.registry = registry
        self.key = key
        # Run the compiled plan by default (bit-identical to eager, see
        # repro.compile); models the compiler cannot capture fall back to
        # the eager network transparently.
        self.compiled = False
        self.compile_fallback = False
        if compiled:
            from ..compile import CaptureError

            try:
                self.model = registry.get_compiled(key)
                self.compiled = True
            except CaptureError:
                self.model = registry.get(key)
                self.compile_fallback = True
        else:
            self.model = registry.get(key)
        self.scale = key.scale
        self.tile = (tile, tile) if isinstance(tile, int) else tuple(tile)
        self.halo = receptive_radius(self.model) if halo is None else halo
        self.microbatch = microbatch
        self.max_batch = max_batch
        self.default_timeout = default_timeout
        self.cache = LRUCache(cache_size)
        self.telemetry = telemetry or Telemetry()
        self.retry = retry or RetryPolicy()
        self.degraded_mode = degraded_mode
        self.fault_injector = fault_injector
        breaker_name = f"{key.name}:x{key.scale}:{key.precision}"
        self.breaker = breaker or CircuitBreaker(name=breaker_name)
        if self.breaker._on_transition is None:
            self.breaker._on_transition = self._on_breaker_transition
        self._breaker_state = self.telemetry.state(
            "engine.breaker_state", self.breaker.state
        )

        self._tasks: "queue.Queue" = queue.Queue()
        self._slots = threading.Semaphore(max_pending)
        self._closed = False
        self._state_lock = threading.Lock()
        self._queue_depth = self.telemetry.gauge("engine.queue_depth")
        self._inflight = self.telemetry.gauge("engine.inflight_requests")
        self._latency = self.telemetry.histogram("engine.request_latency_ms")
        self._retry_rng = random.Random(self.retry.seed)
        self._rng_lock = threading.Lock()
        self._workers_lock = threading.Lock()
        self._worker_seq = 0
        self._busy_since: Dict[str, float] = {}
        self._retired: set = set()
        self.supervise_interval = supervise_interval
        self.wedge_timeout = wedge_timeout
        self._workers = [self._spawn_worker() for _ in range(workers)]
        self._supervisor: Optional[threading.Thread] = None
        if supervise:
            self._supervisor = threading.Thread(
                target=self._supervisor_loop, name="sr-supervisor", daemon=True
            )
            self._supervisor.start()

    # ------------------------------------------------------------------ #
    # request path
    # ------------------------------------------------------------------ #
    def upscale(
        self, lr_img: np.ndarray, timeout: Optional[float] = None
    ) -> np.ndarray:
        """Super-resolve one (H, W) Y image; blocks until done or deadline."""
        return self.upscale_ex(lr_img, timeout=timeout).image

    def upscale_ex(
        self,
        lr_img: np.ndarray,
        timeout: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> UpscaleResult:
        """Like :meth:`upscale` but reports degradation/caching metadata.

        ``trace_id`` (16 hex chars) forces the trace identity of the
        request's span tree — callers that received an ``X-Trace-Id``
        upstream pass it here so the whole path shares one trace.  The id
        actually used (given or generated) comes back on
        :attr:`UpscaleResult.trace_id`.
        """
        if self._closed:
            raise EngineClosed("engine is shut down")
        lr_img = np.asarray(lr_img, dtype=np.float32)
        if lr_img.ndim != 2:
            raise ValueError(f"expected a 2-D Y image, got shape {lr_img.shape}")
        timeout = self.default_timeout if timeout is None else timeout
        with _trace.get_tracer().span(
            "serve.request",
            trace_id=trace_id,
            model=self.key.name,
            scale=self.scale,
            h=int(lr_img.shape[0]),
            w=int(lr_img.shape[1]),
        ) as root:
            result = self._handle_request(lr_img, timeout, root)
            result.trace_id = root.trace_id
            root.attrs["cached"] = result.cached
            root.attrs["degraded"] = result.degraded
            return result

    def _handle_request(
        self, lr_img: np.ndarray, timeout: float, root: _trace.Span
    ) -> UpscaleResult:
        self.telemetry.counter("engine.requests_total").inc()

        cache_key = (self.key, array_digest(lr_img))
        cached = self.cache.get(cache_key)
        if cached is not None:
            self.telemetry.counter("engine.cache_hits").inc()
            return UpscaleResult(cached, cached=True)
        self.telemetry.counter("engine.cache_misses").inc()

        if not self._slots.acquire(blocking=False):
            self.telemetry.counter("engine.requests_overloaded").inc()
            raise EngineOverloaded("all request slots busy")
        start = time.perf_counter()
        self._inflight.inc()
        try:
            # Breaker check happens with the slot held so a half-open
            # trial admitted here always reaches record_success/failure.
            if not self.breaker.allow():
                self.telemetry.counter("engine.breaker_short_circuits").inc()
                return self._degrade(lr_img, "circuit breaker open")
            request = self._submit(lr_img, root)
            if not request.done.wait(timeout):
                request.cancelled = True
                self.telemetry.counter("engine.requests_timeout").inc()
                self.breaker.record_failure()
                raise RequestTimeout(
                    f"request missed its {timeout:.3f}s deadline"
                )
            if request.error is not None:
                self.telemetry.counter("engine.requests_error").inc()
                self.breaker.record_failure()
                if self.degraded_mode:
                    return self._degrade(
                        lr_img, f"retries exhausted: {request.error!r}"
                    )
                raise EngineError(
                    f"worker failed: {request.error!r}"
                ) from request.error
        finally:
            self._inflight.dec()
            self._slots.release()
        self.breaker.record_success()
        self._latency.observe((time.perf_counter() - start) * 1e3)
        self.telemetry.counter("engine.requests_ok").inc()
        self.cache.put(cache_key, request.out)
        return UpscaleResult(request.out)

    def _degrade(self, lr_img: np.ndarray, reason: str) -> UpscaleResult:
        """Bicubic fallback (or typed failure when degraded mode is off)."""
        if not self.degraded_mode:
            raise BreakerOpen(
                f"model path unavailable ({reason}) and degraded mode is off"
            )
        self.telemetry.counter("engine.requests_degraded").inc()
        out = np.clip(
            bicubic_upscale(lr_img, self.scale), 0.0, 1.0
        ).astype(np.float32)
        # Degraded outputs are never cached: the model path should get a
        # fresh chance (and real pixels) once it recovers.
        return UpscaleResult(out, degraded=True, reason=reason)

    def _submit(self, lr_img: np.ndarray, root: _trace.Span) -> _Request:
        h, w = lr_img.shape
        specs = plan_tiles(h, w, self.tile, self.halo)
        request = _Request(lr_img, self.scale)
        # Workers adopt the request span as parent: tile/stitch spans land
        # in this trace no matter which pool thread runs them.
        request.ctx = root.context
        jobs = self._group(specs)
        root.attrs["tiles"] = len(specs)
        root.attrs["jobs"] = len(jobs)
        request.pending = len(jobs)
        for job in jobs:
            self._tasks.put((request, job))
            self._queue_depth.inc()
        return request

    def _group(self, specs: Sequence[TileSpec]) -> List[List[TileSpec]]:
        """Group tiles into jobs: singletons, or same-shape micro-batches."""
        if not self.microbatch:
            return [[s] for s in specs]
        by_shape: Dict[Tuple[int, int], List[TileSpec]] = {}
        for s in specs:
            by_shape.setdefault(s.halo_shape, []).append(s)
        jobs = []
        for group in by_shape.values():
            for i in range(0, len(group), self.max_batch):
                jobs.append(group[i : i + self.max_batch])
        return jobs

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    def _spawn_worker(self) -> threading.Thread:
        # Callers serialise: the constructor runs alone, the supervisor
        # holds ``_workers_lock``.
        self._worker_seq += 1
        t = threading.Thread(
            target=self._worker_loop,
            name=f"sr-worker-{self._worker_seq}",
            daemon=True,
        )
        t.start()
        return t

    def _worker_loop(self) -> None:
        name = threading.current_thread().name
        while True:
            item = self._tasks.get()
            if item is None:
                self._tasks.task_done()
                return
            self._queue_depth.dec()
            request, specs = item
            self._busy_since[name] = time.monotonic()
            try:
                if not request.cancelled:
                    self._run_job(request, specs)
            except WorkerDeath:
                # Simulated kill -9: hand the job back to a live worker
                # and let this thread die; the supervisor respawns it.
                self._busy_since.pop(name, None)
                self.telemetry.counter("engine.worker_deaths").inc()
                if self._closed:
                    request.fail(EngineClosed("engine shut down"))
                    request.finish_jobs(len(specs))
                else:
                    self._tasks.put((request, specs))
                    self._queue_depth.inc()
                self._tasks.task_done()
                return
            except BaseException as exc:  # noqa: BLE001 — reported to caller
                request.fail(exc)
            finally:
                self._busy_since.pop(name, None)
            request.finish_jobs(len(specs))
            self._tasks.task_done()
            if name in self._retired:
                return

    def _run_job(self, request: _Request, specs: List[TileSpec]) -> None:
        """One tile job, with per-attempt fault injection and retries."""
        with _trace.attach(request.ctx):
            attempts = self.retry.max_attempts
            for attempt in range(1, attempts + 1):
                try:
                    if self.fault_injector is not None:
                        self.fault_injector.on_tile()
                    self._compute(request, specs)
                    return
                except WorkerDeath:
                    raise
                except Exception:
                    if attempt >= attempts or request.cancelled or self._closed:
                        raise
                    self.telemetry.counter("engine.tile_retries").inc()
                    with self._rng_lock:
                        u = self._retry_rng.random()
                    time.sleep(self.retry.backoff(attempt, u))

    def _compute(self, request: _Request, specs: List[TileSpec]) -> None:
        lr, s = request.lr, self.scale
        if len(specs) > 1:
            with _trace.span("serve.tile_batch", tiles=len(specs)):
                patches = np.stack(
                    [lr[t.hy0 : t.hy1, t.hx0 : t.hx1] for t in specs]
                )[..., None]
                outs = predict_batch(self.model, patches)
            self.telemetry.counter("engine.microbatches").inc()
        else:
            t = specs[0]
            with _trace.span(
                "serve.tile", y0=t.y0, x0=t.x0,
                h=t.y1 - t.y0, w=t.x1 - t.x0,
            ):
                outs = [
                    predict_image(self.model, lr[t.hy0 : t.hy1, t.hx0 : t.hx1])
                ]
        self.telemetry.counter("engine.tiles").inc(len(specs))
        with _trace.span("serve.stitch", tiles=len(specs)):
            for t, sr in zip(specs, outs):
                cy0, cx0 = (t.y0 - t.hy0) * s, (t.x0 - t.hx0) * s
                cy1 = cy0 + (t.y1 - t.y0) * s
                cx1 = cx0 + (t.x1 - t.x0) * s
                request.out[t.y0 * s : t.y1 * s, t.x0 * s : t.x1 * s] = sr[
                    cy0:cy1, cx0:cx1
                ]

    # ------------------------------------------------------------------ #
    # supervision
    # ------------------------------------------------------------------ #
    def _supervisor_loop(self) -> None:
        """Heartbeat loop: respawn dead workers, retire wedged ones."""
        while not self._closed:
            time.sleep(self.supervise_interval)
            if self._closed:
                return
            now = time.monotonic()
            with self._workers_lock:
                if self._closed:
                    return
                for i, t in enumerate(self._workers):
                    if not t.is_alive():
                        self._workers[i] = self._spawn_worker()
                        self.telemetry.counter("engine.worker_respawns").inc()
                        continue
                    if self.wedge_timeout is None or t.name in self._retired:
                        continue
                    started = self._busy_since.get(t.name)
                    if started is not None and now - started > self.wedge_timeout:
                        # Python threads cannot be killed; retire it (it
                        # exits after its current job) and staff a spare.
                        self._retired.add(t.name)
                        self._workers[i] = self._spawn_worker()
                        self.telemetry.counter("engine.workers_wedged").inc()
                        self.telemetry.counter("engine.worker_respawns").inc()

    def _on_breaker_transition(self, old: str, new: str) -> None:
        self.telemetry.counter(f"engine.breaker_to_{new}").inc()
        self._breaker_state.set(new)

    # ------------------------------------------------------------------ #
    # lifecycle / introspection
    # ------------------------------------------------------------------ #
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting requests and stop workers.

        ``wait=True`` lets queued jobs finish first (sentinels sit behind
        them in the FIFO queue); ``wait=False`` cancels whatever has not
        started yet.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        if self._supervisor is not None:
            self._supervisor.join(timeout=self.supervise_interval + 5.0)
        if not wait:
            try:
                while True:
                    item = self._tasks.get_nowait()
                    if item is None:
                        self._tasks.task_done()
                        continue
                    request, specs = item
                    self._queue_depth.dec()
                    request.fail(EngineClosed("engine shut down"))
                    request.finish_jobs(len(specs))
                    self._tasks.task_done()
            except queue.Empty:
                pass
        with self._workers_lock:
            workers = list(self._workers)
        for _ in workers:
            self._tasks.put(None)
        for t in workers:
            t.join(timeout=30.0)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def stats(self) -> Dict[str, object]:
        """Everything ``/stats`` reports: telemetry + cache + registry."""
        snap = self.telemetry.snapshot()
        snap["cache"] = self.cache.stats()
        snap["registry"] = self.registry.stats()
        snap["breaker"] = self.breaker.snapshot()
        if self.fault_injector is not None:
            snap["fault_injector"] = self.fault_injector.stats()
        snap["config"] = {
            "model": self.key.name,
            "scale": self.key.scale,
            "precision": self.key.precision,
            "workers": len(self._workers),
            "tile": list(self.tile),
            "halo": self.halo,
            "microbatch": self.microbatch,
            "compiled": self.compiled,
            "compile_fallback": self.compile_fallback,
            "retry_attempts": self.retry.max_attempts,
            "degraded_mode": self.degraded_mode,
            "supervised": self._supervisor is not None,
            "wedge_timeout_s": self.wedge_timeout,
        }
        return snap
