"""``EngineConfig`` — the one value object that configures serving.

Four PRs of engine growth left :class:`~repro.serve.InferenceEngine` with
a dozen-plus constructor kwargs (workers, tiling, micro-batching, cache,
admission, timeouts, retries, breaker, degraded mode, supervision,
compilation, and now cross-request batching).  ``EngineConfig`` is the
redesigned public API: a frozen, validated dataclass that callers build
once and hand to ``InferenceEngine(registry, key, config=...)`` — the CLI
builds one from its flags and prints it at startup, tests build variants
with :meth:`EngineConfig.replace`, and ``/stats``/``/v1/stats`` echo it
back.  ``config=`` is the *only* constructor path: the historical
kwarg-soup shim rode through two releases as a DeprecationWarning and
is gone.

Stateful collaborators (an injected :class:`~repro.serve.Telemetry`, a
pre-built :class:`~repro.resilience.CircuitBreaker`, a chaos
:class:`~repro.resilience.FaultInjector`) are *not* configuration and stay
explicit keyword arguments on the engine; the config carries only values.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from ..resilience import RetryPolicy

__all__ = ["EngineConfig"]

#: worker execution backends an engine can run tiles on.
WORKER_BACKENDS = ("thread", "process")

#: GEMM backends the compiled executor can run conv steps on.
GEMM_BACKENDS = ("auto", "blas", "blocked")


def _default_backend() -> str:
    """Library default is ``thread``; ``REPRO_WORKER_BACKEND`` overrides.

    The env var exists so an *unmodified* test suite can be replayed
    against the process data plane (CI runs the chaos suite both ways).
    An unknown value fails at construction like any other bad config.
    """
    return os.environ.get("REPRO_WORKER_BACKEND", "thread")


def _default_gemm_backend() -> str:
    """Library default is ``blas``; ``REPRO_GEMM_BACKEND`` overrides.

    The env var exists for the same replay reason as
    ``REPRO_WORKER_BACKEND``: CI runs the batching bench under both
    ``blas`` and ``blocked`` without modifying the suite.
    """
    return os.environ.get("REPRO_GEMM_BACKEND", "blas")


@dataclass(frozen=True)
class EngineConfig:
    """Everything that shapes how one :class:`InferenceEngine` serves.

    Parameters
    ----------
    workers:
        Worker threads sharing the batch scheduler (>= 1).
    tile:
        Core tile size in LR pixels (int or ``(th, tw)``); normalised to a
        tuple.
    halo:
        Context pixels per tile; ``None`` = the model's receptive radius
        (which makes tiling exact).
    microbatch, max_batch:
        Legacy *within-request* same-shape tile stacking (approximate,
        ~1 ulp), and the largest stack fed to one forward pass.
        ``max_batch`` also caps cross-request batches.
    batch_window_ms:
        Cross-request dynamic batching: how long a queued tile job may
        wait for same-shape company before it is dispatched anyway.
        ``0`` (the library default) disables coalescing — every job
        dispatches immediately, exactly the pre-batching engine.  Unlike
        ``microbatch``, coalesced batches are *bit-identical* to
        unbatched serving (exact per-sample GEMM; see
        ``repro.compile.CompiledModel.run``).
    cache_size:
        LRU entries for finished outputs (0 disables).
    max_pending:
        Bounded request-slot pool; admission beyond it raises
        :class:`~repro.serve.EngineOverloaded`.
    default_timeout:
        Per-request deadline in seconds when the caller passes none.
    retry:
        :class:`~repro.resilience.RetryPolicy` for transient tile faults.
    breaker_threshold, breaker_cooldown:
        Circuit breaker built for the engine's model key when no breaker
        instance is injected.
    degraded_mode:
        ``True`` = failed requests return the bicubic fallback tagged
        ``degraded=True`` instead of raising.
    supervise, supervise_interval, wedge_timeout:
        Worker-pool supervision (respawn dead workers; retire ones stuck
        past ``wedge_timeout``).
    compiled:
        Run the registry's compiled plan (bit-identical, fused, planned
        buffers); ``False`` is the ``--no-compile`` escape hatch.
    worker_backend:
        Where tile compute runs.  ``"thread"`` (default) keeps everything
        in-process; ``"process"`` proxies compute to a supervised
        :class:`~repro.dataplane.ProcessWorkerPool` of spawned workers
        over shared-memory tile arenas — same scheduler, same retries,
        same bit-exact outputs, but NumPy escapes the GIL.  The default
        honours the ``REPRO_WORKER_BACKEND`` environment variable so an
        unmodified suite can run against either backend.  Process
        workers rebuild the model from a pickled plan/weights handoff,
        so the model (compiled or eager) must pickle — the zoo's do.
    gemm_backend:
        Which GEMM kernel the compiled executor runs conv steps on (see
        :mod:`repro.kernels` and ``docs/kernels.md``).  ``"blas"`` (the
        default) is the vendor sgemm — fastest arithmetic, but a
        coalesced cross-request batch must issue the GEMM once *per
        sample* to stay bit-exact.  ``"blocked"`` is the
        fixed-reduction-order blocked matmul: m-invariant, so a
        coalesced batch is ONE stacked GEMM per conv and still
        bit-identical to single-sample serving.  ``"auto"`` picks the
        measured winner per conv shape from the ``repro tune`` cache
        (missing shapes degrade to ``blas``).  The default honours
        ``REPRO_GEMM_BACKEND``.  Engines sharing one registry-cached
        compiled model apply the backend at construction — concurrent
        engines over the same key should agree on it.  Ignored on the
        eager (non-compiled) fallback path.
    """

    workers: int = 4
    tile: Union[int, Tuple[int, int]] = 96
    halo: Optional[int] = None
    microbatch: bool = False
    max_batch: int = 8
    batch_window_ms: float = 0.0
    cache_size: int = 128
    max_pending: int = 32
    default_timeout: float = 30.0
    retry: RetryPolicy = RetryPolicy()
    breaker_threshold: int = 5
    breaker_cooldown: float = 30.0
    degraded_mode: bool = False
    supervise: bool = True
    supervise_interval: float = 0.2
    wedge_timeout: Optional[float] = None
    compiled: bool = True
    worker_backend: str = field(default_factory=_default_backend)
    gemm_backend: str = field(default_factory=_default_gemm_backend)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        tile = self.tile
        if isinstance(tile, int):
            tile = (tile, tile)
        else:
            tile = tuple(int(t) for t in tile)
            if len(tile) != 2:
                raise ValueError("tile must be an int or a (th, tw) pair")
        if tile[0] <= 0 or tile[1] <= 0:
            raise ValueError("tile dimensions must be positive")
        object.__setattr__(self, "tile", tile)
        if self.halo is not None and self.halo < 0:
            raise ValueError("halo must be non-negative")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.batch_window_ms < 0:
            raise ValueError("batch_window_ms must be non-negative")
        if self.cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.default_timeout <= 0:
            raise ValueError("default_timeout must be positive")
        if not isinstance(self.retry, RetryPolicy):
            raise TypeError("retry must be a RetryPolicy")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown < 0:
            raise ValueError("breaker_cooldown must be non-negative")
        if self.supervise_interval <= 0:
            raise ValueError("supervise_interval must be positive")
        if self.wedge_timeout is not None and self.wedge_timeout <= 0:
            raise ValueError("wedge_timeout must be positive when set")
        if self.worker_backend not in WORKER_BACKENDS:
            raise ValueError(
                f"worker_backend must be one of {WORKER_BACKENDS}, "
                f"got {self.worker_backend!r}"
            )
        if self.gemm_backend not in GEMM_BACKENDS:
            raise ValueError(
                f"gemm_backend must be one of {GEMM_BACKENDS}, "
                f"got {self.gemm_backend!r}"
            )

    # ------------------------------------------------------------------ #
    def replace(self, **changes) -> "EngineConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly view (``/stats`` config section, CLI startup)."""
        out = dataclasses.asdict(self)
        out["tile"] = list(self.tile)  # type: ignore[list-item]
        out["retry"] = dataclasses.asdict(self.retry)
        return out

    def describe(self) -> str:
        """One human line per knob group — what ``repro serve`` prints."""
        th, tw = self.tile  # normalised in __post_init__
        batching = (
            f"window {self.batch_window_ms:g} ms, max {self.max_batch}"
            if self.batch_window_ms > 0 else
            f"off (max {self.max_batch})"
        )
        wedge = ("-" if self.wedge_timeout is None
                 else f"{self.wedge_timeout:g}s")
        return "\n".join([
            f"  workers {self.workers} ({self.worker_backend}), "
            f"tile {th}x{tw}, halo "
            f"{'auto' if self.halo is None else self.halo}, "
            f"compiled {'on' if self.compiled else 'off'}, "
            f"gemm {self.gemm_backend}",
            f"  batching: cross-request {batching}; "
            f"microbatch {'on' if self.microbatch else 'off'}",
            f"  admission: {self.max_pending} slots, timeout "
            f"{self.default_timeout:g}s, cache {self.cache_size}",
            f"  resilience: {self.retry.max_attempts} attempts, breaker "
            f"{self.breaker_threshold}/{self.breaker_cooldown:g}s, "
            f"degraded {'on' if self.degraded_mode else 'off'}, "
            f"supervise {'on' if self.supervise else 'off'} "
            f"(wedge {wedge})",
        ])
