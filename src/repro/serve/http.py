"""Stdlib-only HTTP front-end over the inference engine.

Endpoints
---------
``POST /upscale``
    Body: a binary/ASCII PGM or PPM image.  Response: the upscaled image in
    binary PGM (grey input) or PPM (colour input).  Colour inputs follow
    the paper's protocol exactly as ``repro.cli upscale`` does — the engine
    super-resolves the Y channel, chroma is bicubic-upscaled — so the
    response bytes are bit-identical to the CLI's output file.
``GET /healthz``
    Liveness + model identity (JSON).
``GET /stats``
    Full :meth:`repro.serve.InferenceEngine.stats` snapshot (JSON):
    request counters, latency percentiles, queue depth, cache accounting.
``GET /metrics``
    The same registry in Prometheus text format (version 0.0.4), plus
    live tracing-span aggregates — what a metrics scraper points at
    (see ``docs/observability.md``).  ``/stats`` is unchanged.

Every ``POST /upscale`` response carries an ``X-Trace-Id`` header naming
the request's span tree (request → tile fan-out → stitch) in the process
tracer; a client-supplied well-formed ``X-Trace-Id`` (16 hex chars) is
adopted instead of generating one, so the id round-trips.

Built on :class:`http.server.ThreadingHTTPServer`: one thread per
connection does the (cheap) parse/encode work and blocks on the engine,
whose bounded slot pool is the real admission control.  Failure mapping:
bad image → 400, oversized body → 413 (rejected *before* the body is
read, so an unbounded upload cannot balloon memory), engine overloaded →
503, deadline missed → 504, worker error → 500.  When the engine's
degraded mode answers with the bicubic fallback the response carries
``X-Degraded: true`` (it is ``false`` on healthy responses) so callers
and load balancers can tell fallback pixels from model pixels.
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

import numpy as np

from ..datasets import (
    decode_netpbm,
    encode_netpbm,
    rgb_to_ycbcr,
    ycbcr_to_rgb,
)
from ..datasets.degradation import bicubic_upscale
from ..obs import get_tracer, render_prometheus
from ..obs import profiler as _profiler
from .engine import (
    EngineClosed,
    EngineOverloaded,
    InferenceEngine,
    RequestTimeout,
    UpscaleResult,
)

MAX_BODY_BYTES = 64 * 1024 * 1024  # 8K RGB16 fits with headroom

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_TRACE_ID_RE = re.compile(r"[0-9a-f]{16}$")


def upscale_array_ex(engine: InferenceEngine, img: np.ndarray,
                     timeout: Optional[float] = None,
                     trace_id: Optional[str] = None) -> UpscaleResult:
    """Upscale a decoded image, colour-handling like ``cmd_upscale``.

    Colour inputs follow the paper's protocol: the engine handles the Y
    channel (including its retry/degraded machinery — the result is
    tagged degraded whenever the Y path was), chroma is bicubic.
    ``trace_id`` propagates to the engine's request span (see
    :meth:`~repro.serve.InferenceEngine.upscale_ex`).
    """
    if img.ndim == 2:
        return engine.upscale_ex(img, timeout=timeout, trace_id=trace_id)
    ycbcr = rgb_to_ycbcr(img)
    y_res = engine.upscale_ex(
        np.ascontiguousarray(ycbcr[..., 0]), timeout=timeout,
        trace_id=trace_id,
    )
    cb = bicubic_upscale(ycbcr[..., 1], engine.scale)
    cr = bicubic_upscale(ycbcr[..., 2], engine.scale)
    rgb = ycbcr_to_rgb(np.stack([y_res.image, cb, cr], axis=2))
    return UpscaleResult(rgb, degraded=y_res.degraded, cached=y_res.cached,
                         reason=y_res.reason, trace_id=y_res.trace_id)


def upscale_array(engine: InferenceEngine, img: np.ndarray,
                  timeout: Optional[float] = None) -> np.ndarray:
    """Back-compat wrapper over :func:`upscale_array_ex` (image only)."""
    return upscale_array_ex(engine, img, timeout=timeout).image


class SRRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the server's engine; speaks netpbm and JSON."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def engine(self) -> InferenceEngine:
        return self.server.engine  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        if self.path == "/healthz":
            key = self.engine.key
            self._send_json(200, {
                "status": "ok" if not self.engine.closed else "shutting-down",
                "model": key.name,
                "scale": key.scale,
                "precision": key.precision,
            })
        elif self.path == "/stats":
            self._send_json(200, self.engine.stats())
        elif self.path == "/metrics":
            text = render_prometheus(
                self.engine.stats(),
                tracer=get_tracer(),
                profiler=_profiler.ACTIVE,
            )
            self._send_bytes(
                200, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE
            )
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        if self.path != "/upscale":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        max_bytes = getattr(self.server, "max_body_bytes", MAX_BODY_BYTES)
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length > max_bytes:
            # Reject before reading: the body never enters memory.  The
            # unread bytes would corrupt a keep-alive connection, so
            # close it after responding.
            self.close_connection = True
            self._send_json(413, {
                "error": f"body of {length} bytes exceeds the "
                         f"{max_bytes}-byte limit",
            })
            return
        if length <= 0:
            self._send_json(400, {"error": "missing or invalid body"})
            return
        body = self.rfile.read(length)
        try:
            img = decode_netpbm(body)
        except ValueError as exc:
            self._send_json(400, {"error": f"bad netpbm payload: {exc}"})
            return
        # A well-formed client trace id is adopted (so one trace spans
        # client and server); anything else is ignored and a fresh id is
        # generated by the engine.
        trace_id = self.headers.get("X-Trace-Id", "").strip().lower()
        if not _TRACE_ID_RE.fullmatch(trace_id):
            trace_id = None
        try:
            result = upscale_array_ex(self.engine, img, trace_id=trace_id)
        except (EngineOverloaded, EngineClosed) as exc:
            self._send_json(503, {"error": str(exc)})
            return
        except RequestTimeout as exc:
            self._send_json(504, {"error": str(exc)})
            return
        except Exception as exc:  # noqa: BLE001 — reported as HTTP 500
            self._send_json(500, {"error": f"inference failed: {exc}"})
            return
        payload = encode_netpbm(result.image)
        self._send_bytes(
            200, payload, "application/octet-stream",
            extra_headers={
                "X-Degraded": "true" if result.degraded else "false",
                "X-Trace-Id": result.trace_id,
            },
        )

    # ------------------------------------------------------------------ #
    def _send_bytes(self, code: int, payload: bytes, ctype: str,
                    extra_headers: Optional[dict] = None) -> None:
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, code: int, obj: dict) -> None:
        self._send_bytes(
            code, json.dumps(obj, indent=2).encode() + b"\n",
            "application/json",
        )

    def log_message(self, fmt: str, *args) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)


class SRServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`InferenceEngine`."""

    daemon_threads = True

    def __init__(
        self,
        engine: InferenceEngine,
        address: Tuple[str, int] = ("127.0.0.1", 8000),
        verbose: bool = False,
        max_body_bytes: int = MAX_BODY_BYTES,
    ) -> None:
        if max_body_bytes < 1:
            raise ValueError("max_body_bytes must be positive")
        super().__init__(address, SRRequestHandler)
        self.engine = engine
        self.verbose = verbose
        self.max_body_bytes = max_body_bytes
        self._serving = False

    def serve_forever(self, *args, **kwargs) -> None:
        self._serving = True
        try:
            super().serve_forever(*args, **kwargs)
        finally:
            self._serving = False

    def close(self) -> None:
        """Stop the listener and drain the engine (graceful shutdown)."""
        if self._serving:
            self.shutdown()  # unblocks serve_forever (wherever it runs)
        self.server_close()
        self.engine.shutdown()


def make_server(
    engine: InferenceEngine,
    host: str = "127.0.0.1",
    port: int = 8000,
    verbose: bool = False,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> SRServer:
    """Bind an :class:`SRServer`; ``port=0`` picks an ephemeral port."""
    return SRServer(engine, (host, port), verbose=verbose,
                    max_body_bytes=max_body_bytes)
