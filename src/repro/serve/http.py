"""Stdlib-only HTTP front-end over the inference engine.

Endpoints (v1 — the documented API)
-----------------------------------
``POST /v1/upscale``
    Body: a binary/ASCII PGM or PPM image.  Response: the upscaled image in
    binary PGM (grey input) or PPM (colour input).  Colour inputs follow
    the paper's protocol exactly as ``repro.cli upscale`` does — the engine
    super-resolves the Y channel, chroma is bicubic-upscaled — so the
    response bytes are bit-identical to the CLI's output file.
``GET /v1/healthz``
    Liveness + model identity (JSON).
``GET /v1/stats``
    Full :meth:`repro.serve.InferenceEngine.stats` snapshot (JSON):
    request counters, latency percentiles, queue depth, cache and
    cross-request batching accounting.
``GET /v1/metrics``
    The same registry in Prometheus text format (version 0.0.4), plus
    live tracing-span aggregates — what a metrics scraper points at
    (see ``docs/observability.md``).

The original unversioned paths (``/upscale``, ``/healthz``, ``/stats``,
``/metrics``) no longer serve content: they answer **308 Permanent
Redirect** with a ``Location: /v1/...`` header and an empty body.  (They
spent a deprecation cycle serving dual-stack with ``Deprecation: true``
+ ``Link: rel="successor-version"`` headers first.)  308 — not 301/302 —
because it forbids the method rewrite: a redirected ``POST /upscale``
must be retried as ``POST /v1/upscale`` with the same body.  A redirect
response to a POST closes the connection, since the unread request body
would corrupt a keep-alive stream.  New clients should speak ``/v1``;
the prefix is what lets the wire format evolve again without breaking
them.

Errors
------
Every non-2xx response is JSON with one stable shape::

    {"error": {"code": "<machine-readable>", "message": "<human>",
               "trace_id": "<16 hex>"}}

``code`` is one of ``bad_request``, ``not_found``, ``payload_too_large``,
``unsupported_media_type``, ``unavailable``, ``deadline_exceeded``,
``internal``.  ``trace_id`` identifies the failure in the process tracer
(a well-formed client ``X-Trace-Id`` is adopted, otherwise one is
generated) and is also echoed as the ``X-Trace-Id`` response header.

Request validation is header-first: the ``Content-Type`` of ``POST
/v1/upscale`` is checked *before* the body is read (netpbm payloads —
``image/*``, ``application/octet-stream``, or clients that send no/default
types), as is the ``Content-Length`` bound — an unsupported or oversized
upload is rejected with 415/413 without its body ever entering memory.

Every ``POST /v1/upscale`` response carries an ``X-Trace-Id`` header
naming the request's span tree (request → tile fan-out → stitch) in the
process tracer; a client-supplied well-formed ``X-Trace-Id`` (16 hex
chars) is adopted instead of generating one, so the id round-trips.

Built on :class:`http.server.ThreadingHTTPServer`: one thread per
connection does the (cheap) parse/encode work and blocks on the engine,
whose bounded slot pool is the real admission control.  Failure mapping:
bad image → 400, oversized body → 413, wrong media type → 415, engine
overloaded/closed → 503, deadline missed → 504, worker error → 500.
When the engine's degraded mode answers with the bicubic fallback the
response carries ``X-Degraded: true`` (it is ``false`` on healthy
responses) so callers and load balancers can tell fallback pixels from
model pixels.
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

import numpy as np

from ..datasets import (
    decode_netpbm,
    encode_netpbm,
    rgb_to_ycbcr,
    ycbcr_to_rgb,
)
from ..datasets.degradation import bicubic_upscale
from ..obs import get_tracer, render_prometheus
from ..obs import profiler as _profiler
from ..obs.trace import new_trace_id
from .engine import (
    EngineClosed,
    EngineOverloaded,
    InferenceEngine,
    RequestTimeout,
    UpscaleResult,
)

MAX_BODY_BYTES = 64 * 1024 * 1024  # 8K RGB16 fits with headroom

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

API_VERSION = "v1"

#: media types accepted for POST /v1/upscale.  Netpbm has no single
#: registered type and simple clients (curl --data-binary, urllib) send
#: form/plain/none defaults, so the gate is an allow-list, not one type.
_ACCEPTED_MEDIA_PREFIXES = ("image/",)
_ACCEPTED_MEDIA_TYPES = frozenset({
    "",  # no Content-Type header at all
    "application/octet-stream",
    "application/x-www-form-urlencoded",  # urllib/curl POST default
    "text/plain",
})

_TRACE_ID_RE = re.compile(r"[0-9a-f]{16}$")

_ROUTES = ("/upscale", "/healthz", "/stats", "/metrics")


def upscale_array_ex(engine: InferenceEngine, img: np.ndarray,
                     timeout: Optional[float] = None,
                     trace_id: Optional[str] = None) -> UpscaleResult:
    """Upscale a decoded image, colour-handling like ``cmd_upscale``.

    Colour inputs follow the paper's protocol: the engine handles the Y
    channel (including its retry/degraded machinery — the result is
    tagged degraded whenever the Y path was), chroma is bicubic.
    ``trace_id`` propagates to the engine's request span (see
    :meth:`~repro.serve.InferenceEngine.upscale_ex`).
    """
    if img.ndim == 2:
        return engine.upscale_ex(img, timeout=timeout, trace_id=trace_id)
    ycbcr = rgb_to_ycbcr(img)
    y_res = engine.upscale_ex(
        np.ascontiguousarray(ycbcr[..., 0]), timeout=timeout,
        trace_id=trace_id,
    )
    cb = bicubic_upscale(ycbcr[..., 1], engine.scale)
    cr = bicubic_upscale(ycbcr[..., 2], engine.scale)
    rgb = ycbcr_to_rgb(np.stack([y_res.image, cb, cr], axis=2))
    return UpscaleResult(rgb, degraded=y_res.degraded, cached=y_res.cached,
                         reason=y_res.reason, trace_id=y_res.trace_id)


def upscale_array(engine: InferenceEngine, img: np.ndarray,
                  timeout: Optional[float] = None) -> np.ndarray:
    """Back-compat wrapper over :func:`upscale_array_ex` (image only)."""
    return upscale_array_ex(engine, img, timeout=timeout).image


class SRRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the server's engine; speaks netpbm and JSON."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def engine(self) -> InferenceEngine:
        return self.server.engine  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def _route(self) -> Tuple[Optional[str], Optional[str]]:
        """Resolve ``self.path`` to ``(route, redirect_location)``.

        Exactly one of the pair is set: a versioned path yields its
        canonical route; a legacy unversioned path yields the ``/v1``
        location to 308-redirect to; an unknown path yields neither
        (404).
        """
        path = self.path.split("?", 1)[0]
        prefix = f"/{API_VERSION}"
        if path.startswith(prefix + "/"):
            route = path[len(prefix):]
            return (route, None) if route in _ROUTES else (None, None)
        if path in _ROUTES:
            return None, prefix + path
        return None, None

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        route, redirect = self._route()
        if redirect is not None:
            self._send_redirect(redirect)
        elif route == "/healthz":
            key = self.engine.key
            self._send_json(200, {
                "status": "ok" if not self.engine.closed else "shutting-down",
                "model": key.name,
                "scale": key.scale,
                "precision": key.precision,
                "api_version": API_VERSION,
            })
        elif route == "/stats":
            self._send_json(200, self.engine.stats())
        elif route == "/metrics":
            text = render_prometheus(
                self.engine.stats(),
                tracer=get_tracer(),
                profiler=_profiler.ACTIVE,
            )
            self._send_bytes(
                200, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE,
            )
        else:
            self._send_error(
                404, "not_found", f"unknown path {self.path!r}"
            )

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        route, redirect = self._route()
        if redirect is not None:
            # The request body is never read: close the connection so the
            # unread bytes cannot corrupt a keep-alive stream.  308 keeps
            # the method and body on the retry against /v1.
            self.close_connection = True
            self._send_redirect(redirect)
            return
        if route != "/upscale":
            self._send_error(
                404, "not_found", f"unknown path {self.path!r}"
            )
            return
        # Header-first validation: media type and size are judged before
        # a single body byte is read, so a bad upload costs no memory.
        # Responses that leave the body unread close the connection — the
        # unread bytes would corrupt a keep-alive stream.
        ctype = self.headers.get("Content-Type", "")
        ctype = ctype.split(";", 1)[0].strip().lower()
        if (ctype not in _ACCEPTED_MEDIA_TYPES
                and not ctype.startswith(_ACCEPTED_MEDIA_PREFIXES)):
            self.close_connection = True
            self._send_error(
                415, "unsupported_media_type",
                f"unsupported Content-Type {ctype!r}; send a netpbm image "
                "as image/* or application/octet-stream",
            )
            return
        max_bytes = getattr(self.server, "max_body_bytes", MAX_BODY_BYTES)
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length > max_bytes:
            self.close_connection = True
            self._send_error(
                413, "payload_too_large",
                f"body of {length} bytes exceeds the {max_bytes}-byte limit",
            )
            return
        if length <= 0:
            self._send_error(
                400, "bad_request", "missing or invalid body",
            )
            return
        body = self.rfile.read(length)
        try:
            img = decode_netpbm(body)
        except ValueError as exc:
            self._send_error(
                400, "bad_request", f"bad netpbm payload: {exc}",
            )
            return
        try:
            result = upscale_array_ex(
                self.engine, img, trace_id=self._client_trace_id()
            )
        except (EngineOverloaded, EngineClosed) as exc:
            self._send_error(503, "unavailable", str(exc))
            return
        except RequestTimeout as exc:
            self._send_error(504, "deadline_exceeded", str(exc))
            return
        except Exception as exc:  # noqa: BLE001 — reported as HTTP 500
            self._send_error(500, "internal", f"inference failed: {exc}")
            return
        payload = encode_netpbm(result.image)
        headers = {
            "X-Degraded": "true" if result.degraded else "false",
            "X-Trace-Id": result.trace_id,
        }
        self._send_bytes(
            200, payload, "application/octet-stream", extra_headers=headers
        )

    # ------------------------------------------------------------------ #
    def _client_trace_id(self) -> Optional[str]:
        """A well-formed client ``X-Trace-Id`` (adopted so one trace spans
        client and server), else ``None``."""
        trace_id = self.headers.get("X-Trace-Id", "").strip().lower()
        return trace_id if _TRACE_ID_RE.fullmatch(trace_id) else None

    def _send_redirect(self, location: str) -> None:
        """308 Permanent Redirect to the versioned route; empty body."""
        self.send_response(308)
        self.send_header("Location", location)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def _send_bytes(self, code: int, payload: bytes, ctype: str,
                    extra_headers: Optional[dict] = None) -> None:
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, code: int, obj: dict,
                   extra_headers: Optional[dict] = None) -> None:
        self._send_bytes(
            code, json.dumps(obj, indent=2).encode() + b"\n",
            "application/json", extra_headers=extra_headers,
        )

    def _send_error(self, code: int, error_code: str, message: str,
                    extra_headers: Optional[dict] = None) -> None:
        """The one error shape every non-2xx response uses."""
        trace_id = self._client_trace_id() or new_trace_id()
        headers = dict(extra_headers or {})
        headers["X-Trace-Id"] = trace_id
        self._send_json(code, {
            "error": {
                "code": error_code,
                "message": message,
                "trace_id": trace_id,
            },
        }, extra_headers=headers)

    def log_message(self, fmt: str, *args) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)


class SRServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`InferenceEngine`."""

    daemon_threads = True

    def __init__(
        self,
        engine: InferenceEngine,
        address: Tuple[str, int] = ("127.0.0.1", 8000),
        verbose: bool = False,
        max_body_bytes: int = MAX_BODY_BYTES,
    ) -> None:
        if max_body_bytes < 1:
            raise ValueError("max_body_bytes must be positive")
        super().__init__(address, SRRequestHandler)
        self.engine = engine
        self.verbose = verbose
        self.max_body_bytes = max_body_bytes
        self._serving = False

    def serve_forever(self, *args, **kwargs) -> None:
        self._serving = True
        try:
            super().serve_forever(*args, **kwargs)
        finally:
            self._serving = False

    def close(self) -> None:
        """Stop the listener and drain the engine (graceful shutdown)."""
        if self._serving:
            self.shutdown()  # unblocks serve_forever (wherever it runs)
        self.server_close()
        self.engine.shutdown()


def make_server(
    engine: InferenceEngine,
    host: str = "127.0.0.1",
    port: int = 8000,
    verbose: bool = False,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> SRServer:
    """Bind an :class:`SRServer`; ``port=0`` picks an ephemeral port."""
    return SRServer(engine, (host, port), verbose=verbose,
                    max_body_bytes=max_body_bytes)
