"""Functional tiled inference (the executable side of §5.6).

The paper's tiling optimisation processes a 1080p frame as 400×300 tiles
to keep feature maps inside NPU SRAM, and notes the "boundary overhead when
tiling to maintain the functional correctness".  :mod:`repro.hw.tiling`
models the *performance* of that scheme; this module implements the scheme
itself:

* :func:`receptive_radius` — how many LR pixels of context a collapsed
  network needs (for SESR: 2 + m + 2 pixels);
* :func:`tiled_upscale` — split, run with halo, crop, stitch.  With
  ``halo >= receptive_radius`` the stitched output is *bit-identical* to
  full-frame inference (property-tested), which is exactly the functional
  correctness the paper's overhead pays for;
* :func:`halo_overhead` — the fraction of extra pixels computed, the
  quantity behind the paper's "boundary overhead" caveat.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..metrics.complexity import specs_from_module
from ..nn import Module
from ..train.trainer import predict_image


def receptive_radius(model_or_specs) -> int:
    """Half-width of the network's receptive field in input pixels.

    Each ``k×k`` convolution adds ``(k-1)/2`` pixels of context (maximum
    over both axes for asymmetric kernels).
    """
    if isinstance(model_or_specs, Module):
        model = model_or_specs
        # Compiled models precompute their radius from the graph.
        rr = getattr(model, "receptive_radius", None)
        if isinstance(rr, int):
            return rr
        # Collapsed/quantized SESR-style nets expose first/convs/last
        # directly; fall back to the spec builder for everything else.
        if all(hasattr(model, a) for a in ("first", "convs", "last")):
            layers = [model.first, *model.convs, model.last]
            return sum((max(layer.kernel_size) - 1) // 2 for layer in layers)
        specs = specs_from_module(model)
    else:
        specs = list(model_or_specs)
    radius = 0
    for spec in specs:
        if spec.kind in ("conv", "deconv"):
            radius += (max(spec.kernel) - 1) // 2
    return radius


def tiled_upscale(
    model: Module,
    lr_img: np.ndarray,
    scale: int,
    tile: Tuple[int, int] = (64, 64),
    halo: Optional[int] = None,
) -> np.ndarray:
    """Super-resolve ``lr_img`` tile by tile with halo overlap.

    Parameters
    ----------
    model:
        Any (H, W) → (sH, sW) SISR model usable with
        :func:`repro.train.predict_image`.
    scale:
        The model's upscaling factor.
    tile:
        Core tile size ``(th, tw)`` in LR pixels (output stitched from
        ``th·s × tw·s`` blocks).
    halo:
        Context pixels read around each tile.  Defaults to the model's
        receptive radius, which makes tiling exact.
    """
    lr_img = np.asarray(lr_img, dtype=np.float32)
    h, w = lr_img.shape
    th, tw = tile
    if th <= 0 or tw <= 0:
        raise ValueError("tile dimensions must be positive")
    if halo is None:
        halo = receptive_radius(model)

    out = np.zeros((h * scale, w * scale), dtype=np.float32)
    for y0 in range(0, h, th):
        for x0 in range(0, w, tw):
            y1 = min(y0 + th, h)
            x1 = min(x0 + tw, w)
            # Clamp the halo window to the frame.
            hy0, hx0 = max(y0 - halo, 0), max(x0 - halo, 0)
            hy1, hx1 = min(y1 + halo, h), min(x1 + halo, w)
            patch = lr_img[hy0:hy1, hx0:hx1]
            sr = predict_image(model, patch)
            # Crop the upscaled core back out of the haloed result.
            cy0, cx0 = (y0 - hy0) * scale, (x0 - hx0) * scale
            cy1 = cy0 + (y1 - y0) * scale
            cx1 = cx0 + (x1 - x0) * scale
            out[y0 * scale : y1 * scale, x0 * scale : x1 * scale] = sr[
                cy0:cy1, cx0:cx1
            ]
    return out


def halo_overhead(
    in_h: int, in_w: int, tile: Tuple[int, int], halo: int
) -> float:
    """Fraction of extra input pixels processed due to halo overlap.

    This is the "boundary overhead ... to maintain the functional
    correctness" the paper's §5.6 tiling estimate deliberately ignores;
    pass it as ``halo_factor = 1 + halo_overhead(...)`` to
    :func:`repro.hw.tiling.estimate_tiled` for a corrected runtime.
    """
    th, tw = tile
    total = 0
    for y0 in range(0, in_h, th):
        for x0 in range(0, in_w, tw):
            y1, x1 = min(y0 + th, in_h), min(x0 + tw, in_w)
            hy0, hx0 = max(y0 - halo, 0), max(x0 - halo, 0)
            hy1, hx1 = min(y1 + halo, in_h), min(x1 + halo, in_w)
            total += (hy1 - hy0) * (hx1 - hx0)
    return total / (in_h * in_w) - 1.0


def paper_tile_grid(in_h: int = 1080, in_w: int = 1920,
                    tile: Tuple[int, int] = (300, 400)) -> float:
    """The paper's fractional tile count, e.g. (1920/400)·(1080/300) = 17.28."""
    return (in_h / tile[0]) * (in_w / tile[1])


def self_ensemble(
    model: Module,
    lr_img: np.ndarray,
    scale: int,
    transforms: int = 8,
) -> np.ndarray:
    """Geometric self-ensemble inference (Lim et al., EDSR — "x8 ensemble").

    Super-resolve all dihedral transforms of the input, invert each
    transform on the output, and average.  The SISR degradation is
    equivariant to the dihedral group, so every view is a valid prediction;
    averaging cancels orientation-dependent errors and typically buys
    ~0.1 dB at 8x the inference cost — an accuracy/compute trade in the
    opposite direction from the paper's efficiency focus, provided for
    quality-first deployments.

    Parameters
    ----------
    transforms:
        How many of the 8 dihedral views to average (1 = plain inference,
        4 = rotations only, 8 = full ensemble).
    """
    if not 1 <= transforms <= 8:
        raise ValueError("transforms must be in [1, 8]")
    lr_img = np.asarray(lr_img, dtype=np.float32)
    accum = np.zeros((lr_img.shape[0] * scale, lr_img.shape[1] * scale),
                     dtype=np.float64)
    count = 0
    for flip in (False, True):
        for k in range(4):
            if count >= transforms:
                break
            view = np.rot90(lr_img, k)
            if flip:
                view = np.fliplr(view)
            sr = predict_image(model, np.ascontiguousarray(view))
            if flip:
                sr = np.fliplr(sr)
            accum += np.rot90(sr, -k)
            count += 1
    return (accum / count).astype(np.float32)
