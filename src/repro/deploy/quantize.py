"""Post-training int8 quantization of collapsed SESR networks.

The paper's target hardware (Ethos-class mobile NPUs) executes int8
convolutions — the performance model in :mod:`repro.hw` already assumes
1-byte activations.  This module closes the loop on the *quality* side:
it quantizes a collapsed network post-training (per-output-channel
symmetric weights, per-tensor affine activations — the standard NPU
recipe) and simulates quantized inference so the PSNR cost of int8
deployment can be measured.

Everything is "fake-quant" simulation: tensors are rounded to the integer
grid and immediately dequantized, so the network runs in float while
producing exactly the values an integer pipeline with float rescales
would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..core.sesr import CollapsedSESR, _upsample_steps
from ..nn import Conv2d, Module, PReLU, ReLU, Tensor, conv2d, depth_to_space, no_grad


@dataclass(frozen=True)
class QuantParams:
    """Affine quantization parameters ``q = clip(round(x/scale) + zp)``."""

    scale: np.ndarray  # scalar or per-channel vector
    zero_point: np.ndarray
    bits: int = 8
    symmetric: bool = False

    @property
    def qmin(self) -> int:
        return -(2 ** (self.bits - 1))

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1

    def quantize(self, x: np.ndarray) -> np.ndarray:
        q = np.round(x / self.scale) + self.zero_point
        return np.clip(q, self.qmin, self.qmax)

    def dequantize(self, q: np.ndarray) -> np.ndarray:
        return ((q - self.zero_point) * self.scale).astype(np.float32)

    def fake_quant(self, x: np.ndarray) -> np.ndarray:
        """Round-trip through the integer grid."""
        return self.dequantize(self.quantize(x))


def calibrate_tensor(
    x: np.ndarray, bits: int = 8, symmetric: bool = False
) -> QuantParams:
    """Min/max calibration of a single tensor (per-tensor granularity)."""
    x = np.asarray(x, dtype=np.float64)
    qmax = 2 ** (bits - 1) - 1
    if symmetric:
        bound = max(float(np.abs(x).max()), 1e-12)
        scale = bound / qmax
        zp = 0.0
    else:
        lo, hi = float(x.min()), float(x.max())
        lo, hi = min(lo, 0.0), max(hi, 0.0)  # representable zero
        span = max(hi - lo, 1e-12)
        scale = span / (2**bits - 1)
        zp = np.round(-(2 ** (bits - 1)) - lo / scale)
    return QuantParams(
        scale=np.float64(scale), zero_point=np.float64(zp),
        bits=bits, symmetric=symmetric,
    )


def calibrate_weight_per_channel(w: np.ndarray, bits: int = 8) -> QuantParams:
    """Symmetric per-output-channel weight calibration (HWIO weights)."""
    bound = np.maximum(np.abs(w).max(axis=(0, 1, 2)), 1e-12)  # (C_out,)
    qmax = 2 ** (bits - 1) - 1
    return QuantParams(
        scale=(bound / qmax).astype(np.float64),
        zero_point=np.zeros_like(bound, dtype=np.float64),
        bits=bits, symmetric=True,
    )


class ActivationObserver:
    """Tracks the running range of a named activation during calibration.

    ``percentile < 100`` clips the observed range to the central
    percentile band per calibration batch — the standard PTQ remedy for
    range-inflating outliers (a handful of extreme activations otherwise
    waste most of the int8 grid).
    """

    def __init__(self, percentile: float = 100.0) -> None:
        if not 50.0 < percentile <= 100.0:
            raise ValueError("percentile must be in (50, 100]")
        self.percentile = percentile
        self.lo = np.inf
        self.hi = -np.inf

    def update(self, x: np.ndarray) -> None:
        if self.percentile >= 100.0:
            lo, hi = float(x.min()), float(x.max())
        else:
            tail = 100.0 - self.percentile
            lo = float(np.percentile(x, tail))
            hi = float(np.percentile(x, self.percentile))
        self.lo = min(self.lo, lo)
        self.hi = max(self.hi, hi)

    def params(self, bits: int = 8) -> QuantParams:
        if not np.isfinite(self.lo):
            raise RuntimeError("observer saw no data; run calibration first")
        span_lo, span_hi = min(self.lo, 0.0), max(self.hi, 0.0)
        span = max(span_hi - span_lo, 1e-12)
        scale = span / (2**bits - 1)
        zp = np.round(-(2 ** (bits - 1)) - span_lo / scale)
        return QuantParams(
            scale=np.float64(scale), zero_point=np.float64(zp), bits=bits
        )


class QuantizedConv2d(Module):
    """Conv layer with fake-quantized weights and output activations."""

    def __init__(
        self,
        conv: Conv2d,
        weight_params: QuantParams,
        act_params: Optional[QuantParams],
    ) -> None:
        super().__init__()
        self.kernel_size = conv.kernel_size
        self.in_channels = conv.in_channels
        self.out_channels = conv.out_channels
        self.padding = conv.padding
        self.weight_params = weight_params
        self.act_params = act_params
        self.weight_q = weight_params.quantize(conv.weight.data)  # int grid
        # Bias stays higher precision (int32 accumulators on real NPUs).
        self.bias = None if conv.bias is None else conv.bias.data.copy()

    def forward(self, x: Tensor) -> Tensor:
        w = Tensor(self.weight_params.dequantize(self.weight_q))
        b = None if self.bias is None else Tensor(self.bias)
        out = conv2d(x, w, b, padding=self.padding)
        if self.act_params is not None:
            out = Tensor(self.act_params.fake_quant(out.data))
        return out

    def weight_bytes(self) -> int:
        return self.weight_q.size  # one byte per int8 weight


class QuantizedSESR(Module):
    """Int8-simulated collapsed SESR (weights + inter-layer activations)."""

    def __init__(
        self,
        model: CollapsedSESR,
        weight_bits: int = 8,
        act_bits: int = 8,
        observers: Optional[Dict[str, ActivationObserver]] = None,
    ) -> None:
        super().__init__()
        self.scale = model.scale
        self.input_residual = model.input_residual
        self.feature_residual = model.feature_residual
        self._float_model = model

        def act_params(name: str) -> Optional[QuantParams]:
            if observers is None:
                return None
            return observers[name].params(act_bits)

        self.first = QuantizedConv2d(
            model.first,
            calibrate_weight_per_channel(model.first.weight.data, weight_bits),
            act_params("first"),
        )
        self.act_first = _clone_act(model.act_first)
        self.convs: List[QuantizedConv2d] = []
        self.acts: List[Module] = []
        for i, conv in enumerate(model.convs):
            q = QuantizedConv2d(
                conv,
                calibrate_weight_per_channel(conv.weight.data, weight_bits),
                act_params(f"conv{i}"),
            )
            a = _clone_act(model.acts[i])
            setattr(self, f"conv{i}", q)
            setattr(self, f"act{i}", a)
            self.convs.append(q)
            self.acts.append(a)
        self.last = QuantizedConv2d(
            model.last,
            calibrate_weight_per_channel(model.last.weight.data, weight_bits),
            act_params("last"),
        )
        self.eval()

    def forward(self, x: Tensor) -> Tensor:
        feat = self.act_first(self.first(x))
        h = feat
        for conv, act in zip(self.convs, self.acts):
            h = act(conv(h))
        if self.feature_residual:
            h = h + feat
        out = self.last(h)
        if self.input_residual:
            out = out + x
        for r in _upsample_steps(self.scale):
            out = depth_to_space(out, r)
        return out

    def weight_bytes(self) -> int:
        """Int8 model size (weights only)."""
        return sum(
            q.weight_bytes() for q in [self.first, *self.convs, self.last]
        )

    def float_weight_bytes(self) -> int:
        """Float32 model size of the same collapsed network."""
        return 4 * sum(
            c.weight.size
            for c in [self._float_model.first, *self._float_model.convs,
                      self._float_model.last]
        )


def _clone_act(act: Module) -> Module:
    if isinstance(act, PReLU):
        new = PReLU(act.alpha.size)
        new.alpha.data[...] = act.alpha.data
        return new
    return ReLU()


def calibrate_activations(
    model: CollapsedSESR,
    calib_images: Iterable[np.ndarray],
    percentile: float = 100.0,
) -> Dict[str, ActivationObserver]:
    """Run calibration images and record per-layer activation ranges.

    Replays the collapsed forward pass, observing every convolution output
    (post-activation ranges are what the next layer consumes on an NPU).
    """
    observers: Dict[str, ActivationObserver] = {
        "first": ActivationObserver(percentile)
    }
    for i in range(len(model.convs)):
        observers[f"conv{i}"] = ActivationObserver(percentile)
    observers["last"] = ActivationObserver(percentile)

    with no_grad():
        for img in calib_images:
            x = Tensor(np.asarray(img, np.float32)[None, :, :, None])
            feat = model.act_first(model.first(x))
            observers["first"].update(feat.data)
            h = feat
            for i, (conv, act) in enumerate(zip(model.convs, model.acts)):
                h = act(conv(h))
                observers[f"conv{i}"].update(h.data)
            if model.feature_residual:
                h = h + feat
            out = model.last(h)
            if model.input_residual:
                out = out + x
            observers["last"].update(out.data)
    return observers


def quantize_sesr(
    model: CollapsedSESR,
    calib_images: Optional[Sequence[np.ndarray]] = None,
    weight_bits: int = 8,
    act_bits: int = 8,
    percentile: float = 100.0,
) -> QuantizedSESR:
    """Post-training quantization entry point.

    Parameters
    ----------
    model:
        A collapsed SESR network (export of a trained :class:`SESR`).
    calib_images:
        Y-channel images used to calibrate activation ranges; when omitted,
        only weights are quantized (activations stay float — useful for
        isolating weight-quantization error).
    percentile:
        Activation-range clipping percentile (100 = pure min/max, the
        default — these shallow nets have no range-inflating outliers;
        lower values trim heavy tails when they exist).
    """
    observers = None
    if calib_images is not None:
        observers = calibrate_activations(model, calib_images, percentile)
    return QuantizedSESR(model, weight_bits, act_bits, observers)
