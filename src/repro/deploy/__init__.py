"""``repro.deploy`` — the deployment path: int8 quantization + tiled inference.

These are the functional counterparts of the paper's hardware story: the
NPU in §5.6 runs int8 (see :mod:`repro.hw`'s 1-byte activations) and
processes frames in tiles; this package quantizes collapsed networks and
executes exact tiled inference so both effects can be measured on images,
not just in the performance model.
"""

from .quantize import (
    ActivationObserver,
    QuantParams,
    QuantizedConv2d,
    QuantizedSESR,
    calibrate_activations,
    calibrate_tensor,
    calibrate_weight_per_channel,
    quantize_sesr,
)
from .tiled import (
    halo_overhead,
    self_ensemble,
    paper_tile_grid,
    receptive_radius,
    tiled_upscale,
)

__all__ = [
    "ActivationObserver",
    "QuantParams",
    "QuantizedConv2d",
    "QuantizedSESR",
    "calibrate_activations",
    "calibrate_tensor",
    "calibrate_weight_per_channel",
    "quantize_sesr",
    "halo_overhead",
    "self_ensemble",
    "paper_tile_grid",
    "receptive_radius",
    "tiled_upscale",
]
