"""Deterministic GEMM/conv kernels and their per-shape autotuner.

The paper's deployment story (§3.3) is that collapsed SESR inference is
a handful of big GEMMs; this package decides *which* GEMM each conv
shape runs as.  :mod:`repro.kernels.blocked` provides the
fixed-reduction-order f32 matmul whose m-invariance lets the serving
engine coalesce a cross-request batch into ONE stacked GEMM per conv
while staying bit-identical to single-sample serving;
:mod:`repro.kernels.tune` times {blas, blocked, direct} per conv shape
and persists a per-host cache that ``EngineConfig.gemm_backend="auto"``
consults.  See ``docs/kernels.md``.
"""

from .blocked import KC, MC, blocked_matmul, blocked_matmul_t
from .tune import (
    GEMM_KERNELS,
    cache_path,
    load_cache,
    save_cache,
    select_kernel,
    shape_key,
    time_conv_kernels,
    tune_model,
)

__all__ = [
    "KC",
    "MC",
    "blocked_matmul",
    "blocked_matmul_t",
    "GEMM_KERNELS",
    "cache_path",
    "load_cache",
    "save_cache",
    "select_kernel",
    "shape_key",
    "time_conv_kernels",
    "tune_model",
]
