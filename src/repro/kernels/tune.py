"""Per-shape kernel autotuner and its per-host tuning cache.

A compiled SESR plan is a handful of conv shapes — ``(kh, kw, cin,
cout, groups)`` tuples — each of which can run three ways inside
:class:`~repro.compile.executor.CompiledModel`:

``blas``
    im2col + vendor sgemm, per-sample in exact-batch mode (the default;
    fastest arithmetic, but a coalesced batch costs one GEMM *per
    sample*).
``blocked``
    im2col + :func:`~repro.kernels.blocked_matmul_t` — slower arithmetic,
    but m-invariant, so a coalesced batch is ONE stacked GEMM and still
    bit-identical per sample.
``direct``
    no im2col at all: one small ``(rows, cin) @ (cin, cout)`` GEMM per
    kernel tap, accumulated in fixed tap order (wins when the patch
    matrix would dwarf the input, e.g. large-k shapes at small channel
    counts).

Which one wins is a property of the *host* (BLAS build, cache sizes,
core count) and the *shape* — the same reason ``repro.hw`` calibrates
its NPU constants against published anchor rows instead of hard-coding
them.  :func:`tune_model` measures all three per shape;
:func:`save_cache`/:func:`load_cache` persist the measurements as JSON
under ``~/.cache/repro/`` keyed by shape (one row per anchor shape,
mirroring ``repro.hw.calibrate.anchor_rows``); ``repro tune`` is the
CLI front door, and ``EngineConfig.gemm_backend="auto"`` consults the
cache at serve time (missing/corrupt cache degrades to ``blas``).
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .blocked import blocked_matmul_t

__all__ = [
    "GEMM_KERNELS",
    "cache_path",
    "load_cache",
    "save_cache",
    "select_kernel",
    "shape_key",
    "time_conv_kernels",
    "tune_model",
]

#: Kernel implementations the executor can run one conv step on.
GEMM_KERNELS = ("blas", "blocked", "direct")

#: Tuning-cache schema version; bump on incompatible format changes.
CACHE_VERSION = 1


def shape_key(kh: int, kw: int, cin: int, cout: int,
              groups: int = 1) -> str:
    """Canonical cache key for one conv shape (host-independent)."""
    return f"{kh}x{kw}:{cin}->{cout}:g{groups}"


# --------------------------------------------------------------------- #
# cache persistence
# --------------------------------------------------------------------- #
def cache_path() -> str:
    """Where the per-host tuning cache lives.

    ``REPRO_TUNING_CACHE`` overrides (tests, CI artifact staging);
    otherwise ``~/.cache/repro/kernel_tuning.json``.
    """
    override = os.environ.get("REPRO_TUNING_CACHE", "")
    if override:
        return override
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "kernel_tuning.json"
    )


def load_cache(path: Optional[str] = None) -> Dict[str, Dict[str, Any]]:
    """Shape-key → measurement rows, or ``{}``.

    Tolerant by design: a missing file, unreadable bytes, malformed
    JSON, a wrong schema version, or rows of the wrong shape all yield
    ``{}`` — a corrupt cache must never break serving, it just means
    ``auto`` falls back to ``blas`` until ``repro tune`` rewrites it.
    """
    path = path or cache_path()
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict) or data.get("version") != CACHE_VERSION:
        return {}
    shapes = data.get("shapes")
    if not isinstance(shapes, dict):
        return {}
    out: Dict[str, Dict[str, Any]] = {}
    for key, row in shapes.items():
        if (isinstance(row, dict)
                and row.get("kernel") in GEMM_KERNELS):
            out[key] = row
    return out


def save_cache(shapes: Dict[str, Dict[str, Any]],
               path: Optional[str] = None) -> str:
    """Atomically write the cache (merged over any loadable prior rows).

    Returns the path written.  Atomic (write-temp + rename) so a
    concurrent reader never sees a torn file — the same reason the
    executor tolerates corruption on load.
    """
    path = path or cache_path()
    merged = load_cache(path)
    merged.update(shapes)
    payload = {
        "version": CACHE_VERSION,
        "host": {
            "node": platform.node(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "shapes": merged,
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=os.path.dirname(path) or ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def select_kernel(backend: str, key: str,
                  tuning: Optional[Dict[str, Dict[str, Any]]] = None
                  ) -> Tuple[str, str]:
    """Resolve one conv shape to ``(kernel, source)``.

    ``blas``/``blocked`` backends force their kernel everywhere
    (``source="forced"``); ``auto`` consults the tuning rows
    (``source="tuned"``) and degrades to ``blas`` for shapes the cache
    does not cover (``source="default"``).
    """
    if backend in ("blas", "blocked"):
        return backend, "forced"
    if backend != "auto":
        raise ValueError(
            f"gemm backend must be one of ('auto', 'blas', 'blocked'), "
            f"got {backend!r}"
        )
    row = (tuning or {}).get(key)
    if row is not None and row.get("kernel") in GEMM_KERNELS:
        return row["kernel"], "tuned"
    return "blas", "default"


# --------------------------------------------------------------------- #
# measurement
# --------------------------------------------------------------------- #
def _time(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock in ms (min rejects scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def time_conv_kernels(kh: int, kw: int, cin: int, cout: int,
                      groups: int = 1, size: Tuple[int, int] = (96, 96),
                      repeats: int = 3, seed: int = 0
                      ) -> Dict[str, float]:
    """Per-kernel ms for one conv shape on synthetic data (n=1).

    Replays each executor inner loop faithfully: blas and blocked pay
    the im2col copy plus their GEMM; direct pays the per-tap slice
    copies plus ``kh*kw`` small GEMMs.  Weights/activations are random
    — timing is shape-dependent, not value-dependent.
    """
    from ..nn.im2col import extract_patches

    h, w = size
    gc_in, gc_out = cin // groups, cout // groups
    rng = np.random.default_rng(seed)
    # Pre-padded input for one group (groups time identically per group;
    # scale the per-group measurement).
    xp = rng.random(
        (1, h + kh - 1, w + kw - 1, gc_in)
    ).astype(np.float32)
    wmat = rng.random((kh * kw * gc_in, gc_out)).astype(np.float32)
    wmat_t = np.ascontiguousarray(wmat.T)
    wtaps = [
        np.ascontiguousarray(
            wmat.reshape(kh, kw, gc_in, gc_out)[i, j]
        )
        for i in range(kh) for j in range(kw)
    ]
    m, k = h * w, kh * kw * gc_in
    colsbuf = np.empty((m, k), dtype=np.float32)
    out = np.empty((m, gc_out), dtype=np.float32)
    tap_tmp = np.empty((m, gc_out), dtype=np.float32)

    def im2col() -> np.ndarray:
        patches = extract_patches(xp, (kh, kw), (1, 1))
        np.copyto(colsbuf.reshape(1, h, w, kh, kw, gc_in), patches)
        return colsbuf

    def run_blas() -> None:
        np.matmul(im2col(), wmat, out=out)

    def run_blocked() -> None:
        blocked_matmul_t(im2col(), wmat_t, out=out)

    def run_direct() -> None:
        first = True
        for idx in range(kh * kw):
            i, j = divmod(idx, kw)
            xs = xp[0, i:i + h, j:j + w, :].reshape(m, gc_in)
            if first:
                np.matmul(xs, wtaps[idx], out=out)
                first = False
            else:
                np.matmul(xs, wtaps[idx], out=tap_tmp)
                np.add(out, tap_tmp, out=out)

    return {
        "blas": groups * _time(run_blas, repeats),
        "blocked": groups * _time(run_blocked, repeats),
        "direct": groups * _time(run_direct, repeats),
    }


def tune_model(model, size: Tuple[int, int] = (96, 96),
               repeats: int = 3, seed: int = 0
               ) -> Dict[str, Dict[str, Any]]:
    """Measure every distinct conv shape of a compiled model.

    ``model`` is anything exposing ``conv_shapes()`` (a
    :class:`~repro.compile.executor.CompiledModel`).  Returns cache rows
    keyed by :func:`shape_key` — feed them to :func:`save_cache` and the
    ``auto`` backend picks the measured winner per shape.
    """
    rows: Dict[str, Dict[str, Any]] = {}
    for kh, kw, cin, cout, groups in model.conv_shapes():
        key = shape_key(kh, kw, cin, cout, groups)
        if key in rows:
            continue
        ms = time_conv_kernels(
            kh, kw, cin, cout, groups=groups, size=size,
            repeats=repeats, seed=seed,
        )
        rows[key] = {
            "kernel": min(ms, key=lambda name: ms[name]),
            "ms": {name: round(v, 4) for name, v in ms.items()},
            "size": list(size),
        }
    return rows
