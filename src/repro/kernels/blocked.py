"""Cache-blocked f32 matmul with a reduction order that depends on k only.

Why this kernel exists
----------------------
OpenBLAS (and every high-performance sgemm) picks its micro-kernel and
panel blocking from *all three* GEMM dimensions.  Change the row count
``m`` and the k-summation of each output element may be re-associated
differently — same math, different float rounding.  That is the one
obstacle between the serving engine's cross-request batching and a true
single stacked GEMM: stacking N tiles multiplies ``m`` by N, so
``np.matmul`` on the stack is *not* bit-identical per sample to the
single-tile call (pinned by ``tests/compile/test_exact_batch.py``).

:func:`blocked_matmul` removes the obstacle by fixing the reduction
order as a function of **k alone**:

* Each output element is computed as an independent sequential dot
  product over k (``np.einsum('mk,nk->mn', ...)`` — einsum's
  sum-of-products loop accumulates in ascending k order and never
  re-associates across rows or columns, unlike a blocked sgemm).
* When k exceeds :data:`KC`, the dot is evaluated in fixed ``KC``-sized
  chunks, ascending, and the partial sums are added in that same fixed
  order.  Chunk boundaries are a function of k only.
* Tiling over m (:data:`MC` rows at a time, for cache residency) is free:
  it changes *which* elements a call computes, never *how* one element's
  dot is ordered.

Hence ``blocked_matmul(A_stacked, B)[i*r:(i+1)*r] ==
blocked_matmul(A_i, B)`` bitwise, for any stacking — the m-invariance
property the exact-batch executor builds on
(``tests/kernels/test_blocked.py`` fuzzes it with hypothesis).

The B operand is consumed transposed (``bt`` of shape ``(n, k)``,
C-contiguous) so both einsum operands walk k along their contiguous
axis; :func:`blocked_matmul` transposes once per call, and the compiled
executor pre-transposes each conv weight once at kernel-selection time
and calls :func:`blocked_matmul_t` directly.

This trades peak FLOPs for determinism — typically 2-4x slower than a
vendor sgemm on large shapes — which is exactly the trade the per-shape
autotuner (:mod:`repro.kernels.tune`) arbitrates: it only selects the
blocked kernel where the single-stacked-GEMM dispatch win pays for the
arithmetic, and ``EngineConfig.gemm_backend`` lets callers force either
side.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["MC", "KC", "blocked_matmul", "blocked_matmul_t"]

#: Row-tile size: one A tile (MC x KC f32) plus the B panel stays L2-resident.
MC = 192

#: Fixed k-chunk size.  Part of the kernel's *semantics*, not just a tuning
#: knob: the reduction order is "ascending KC-chunks, sequential within a
#: chunk", so changing KC changes output bits (deterministically).
KC = 512


def _check_operands(a: np.ndarray, bt: np.ndarray,
                    out: Optional[np.ndarray], n_rows_b: int) -> None:
    if a.ndim != 2 or bt.ndim != 2:
        raise ValueError(
            f"expected 2-D operands, got {a.shape} and {bt.shape}"
        )
    if a.dtype != np.float32 or bt.dtype != np.float32:
        raise TypeError(
            f"blocked matmul is float32-only, got {a.dtype} and {bt.dtype}"
        )
    if out is not None:
        if out.shape != (a.shape[0], n_rows_b):
            raise ValueError(
                f"out has shape {out.shape}, expected "
                f"{(a.shape[0], n_rows_b)}"
            )
        if out.dtype != np.float32:
            raise TypeError(f"out must be float32, got {out.dtype}")


def blocked_matmul_t(a: np.ndarray, bt: np.ndarray,
                     out: Optional[np.ndarray] = None) -> np.ndarray:
    """``a @ bt.T`` with the fixed k-only reduction order.

    ``a`` is ``(m, k)``, ``bt`` is the **transposed** right operand
    ``(n, k)`` — pass it C-contiguous (the executor pre-transposes conv
    weights once) so the contraction axis is contiguous for both
    operands.  ``out`` (``(m, n)`` float32) is written in place when
    given.  The result for any row slice of ``a`` is bit-identical to a
    separate call on that slice.
    """
    _check_operands(a, bt, out, bt.shape[0])
    m, k = a.shape
    n, kb = bt.shape
    if kb != k:
        raise ValueError(
            f"inner dimensions differ: a is {a.shape}, bt is {bt.shape}"
        )
    if out is None:
        out = np.empty((m, n), dtype=np.float32)
    for m0 in range(0, m, MC):
        am = a[m0:m0 + MC]
        om = out[m0:m0 + MC]
        # First chunk writes, later chunks accumulate in ascending k
        # order — the per-element sum is ((chunk0 + chunk1) + ...), a
        # function of k and KC only.
        np.einsum("mk,nk->mn", am[:, :KC], bt[:, :KC], out=om)
        for k0 in range(KC, k, KC):
            om += np.einsum(
                "mk,nk->mn", am[:, k0:k0 + KC], bt[:, k0:k0 + KC]
            )
    return out


def blocked_matmul(a: np.ndarray, b: np.ndarray,
                   out: Optional[np.ndarray] = None) -> np.ndarray:
    """``a @ b`` (f32, 2-D) with the fixed k-only reduction order.

    Convenience wrapper over :func:`blocked_matmul_t`: transposes ``b``
    to contiguous ``(n, k)`` once per call.  Callers that reuse one
    right operand (the executor's conv weights) should pre-transpose and
    call :func:`blocked_matmul_t` directly.
    """
    if b.ndim != 2:
        raise ValueError(f"expected a 2-D right operand, got {b.shape}")
    return blocked_matmul_t(a, np.ascontiguousarray(b.T), out=out)
