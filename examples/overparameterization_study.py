"""Overparameterization study: why SESR's block beats ExpandNets and RepVGG.

Reproduces the paper's §4 theory and §5.4 experiment at demo scale:

1. gradient-descent trajectories of the four parameterizations on a linear
   regression problem — showing RepVGG coincides exactly with VGG at a
   doubled learning rate (Eq. 5) while SESR/ExpandNet are adaptive;
2. the vanishing-gradient depth sweep that motivates collapsible short
   residuals;
3. a small head-to-head SISR training run of the four block types under
   an identical protocol.

Run:  python examples/overparameterization_study.py
"""

import numpy as np

from repro.core import build_sesr_variant
from repro.datasets import benchmark_suites
from repro.theory import (
    RepVGGLinear,
    VGGLinear,
    chain_gradient_magnitude,
    compare_schemes,
    make_regression,
    train,
)
from repro.train import ExperimentConfig, run_experiment
from repro.utils import format_table


def theory_part() -> None:
    print("=== 1. Gradient-descent trajectories (Eq. 1 regression) ===")
    trajectories = compare_schemes(d=6, k=6, n=256, lr=0.02, steps=200, seed=0)
    rows = [
        [name, f"{t.losses[0]:.4f}", f"{t.losses[50]:.5f}", f"{t.final_loss:.6f}"]
        for name, t in trajectories.items()
    ]
    print(format_table(["scheme", "loss t=0", "t=50", "t=200"], rows))

    rng = np.random.default_rng(1)
    x, y, _ = make_regression(6, 6, 256, rng)
    beta0 = 0.1 * rng.standard_normal((6, 6))
    t_rep = train(RepVGGLinear(beta0), x, y, lr=1e-3, steps=100)
    t_vgg = train(VGGLinear(beta0), x, y, lr=2e-3, steps=100)  # doubled lr
    gap = max(np.abs(a - b).max() for a, b in zip(t_rep.betas, t_vgg.betas))
    print(f"\nEq. 5 check — max |beta_RepVGG(eta) - beta_VGG(2*eta)| over "
          f"100 steps: {gap:.2e}")
    print("(RepVGG's update is *exactly* VGG with doubled lr: no adaptivity.)")

    print("\n=== 2. Vanishing gradients vs depth ===")
    rows = []
    for depth in (6, 13, 26, 52):
        no_res = np.mean([chain_gradient_magnitude(depth, False,
                                                   np.random.default_rng(i))
                          for i in range(300)])
        with_res = np.mean([chain_gradient_magnitude(depth, True,
                                                     np.random.default_rng(i))
                            for i in range(300)])
        rows.append([depth, f"{no_res:.2e}", f"{with_res:.2e}"])
    print(format_table(
        ["depth", "|grad| no residuals", "|grad| with residuals"], rows
    ))
    print("(ExpandNet doubles effective depth 13 -> 26; without short "
          "residuals the gradient signal collapses.)")


def sisr_part() -> None:
    print("\n=== 3. Head-to-head SISR training (SESR-M11 skeleton) ===")
    config = ExperimentConfig(
        scale=2, epochs=8, train_images=8, train_size=(96, 96),
        patch_size=16, crops_per_image=12, batch_size=8, lr=1e-3,
    )
    suites = benchmark_suites(2, names=("set5", "div2k-val"),
                              size=(96, 96), n_images=4)
    rows = []
    for variant in ("sesr", "expandnet", "repvgg", "vgg"):
        model = build_sesr_variant(variant, scale=2, f=16, m=11,
                                   expansion=256, seed=0)
        result = run_experiment(model, config, suites)
        rows.append([
            variant,
            f"{result.psnr('set5'):.2f}dB",
            f"{result.psnr('div2k-val'):.2f}dB",
            f"{result.train.final_loss:.4f}",
        ])
        print(f"  trained {variant}")
    print(format_table(
        ["block type", "PSNR set5", "PSNR div2k-val", "final train loss"],
        rows,
    ))
    print("(Paper, full scale: SESR 35.45 > RepVGG 35.35 ~ VGG 35.34 "
          ">> ExpandNet 33.65 on DIV2K val.)")


def main() -> None:
    theory_part()
    sisr_part()


if __name__ == "__main__":
    main()
