"""Hardware-aware NAS over SESR backbones (paper §3.4, Fig. 9).

Searches for collapsible-linear-block kernels — including even-sized (2×2)
and asymmetric (2×1, 3×2, ...) kernels — under a latency constraint from
the calibrated NPU model, then compares the discovered architecture against
the manually-designed SESR-M5 after identical training.

Run:  python examples/nas_search.py
"""

from repro.datasets import PatchSampler, SyntheticDataset, benchmark_suites
from repro.hw import ETHOS_N78_4TOPS
from repro.nas import (
    DNASConfig,
    SESRSupernet,
    genotype_latency_ms,
    realize,
    search,
    sesr_m_genotype,
)
from repro.train import ExperimentConfig, evaluate_model, run_experiment
from repro.utils import format_table

LATENCY_RES = (200, 200)  # the paper's 200x200 -> 400x400 benchmark task


def main() -> None:
    # ------------------------------------------------------------------ #
    # search
    # ------------------------------------------------------------------ #
    train_ds = SyntheticDataset("div2k", n_images=8, size=(96, 96),
                                scale=2, seed=21)
    sampler = PatchSampler(train_ds, scale=2, patch_size=12,
                           crops_per_image=8, batch_size=6, seed=22)
    supernet = SESRSupernet(scale=2, f=16, slots=5, expansion=32, seed=3)
    config = DNASConfig(steps=80, latency_weight=0.01,
                        latency_res=LATENCY_RES)

    print("searching (DNAS, Gumbel-softmax gates, NPU latency penalty)...")
    result = search(supernet, sampler, config, npu=ETHOS_N78_4TOPS)
    print(f"  task loss: {result.loss_history[0]:.4f} -> "
          f"{result.loss_history[-1]:.4f}")
    print(f"  expected latency: {result.latency_history[0]:.3f} -> "
          f"{result.latency_history[-1]:.3f} ms")
    print(f"  derived architecture: {result.genotype.describe()}")

    # ------------------------------------------------------------------ #
    # compare against the manual SESR-M5
    # ------------------------------------------------------------------ #
    baseline = sesr_m_genotype(5, f=16, scale=2)
    train_cfg = ExperimentConfig(
        scale=2, epochs=10, train_images=10, train_size=(96, 96),
        patch_size=16, crops_per_image=16, batch_size=8, lr=1e-3,
    )
    suites = benchmark_suites(2, names=("set5", "div2k-val"),
                              size=(96, 96), n_images=4)

    rows = []
    for label, genotype in [("NAS-guided", result.genotype),
                            ("manual SESR-M5", baseline)]:
        model = realize(genotype, expansion=64, seed=0)
        run_experiment(model, train_cfg)
        metrics = {n: evaluate_model(model, s) for n, s in suites.items()}
        latency = genotype_latency_ms(genotype, ETHOS_N78_4TOPS, *LATENCY_RES)
        rows.append([
            label,
            genotype.describe(),
            f"{latency:.3f}ms",
            f"{genotype.num_parameters() / 1e3:.2f}K",
            f"{metrics['set5']['psnr']:.2f}dB",
            f"{metrics['div2k-val']['psnr']:.2f}dB",
        ])
        print(f"trained {label}")

    print()
    print(format_table(
        ["model", "architecture", "NPU latency", "params",
         "PSNR set5", "PSNR div2k-val"],
        rows,
        title="NAS-guided vs manually-designed SESR (paper: -15% latency, "
              "same PSNR)",
    ))
    print("\nNote: at this demo's short training budget small architectures "
          "converge fastest,\nso the search leans hard toward skips and "
          "even/asymmetric kernels; the paper's\nfull-scale search keeps "
          "more capacity while still cutting latency 15%.")


if __name__ == "__main__":
    main()
