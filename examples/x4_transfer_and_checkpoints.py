"""×2 → ×4 transfer and checkpointing (paper §5.1 training protocol).

The paper trains ×4 models by reusing the pretrained ×2 trunk: only the
final 5×5 head changes (f→16 channels instead of f→4) and depth-to-space
runs twice.  This example:

1. trains a ×2 SESR-M3 and saves a checkpoint;
2. re-heads it for ×4 with :meth:`SESR.convert_scale` and fine-tunes;
3. compares the transfer model against training ×4 from scratch under the
   same budget;
4. round-trips the collapsed inference network through a checkpoint.

Run:  python examples/x4_transfer_and_checkpoints.py
"""

import os
import tempfile

import numpy as np

from repro.core import SESR
from repro.datasets import SyntheticDataset
from repro.nn import load_state, save_state
from repro.train import (
    ExperimentConfig,
    evaluate_model,
    predict_image,
    run_experiment,
)


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="sesr_")

    # ------------------------------------------------------------------ #
    # 1. pretrain at x2
    # ------------------------------------------------------------------ #
    cfg_x2 = ExperimentConfig(
        scale=2, epochs=10, train_images=10, train_size=(96, 96),
        patch_size=16, crops_per_image=16, batch_size=8, lr=1e-3,
    )
    model_x2 = SESR.from_name("M3", scale=2, seed=0)
    print("pretraining SESR-M3 at x2 ...")
    run_experiment(model_x2, cfg_x2)
    ckpt = os.path.join(workdir, "sesr_m3_x2.npz")
    save_state(model_x2, ckpt)
    print(f"saved checkpoint: {ckpt}")

    # ------------------------------------------------------------------ #
    # 2. re-head for x4 and fine-tune (the paper's protocol)
    # ------------------------------------------------------------------ #
    cfg_x4 = ExperimentConfig(
        scale=4, epochs=5, train_images=10, train_size=(96, 96),
        patch_size=12, crops_per_image=16, batch_size=8, lr=1e-3,
    )
    suite_x4 = SyntheticDataset("set14", n_images=5, size=(96, 96),
                                scale=4, seed=31)

    transfer = model_x2.convert_scale(4)
    print("\nfine-tuning the transferred x4 model ...")
    run_experiment(transfer, cfg_x4)
    transfer_metrics = evaluate_model(transfer, suite_x4)

    # ------------------------------------------------------------------ #
    # 3. x4 from scratch under the same fine-tune budget
    # ------------------------------------------------------------------ #
    scratch = SESR.from_name("M3", scale=4, seed=0)
    print("training x4 from scratch (same budget) ...")
    run_experiment(scratch, cfg_x4)
    scratch_metrics = evaluate_model(scratch, suite_x4)

    print("\nx4 results on held-out suite (PSNR/SSIM):")
    print(f"  transfer from x2 : {transfer_metrics['psnr']:.2f} dB / "
          f"{transfer_metrics['ssim']:.4f}")
    print(f"  from scratch     : {scratch_metrics['psnr']:.2f} dB / "
          f"{scratch_metrics['ssim']:.4f}")

    # ------------------------------------------------------------------ #
    # 4. collapsed-network checkpoint round trip
    # ------------------------------------------------------------------ #
    collapsed = transfer.collapse()
    ckpt_c = os.path.join(workdir, "sesr_m3_x4_collapsed.npz")
    save_state(collapsed, ckpt_c)

    reloaded = SESR.from_name("M3", scale=4, seed=99).collapse()
    load_state(reloaded, ckpt_c)
    lr_img, _ = suite_x4[0]
    diff = np.abs(
        predict_image(collapsed, lr_img) - predict_image(reloaded, lr_img)
    ).max()
    print(f"\ncollapsed checkpoint round trip: max output diff = {diff:.2e}")
    print(f"inference-time parameters: {transfer.collapsed_num_parameters():,} "
          f"(vs {transfer.num_parameters():,} at training time)")


if __name__ == "__main__":
    main()
