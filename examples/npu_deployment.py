"""NPU deployment study: 1080p→4K live-upscaling feasibility (paper §5.6).

The paper's motivating scenario: a smart TV or laptop with a 4-TOP/s
mobile NPU (Arm Ethos-N78 class) upscaling 1080p content to 4K in real
time.  This example uses the calibrated analytical NPU model to answer the
deployment questions an engineer would ask:

* which networks fit a 60/30 FPS budget at 1080p→4K and 1080p→8K?
* where does the time go (compute vs DRAM) per layer?
* how much does input tiling (the §5.6 optimisation) buy?

Run:  python examples/npu_deployment.py
"""

from repro.hw import (
    ETHOS_N78_4TOPS,
    estimate,
    estimate_tiled,
    fsrcnn_graph,
    sesr_hw_graph,
    theoretical_fps,
)
from repro.hw.spec import IDEAL_4TOPS
from repro.utils import format_table


def main() -> None:
    npu = ETHOS_N78_4TOPS
    print(f"NPU model: {npu.name}")
    print(f"  peak      : {npu.peak_macs_per_sec / 1e12:.1f} TMAC/s "
          f"({2 * npu.peak_macs_per_sec / 1e12:.0f} TOP/s)")
    print(f"  DRAM BW   : {npu.dram_bandwidth / 1e9:.1f} GB/s, "
          f"SRAM {npu.sram_bytes / 1e6:.1f} MB, "
          f"compression x{npu.compression_ratio:.2f}")

    # ------------------------------------------------------------------ #
    # 1. Feasibility table: who hits 30/60 FPS?
    # ------------------------------------------------------------------ #
    candidates = {
        "FSRCNN (x2)": fsrcnn_graph(2, 1080, 1920),
        "SESR-M3 (x2)": sesr_hw_graph(16, 3, 2, 1080, 1920),
        "SESR-M5 (x2)": sesr_hw_graph(16, 5, 2, 1080, 1920),
        "SESR-M11 (x2)": sesr_hw_graph(16, 11, 2, 1080, 1920),
        "SESR-XL (x2)": sesr_hw_graph(32, 11, 2, 1080, 1920),
        "SESR-M5 (x4, 8K)": sesr_hw_graph(16, 5, 4, 1080, 1920),
    }
    rows = []
    for name, graph in candidates.items():
        report = estimate(graph, npu)
        tiled = estimate_tiled(graph, npu, 300, 400)
        rows.append([
            name,
            f"{report.total_macs / 1e9:.1f}G",
            f"{theoretical_fps(graph, IDEAL_4TOPS):.1f}",
            f"{report.fps:.1f}",
            f"{tiled.fps:.1f}",
            "60+" if tiled.fps >= 60 else ("30+" if tiled.fps >= 30 else "no"),
        ])
    print()
    print(format_table(
        ["Network", "MACs", "FPS (best case)", "FPS (modelled)",
         "FPS (tiled)", "real-time?"],
        rows,
        title="1080p upscaling on a 4-TOP/s mobile NPU",
    ))

    # ------------------------------------------------------------------ #
    # 2. Per-layer breakdown: why is FSRCNN 6x slower at 2x fewer MACs?
    # ------------------------------------------------------------------ #
    for name in ("FSRCNN (x2)", "SESR-M5 (x2)"):
        report = estimate(candidates[name], npu)
        print(f"\nper-layer breakdown — {name} "
              f"(total {report.runtime_ms:.1f} ms, {report.dram_mb:.0f} MB DRAM)")
        rows = [
            [l.name, l.kind, f"{l.macs / 1e9:.2f}G", f"{l.utilization:.2f}",
             f"{l.compute_sec * 1e3:.2f}", f"{l.memory_sec * 1e3:.2f}", l.bound]
            for l in report.layers if l.time_sec > 0
        ]
        print(format_table(
            ["layer", "kind", "MACs", "util", "compute ms", "mem ms", "bound"],
            rows,
        ))

    # ------------------------------------------------------------------ #
    # 3. Tiling sweep: tile size vs FPS (§5.6).
    # ------------------------------------------------------------------ #
    graph = candidates["SESR-M5 (x2)"]
    print("\ntiling sweep — SESR-M5 (x2), 1080p -> 4K")
    rows = []
    for th, tw in [(1080, 1920), (540, 960), (300, 400), (150, 200)]:
        tiled = estimate_tiled(graph, npu, th, tw)
        rows.append([
            f"{tw}x{th}", f"{tiled.n_tiles:.2f}",
            f"{tiled.tile.dram_mb:.2f}MB",
            f"{tiled.total_runtime_ms:.2f}ms", f"{tiled.fps:.1f}",
        ])
    print(format_table(
        ["tile", "#tiles", "DRAM/tile", "frame time", "FPS"], rows
    ))


if __name__ == "__main__":
    main()
