"""Quickstart: train a small SESR ×2 model, collapse it, super-resolve an image.

This walks the full SESR lifecycle in under a minute on CPU:

1. build a training-time SESR network out of Collapsible Linear Blocks;
2. train it with ADAM/ℓ₁ on the synthetic corpus (the paper's §5.1
   protocol, scaled down);
3. analytically collapse it (Algorithms 1 & 2) into the narrow VGG-like
   inference network of Fig. 2(d);
4. verify the collapse is exact and that the collapsed model beats bicubic
   upscaling on a held-out image.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import SESR
from repro.datasets import SyntheticDataset, bicubic_upscale
from repro.metrics import psnr
from repro.train import ExperimentConfig, predict_image, run_experiment


def main() -> None:
    # A compact SESR: f=16 features, m=5 blocks (the paper's SESR-M5).
    model = SESR.from_name("M5", scale=2, seed=0)
    print(f"training-time parameters : {model.num_parameters():,}")
    print(f"inference-time parameters: {model.collapsed_num_parameters():,} "
          "(paper formula: 25f + 9mf^2 + 100f)")

    config = ExperimentConfig(
        scale=2, epochs=25, train_images=12, train_size=(96, 96),
        patch_size=16, crops_per_image=16, batch_size=8, lr=1e-3,
    )
    print("\ntraining (ADAM, l1 loss, collapsed-space forward)...")
    result = run_experiment(model, config)
    print(f"steps: {result.train.steps}, "
          f"loss: {result.train.loss_history[0]:.4f} -> "
          f"{result.train.final_loss:.4f}")

    # Collapse to the inference network — every linear block and short
    # residual folds into a single narrow convolution.
    inference_net = model.collapse()

    # Held-out evaluation suite (unseen seeds).
    test_set = SyntheticDataset("set5", n_images=5, size=(96, 96),
                                scale=2, seed=777)
    model_db, bicubic_db = [], []
    for lr_img, hr_img in test_set:
        sr = predict_image(inference_net, lr_img)
        bicubic = np.clip(bicubic_upscale(lr_img, 2), 0, 1)
        model_db.append(psnr(sr, hr_img, border=2))
        bicubic_db.append(psnr(bicubic, hr_img, border=2))

    print("\nheld-out suite (5 images, 96x96, x2):")
    print(f"  bicubic PSNR : {np.mean(bicubic_db):.2f} dB")
    print(f"  SESR-M5 PSNR : {np.mean(model_db):.2f} dB")

    # The collapse is analytic, not approximate:
    lr_img, _ = test_set[0]
    diff = np.abs(
        predict_image(inference_net, lr_img) - predict_image(model, lr_img)
    ).max()
    print(f"  max |train-net - collapsed-net| = {diff:.2e}")


if __name__ == "__main__":
    main()
