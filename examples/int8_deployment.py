"""Int8 deployment pipeline: train → collapse → quantize → tile → ship.

Walks the full path from a trained SESR model to what actually runs on an
Ethos-class mobile NPU (the paper's §5.6 target): the collapsed network is
post-training-quantized to int8 (per-channel weights, calibrated per-tensor
activations) and executed tile by tile with exact halo handling, and the
quality/size/performance cost of every step is measured.

Run:  python examples/int8_deployment.py
"""

import numpy as np

from repro.core import SESR
from repro.datasets import SyntheticDataset, benchmark_suites
from repro.deploy import (
    halo_overhead,
    quantize_sesr,
    receptive_radius,
    tiled_upscale,
)
from repro.hw import ETHOS_N78_4TOPS, estimate_tiled, sesr_hw_graph
from repro.metrics import psnr
from repro.train import (
    ExperimentConfig,
    evaluate_model,
    predict_image,
    run_experiment,
)
from repro.utils import format_table


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. train and collapse
    # ------------------------------------------------------------------ #
    model = SESR.from_name("M5", scale=2, seed=0)
    config = ExperimentConfig(
        scale=2, epochs=20, train_images=12, train_size=(96, 96),
        patch_size=16, crops_per_image=16, batch_size=8, lr=1e-3,
    )
    print("training SESR-M5 ...")
    run_experiment(model, config)
    collapsed = model.collapse()

    suites = benchmark_suites(2, names=("set14",), size=(96, 96), n_images=5)
    eval_suite = suites["set14"]
    float_metrics = evaluate_model(collapsed, eval_suite)

    # ------------------------------------------------------------------ #
    # 2. post-training int8 quantization
    # ------------------------------------------------------------------ #
    calib_set = SyntheticDataset("div2k", n_images=4, size=(96, 96),
                                 scale=2, seed=99)
    quantized = quantize_sesr(
        collapsed, calib_images=[calib_set[i][0] for i in range(4)]
    )
    int8_metrics = evaluate_model(quantized, eval_suite)

    print()
    print(format_table(
        ["stage", "PSNR (set14)", "SSIM", "weights"],
        [
            ["float32 collapsed", f"{float_metrics['psnr']:.2f} dB",
             f"{float_metrics['ssim']:.4f}",
             f"{quantized.float_weight_bytes():,} B"],
            ["int8 (PTQ)", f"{int8_metrics['psnr']:.2f} dB",
             f"{int8_metrics['ssim']:.4f}",
             f"{quantized.weight_bytes():,} B"],
        ],
        title="quantization cost",
    ))

    # ------------------------------------------------------------------ #
    # 3. tiled execution (functional §5.6)
    # ------------------------------------------------------------------ #
    lr_img, hr_img = eval_suite[0]
    full = predict_image(quantized, lr_img)
    tiled = tiled_upscale(quantized, lr_img, 2, tile=(24, 24))
    radius = receptive_radius(collapsed)
    print(f"\ntiled inference: receptive radius {radius} px, "
          f"max |tiled − full| = {np.abs(tiled - full).max():.2e}")
    print(f"int8 tiled PSNR: {psnr(tiled, hr_img, border=2):.2f} dB")

    # ------------------------------------------------------------------ #
    # 4. corrected NPU estimate (halo overhead included)
    # ------------------------------------------------------------------ #
    overhead = halo_overhead(1080, 1920, (300, 400), radius)
    graph = sesr_hw_graph(16, 5, 2, 1080, 1920)
    naive = estimate_tiled(graph, ETHOS_N78_4TOPS, 300, 400)
    corrected = estimate_tiled(graph, ETHOS_N78_4TOPS, 300, 400,
                               halo_factor=1.0 + overhead)
    print(f"\n1080p->4K tiled on the NPU model: {naive.fps:.1f} FPS naive, "
          f"{corrected.fps:.1f} FPS with the {overhead * 100:.1f}% halo "
          "overhead the paper's estimate ignores")


if __name__ == "__main__":
    main()
