"""Cross-module consistency checks that tie the subsystems together.

These tests assert agreements *between* independent implementations —
the strongest evidence the reproduction's parts compose correctly.
"""

import numpy as np
import pytest

import repro.zoo as zoo
from repro.core import SESR, FSRCNN
from repro.hw import IDEAL_4TOPS, graph_from_specs, theoretical_fps
from repro.metrics import (
    count_macs,
    count_params,
    macs_to_720p,
    specs_from_module,
)
from repro.nn import Tensor, no_grad


class TestSpecsAgreeWithModels:
    """Layer-spec accounting must match the live models' actual weights."""

    @pytest.mark.parametrize("name", ["M3", "M5", "M7", "M11", "XL"])
    @pytest.mark.parametrize("scale", [2, 4])
    def test_sesr_collapsed_weights_match_specs(self, name, scale):
        model = SESR.from_name(name, scale=scale, expansion=16)
        collapsed = model.collapse()
        convs = [collapsed.first, *collapsed.convs, collapsed.last]
        actual = sum(c.weight.size for c in convs)
        assert actual == count_params(specs_from_module(model))

    def test_fsrcnn_weights_match_specs(self):
        model = FSRCNN(scale=2)
        actual = sum(
            p.size for n, p in model.named_parameters() if n.endswith("weight")
        )
        assert actual == count_params(specs_from_module(model))


class TestZooAgreesWithPaperRatios:
    """Headline ratios quoted in the paper text, recomputed from the zoo."""

    def test_vdsr_97x_and_331x(self):
        m11 = zoo.get("SESR-M11")
        vdsr = zoo.get("VDSR")
        # ×2: "97× more MACs than SESR-M11"
        assert vdsr.computed_macs_720p(2) / m11.computed_macs_720p(2) == \
            pytest.approx(97, rel=0.02)
        # ×4: "331× fewer MACs than VDSR"
        assert vdsr.computed_macs_720p(4) / m11.computed_macs_720p(4) == \
            pytest.approx(331, rel=0.02)

    def test_m5_2x_fewer_than_fsrcnn(self):
        fsr = zoo.get("FSRCNN")
        m5 = zoo.get("SESR-M5")
        assert fsr.computed_macs_720p(2) / m5.computed_macs_720p(2) == \
            pytest.approx(1.93, rel=0.02)
        assert fsr.computed_macs_720p(4) / m5.computed_macs_720p(4) == \
            pytest.approx(4.4, rel=0.02)

    def test_m3_vs_prior_small_models(self):
        """'Even our smallest CNN outperforms all prior models while using
        2.6× to 3× fewer MACs' — the MAC side of that claim."""
        m3 = zoo.get("SESR-M3").computed_macs_720p(2)
        fsr = zoo.get("FSRCNN").reported_macs_g[2] * 1e9
        morem = zoo.get("MOREMNAS-C").reported_macs_g[2] * 1e9
        assert 2.5 <= fsr / m3 <= 3.1
        assert 2.5 <= morem / m3 <= 3.1

    def test_xl_vs_carn_and_btsrn(self):
        """SESR-XL uses 3.75× fewer MACs than CARN-M, 8.55× fewer than BTSRN."""
        xl = zoo.get("SESR-XL").computed_macs_720p(2)
        carn = zoo.get("CARN-M").reported_macs_g[2] * 1e9
        btsrn = zoo.get("BTSRN").reported_macs_g[2] * 1e9
        assert carn / xl == pytest.approx(3.75, rel=0.03)
        assert btsrn / xl == pytest.approx(8.55, rel=0.03)


class TestHwAgreesWithComplexity:
    """The NPU estimator and the MAC counter share one IR — totals match."""

    @pytest.mark.parametrize("name", ["M3", "M5", "M11"])
    def test_graph_macs_equal_counter_macs(self, name):
        model = SESR.from_name(name, scale=2)
        specs = specs_from_module(model)
        graph = graph_from_specs(name, specs, 360, 640)
        assert graph.total_macs() == count_macs(specs, 360, 640)
        # and the Table 1 MAC unit is consistent with the 720p helper.
        assert graph.total_macs() == macs_to_720p(specs, 2)

    def test_theoretical_fps_is_peak_over_macs(self):
        model = SESR.from_name("M5", scale=2)
        specs = specs_from_module(model)
        graph = graph_from_specs("M5", specs, 1080, 1920)
        fps = theoretical_fps(graph, IDEAL_4TOPS)
        assert fps == pytest.approx(
            IDEAL_4TOPS.peak_macs_per_sec / graph.total_macs()
        )


class TestCollapseDeployChain:
    """Train-time model → collapse → quantize → tile: one consistent value."""

    def test_chain_outputs_agree(self):
        from repro.deploy import quantize_sesr, tiled_upscale
        from repro.train import predict_image

        model = SESR(scale=2, f=8, m=2, expansion=16, seed=5)
        collapsed = model.collapse()
        img = np.random.default_rng(1).random((28, 24)).astype(np.float32)

        # Training net and collapsed net agree (analytic collapse).
        with no_grad():
            a = model(Tensor(img[None, :, :, None])).data[0, :, :, 0]
        b = predict_image(collapsed, img)
        np.testing.assert_allclose(np.clip(a, 0, 1), b, atol=1e-6)

        # Weight-only quantization at high bit width ~ float output.
        q = quantize_sesr(collapsed, calib_images=None, weight_bits=16)
        c = predict_image(q, img)
        np.testing.assert_allclose(b, c, atol=1e-3)

        # Tiled execution of the quantized net equals its full-frame run.
        d = tiled_upscale(q, img, 2, tile=(12, 12))
        np.testing.assert_allclose(c, d, atol=1e-6)
