"""Property-based tests (hypothesis) for the im2col substrate and autograd
invariants that all higher layers rely on."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, conv2d, no_grad
from repro.nn.im2col import dilate2d, extract_patches, fold_patches

dims = st.integers(min_value=1, max_value=5)
kernels = st.integers(min_value=1, max_value=3)
strides = st.integers(min_value=1, max_value=2)


@st.composite
def patch_configs(draw):
    kh, kw = draw(kernels), draw(kernels)
    sh, sw = draw(strides), draw(strides)
    h = draw(st.integers(min_value=kh, max_value=kh + 4))
    w = draw(st.integers(min_value=kw, max_value=kw + 4))
    n = draw(st.integers(min_value=1, max_value=2))
    c = draw(st.integers(min_value=1, max_value=3))
    return n, h, w, c, (kh, kw), (sh, sw)


@given(patch_configs(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_extract_fold_adjoint(config, seed):
    """⟨extract(x), y⟩ == ⟨x, fold(y)⟩ — extract/fold are exact adjoints."""
    n, h, w, c, kernel, stride = config
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, h, w, c))
    patches = extract_patches(x, kernel, stride)
    y = rng.standard_normal(patches.shape)
    lhs = np.sum(patches * y)
    rhs = np.sum(x * fold_patches(y, x.shape, stride))
    np.testing.assert_allclose(lhs, rhs, rtol=1e-10, atol=1e-10)


@given(patch_configs())
@settings(max_examples=40, deadline=None)
def test_extract_patch_contents(config):
    """Each patch equals the corresponding direct slice of the input."""
    n, h, w, c, (kh, kw), (sh, sw) = config
    x = np.arange(n * h * w * c, dtype=np.float64).reshape(n, h, w, c)
    patches = extract_patches(x, (kh, kw), (sh, sw))
    _, ho, wo = patches.shape[:3]
    for i in range(ho):
        for j in range(wo):
            np.testing.assert_array_equal(
                patches[:, i, j],
                x[:, i * sh : i * sh + kh, j * sw : j * sw + kw, :],
            )


@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
)
@settings(max_examples=40, deadline=None)
def test_dilate_inverse(h, w, sh, sw):
    """Subsampling a dilated tensor recovers the original exactly."""
    x = np.random.default_rng(0).standard_normal((1, h, w, 2))
    d = dilate2d(x, (sh, sw))
    np.testing.assert_array_equal(d[:, ::sh, ::sw, :], x)
    # Everything else is zero.
    total = np.abs(d).sum()
    np.testing.assert_allclose(total, np.abs(x).sum())


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_conv_linearity(seed):
    """conv(a·x + b·z, w) == a·conv(x, w) + b·conv(z, w)."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((1, 5, 5, 2))
    z = rng.standard_normal((1, 5, 5, 2))
    w = rng.standard_normal((3, 3, 2, 3))
    a, b = rng.standard_normal(2)
    with no_grad():
        lhs = conv2d(Tensor(a * x + b * z), Tensor(w), padding="same").data
        rhs = (
            a * conv2d(Tensor(x), Tensor(w), padding="same").data
            + b * conv2d(Tensor(z), Tensor(w), padding="same").data
        )
    np.testing.assert_allclose(lhs, rhs, rtol=1e-8, atol=1e-8)


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_conv_translation_equivariance(seed):
    """Shifting the input (interior) shifts the 'valid' conv output."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((1, 8, 8, 1))
    w = rng.standard_normal((3, 3, 1, 1))
    with no_grad():
        y = conv2d(Tensor(x), Tensor(w), padding="valid").data
        y_shift = conv2d(
            Tensor(np.roll(x, 1, axis=1)), Tensor(w), padding="valid"
        ).data
    # Rows 1.. of the shifted output equal rows 0..-1 of the original.
    np.testing.assert_allclose(y_shift[:, 1:], y[:, :-1], rtol=1e-8, atol=1e-8)
