"""Optimizers, losses, and initializers."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Parameter, Tensor
from repro.nn import init as init_mod
from repro.nn.losses import charbonnier_loss, l1_loss, l2_loss, mse_loss
from repro.nn.optim import Optimizer


def quadratic_grad(p: Parameter, target: np.ndarray) -> None:
    """Set p.grad for loss 0.5‖p − target‖²."""
    p.grad = p.data - target


class TestSGD:
    def test_converges_on_quadratic(self):
        target = np.array([3.0, -2.0], dtype=np.float32)
        p = Parameter(np.zeros(2))
        opt = SGD([p], lr=0.3)
        for _ in range(60):
            quadratic_grad(p, target)
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        target = np.array([1.0], dtype=np.float32)

        def run(momentum):
            p = Parameter(np.zeros(1))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                quadratic_grad(p, target)
                opt.step()
            return abs(float(p.data[0]) - 1.0)

        assert run(0.9) < run(0.0)

    def test_skips_none_grads(self):
        p = Parameter(np.ones(2))
        SGD([p], lr=1.0).step()  # no grad set: must not crash or move
        np.testing.assert_allclose(p.data, [1.0, 1.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        target = np.array([5.0, -1.0, 0.5], dtype=np.float32)
        p = Parameter(np.zeros(3))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            quadratic_grad(p, target)
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_first_step_size_is_lr(self):
        # With bias correction, |Δp| of step 1 ≈ lr regardless of grad scale.
        for scale in (1e-3, 1.0, 1e3):
            p = Parameter(np.array([0.0]))
            opt = Adam([p], lr=0.01)
            p.grad = np.array([scale], dtype=np.float32)
            opt.step()
            np.testing.assert_allclose(abs(p.data[0]), 0.01, rtol=1e-3)

    def test_defaults_match_paper(self):
        opt = Adam([Parameter(np.zeros(1))])
        assert opt.lr == pytest.approx(5e-4)

    def test_zero_grad(self):
        p = Parameter(np.zeros(1))
        p.grad = np.ones(1)
        Adam([p]).zero_grad()
        assert p.grad is None

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_base_step_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Optimizer([Parameter(np.zeros(1))], lr=0.1).step()


class TestLosses:
    def test_l1_value(self):
        a = Tensor(np.array([1.0, 2.0, 3.0]))
        b = Tensor(np.array([1.5, 2.0, 1.0]))
        assert l1_loss(a, b).item() == pytest.approx((0.5 + 0 + 2) / 3)

    def test_l2_is_half_mse(self):
        a = Tensor(np.array([1.0, 3.0]))
        b = Tensor(np.array([0.0, 0.0]))
        assert l2_loss(a, b).item() == pytest.approx(0.5 * mse_loss(a, b).item())

    def test_charbonnier_approaches_l1(self):
        a = Tensor(np.array([2.0, -1.0]))
        b = Tensor(np.array([0.0, 0.0]))
        assert charbonnier_loss(a, b, eps=1e-8).item() == pytest.approx(
            l1_loss(a, b).item(), rel=1e-5
        )

    def test_losses_zero_at_identity(self):
        a = Tensor(np.array([1.0, 2.0]))
        for fn in (l1_loss, l2_loss, mse_loss):
            assert fn(a, a).item() == 0.0

    def test_l1_gradient_sign(self):
        a = Tensor(np.array([2.0, -3.0]), requires_grad=True)
        l1_loss(a, Tensor(np.zeros(2))).backward()
        np.testing.assert_allclose(a.grad, [0.5, -0.5])


class TestInitializers:
    def test_glorot_uniform_bounds_and_scale(self, rng):
        w = init_mod.glorot_uniform((3, 3, 16, 16), rng)
        limit = np.sqrt(6.0 / (9 * 16 + 9 * 16))
        assert w.shape == (3, 3, 16, 16)
        assert np.all(np.abs(w) <= limit)
        assert w.std() == pytest.approx(limit / np.sqrt(3), rel=0.1)

    def test_he_normal_scale(self, rng):
        w = init_mod.he_normal((3, 3, 64, 64), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / (9 * 64)), rel=0.1)

    def test_dense_fans(self, rng):
        w = init_mod.glorot_uniform((100, 200), rng)
        limit = np.sqrt(6.0 / 300)
        assert np.all(np.abs(w) <= limit)

    def test_bad_shape_raises(self, rng):
        with pytest.raises(ValueError):
            init_mod.glorot_uniform((3, 3, 3), rng)

    def test_identity_conv_is_identity(self, rng):
        from repro.nn import Tensor, conv2d, no_grad

        w = init_mod.identity_conv(3, 4)
        x = rng.standard_normal((1, 5, 5, 4)).astype(np.float32)
        with no_grad():
            y = conv2d(Tensor(x), Tensor(w), padding="same").data
        np.testing.assert_allclose(y, x)

    def test_identity_conv_even_raises(self):
        with pytest.raises(ValueError):
            init_mod.identity_conv(2, 4)

    def test_zeros(self):
        assert not init_mod.zeros((2, 2)).any()
