"""Convolution / NN-op tests: gradcheck across strides, paddings, and kernel
shapes (incl. the NAS section's even and asymmetric kernels); TF-semantics
checks for depth-to-space and transposed convolution."""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    compose_bias_1x1,
    compose_conv_1x1,
    conv2d,
    conv2d_transpose,
    depth_to_space,
    dilate,
    no_grad,
    prelu,
    relu,
    resolve_padding,
    sigmoid,
    softmax,
    space_to_depth,
)
from tests.conftest import check_gradient


def _conv_ref(x, w, stride, pads):
    """Naive direct convolution as a reference implementation."""
    (pt, pb), (pl, pr) = pads
    x = np.pad(x, ((0, 0), (pt, pb), (pl, pr), (0, 0)))
    n, h, wd, cin = x.shape
    kh, kw, _, cout = w.shape
    sh, sw = stride
    ho, wo = (h - kh) // sh + 1, (wd - kw) // sw + 1
    out = np.zeros((n, ho, wo, cout))
    for b in range(n):
        for i in range(ho):
            for j in range(wo):
                patch = x[b, i * sh : i * sh + kh, j * sw : j * sw + kw, :]
                for o in range(cout):
                    out[b, i, j, o] = np.sum(patch * w[:, :, :, o])
    return out


class TestConv2dForward:
    @pytest.mark.parametrize("kernel", [(1, 1), (3, 3), (5, 5), (2, 2), (3, 2), (2, 1)])
    @pytest.mark.parametrize("stride", [(1, 1), (2, 2), (2, 1)])
    def test_matches_naive_reference(self, rng, kernel, stride):
        x = rng.standard_normal((2, 7, 6, 3))
        w = rng.standard_normal((*kernel, 3, 4))
        pads = resolve_padding(kernel, stride, "same", in_size=(7, 6))
        got = conv2d(Tensor(x, dtype=np.float64), Tensor(w, dtype=np.float64),
                     stride=stride, padding="same").data
        want = _conv_ref(x, w, stride, pads)
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_valid_padding_shape(self, rng):
        x = Tensor(rng.standard_normal((1, 8, 9, 2)).astype(np.float32))
        w = Tensor(rng.standard_normal((3, 3, 2, 5)).astype(np.float32))
        assert conv2d(x, w, padding="valid").shape == (1, 6, 7, 5)

    def test_same_padding_preserves_shape(self, rng):
        x = Tensor(rng.standard_normal((1, 8, 9, 2)).astype(np.float32))
        for k in [(3, 3), (5, 5), (2, 2), (3, 2)]:
            w = Tensor(rng.standard_normal((*k, 2, 4)).astype(np.float32))
            assert conv2d(x, w, padding="same").shape == (1, 8, 9, 4)

    def test_explicit_int_padding(self, rng):
        x = Tensor(rng.standard_normal((1, 5, 5, 1)).astype(np.float32))
        w = Tensor(rng.standard_normal((3, 3, 1, 1)).astype(np.float32))
        assert conv2d(x, w, padding=2).shape == (1, 7, 7, 1)

    def test_bias_added(self, rng):
        x = Tensor(np.zeros((1, 4, 4, 2), dtype=np.float32))
        w = Tensor(np.zeros((3, 3, 2, 3), dtype=np.float32))
        b = Tensor(np.array([1.0, -2.0, 0.5], dtype=np.float32))
        out = conv2d(x, w, b).data
        np.testing.assert_allclose(out[0, 0, 0], [1.0, -2.0, 0.5])

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(np.zeros((1, 4, 4, 2), dtype=np.float32))
        w = Tensor(np.zeros((3, 3, 3, 4), dtype=np.float32))
        with pytest.raises(ValueError, match="channels"):
            conv2d(x, w)

    def test_rank_checks(self):
        with pytest.raises(ValueError, match="NHWC"):
            conv2d(Tensor(np.zeros((4, 4, 2))), Tensor(np.zeros((3, 3, 2, 1))))
        with pytest.raises(ValueError, match="HWIO"):
            conv2d(Tensor(np.zeros((1, 4, 4, 2))), Tensor(np.zeros((3, 3, 2))))


class TestConv2dGradients:
    @pytest.mark.parametrize("stride,padding", [
        (1, "same"), (1, "valid"), (2, "same"), ((2, 1), "same"),
    ])
    def test_gradcheck(self, rng, stride, padding):
        x = rng.standard_normal((2, 6, 5, 2))
        w = rng.standard_normal((3, 3, 2, 3))
        b = rng.standard_normal(3)
        check_gradient(
            lambda xt, wt, bt: (
                conv2d(xt, wt, bt, stride=stride, padding=padding) ** 2
            ).sum(),
            [x, w, b],
        )

    def test_gradcheck_asymmetric_kernel(self, rng):
        x = rng.standard_normal((1, 5, 6, 2))
        w = rng.standard_normal((2, 3, 2, 2))
        check_gradient(
            lambda xt, wt: (conv2d(xt, wt, padding="same") ** 2).sum(), [x, w]
        )


class TestConvTranspose:
    @pytest.mark.parametrize("stride,k", [(2, 9), (4, 9), (2, 4), (3, 5)])
    def test_output_geometry(self, rng, stride, k):
        x = Tensor(rng.standard_normal((1, 5, 4, 3)).astype(np.float32))
        w = Tensor(rng.standard_normal((k, k, 3, 2)).astype(np.float32))
        out = conv2d_transpose(x, w, stride=stride)
        assert out.shape == (1, 5 * stride, 4 * stride, 2)

    def test_gradcheck(self, rng):
        x = rng.standard_normal((1, 3, 4, 2))
        w = rng.standard_normal((4, 4, 2, 1))
        b = rng.standard_normal(1)
        check_gradient(
            lambda xt, wt, bt: (conv2d_transpose(xt, wt, bt, stride=2) ** 2).sum(),
            [x, w, b],
        )

    def test_adjoint_of_strided_conv(self, rng):
        """⟨conv(x), y⟩ == ⟨x, convᵀ(y)⟩ with matched geometry + flipped weights."""
        x = rng.standard_normal((1, 8, 8, 2))
        w = rng.standard_normal((4, 4, 2, 3))
        y = rng.standard_normal((1, 4, 4, 3))
        with no_grad():
            cx = conv2d(Tensor(x, dtype=np.float64), Tensor(w, dtype=np.float64),
                        stride=2, padding="same").data
            # convᵀ flips spatially internally, so the adjoint weight is the
            # channel-transposed (not pre-flipped) forward weight.
            wt = w.transpose(0, 1, 3, 2)
            cty = conv2d_transpose(Tensor(y, dtype=np.float64),
                                   Tensor(wt, dtype=np.float64), stride=2).data
        np.testing.assert_allclose(np.sum(cx * y), np.sum(x * cty), rtol=1e-10)

    def test_kernel_smaller_than_stride_raises(self, rng):
        x = Tensor(np.zeros((1, 3, 3, 1), dtype=np.float32))
        w = Tensor(np.zeros((2, 2, 1, 1), dtype=np.float32))
        with pytest.raises(ValueError):
            conv2d_transpose(x, w, stride=3)


class TestDepthToSpace:
    def test_tf_channel_ordering(self):
        # input 1x1x1x4, block 2: channel (i*r + j) lands at offset (i, j).
        x = Tensor(np.arange(4, dtype=np.float32).reshape(1, 1, 1, 4))
        out = depth_to_space(x, 2).data
        np.testing.assert_allclose(out[0, :, :, 0], [[0, 1], [2, 3]])

    def test_roundtrip(self, rng):
        x = rng.standard_normal((2, 3, 5, 18)).astype(np.float32)
        y = space_to_depth(depth_to_space(Tensor(x), 3), 3)
        np.testing.assert_allclose(y.data, x)

    def test_double_2x_equals_reordered_4x_content(self, rng):
        # Applying d2s(2) twice gives the same *set* of pixels as d2s(4);
        # value multiset must match even though orderings differ.
        x = rng.standard_normal((1, 2, 2, 16)).astype(np.float32)
        twice = depth_to_space(depth_to_space(Tensor(x), 2), 2).data
        once = depth_to_space(Tensor(x), 4).data
        assert twice.shape == once.shape == (1, 8, 8, 1)
        np.testing.assert_allclose(np.sort(twice.ravel()), np.sort(once.ravel()))

    def test_gradcheck(self, rng):
        x = rng.standard_normal((1, 2, 3, 8))
        check_gradient(lambda xt: (depth_to_space(xt, 2) ** 2).sum(), [x])

    def test_invalid_channels_raises(self):
        with pytest.raises(ValueError):
            depth_to_space(Tensor(np.zeros((1, 2, 2, 3), dtype=np.float32)), 2)
        with pytest.raises(ValueError):
            space_to_depth(Tensor(np.zeros((1, 3, 3, 1), dtype=np.float32)), 2)


class TestActivations:
    def test_relu_values(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0], dtype=np.float32))
        np.testing.assert_allclose(relu(x).data, [0.0, 0.0, 2.0])

    def test_prelu_values(self):
        x = Tensor(np.array([[[[-2.0, 4.0]]]], dtype=np.float32))
        alpha = Tensor(np.array([0.5, 0.5], dtype=np.float32))
        np.testing.assert_allclose(prelu(x, alpha).data, [[[[-1.0, 4.0]]]])

    def test_prelu_gradcheck(self, rng):
        x = rng.standard_normal((2, 3, 3, 2)) + 0.1
        alpha = rng.uniform(0.1, 0.5, size=2)
        check_gradient(lambda xt, at: (prelu(xt, at) ** 2).sum(), [x, alpha])

    def test_sigmoid_range_and_symmetry(self, rng):
        x = Tensor(rng.standard_normal((100,)).astype(np.float64) * 10)
        s = sigmoid(x).data
        assert np.all(s > 0) and np.all(s < 1)
        np.testing.assert_allclose(
            sigmoid(Tensor(np.zeros(1))).data, [0.5], atol=1e-7
        )

    def test_softmax_properties(self, rng):
        x = Tensor(rng.standard_normal((4, 7)).astype(np.float64))
        s = softmax(x, axis=1).data
        np.testing.assert_allclose(s.sum(axis=1), np.ones(4), atol=1e-12)
        # shift invariance
        s2 = softmax(Tensor(x.data + 100.0), axis=1).data
        np.testing.assert_allclose(s, s2, atol=1e-12)

    def test_softmax_gradcheck(self, rng):
        x = rng.standard_normal((3, 4))
        check_gradient(lambda xt: (softmax(xt, axis=1) ** 2).sum(), [x])


class TestDilate:
    def test_values(self):
        x = Tensor(np.arange(4, dtype=np.float32).reshape(1, 2, 2, 1) + 1)
        out = dilate(x, 2).data[0, :, :, 0]
        expected = np.array([[1, 0, 2], [0, 0, 0], [3, 0, 4]], dtype=np.float32)
        np.testing.assert_allclose(out, expected)

    def test_identity_when_stride_one(self):
        x = Tensor(np.ones((1, 2, 2, 1), dtype=np.float32))
        assert dilate(x, 1) is x

    def test_gradcheck(self, rng):
        x = rng.standard_normal((1, 3, 2, 2))
        check_gradient(lambda xt: (dilate(xt, (2, 3)) ** 2).sum(), [x])


class TestWeightComposition:
    def test_compose_equals_sequential_conv(self, rng):
        x = rng.standard_normal((1, 6, 6, 3)).astype(np.float64)
        w1 = rng.standard_normal((3, 3, 3, 10)).astype(np.float64)
        w2 = rng.standard_normal((1, 1, 10, 4)).astype(np.float64)
        with no_grad():
            seq = conv2d(conv2d(Tensor(x), Tensor(w1), padding="same"),
                         Tensor(w2), padding="same").data
            fused = conv2d(Tensor(x),
                           compose_conv_1x1(Tensor(w1), Tensor(w2)),
                           padding="same").data
        np.testing.assert_allclose(seq, fused, atol=1e-12)

    def test_compose_bias_equals_sequential(self, rng):
        x = rng.standard_normal((1, 5, 5, 2)).astype(np.float64)
        w1 = rng.standard_normal((3, 3, 2, 8)).astype(np.float64)
        b1 = rng.standard_normal(8).astype(np.float64)
        w2 = rng.standard_normal((1, 1, 8, 3)).astype(np.float64)
        b2 = rng.standard_normal(3).astype(np.float64)
        with no_grad():
            seq = conv2d(conv2d(Tensor(x), Tensor(w1), Tensor(b1), padding="same"),
                         Tensor(w2), Tensor(b2), padding="same").data
            wf = compose_conv_1x1(Tensor(w1), Tensor(w2))
            bf = compose_bias_1x1(Tensor(b1), Tensor(w2), Tensor(b2))
            fused = conv2d(Tensor(x), wf, bf, padding="same").data
        np.testing.assert_allclose(seq, fused, atol=1e-12)

    def test_compose_gradcheck(self, rng):
        w1 = rng.standard_normal((3, 3, 2, 6))
        w2 = rng.standard_normal((1, 1, 6, 2))
        check_gradient(
            lambda a, b: (compose_conv_1x1(a, b) ** 2).sum(), [w1, w2]
        )

    def test_compose_shape_validation(self, rng):
        w1 = Tensor(np.zeros((3, 3, 2, 6), dtype=np.float32))
        with pytest.raises(ValueError, match="1×1"):
            compose_conv_1x1(w1, Tensor(np.zeros((3, 3, 6, 2), dtype=np.float32)))
        with pytest.raises(ValueError, match="mismatch"):
            compose_conv_1x1(w1, Tensor(np.zeros((1, 1, 5, 2), dtype=np.float32)))


class TestResolvePadding:
    def test_same_odd(self):
        assert resolve_padding((3, 3), (1, 1), "same") == ((1, 1), (1, 1))
        assert resolve_padding((5, 5), (1, 1), "same") == ((2, 2), (2, 2))

    def test_same_even_asymmetric(self):
        assert resolve_padding((2, 2), (1, 1), "same") == ((0, 1), (0, 1))
        assert resolve_padding((3, 2), (1, 1), "same") == ((1, 1), (0, 1))

    def test_valid(self):
        assert resolve_padding((5, 5), (1, 1), "valid") == ((0, 0), (0, 0))

    def test_explicit(self):
        assert resolve_padding((3, 3), (1, 1), 2) == ((2, 2), (2, 2))
        assert resolve_padding((3, 3), (1, 1), ((1, 0), (2, 1))) == ((1, 0), (2, 1))


class TestConvTransposeFastVsReference:
    """The sub-pixel fast path must match the naive zero-insertion form."""

    @pytest.mark.parametrize("k,s", [(9, 2), (9, 4), (4, 2), (6, 3), (3, 3)])
    def test_forward_and_gradients_match(self, rng, k, s):
        from repro.nn import conv2d_transpose_reference

        x = rng.standard_normal((2, 4, 5, 3))
        w = rng.standard_normal((k, k, 3, 2))
        b = rng.standard_normal(2)

        def run(fn):
            xt = Tensor(x, requires_grad=True)
            wt = Tensor(w, requires_grad=True)
            bt = Tensor(b, requires_grad=True)
            y = fn(xt, wt, bt, stride=s)
            (y * y).sum().backward()
            return y.data, xt.grad, wt.grad, bt.grad

        fast = run(conv2d_transpose)
        ref = run(conv2d_transpose_reference)
        for got, want in zip(fast, ref):
            np.testing.assert_allclose(got, want, atol=1e-10)

    def test_anisotropic_stride_falls_back(self, rng):
        x = Tensor(rng.standard_normal((1, 3, 4, 2)).astype(np.float32))
        w = Tensor(rng.standard_normal((4, 4, 2, 1)).astype(np.float32))
        out = conv2d_transpose(x, w, stride=(2, 1))
        assert out.shape == (1, 6, 4, 1)
