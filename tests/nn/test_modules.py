"""Module system, layers, and serialization tests."""

import os

import numpy as np
import pytest

from repro.nn import (
    Conv2d,
    ConvTranspose2d,
    DepthToSpace,
    Identity,
    Module,
    PReLU,
    ReLU,
    Sequential,
    SpaceToDepth,
    Tensor,
    load_state,
    save_state,
)


class Net(Module):
    def __init__(self):
        super().__init__()
        self.conv = Conv2d(2, 4, 3, rng=np.random.default_rng(0))
        self.act = PReLU(4)
        self.head = Sequential(
            Conv2d(4, 4, 3, rng=np.random.default_rng(1)), ReLU()
        )

    def forward(self, x):
        return self.head(self.act(self.conv(x)))


class TestModuleRegistration:
    def test_named_parameters_nested(self):
        net = Net()
        names = {n for n, _ in net.named_parameters()}
        assert "conv.weight" in names
        assert "conv.bias" in names
        assert "act.alpha" in names
        assert "head.layer0.weight" in names

    def test_num_parameters(self):
        net = Net()
        expected = (3 * 3 * 2 * 4 + 4) + 4 + (3 * 3 * 4 * 4 + 4)
        assert net.num_parameters() == expected

    def test_named_modules(self):
        net = Net()
        names = {n for n, _ in net.named_modules()}
        assert {"", "conv", "act", "head", "head.layer0"} <= names

    def test_zero_grad(self):
        net = Net()
        x = Tensor(np.random.default_rng(0).standard_normal((1, 6, 6, 2)).astype(np.float32))
        (net(x) ** 2).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_train_eval_mode_propagates(self):
        net = Net()
        net.eval()
        assert not net.training and not net.head.training
        net.train()
        assert net.training and net.head.layers[1].training


class TestStateDict:
    def test_roundtrip(self):
        net1, net2 = Net(), Net()
        for p in net1.parameters():
            p.data += 1.0
        net2.load_state_dict(net1.state_dict())
        for (n1, p1), (n2, p2) in zip(
            net1.named_parameters(), net2.named_parameters()
        ):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_state_dict_is_a_copy(self):
        net = Net()
        state = net.state_dict()
        state["conv.weight"] += 99.0
        assert not np.allclose(net.conv.weight.data, state["conv.weight"])

    def test_strict_missing_raises(self):
        net = Net()
        state = net.state_dict()
        del state["conv.weight"]
        with pytest.raises(KeyError, match="missing"):
            net.load_state_dict(state)
        net.load_state_dict(state, strict=False)  # ok non-strict

    def test_shape_mismatch_raises(self):
        net = Net()
        state = net.state_dict()
        state["conv.weight"] = np.zeros((1, 1, 2, 4), dtype=np.float32)
        with pytest.raises(ValueError, match="shape"):
            net.load_state_dict(state)

    def test_save_load_npz(self, tmp_path):
        net1, net2 = Net(), Net()
        for p in net1.parameters():
            p.data += 0.5
        path = os.path.join(tmp_path, "ckpt", "net.npz")
        save_state(net1, path)
        load_state(net2, path)
        np.testing.assert_array_equal(net1.conv.weight.data, net2.conv.weight.data)


class TestLayers:
    def test_conv2d_layer_shapes(self, rng):
        layer = Conv2d(3, 8, (3, 2), rng=rng)
        x = Tensor(rng.standard_normal((2, 5, 6, 3)).astype(np.float32))
        assert layer(x).shape == (2, 5, 6, 8)

    def test_conv2d_no_bias(self, rng):
        layer = Conv2d(3, 8, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_conv_transpose_layer(self, rng):
        layer = ConvTranspose2d(4, 1, 9, stride=2, rng=rng)
        x = Tensor(rng.standard_normal((1, 5, 5, 4)).astype(np.float32))
        assert layer(x).shape == (1, 10, 10, 1)

    def test_prelu_parameterised_per_channel(self, rng):
        layer = PReLU(3, init=0.1)
        np.testing.assert_allclose(layer.alpha.data, [0.1, 0.1, 0.1])
        x = Tensor(np.full((1, 1, 1, 3), -2.0, dtype=np.float32))
        np.testing.assert_allclose(layer(x).data.ravel(), [-0.2, -0.2, -0.2],
                                   rtol=1e-6)

    def test_identity(self, rng):
        x = Tensor(rng.standard_normal((2, 2)).astype(np.float32))
        assert Identity()(x) is x

    def test_depth_space_layers_roundtrip(self, rng):
        x = Tensor(rng.standard_normal((1, 4, 4, 4)).astype(np.float32))
        y = SpaceToDepth(2)(DepthToSpace(2)(x))
        np.testing.assert_allclose(y.data, x.data)

    def test_sequential_protocol(self):
        seq = Sequential(ReLU(), Identity())
        assert len(seq) == 2
        assert isinstance(seq[0], ReLU)
        assert [type(m).__name__ for m in seq] == ["ReLU", "Identity"]

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor(np.zeros(1)))
