"""Autograd engine tests: every primitive's gradient against finite
differences, plus graph-topology corner cases (reuse, diamonds, deep chains)."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, concatenate, no_grad, stack, where
from tests.conftest import check_gradient


class TestElementwiseGradients:
    def test_add_sub_mul_div(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((3, 4)) + 3.0  # keep away from zero for div
        check_gradient(lambda x, y: ((x + y) * (x - y) / y).sum(), [a, b])

    def test_scalar_broadcast(self, rng):
        a = rng.standard_normal((2, 3))
        check_gradient(lambda x: (x * 2.5 + 1.0).sum(), [a])
        check_gradient(lambda x: (3.0 - x).sum(), [a])
        check_gradient(lambda x: (1.0 / (x + 10.0)).sum(), [a])

    def test_broadcast_shapes(self, rng):
        a = rng.standard_normal((2, 3, 4))
        b = rng.standard_normal((4,))
        c = rng.standard_normal((3, 1))
        check_gradient(lambda x, y, z: (x * y + z).sum(), [a, b, c])

    def test_pow(self, rng):
        a = rng.standard_normal((3, 3)) + 2.5
        check_gradient(lambda x: (x**3).sum(), [a])
        check_gradient(lambda x: (x**0.5).sum(), [a])

    def test_exp_log(self, rng):
        a = rng.standard_normal((4,)) * 0.5 + 2.0
        check_gradient(lambda x: (x.exp() + x.log()).sum(), [a])

    def test_abs(self, rng):
        a = rng.standard_normal((5,)) + 0.5  # avoid the kink at 0
        check_gradient(lambda x: x.abs().sum(), [a])

    def test_maximum_minimum(self, rng):
        a = rng.standard_normal((6,))
        b = rng.standard_normal((6,)) + 0.05
        check_gradient(lambda x, y: (x.maximum(y) + x.minimum(y)).sum(), [a, b])

    def test_clip(self, rng):
        a = rng.standard_normal((10,)) * 2
        check_gradient(lambda x: x.clip(-1.0, 1.0).sum(), [a])

    def test_neg(self, rng):
        a = rng.standard_normal((3,))
        check_gradient(lambda x: (-x * x).sum(), [a])


class TestMatmulGradients:
    def test_matmul_2d(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 5))
        check_gradient(lambda x, y: (x @ y).sum(), [a, b])

    def test_matmul_batched(self, rng):
        a = rng.standard_normal((2, 3, 4))
        b = rng.standard_normal((2, 4, 5))
        check_gradient(lambda x, y: ((x @ y) ** 2).sum(), [a, b])


class TestReductionGradients:
    def test_sum_all(self, rng):
        a = rng.standard_normal((3, 4))
        check_gradient(lambda x: (x.sum() ** 2), [a])

    def test_sum_axis(self, rng):
        a = rng.standard_normal((3, 4, 5))
        check_gradient(lambda x: (x.sum(axis=1) ** 2).sum(), [a])
        check_gradient(lambda x: (x.sum(axis=(0, 2)) ** 2).sum(), [a])
        check_gradient(lambda x: (x.sum(axis=2, keepdims=True) ** 2).sum(), [a])

    def test_mean(self, rng):
        a = rng.standard_normal((3, 4))
        check_gradient(lambda x: (x.mean() * 7.0), [a])
        check_gradient(lambda x: (x.mean(axis=0) ** 2).sum(), [a])

    def test_max(self, rng):
        a = rng.standard_normal((4, 5))
        # Perturb so the argmax is unique (finite differences at ties break).
        a += np.arange(20).reshape(4, 5) * 1e-3
        check_gradient(lambda x: x.max().sum(), [a])
        check_gradient(lambda x: x.max(axis=1).sum(), [a])


class TestShapeOpGradients:
    def test_reshape(self, rng):
        a = rng.standard_normal((2, 6))
        check_gradient(lambda x: (x.reshape(3, 4) ** 2).sum(), [a])
        check_gradient(lambda x: (x.reshape((4, 3)) ** 2).sum(), [a])

    def test_transpose(self, rng):
        a = rng.standard_normal((2, 3, 4))
        check_gradient(lambda x: (x.transpose((2, 0, 1)) ** 3).sum(), [a])

    def test_flip(self, rng):
        a = rng.standard_normal((3, 4))
        check_gradient(lambda x: (x.flip(0) * x.flip((0, 1))).sum(), [a])

    def test_pad(self, rng):
        a = rng.standard_normal((2, 3))
        check_gradient(lambda x: (x.pad(((1, 2), (0, 1))) ** 2).sum(), [a])

    def test_getitem(self, rng):
        a = rng.standard_normal((4, 5))
        check_gradient(lambda x: (x[1:3, ::2] ** 2).sum(), [a])

    def test_getitem_repeated_index_accumulates(self):
        t = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        out = t[np.array([0, 0, 1])].sum()
        out.backward()
        np.testing.assert_allclose(t.grad, [2.0, 1.0, 0.0])


class TestCombinators:
    def test_stack(self, rng):
        a = rng.standard_normal((2, 3))
        b = rng.standard_normal((2, 3))
        check_gradient(lambda x, y: (stack([x, y], axis=1) ** 2).sum(), [a, b])

    def test_concatenate(self, rng):
        a = rng.standard_normal((2, 3))
        b = rng.standard_normal((4, 3))
        check_gradient(lambda x, y: (concatenate([x, y], axis=0) ** 2).sum(), [a, b])

    def test_where(self, rng):
        a = rng.standard_normal((5,))
        b = rng.standard_normal((5,))
        mask = np.array([True, False, True, True, False])
        check_gradient(lambda x, y: where(mask, x * 2, y * 3).sum(), [a, b])


class TestGraphTopology:
    def test_tensor_reuse_accumulates(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * x  # x used twice in one op
        y.backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * 3.0
        b = x + 1.0
        out = (a * b).sum()  # d/dx (3x(x+1)) = 6x + 3 = 15
        out.backward()
        np.testing.assert_allclose(x.grad, [15.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.ones(4), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(4))

    def test_shared_subexpression(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        s = x * 2.0
        out = (s * s + s).sum()  # d/dx(4x^2 + 2x) = 8x + 2 = 14
        out.backward()
        np.testing.assert_allclose(x.grad, [14.0])

    def test_backward_twice_accumulates_into_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._backward is None

    def test_no_grad_restores_state(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            pass
        y = x * 2.0
        assert y.requires_grad


class TestErrorsAndMisc:
    def test_backward_requires_grad(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_backward_nonscalar_needs_seed(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()
        (x * 2).backward(np.ones(3))
        np.testing.assert_allclose(x.grad, [2.0, 2.0, 2.0])

    def test_as_tensor_passthrough(self):
        x = Tensor(np.ones(2))
        assert as_tensor(x) is x
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_detach(self):
        x = Tensor(np.ones(2), requires_grad=True)
        d = x.detach()
        assert not d.requires_grad
        assert d.data is x.data  # view, no copy

    def test_default_dtype_float32(self):
        assert Tensor([1.0, 2.0]).dtype == np.float32

    def test_pow_non_scalar_raises(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(2)) ** np.ones(2)


class TestGradMode:
    def test_is_grad_enabled_reflects_context(self):
        from repro.nn.tensor import is_grad_enabled

        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_nested_no_grad(self):
        from repro.nn.tensor import is_grad_enabled

        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
