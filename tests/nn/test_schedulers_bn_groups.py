"""Tests for lr schedulers, BatchNorm2d (+ buffers), and grouped convolution."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    BatchNorm2d,
    ConstantLR,
    Conv2d,
    CosineDecay,
    StepDecay,
    Tensor,
    WarmupCosine,
    conv2d,
    no_grad,
)
from tests.conftest import check_gradient


class TestSchedulers:
    def test_constant(self):
        s = ConstantLR(1e-3)
        assert s.lr_at(0) == s.lr_at(10**6) == 1e-3

    def test_step_decay(self):
        s = StepDecay(1.0, milestones=[10, 20], gamma=0.1)
        assert s.lr_at(0) == 1.0
        assert s.lr_at(10) == pytest.approx(0.1)
        assert s.lr_at(25) == pytest.approx(0.01)

    def test_step_decay_unsorted_raises(self):
        with pytest.raises(ValueError):
            StepDecay(1.0, milestones=[20, 10])

    def test_cosine_endpoints(self):
        s = CosineDecay(1.0, total_steps=100, min_lr=0.1)
        assert s.lr_at(0) == pytest.approx(1.0)
        assert s.lr_at(100) == pytest.approx(0.1)
        assert s.lr_at(50) == pytest.approx(0.55)
        assert s.lr_at(500) == pytest.approx(0.1)  # clamped past the end

    def test_cosine_monotone(self):
        s = CosineDecay(1.0, total_steps=50)
        lrs = [s.lr_at(i) for i in range(51)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_warmup_cosine(self):
        s = WarmupCosine(1.0, total_steps=100, warmup_steps=10)
        assert s.lr_at(0) == pytest.approx(0.1)  # linear ramp
        assert s.lr_at(9) == pytest.approx(1.0)
        assert s.lr_at(100) == pytest.approx(0.0)
        with pytest.raises(ValueError):
            WarmupCosine(1.0, total_steps=10, warmup_steps=10)

    def test_apply_sets_optimizer_lr(self):
        from repro.nn import Parameter

        opt = Adam([Parameter(np.zeros(1))], lr=1.0)
        s = CosineDecay(1e-2, total_steps=10)
        s.apply(opt, 0)
        assert opt.lr == pytest.approx(1e-2)

    def test_invalid_base_lr(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)

    def test_trainer_integration(self):
        from repro.core import SESR
        from repro.datasets import PatchSampler, SyntheticDataset
        from repro.train import Trainer

        ds = SyntheticDataset("set5", n_images=2, size=(48, 48), scale=2, seed=1)
        sam = PatchSampler(ds, scale=2, patch_size=12, crops_per_image=4,
                           batch_size=4)
        trainer = Trainer(SESR(scale=2, f=8, m=1, expansion=16), lr=1e-3)
        sched = CosineDecay(1e-3, total_steps=sam.steps_per_epoch())
        trainer.fit(sam, epochs=1, scheduler=sched)
        # lr was annealed by the final step.
        assert trainer.optimizer.lr < 1e-3


class TestBatchNorm:
    def test_train_normalises(self, rng):
        bn = BatchNorm2d(3)
        x = Tensor((rng.standard_normal((8, 6, 6, 3)) * 3 + 2).astype(np.float32))
        y = bn(x).data
        np.testing.assert_allclose(y.mean(axis=(0, 1, 2)), 0, atol=1e-4)
        np.testing.assert_allclose(y.std(axis=(0, 1, 2)), 1, atol=1e-3)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2, momentum=1.0)  # adopt batch stats immediately
        x = Tensor((rng.standard_normal((16, 4, 4, 2)) + 5).astype(np.float32))
        bn(x)  # train pass updates running stats
        bn.eval()
        y = bn(x).data
        np.testing.assert_allclose(y.mean(axis=(0, 1, 2)), 0, atol=0.05)

    def test_gradients_flow_to_affine(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.standard_normal((4, 3, 3, 2)).astype(np.float32))
        (bn(x) ** 2).sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None

    def test_gradcheck_train_mode(self, rng):
        x = rng.standard_normal((3, 4, 4, 2))
        g = rng.uniform(0.5, 1.5, size=2)
        b = rng.standard_normal(2)

        def loss(xt, gt, bt):
            mu = xt.mean(axis=(0, 1, 2))
            centred = xt - mu.reshape(1, 1, 1, 2)
            var = (centred * centred).mean(axis=(0, 1, 2))
            inv = (var.reshape(1, 1, 1, 2) + 1e-5) ** -0.5
            return ((centred * inv * gt + bt) ** 3).sum()

        check_gradient(loss, [x, g, b], atol=1e-4)

    def test_buffers_in_state_dict(self):
        bn = BatchNorm2d(4)
        bn.running_mean[...] = 7.0
        state = bn.state_dict()
        assert state["running_mean"][0] == 7.0
        bn2 = BatchNorm2d(4)
        bn2.load_state_dict(state)
        np.testing.assert_allclose(bn2.running_mean, 7.0)

    def test_buffer_strict_loading(self):
        bn = BatchNorm2d(4)
        state = bn.state_dict()
        del state["running_var"]
        with pytest.raises(KeyError, match="missing"):
            bn.load_state_dict(state)


class TestGroupedConv:
    def test_matches_per_group_convs(self, rng):
        x = Tensor(rng.standard_normal((2, 5, 5, 6)).astype(np.float64))
        w = Tensor(rng.standard_normal((3, 3, 2, 9)).astype(np.float64))
        with no_grad():
            grouped = conv2d(x, w, groups=3).data
            parts = [
                conv2d(x[:, :, :, 2 * g : 2 * g + 2],
                       w[:, :, :, 3 * g : 3 * g + 3]).data
                for g in range(3)
            ]
        np.testing.assert_allclose(grouped, np.concatenate(parts, axis=3))

    def test_gradcheck(self, rng):
        x = rng.standard_normal((1, 4, 4, 4))
        w = rng.standard_normal((3, 3, 2, 4))
        b = rng.standard_normal(4)
        check_gradient(
            lambda xt, wt, bt: (conv2d(xt, wt, bt, groups=2) ** 2).sum(),
            [x, w, b],
        )

    def test_group_validation(self, rng):
        x = Tensor(np.zeros((1, 4, 4, 5), dtype=np.float32))
        w = Tensor(np.zeros((3, 3, 2, 4), dtype=np.float32))
        with pytest.raises(ValueError, match="divisible"):
            conv2d(x, w, groups=2)
        with pytest.raises(ValueError, match="C_in"):
            conv2d(Tensor(np.zeros((1, 4, 4, 4), dtype=np.float32)),
                   Tensor(np.zeros((3, 3, 3, 4), dtype=np.float32)), groups=2)

    def test_conv2d_layer_groups(self, rng):
        layer = Conv2d(4, 8, 3, groups=2, rng=rng)
        assert layer.weight.shape == (3, 3, 2, 8)
        x = Tensor(rng.standard_normal((1, 5, 5, 4)).astype(np.float32))
        assert layer(x).shape == (1, 5, 5, 8)
        with pytest.raises(ValueError):
            Conv2d(5, 8, 3, groups=2)

    def test_groups_reduce_params(self):
        dense = Conv2d(8, 8, 3, groups=1)
        grouped = Conv2d(8, 8, 3, groups=4)
        assert grouped.weight.size == dense.weight.size // 4
