"""Autograd fuzzer: random op graphs checked against numerical gradients.

The targeted tests in ``test_tensor_autograd.py`` cover each primitive in
isolation; this fuzzer composes them randomly (including tensor reuse and
branching) and validates the full reverse sweep against central
differences — the strongest general correctness guarantee we can give for
the substrate every experiment stands on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from tests.conftest import numerical_gradient

# Unary ops safe on arbitrary finite inputs (smooth away from measure-zero
# kink sets; inputs are nudged off the kinks below).
UNARY = [
    lambda t: t * 2.5,
    lambda t: t + 1.0,
    lambda t: -t,
    lambda t: t.exp(),
    lambda t: (t * t + 1.0).log(),
    lambda t: t.maximum(0.1),
    lambda t: t.minimum(0.9),
    lambda t: t.clip(-2.0, 2.0),
    lambda t: t.abs(),
    lambda t: t.reshape(t.size),
    lambda t: t.flip(0),
    lambda t: t ** 2,
]

BINARY = [
    lambda a, b: a + b,
    lambda a, b: a - b,
    lambda a, b: a * b,
    lambda a, b: a / (b * b + 1.0),
    lambda a, b: a.maximum(b),
    lambda a, b: a.minimum(b),
]


def build_random_graph(x: Tensor, rng: np.random.Generator) -> Tensor:
    """Apply 4–8 random ops; keep a pool so values get reused (branching)."""
    pool = [x]
    for _ in range(int(rng.integers(4, 9))):
        if rng.random() < 0.5 or len(pool) < 2:
            op = UNARY[int(rng.integers(len(UNARY)))]
            src = pool[int(rng.integers(len(pool)))]
            pool.append(op(src))
        else:
            op = BINARY[int(rng.integers(len(BINARY)))]
            a = pool[int(rng.integers(len(pool)))]
            b = pool[int(rng.integers(len(pool)))]
            if a.shape != b.shape:
                a = a.reshape(a.size)
                b = b.reshape(b.size)
            pool.append(op(a, b))
    out = pool[-1]
    for extra in pool[:-1]:
        if extra.shape == out.shape and bool(rng.random() < 0.3):
            out = out + extra
    return (out * out).sum()


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_random_graphs_match_numerical_gradient(seed):
    rng = np.random.default_rng(seed)
    shape = tuple(rng.integers(2, 4, size=int(rng.integers(1, 3))))
    # Keep inputs in a range where exp/log/clip stay smooth and away from
    # kinks of abs/min/max (measure-zero, but finite differences hate them).
    x = rng.uniform(0.15, 0.85, size=shape)
    x += rng.normal(0, 0.01, size=shape)

    t = Tensor(x, requires_grad=True, dtype=np.float64)
    graph_rng = np.random.default_rng(seed + 1)
    loss = build_random_graph(t, graph_rng)
    if not np.isfinite(loss.data).all() or abs(float(loss.data)) > 1e8:
        return  # pathological composition (e.g. exp stacking); skip
    loss.backward()
    assert t.grad is not None

    def f():
        replay_rng = np.random.default_rng(seed + 1)
        return float(build_random_graph(Tensor(x, dtype=np.float64),
                                        replay_rng).data)

    num = numerical_gradient(f, x, eps=1e-6)
    scale = max(np.abs(num).max(), 1.0)
    np.testing.assert_allclose(t.grad, num, atol=2e-4 * scale, rtol=2e-4)
