"""§4 theory tests: the paper's analytical claims, verified empirically.

Claim 1 (Eq. 5): RepVGG's collapsed update is *exactly* a VGG update with
λ = 2η — no adaptivity whatsoever.

Claim 2 (Eqs. 3–4): ExpandNet and SESR produce time-varying adaptive
updates; SESR carries an extra γ·I term from the collapsible residual.

Claim 3: deep linear chains without residuals suffer exponentially
vanishing gradients; residual chains do not.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory import (
    ExpandNetLinear,
    RepVGGLinear,
    SESRLinear,
    VGGLinear,
    adaptive_coefficients,
    build,
    chain_gradient_magnitude,
    compare_schemes,
    grad_beta,
    loss,
    make_regression,
    predicted_update_expandnet,
    predicted_update_repvgg,
    predicted_update_sesr,
    predicted_update_vgg,
    train,
)


@pytest.fixture
def problem(rng):
    x, y, b_true = make_regression(5, 5, 256, rng)
    beta0 = 0.1 * rng.standard_normal((5, 5))
    return x, y, beta0


class TestRepVGGEqualsVGG:
    def test_single_step_exact(self, problem):
        x, y, beta0 = problem
        model = RepVGGLinear(beta0)
        g = grad_beta(model.beta(), x, y)
        expected = predicted_update_repvgg(model.beta(), g, lr=1e-3)
        model.step(x, y, 1e-3)
        np.testing.assert_allclose(model.beta(), expected, atol=1e-14)

    def test_trajectory_identical_to_vgg_at_double_lr(self, problem):
        """The §5.4 phenomenon: RepVGG ≡ VGG for these networks."""
        x, y, beta0 = problem
        t_rep = train(RepVGGLinear(beta0), x, y, lr=1e-3, steps=100)
        t_vgg = train(VGGLinear(beta0), x, y, lr=2e-3, steps=100)
        for b_rep, b_vgg in zip(t_rep.betas, t_vgg.betas):
            np.testing.assert_allclose(b_rep, b_vgg, atol=1e-12)

    @given(st.integers(0, 2**31 - 1), st.floats(1e-4, 5e-3))
    @settings(max_examples=20, deadline=None)
    def test_property_branch_scale_irrelevant(self, seed, lr):
        """However RepVGG splits β across branches, the trajectory is equal."""
        rng = np.random.default_rng(seed)
        x, y, _ = make_regression(4, 4, 64, rng)
        beta0 = 0.1 * rng.standard_normal((4, 4))
        t_a = train(RepVGGLinear(beta0, branch_scale=0.1), x, y, lr, 30)
        t_b = train(RepVGGLinear(beta0, branch_scale=0.9), x, y, lr, 30)
        np.testing.assert_allclose(t_a.betas[-1], t_b.betas[-1], atol=1e-10)


class TestAdaptiveUpdates:
    @given(st.integers(0, 2**31 - 1), st.floats(1e-4, 2e-3))
    @settings(max_examples=20, deadline=None)
    def test_expandnet_matches_eq3_to_first_order(self, seed, lr):
        rng = np.random.default_rng(seed)
        x, y, _ = make_regression(4, 4, 64, rng)
        beta0 = 0.1 * rng.standard_normal((4, 4))
        model = ExpandNetLinear(beta0, w2=1.2)
        g = grad_beta(model.beta(), x, y)
        gw2 = float(np.sum(g * model.w1))
        predicted = predicted_update_expandnet(model.beta(), g, model.w2, gw2, lr)
        model.step(x, y, lr)
        # Discrepancy is the dropped O(η²) term.
        assert np.abs(model.beta() - predicted).max() < 50 * lr**2

    @given(st.integers(0, 2**31 - 1), st.floats(1e-4, 2e-3))
    @settings(max_examples=20, deadline=None)
    def test_sesr_matches_eq4_to_first_order(self, seed, lr):
        rng = np.random.default_rng(seed)
        x, y, _ = make_regression(4, 4, 64, rng)
        beta0 = 0.1 * rng.standard_normal((4, 4))
        model = SESRLinear(beta0, w2=1.2)
        g = grad_beta(model.beta(), x, y)
        gw2 = float(np.sum(g * model.w1))
        predicted = predicted_update_sesr(model.beta(), g, model.w2, gw2, lr)
        model.step(x, y, lr)
        assert np.abs(model.beta() - predicted).max() < 50 * lr**2

    def test_sesr_differs_from_expandnet_by_gamma_identity(self, problem):
        """Eq. 4 = Eq. 3 + γ·I: the extra term is exactly γ on the diagonal."""
        x, y, beta0 = problem
        g = grad_beta(beta0, x, y)
        w2, gw2, lr = 1.3, 0.7, 1e-3
        diff = predicted_update_sesr(beta0, g, w2, gw2, lr) - \
            predicted_update_expandnet(beta0, g, w2, gw2, lr)
        _, gamma = adaptive_coefficients(w2, gw2, lr)
        np.testing.assert_allclose(diff, gamma * np.eye(5), atol=1e-12)

    def test_vgg_update(self, problem):
        x, y, beta0 = problem
        g = grad_beta(beta0, x, y)
        np.testing.assert_allclose(
            predicted_update_vgg(beta0, g, 1e-2), beta0 - 1e-2 * g
        )

    def test_adaptive_coefficients(self):
        rho, gamma = adaptive_coefficients(w2=2.0, grad_w2=0.5, lr=0.01)
        assert rho == pytest.approx(0.04)
        assert gamma == pytest.approx(0.0025)

    def test_sesr_genuinely_differs_from_vgg_trajectory(self, problem):
        x, y, beta0 = problem
        t_sesr = train(SESRLinear(beta0), x, y, lr=1e-3, steps=50)
        t_vgg = train(VGGLinear(beta0), x, y, lr=1e-3, steps=50)
        assert np.abs(t_sesr.betas[-1] - t_vgg.betas[-1]).max() > 1e-6


class TestVanishingGradients:
    def test_no_residual_chain_vanishes(self):
        mags = [
            chain_gradient_magnitude(26, residual=False,
                                     rng=np.random.default_rng(i))
            for i in range(100)
        ]
        assert np.mean(mags) < 1e-6

    def test_residual_chain_survives(self):
        mags = [
            chain_gradient_magnitude(26, residual=True,
                                     rng=np.random.default_rng(i))
            for i in range(100)
        ]
        assert np.mean(mags) > 1e-2

    def test_depth_scaling(self):
        """Gradient magnitude decays exponentially with depth w/o residuals."""
        def mean_mag(depth):
            return np.mean([
                chain_gradient_magnitude(depth, residual=False,
                                         rng=np.random.default_rng(i))
                for i in range(200)
            ])

        m13, m26 = mean_mag(13), mean_mag(26)
        assert m26 < m13 * 1e-3


class TestConvergence:
    def test_overparameterized_beat_vgg(self):
        """§4's empirical backdrop: implicit acceleration from linear
        overparameterization (Arora et al.)."""
        results = compare_schemes(steps=150, lr=0.02, seed=0)
        assert results["sesr"].final_loss < results["vgg"].final_loss
        assert results["expandnet"].final_loss < results["vgg"].final_loss

    def test_all_schemes_reduce_loss(self):
        results = compare_schemes(steps=100, lr=0.02, seed=1)
        for t in results.values():
            assert t.final_loss < t.losses[0]

    def test_build_dispatch(self, problem):
        x, y, beta0 = problem
        for scheme in ("vgg", "expandnet", "sesr", "repvgg"):
            model = build(scheme, beta0)
            np.testing.assert_allclose(model.beta(), beta0, atol=1e-10)

    def test_loss_function(self):
        beta = np.zeros((2, 2))
        x = np.ones((4, 2))
        y = np.ones((4, 2))
        assert loss(beta, x, y) == pytest.approx(1.0)  # 0.5·mean(1+1)
