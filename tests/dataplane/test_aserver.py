"""AsyncSRServer speaks the exact wire contract of the threaded server.

Byte-compatibility is asserted the strong way: the same request is sent
to a threaded ``SRServer`` and an ``AsyncSRServer`` over identical
engines, and the response *bodies* must match byte for byte (a client
``X-Trace-Id`` pins the one random field).
"""

import http.client
import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.datasets import encode_netpbm
from repro.dataplane import AsyncSRServer, make_async_server
from repro.serve import (
    EngineConfig,
    InferenceEngine,
    ModelKey,
    ModelRegistry,
    make_server,
)

KEY = ModelKey(name="M3", scale=2)
TRACE = "0123456789abcdef"


def _engine():
    cfg = EngineConfig(workers=1, tile=32, cache_size=0)
    return InferenceEngine(ModelRegistry(), KEY, config=cfg)


@pytest.fixture(scope="module")
def sync_server():
    srv = make_server(_engine(), "127.0.0.1", 0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def async_server():
    with make_async_server(_engine(), "127.0.0.1", 0) as srv:
        yield srv


def _request(server, path, body=None, headers=None, method=None):
    """Returns (status, headers, body) without raising on 4xx/5xx."""
    host, port = server.server_address[:2]
    req = urllib.request.Request(
        f"http://{host}:{port}{path}", data=body,
        headers=headers or {}, method=method,
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read()


def _raw_request(server, method, path, body=None):
    """One request over http.client — never follows redirects (urllib
    follows a GET 308 transparently on 3.11+)."""
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        conn.request(method, path, body=body)
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


@pytest.fixture(scope="module")
def image_body():
    img = (np.random.default_rng(9).random((20, 20)) * 255).astype(np.uint8)
    return encode_netpbm(img)


class TestByteCompatibility:
    def test_healthz_bodies_identical(self, sync_server, async_server):
        s = _request(sync_server, "/v1/healthz")
        a = _request(async_server, "/v1/healthz")
        assert a[0] == s[0] == 200
        assert a[2] == s[2]

    def test_upscale_bodies_identical(self, sync_server, async_server,
                                      image_body):
        s = _request(sync_server, "/v1/upscale", body=image_body,
                     headers={"X-Trace-Id": TRACE}, method="POST")
        a = _request(async_server, "/v1/upscale", body=image_body,
                     headers={"X-Trace-Id": TRACE}, method="POST")
        assert a[0] == s[0] == 200
        assert a[2] == s[2]  # pixel-for-pixel, byte-for-byte
        for resp in (s, a):
            assert resp[1]["X-Trace-Id"] == TRACE
            assert resp[1]["X-Degraded"] == "false"
            assert resp[1]["Content-Type"] == "application/octet-stream"

    @pytest.mark.parametrize("path,method,body,headers", [
        ("/v1/nope", None, None, {}),
        ("/v1/upscale", "POST", b"", {}),            # 400 missing body
        ("/v1/upscale", "POST", b"x", {"Content-Type": "application/json"}),
    ], ids=["404", "400", "415"])
    def test_error_bodies_identical(self, sync_server, async_server,
                                    path, method, body, headers):
        headers = dict(headers, **{"X-Trace-Id": TRACE})
        s = _request(sync_server, path, body=body, headers=headers,
                     method=method)
        a = _request(async_server, path, body=body, headers=headers,
                     method=method)
        assert a[0] == s[0] >= 400
        assert a[2] == s[2]
        payload = json.loads(a[2])
        assert set(payload["error"]) == {"code", "message", "trace_id"}

    def test_payload_too_large_is_header_first(self, async_server,
                                               image_body):
        # Content-Length above the limit is refused without reading the
        # body; the error carries the 413 schema.
        host, port = async_server.server_address[:2]
        status, headers, body = _request(
            async_server, "/v1/upscale", body=b"P5 1 1 255 \x00",
            headers={"X-Trace-Id": TRACE,
                     "Content-Length": str(10 ** 9)},
            method="POST",
        )
        assert status == 413
        assert json.loads(body)["error"]["code"] == "payload_too_large"

    @pytest.mark.parametrize("path,method", [
        ("/healthz", "GET"), ("/stats", "GET"),
        ("/metrics", "GET"), ("/upscale", "POST"),
    ])
    def test_legacy_paths_redirect_308_identically(self, sync_server,
                                                   async_server, path,
                                                   method, image_body):
        body = image_body if method == "POST" else None
        s = _raw_request(sync_server, method, path, body=body)
        a = _raw_request(async_server, method, path, body=body)
        assert a[0] == s[0] == 308
        assert a[1]["Location"] == s[1]["Location"] == f"/v1{path}"
        assert a[2] == s[2] == b""


class TestAsyncServerBehaviour:
    def test_stats_and_metrics_serve(self, async_server):
        status, headers, body = _request(async_server, "/v1/stats")
        assert status == 200
        assert "config" in json.loads(body)
        status, headers, body = _request(async_server, "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert b"repro_" in body or b"engine" in body

    def test_keep_alive_serves_sequential_requests(self, async_server):
        import http.client

        host, port = async_server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            for _ in range(3):
                conn.request("GET", "/v1/healthz")
                resp = conn.getresponse()
                assert resp.status == 200
                resp.read()
        finally:
            conn.close()

    def test_eager_bind_and_close_is_idempotent(self):
        srv = AsyncSRServer(_engine(), ("127.0.0.1", 0))
        host, port = srv.server_address
        assert port != 0  # resolved at construction, before serving
        srv.close()
        srv.close()

    def test_process_backend_end_to_end(self, image_body):
        cfg = EngineConfig(workers=1, tile=32, cache_size=0,
                           worker_backend="process")
        engine = InferenceEngine(ModelRegistry(), KEY, config=cfg)
        with make_async_server(engine, "127.0.0.1", 0) as srv:
            status, headers, body = _request(
                srv, "/v1/upscale", body=image_body,
                headers={"X-Trace-Id": TRACE}, method="POST",
            )
            assert status == 200
            assert headers["X-Trace-Id"] == TRACE
