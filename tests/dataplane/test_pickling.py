"""Pickling round-trips: the plan/weights handoff the dataplane rides on."""

import pickle

import numpy as np
import pytest

from repro.compile.executor import CompiledModel
from repro.dataplane import JobEnvelope, ReplyEnvelope, TraceContext
from repro.resilience import RetryPolicy
from repro.serve import EngineConfig, ModelKey, ModelRegistry


@pytest.fixture(scope="module")
def registry():
    return ModelRegistry()


class TestCompiledModelPickle:
    @pytest.mark.parametrize("key", [
        ModelKey(name="M3", scale=2),
        ModelKey(name="M5", scale=2, precision="int8"),
        ModelKey(name="FSRCNN", scale=2),
    ], ids=["M3-fp32", "M5-int8", "FSRCNN-fp32"])
    def test_round_trip_is_bit_exact(self, registry, key):
        model = registry.get_compiled(key)
        clone = pickle.loads(pickle.dumps(model))
        assert isinstance(clone, CompiledModel)
        x = np.random.default_rng(0).random((1, 20, 20, 1)).astype(np.float32)
        np.testing.assert_array_equal(model.run(x), clone.run(x))

    def test_round_trip_keeps_plan_metadata(self, registry):
        model = registry.get_compiled(ModelKey(name="M3", scale=2))
        clone = pickle.loads(pickle.dumps(model))
        assert clone.pass_log == model.pass_log
        assert clone.source == model.source
        assert clone.plan.planned_units == model.plan.planned_units
        assert clone.plan.slot_of == model.plan.slot_of

    def test_clone_has_its_own_runtime_state(self, registry):
        # __setstate__ rebuilds locks and arenas — nothing runtime-shared
        # with the original (that's what makes the handoff spawn-safe).
        model = registry.get_compiled(ModelKey(name="M3", scale=2))
        clone = pickle.loads(pickle.dumps(model))
        assert clone is not model
        assert clone.graph is not model.graph

    def test_gemm_backend_travels_with_the_pickle(self):
        # A process worker must replay the parent's kernel selection —
        # the selection is pinned per node in the pickle, so both sides
        # compute identical bits even if the child host's cache differs.
        from repro.compile import compile_model
        from repro.core import SESR

        model = compile_model(
            SESR.from_name("M3", scale=2).collapse(),
            gemm_backend="blocked",
        )
        clone = pickle.loads(pickle.dumps(model))
        assert clone.gemm_backend == "blocked"
        # Same kernel per node; the clone records source="pinned" (it
        # replayed the parent's choices, it did not re-resolve them).
        assert {c.node: c.kernel for c in clone.kernel_plan.choices} == \
            {c.node: c.kernel for c in model.kernel_plan.choices}
        assert {c.source for c in clone.kernel_plan.choices} == {"pinned"}
        x = np.random.default_rng(1).random((3, 16, 16, 1))
        x = x.astype(np.float32)
        np.testing.assert_array_equal(
            model.run(x, exact_batch=True), clone.run(x, exact_batch=True)
        )


class TestEngineConfigPickle:
    def test_round_trip_preserves_every_field(self):
        cfg = EngineConfig(
            workers=3, tile=(48, 64), halo=7, microbatch=True, max_batch=4,
            batch_window_ms=2.5, cache_size=9, max_pending=5,
            default_timeout=12.0, retry=RetryPolicy(max_attempts=2),
            breaker_threshold=3, breaker_cooldown=1.5, degraded_mode=True,
            supervise=False, wedge_timeout=8.0, compiled=True,
            worker_backend="process",
        )
        clone = pickle.loads(pickle.dumps(cfg))
        assert clone == cfg
        assert clone.worker_backend == "process"
        assert clone.tile == (48, 64)

    def test_defaults_round_trip(self):
        assert pickle.loads(pickle.dumps(EngineConfig())) == EngineConfig()


class TestEnvelopePickle:
    def test_job_and_reply_round_trip(self):
        job = JobEnvelope(kind="run", seq=7, slot=2, generation=5,
                          shape=(3, 16, 16), mode="exact",
                          trace=TraceContext("a" * 16, "b" * 8))
        assert pickle.loads(pickle.dumps(job)) == job
        reply = ReplyEnvelope(seq=7, slot=2, generation=5, ok=False,
                              error_type="ValueError", error_message="x",
                              pid=123)
        assert pickle.loads(pickle.dumps(reply)) == reply
