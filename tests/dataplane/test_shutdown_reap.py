"""``repro serve`` signal drain: process workers reaped, /dev/shm clean.

These drive the real CLI in a subprocess — the one place the whole
stack (spawned workers, shared arena, signal handlers, front-end close
path) runs exactly as production does — and assert the contract the
pool promises: after SIGINT/SIGTERM the server exits 0 and not one
``repro-dp-*`` segment survives in ``/dev/shm``.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    ))),
    "src",
)


def _shm_entries():
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("repro-dp-")}
    except FileNotFoundError:  # pragma: no cover — non-tmpfs platform
        return set()


def _spawn_serve(*extra_args):
    env = dict(os.environ, PYTHONPATH=SRC, PYTHONUNBUFFERED="1")
    env.pop("REPRO_WORKER_BACKEND", None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--model", "M3",
         "--port", "0", "--workers", "1", "--tile", "32",
         "--worker-backend", "process", *extra_args],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )


def _wait_for_banner(proc, timeout=120.0):
    deadline = time.monotonic() + timeout
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        if line.startswith("endpoints:"):
            return lines
    raise AssertionError(f"server never came up; output so far: {lines!r}")


def _segments_of(pid):
    return {s for s in _shm_entries() if s.startswith(f"repro-dp-{pid}-")}


@pytest.mark.parametrize("sig,frontend", [
    (signal.SIGTERM, "sync"),
    (signal.SIGINT, "async"),
], ids=["sigterm-sync", "sigint-async"])
def test_signal_drain_reaps_workers_and_shm(sig, frontend):
    proc = _spawn_serve("--frontend", frontend)
    try:
        _wait_for_banner(proc)
        # The engine is up, so its arena exists right now.
        assert _segments_of(proc.pid), "expected a live shm segment"
        proc.send_signal(sig)
        rc = proc.wait(timeout=60)
        assert rc == 0
        assert _segments_of(proc.pid) == set()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
        proc.stdout.close()


def test_serve_banner_names_backend_and_frontend():
    proc = _spawn_serve("--frontend", "async")
    try:
        lines = "".join(_wait_for_banner(proc))
        assert "[async frontend]" in lines
        assert "(process)" in lines  # EngineConfig.describe()
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
        proc.stdout.close()
