"""Shared-memory tile arena: layout, free list, generation tags, lifecycle."""

import os

import numpy as np
import pytest

from repro.dataplane import (
    ArenaExhausted,
    SharedTileArena,
    StaleSlot,
    attach_arena,
    slot_layout,
)


def _shm_entries():
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("repro-dp-")}
    except FileNotFoundError:  # pragma: no cover — non-tmpfs platform
        return set()


class TestSlotLayout:
    def test_matches_planner_arithmetic(self):
        # 4 bytes/px * max_batch * padded tile in; scale^2 more out.
        in_b, out_b = slot_layout((32, 32), halo=4, scale=2, max_batch=8)
        assert in_b == 4 * 8 * 40 * 40
        assert out_b == in_b * 4

    def test_edge_tiles_fit(self):
        in_b, _ = slot_layout((96, 96), halo=10, scale=2, max_batch=1)
        # A full-size padded tile is the worst case; any edge tile is smaller.
        assert in_b >= 4 * (96 + 20) * (96 + 20)


class TestAllocation:
    def test_alloc_free_cycle(self):
        with SharedTileArena(1024, 4096, slots=3) as arena:
            slots = [arena.alloc(timeout=1.0) for _ in range(3)]
            assert {s.index for s in slots} == {0, 1, 2}
            assert arena.in_use() == 3
            for s in slots:
                arena.free(s)
            assert arena.in_use() == 0

    def test_exhaustion_raises(self):
        with SharedTileArena(64, 64, slots=1) as arena:
            arena.alloc(timeout=0.1)
            with pytest.raises(ArenaExhausted):
                arena.alloc(timeout=0.05)

    def test_free_bumps_generation_and_stales_old_lease(self):
        with SharedTileArena(64, 64, slots=1) as arena:
            lease = arena.alloc(timeout=1.0)
            arena.check(lease)  # live lease verifies
            arena.free(lease)
            with pytest.raises(StaleSlot):
                arena.check(lease)
            fresh = arena.alloc(timeout=1.0)
            assert fresh.index == lease.index
            assert fresh.generation == lease.generation + 1
            arena.check(fresh)

    def test_generation_stamp_lives_in_the_segment(self):
        with SharedTileArena(64, 64, slots=2) as arena:
            lease = arena.alloc(timeout=1.0)
            arena.free(lease)
            # A second mapping of the same segment sees the bumped stamp:
            # workers verify against shared memory, not parent state.
            other = attach_arena(arena.name, 64, 64, 2)
            try:
                assert other.generation(lease.index) == lease.generation + 1
                with pytest.raises(StaleSlot):
                    other.check(lease)
            finally:
                other.close()


class TestViews:
    def test_views_are_zero_copy_across_mappings(self):
        in_b, out_b = slot_layout((8, 8), halo=0, scale=2, max_batch=2)
        with SharedTileArena(in_b, out_b, slots=1) as arena:
            other = attach_arena(arena.name, in_b, out_b, 1)
            try:
                slot = arena.alloc(timeout=1.0)
                src = np.arange(2 * 8 * 8, dtype=np.float32).reshape(2, 8, 8, 1)
                np.copyto(arena.in_view(slot, src.shape), src)
                # The attached mapping reads the same bytes — no copy, no
                # pickle, just the segment.
                np.testing.assert_array_equal(
                    other.in_view(slot, src.shape), src
                )
                out = np.full((2, 16, 16), 0.5, dtype=np.float32)
                np.copyto(other.out_view(slot, out.shape), out)
                np.testing.assert_array_equal(
                    arena.out_view(slot, out.shape), out
                )
            finally:
                other.close()

    def test_oversized_view_is_rejected(self):
        with SharedTileArena(256, 256, slots=1) as arena:
            slot = arena.alloc(timeout=1.0)
            with pytest.raises(ValueError, match="region holds"):
                arena.in_view(slot, (1000,))


class TestLifecycle:
    def test_owner_close_unlinks_segment(self):
        arena = SharedTileArena(64, 64, slots=1)
        name = arena.name
        assert name in _shm_entries()
        arena.close()
        assert name not in _shm_entries()
        arena.close()  # idempotent

    def test_attacher_close_does_not_unlink(self):
        with SharedTileArena(64, 64, slots=1) as arena:
            other = attach_arena(arena.name, 64, 64, 1)
            other.close()
            assert arena.name in _shm_entries()
        assert arena.name not in _shm_entries()

    def test_validation(self):
        with pytest.raises(ValueError):
            SharedTileArena(0, 64, slots=1)
        with pytest.raises(ValueError):
            SharedTileArena(64, 64, slots=0)
