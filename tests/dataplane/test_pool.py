"""Process worker pool: bit-identity, death handling, clean teardown."""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.dataplane import ProcessWorkerDied, ProcessWorkerPool
from repro.serve.engine import predict_batch, predict_batch_exact
from repro.serve.registry import ModelKey, ModelRegistry


def _shm_entries():
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("repro-dp-")}
    except FileNotFoundError:  # pragma: no cover — non-tmpfs platform
        return set()


@pytest.fixture(scope="module")
def model():
    return ModelRegistry().get_compiled(ModelKey(name="M3", scale=2))


@pytest.fixture(scope="module")
def patches():
    rng = np.random.default_rng(11)
    return rng.random((3, 24, 24, 1), dtype=np.float32)


class SlowModel:
    """Picklable stand-in whose forward sleeps — lets tests catch a worker
    mid-job deterministically."""

    scale = 2

    def __init__(self, delay: float) -> None:
        self.delay = delay

    def eval(self) -> None:
        pass

    def __call__(self, x):
        time.sleep(self.delay)
        n, h, w, _ = x.data.shape
        out = np.zeros((n, h * self.scale, w * self.scale, 1), np.float32)

        class _R:
            data = out

        return _R()


class TestBitIdentity:
    def test_exact_mode_matches_in_process(self, model, patches):
        with ProcessWorkerPool(model, workers=1, tile=(24, 24), halo=0,
                               scale=2) as pool:
            out = pool.submit(patches, mode="exact")
        np.testing.assert_array_equal(
            out, predict_batch_exact(model, patches)
        )

    def test_stack_mode_matches_in_process(self, model, patches):
        with ProcessWorkerPool(model, workers=1, tile=(24, 24), halo=0,
                               scale=2) as pool:
            out = pool.submit(patches, mode="stack")
        np.testing.assert_array_equal(out, predict_batch(model, patches))


class TestDeathHandling:
    def test_idle_death_is_replaced_at_checkout(self, model, patches):
        with ProcessWorkerPool(model, workers=1, tile=(24, 24), halo=0,
                               scale=2) as pool:
            ref = pool.submit(patches, mode="exact")
            os.kill(pool.pids()[0], signal.SIGKILL)
            time.sleep(0.2)
            # No supervisor ran: checkout itself notices the corpse,
            # staffs a replacement, and the job still computes.
            out = pool.submit(patches, mode="exact")
            np.testing.assert_array_equal(out, ref)
            stats = pool.stats()
            assert stats["deaths"] == 1 and stats["respawns"] == 1
            assert stats["alive"] == 1

    def test_supervise_replaces_idle_corpses(self, model):
        with ProcessWorkerPool(model, workers=2, tile=(24, 24), halo=0,
                               scale=2) as pool:
            os.kill(pool.pids()[0], signal.SIGKILL)
            time.sleep(0.2)
            deadline = time.monotonic() + 10.0
            replaced = 0
            while replaced == 0 and time.monotonic() < deadline:
                replaced = pool.supervise()
            assert replaced == 1
            assert pool.stats()["alive"] == 2

    def test_mid_job_death_raises_retryable_and_respawns(self, monkeypatch):
        # The child unpickles SlowModel from this module: make the repo
        # root importable in the spawned interpreter.
        import repro

        repo_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        ))
        monkeypatch.setenv("PYTHONPATH", repo_root)
        pool = ProcessWorkerPool(SlowModel(delay=30.0), workers=1,
                                 tile=(8, 8), halo=0, scale=2)
        try:
            errors = []

            def _submit():
                try:
                    pool.submit(
                        np.zeros((1, 8, 8, 1), np.float32), mode="stack"
                    )
                except ProcessWorkerDied as exc:
                    errors.append(exc)

            t = threading.Thread(target=_submit)
            t.start()
            deadline = time.monotonic() + 10.0
            while not pool.pids() and time.monotonic() < deadline:
                time.sleep(0.05)
            time.sleep(0.3)  # let the job reach the worker
            os.kill(pool.pids()[0], signal.SIGKILL)
            t.join(timeout=15.0)
            assert not t.is_alive()
            # The dispatcher saw an ordinary retryable exception...
            assert len(errors) == 1
            # ...and the pool already staffed a replacement.
            assert pool.stats()["deaths"] == 1
            assert pool.ping(timeout=10.0) > 0
        finally:
            pool.shutdown()

    def test_unpicklable_model_fails_fast(self):
        class Unpicklable:
            def __reduce__(self):
                raise TypeError("nope")

        with pytest.raises(ValueError, match="picklable"):
            ProcessWorkerPool(Unpicklable(), workers=1, tile=(8, 8),
                              halo=0, scale=2)


class TestTeardown:
    def test_shutdown_reaps_processes_and_unlinks_arena(self, model,
                                                        patches):
        pool = ProcessWorkerPool(model, workers=2, tile=(24, 24), halo=0,
                                 scale=2)
        segment = pool.arena.name
        procs = [h.proc for h in pool._handles]
        pool.submit(patches, mode="exact")
        assert segment in _shm_entries()
        pool.shutdown()
        assert segment not in _shm_entries()
        for proc in procs:
            assert not proc.is_alive()
        pool.shutdown()  # idempotent

    def test_closed_pool_rejects_work(self, model, patches):
        pool = ProcessWorkerPool(model, workers=1, tile=(24, 24), halo=0,
                                 scale=2)
        pool.shutdown()
        from repro.dataplane import PoolClosed

        with pytest.raises(PoolClosed):
            pool.submit(patches, mode="exact")
