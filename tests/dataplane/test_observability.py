"""Cross-process tracing: span trees and trace ids survive the dataplane."""

import threading
import urllib.request

import numpy as np
import pytest

from repro.datasets import decode_netpbm, encode_netpbm
from repro.obs import get_tracer
from repro.obs.trace import Span, span_tree
from repro.serve import (
    EngineConfig,
    InferenceEngine,
    ModelKey,
    ModelRegistry,
    make_server,
)

KEY = ModelKey(name="M3", scale=2)


@pytest.fixture(scope="module")
def engine():
    cfg = EngineConfig(workers=2, tile=32, cache_size=0,
                       worker_backend="process")
    with InferenceEngine(ModelRegistry(), KEY, config=cfg) as eng:
        yield eng


class TestSpanTreeIntegrity:
    def test_worker_spans_join_the_request_trace(self, engine):
        img = np.random.default_rng(5).random((48, 40), dtype=np.float32)
        result = engine.upscale_ex(img)
        spans = get_tracer().ring.trace(result.trace_id)
        names = {s.name for s in spans}
        # The compute ran in another process, yet its spans sit in this
        # process's ring under the request's trace id.
        assert "serve.request" in names
        assert "dataplane.compute" in names
        assert "compile.execute" in names
        assert all(s.trace_id == result.trace_id for s in spans)

    def test_tree_is_rooted_at_the_request(self, engine):
        img = np.random.default_rng(6).random((40, 40), dtype=np.float32)
        result = engine.upscale_ex(img)
        spans = get_tracer().ring.trace(result.trace_id)
        roots, children = span_tree(spans)
        assert [r.name for r in roots] == ["serve.request"]

        def collect(sp):
            out = {sp.name}
            for child in children.get(sp.span_id, []):
                out |= collect(child)
            return out

        reachable = collect(roots[0])
        # Every worker-side span hangs off the request tree — the
        # serve.request → tile → compute chain is unbroken.
        assert "dataplane.compute" in reachable
        assert "compile.execute" in reachable

    def test_compute_span_records_the_worker_pid(self, engine):
        import os

        img = np.random.default_rng(7).random((32, 32), dtype=np.float32)
        result = engine.upscale_ex(img)
        spans = get_tracer().ring.trace(result.trace_id)
        compute = [s for s in spans if s.name == "dataplane.compute"]
        assert compute
        for sp in compute:
            assert sp.attrs["pid"] != os.getpid()  # genuinely out-of-process


class TestSpanWireForm:
    def test_span_dict_round_trip(self):
        sp = Span(name="x", trace_id="a" * 16, span_id="b" * 8,
                  parent_id="c" * 8, start_ms=1.5, duration_ms=2.5,
                  wall_time=3.5, status="ok", attrs={"k": 1})
        assert Span.from_dict(sp.to_dict()) == sp

    def test_ingest_lands_in_ring_and_aggregates(self):
        from repro.obs.trace import Tracer

        tracer = Tracer()
        sp = Span(name="remote.op", trace_id="1" * 16, span_id="2" * 8,
                  duration_ms=4.0)
        tracer.ingest(sp)
        assert sp in tracer.ring.spans()
        agg = tracer.aggregates()["remote.op"]
        assert agg["count"] == 1 and agg["total_ms"] == 4.0


class TestHTTPTraceRoundTrip:
    def test_client_trace_id_survives_process_workers(self, engine):
        srv = make_server(engine, "127.0.0.1", 0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = srv.server_address[:2]
            img = (np.random.default_rng(8).random((24, 24)) * 255)
            body = encode_netpbm(img.astype(np.uint8))
            trace_id = "feedfacecafef00d"
            req = urllib.request.Request(
                f"http://{host}:{port}/v1/upscale", data=body,
                method="POST", headers={"X-Trace-Id": trace_id},
            )
            with urllib.request.urlopen(req, timeout=60) as resp:
                assert resp.headers["X-Trace-Id"] == trace_id
                out = decode_netpbm(resp.read())
            assert out.shape == (48, 48)
            spans = get_tracer().ring.trace(trace_id)
            names = {s.name for s in spans}
            # One trace spans client header -> engine -> worker process.
            assert "serve.request" in names
            assert "dataplane.compute" in names
        finally:
            srv.shutdown()
            srv.server_close()  # keep the module-scoped engine alive
            thread.join(timeout=5)
