"""The engine on the process backend: bit-identity, config, resilience."""

import os

import numpy as np
import pytest

from repro.serve import EngineConfig, InferenceEngine, ModelKey, ModelRegistry

KEY = ModelKey(name="M3", scale=2)


@pytest.fixture(scope="module")
def registry():
    return ModelRegistry()


@pytest.fixture(scope="module")
def img():
    rng = np.random.default_rng(3)
    return rng.random((70, 52), dtype=np.float32)


def _upscale(registry, img, **cfg_kwargs):
    cfg = EngineConfig(workers=2, tile=32, cache_size=0, **cfg_kwargs)
    with InferenceEngine(registry, KEY, config=cfg) as eng:
        return eng.upscale(img)


class TestBitIdentity:
    """The acceptance bar: thread and process serving stitch the same
    pixels, on every compute path."""

    def test_plain_tiling(self, registry, img):
        ref = _upscale(registry, img, worker_backend="thread")
        out = _upscale(registry, img, worker_backend="process")
        np.testing.assert_array_equal(ref, out)

    def test_microbatch(self, registry, img):
        ref = _upscale(registry, img, worker_backend="thread",
                       microbatch=True)
        out = _upscale(registry, img, worker_backend="process",
                       microbatch=True)
        np.testing.assert_array_equal(ref, out)

    def test_cross_request_coalescing_window(self, registry, img):
        ref = _upscale(registry, img, worker_backend="thread",
                       batch_window_ms=4.0)
        out = _upscale(registry, img, worker_backend="process",
                       batch_window_ms=4.0)
        np.testing.assert_array_equal(ref, out)


class TestConfig:
    def test_backend_validation(self):
        with pytest.raises(ValueError, match="worker_backend"):
            EngineConfig(worker_backend="fibers")

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_BACKEND", "process")
        assert EngineConfig().worker_backend == "process"
        monkeypatch.setenv("REPRO_WORKER_BACKEND", "bogus")
        with pytest.raises(ValueError, match="worker_backend"):
            EngineConfig()
        monkeypatch.delenv("REPRO_WORKER_BACKEND")
        assert EngineConfig().worker_backend == "thread"

    def test_explicit_backend_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_BACKEND", "process")
        assert EngineConfig(worker_backend="thread").worker_backend == "thread"

    def test_describe_names_the_backend(self):
        text = EngineConfig(worker_backend="process").describe()
        assert "(process)" in text


class TestStatsAndLifecycle:
    def test_stats_report_the_dataplane(self, registry, img):
        cfg = EngineConfig(workers=2, tile=32, cache_size=0,
                           worker_backend="process")
        with InferenceEngine(registry, KEY, config=cfg) as eng:
            eng.upscale(img)
            snap = eng.stats()
        dp = snap["dataplane"]
        assert dp["backend"] == "process"
        assert dp["workers"] == 2 and dp["alive"] == 2
        assert dp["jobs_submitted"] > 0
        assert dp["arena"]["slots"] == 4  # workers + 2 spares
        assert snap["config"]["worker_backend"] == "process"

    def test_thread_backend_has_no_dataplane_section(self, registry, img):
        cfg = EngineConfig(workers=1, tile=32, cache_size=0,
                           worker_backend="thread")
        with InferenceEngine(registry, KEY, config=cfg) as eng:
            assert "dataplane" not in eng.stats()

    def test_shutdown_unlinks_shared_memory(self, registry, img):
        cfg = EngineConfig(workers=2, tile=32, cache_size=0,
                           worker_backend="process")
        eng = InferenceEngine(registry, KEY, config=cfg)
        segment = eng._pool.arena.name
        eng.upscale(img)
        assert segment in os.listdir("/dev/shm")
        eng.shutdown()
        assert segment not in os.listdir("/dev/shm")

    def test_process_worker_killed_mid_service_request_survives(
        self, registry, img
    ):
        import signal
        import threading
        import time

        cfg = EngineConfig(workers=2, tile=32, cache_size=0,
                           worker_backend="process",
                           supervise_interval=0.05)
        with InferenceEngine(registry, KEY, config=cfg) as eng:
            ref = eng.upscale(img)
            results = []

            def _client():
                for _ in range(3):
                    results.append(eng.upscale(img))

            t = threading.Thread(target=_client)
            t.start()
            time.sleep(0.05)
            pids = eng._pool.pids()
            if pids:
                os.kill(pids[0], signal.SIGKILL)
            t.join(timeout=60.0)
            assert not t.is_alive()
            assert len(results) == 3
            for out in results:
                np.testing.assert_array_equal(out, ref)
