"""NAS tests: search space, supernet mechanics, and the DNAS loop (§3.4)."""

import numpy as np
import pytest

from repro.datasets import PatchSampler, SyntheticDataset
from repro.hw import ETHOS_N78_4TOPS
from repro.nas import (
    KERNEL_CHOICES,
    SKIP,
    DNASConfig,
    Genotype,
    MixedBlock,
    NasSESR,
    SESRSupernet,
    genotype_latency_ms,
    is_residual_capable,
    latency_table,
    op_latency_ms,
    realize,
    search,
    sesr_m_genotype,
)
from repro.nn import Tensor, no_grad


def small_genotype(**kwargs):
    defaults = dict(
        scale=2, f=8, first_kernel=(5, 5),
        block_kernels=((3, 3), (2, 2), SKIP, (3, 2)),
        last_kernel=(3, 3),
    )
    defaults.update(kwargs)
    return Genotype(**defaults)


class TestSearchSpace:
    def test_residual_capability(self):
        assert is_residual_capable((3, 3))
        assert is_residual_capable((5, 5))
        assert not is_residual_capable((2, 2))
        assert not is_residual_capable((3, 2))
        assert not is_residual_capable(SKIP)

    def test_genotype_active_blocks(self):
        g = small_genotype()
        assert len(g.active_blocks) == 3  # one SKIP removed

    def test_genotype_specs_and_params(self):
        g = small_genotype()
        specs = g.specs()
        convs = [s for s in specs if s.kind == "conv"]
        assert len(convs) == 3 + 2
        # first 5×5: 25·1·8, blocks: 9·64 + 4·64 + 6·64, last 3×3: 9·8·4
        expected = 25 * 8 + (9 + 4 + 6) * 64 + 9 * 8 * 4
        assert g.num_parameters() == expected

    def test_describe(self):
        text = small_genotype().describe()
        assert "skip" in text and "2x2" in text and "first=5x5" in text

    def test_sesr_m_genotype_matches_paper_params(self):
        g = sesr_m_genotype(5, f=16, scale=2)
        assert g.num_parameters() == 13520  # SESR-M5


class TestNasSESR:
    def test_shapes_with_mixed_kernels(self, rng):
        model = NasSESR(small_genotype(), expansion=16, seed=2)
        x = Tensor(rng.standard_normal((1, 8, 10, 1)).astype(np.float32))
        with no_grad():
            assert model(x).shape == (1, 16, 20, 1)

    def test_residuals_only_on_odd_kernels(self):
        model = NasSESR(small_genotype(), expansion=16)
        residual_flags = [blk.residual for blk in model.blocks]
        assert residual_flags == [True, False, False]  # 3×3, 2×2, 3×2

    def test_scale4(self, rng):
        g = small_genotype(scale=4)
        model = NasSESR(g, expansion=16)
        x = Tensor(rng.standard_normal((1, 6, 6, 1)).astype(np.float32))
        with no_grad():
            assert model(x).shape == (1, 24, 24, 1)


class TestMixedBlock:
    def test_soft_forward_is_convex_combination(self, rng):
        blk = MixedBlock(4, 4, ((3, 3), SKIP), expansion=8,
                         rng=np.random.default_rng(0))
        x = Tensor(rng.standard_normal((1, 5, 5, 4)).astype(np.float32))
        with no_grad():
            mixed = blk(x, temperature=1.0).data
            op_out = blk.ops[0](x).data
        w = blk.choice_probs()
        np.testing.assert_allclose(
            mixed, w[0] * op_out + w[1] * x.data, atol=1e-5
        )

    def test_skip_needs_matching_channels(self):
        with pytest.raises(ValueError, match="skip"):
            MixedBlock(2, 4, ((3, 3), SKIP), expansion=8)

    def test_probs_sum_to_one(self):
        blk = MixedBlock(4, 4, KERNEL_CHOICES, expansion=8)
        assert blk.choice_probs().sum() == pytest.approx(1.0)

    def test_best_choice_follows_alpha(self):
        blk = MixedBlock(4, 4, ((3, 3), (2, 2)), expansion=8)
        blk.alpha.data[:] = [0.0, 5.0]
        assert blk.best_choice() == (2, 2)


class TestLatencyModel:
    def test_skip_is_free(self):
        assert op_latency_ms(SKIP, 8, 8, ETHOS_N78_4TOPS, 100, 100) == 0.0

    def test_smaller_kernels_are_faster(self):
        args = (16, 16, ETHOS_N78_4TOPS, 200, 200)
        l33 = op_latency_ms((3, 3), *args)
        l22 = op_latency_ms((2, 2), *args)
        l21 = op_latency_ms((2, 1), *args)
        assert l21 < l22 < l33

    def test_latency_table_shapes(self):
        net = SESRSupernet(scale=2, f=8, slots=2, expansion=8)
        tables = latency_table(net, ETHOS_N78_4TOPS, 100, 100)
        assert len(tables) == 4  # first + 2 slots + last
        assert all(len(t) == len(b.choices)
                   for t, b in zip(tables, net.mixed_blocks()))

    def test_genotype_latency_orders_by_size(self):
        small = small_genotype()
        big = sesr_m_genotype(5, f=8)
        assert genotype_latency_ms(small, ETHOS_N78_4TOPS, 200, 200) < \
            genotype_latency_ms(big, ETHOS_N78_4TOPS, 200, 200)


class TestDNAS:
    def _sampler(self):
        ds = SyntheticDataset("div2k", n_images=3, size=(48, 48), scale=2, seed=5)
        return PatchSampler(ds, scale=2, patch_size=10, crops_per_image=4,
                            batch_size=3, seed=6)

    def test_search_runs_and_derives(self):
        net = SESRSupernet(scale=2, f=8, slots=2, expansion=8, seed=1)
        cfg = DNASConfig(steps=6, latency_res=(50, 50))
        result = search(net, self._sampler(), cfg)
        assert len(result.loss_history) == 6
        assert len(result.probs) == 4
        assert result.genotype.scale == 2
        model = realize(result.genotype, expansion=8)
        x = Tensor(np.zeros((1, 8, 8, 1), dtype=np.float32))
        with no_grad():
            assert model(x).shape == (1, 16, 16, 1)

    def test_latency_pressure_shrinks_architecture(self):
        """With a crushing latency penalty, the search prefers cheap ops."""
        def run(lam):
            net = SESRSupernet(scale=2, f=8, slots=3, expansion=8, seed=3)
            cfg = DNASConfig(steps=25, latency_weight=lam, latency_res=(100, 100))
            res = search(net, self._sampler(), cfg)
            return genotype_latency_ms(res.genotype, ETHOS_N78_4TOPS, 200, 200)

        assert run(5.0) <= run(0.0)

    def test_arch_and_weight_params_disjoint(self):
        net = SESRSupernet(scale=2, f=8, slots=2, expansion=8)
        arch = {id(p) for p in net.arch_parameters()}
        weights = {id(p) for p in net.weight_parameters()}
        assert not arch & weights
        assert len(arch) + len(weights) == len(net.parameters())


class TestNasCollapse:
    def test_searched_net_collapses_exactly(self, rng):
        from repro.nas.space import Genotype

        g = Genotype(scale=2, f=8, first_kernel=(3, 3),
                     block_kernels=((3, 3), (2, 2)), last_kernel=(3, 3))
        model = NasSESR(g, expansion=16, seed=4)
        collapsed = model.collapse()
        x = Tensor(rng.random((1, 9, 7, 1)).astype(np.float32))
        with no_grad():
            np.testing.assert_allclose(
                model(x).data, collapsed(x).data, atol=1e-5
            )

    def test_collapsed_searched_net_deploys(self):
        """The searched net flows through the same deployment path."""
        from repro.deploy import tiled_upscale
        from repro.nas.space import Genotype
        from repro.train import predict_image

        g = Genotype(scale=2, f=8, first_kernel=(3, 3),
                     block_kernels=((3, 3),), last_kernel=(3, 3))
        collapsed = NasSESR(g, expansion=16, seed=1).collapse()
        img = np.random.default_rng(0).random((20, 24)).astype(np.float32)
        full = predict_image(collapsed, img)
        tiled = tiled_upscale(collapsed, img, 2, tile=(10, 10), halo=4)
        np.testing.assert_allclose(tiled, full, atol=1e-6)
