"""API-surface meta-tests: public items are documented and importable."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.api",
    "repro.nn",
    "repro.core",
    "repro.datasets",
    "repro.metrics",
    "repro.train",
    "repro.deploy",
    "repro.hw",
    "repro.theory",
    "repro.nas",
    "repro.resilience",
    "repro.serve",
    "repro.dataplane",
    "repro.zoo",
    "repro.cli",
    "repro.utils",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_module_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20, name


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for attr in getattr(module, "__all__", []):
        assert hasattr(module, attr), f"{name}.__all__ lists missing {attr}"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_callables_documented(name):
    """Every public class/function reachable from __all__ has a docstring."""
    module = importlib.import_module(name)
    undocumented = []
    for attr in getattr(module, "__all__", []):
        obj = getattr(module, attr, None)
        if obj is None or not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if not (obj.__doc__ or "").strip():
            undocumented.append(attr)
    assert not undocumented, f"{name}: undocumented public items {undocumented}"


def test_public_methods_of_key_classes_documented():
    from repro.core import SESR, CollapsibleLinearBlock, FSRCNN
    from repro.hw import NPUSpec
    from repro.nn import Module, Tensor

    for cls in (Tensor, Module, CollapsibleLinearBlock, SESR, FSRCNN, NPUSpec):
        for name, member in vars(cls).items():
            if name.startswith("_") or not callable(member):
                continue
            assert (member.__doc__ or "").strip(), f"{cls.__name__}.{name}"


def test_version_exposed():
    import repro

    assert repro.__version__
