"""Model-zoo registry tests: our computed complexity columns must agree with
the paper's reported Tables 1–2 values, and factories must build runnable
models."""

import numpy as np
import pytest

import repro.zoo as zoo
from repro.nn import Tensor, no_grad


class TestRegistryContents:
    def test_all_table_rows_present(self):
        expected = {
            "Bicubic", "FSRCNN", "FSRCNN (our setup)", "MOREMNAS-C",
            "SESR-M3", "SESR-M5", "SESR-M7", "TPSR-NoGAN", "SESR-M11",
            "VDSR", "LapSRN", "BTSRN", "CARN-M", "MOREMNAS-B", "SESR-XL",
        }
        assert expected <= set(zoo.ZOO)

    def test_regimes(self):
        assert zoo.get("SESR-M5").regime == "small"
        assert zoo.get("SESR-M11").regime == "medium"
        assert zoo.get("SESR-XL").regime == "large"

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            zoo.get("SRGAN")

    def test_entries_for_scale(self):
        x2 = zoo.entries_for_scale(2)
        assert {"SESR-M5", "VDSR"} <= {e.name for e in x2}
        x4 = zoo.entries_for_scale(4)
        assert "MOREMNAS-C" not in {e.name for e in x4}  # ×2 only in paper
        small_x2 = zoo.entries_for_scale(2, regime="small")
        assert all(e.regime == "small" for e in small_x2)


class TestComputedColumnsMatchReported:
    @pytest.mark.parametrize("entry", zoo.modelled_entries(),
                             ids=lambda e: e.name)
    @pytest.mark.parametrize("scale", [2, 4])
    def test_params(self, entry, scale):
        reported = entry.reported_params_k.get(scale)
        if reported is None:
            pytest.skip("no reported value at this scale")
        computed = entry.computed_params(scale)
        assert computed == pytest.approx(reported * 1e3, rel=0.005)

    @pytest.mark.parametrize("entry", zoo.modelled_entries(),
                             ids=lambda e: e.name)
    @pytest.mark.parametrize("scale", [2, 4])
    def test_macs(self, entry, scale):
        reported = entry.reported_macs_g.get(scale)
        if reported is None:
            pytest.skip("no reported value at this scale")
        computed = entry.computed_macs_720p(scale)
        assert computed == pytest.approx(reported * 1e9, rel=0.01)

    def test_unmodelled_entries_return_none(self):
        entry = zoo.get("CARN-M")
        assert entry.computed_params(2) is None
        assert entry.computed_macs_720p(2) is None


class TestReportedQuality:
    def test_sesr_dominates_fsrcnn_in_paper_numbers(self):
        """Sanity on transcription: the paper's core claim must hold in the
        registry itself."""
        sesr = zoo.get("SESR-M5").reported_quality[2]
        fsrcnn = zoo.get("FSRCNN").reported_quality[2]
        for ds in ("set5", "set14", "bsd100", "urban100", "div2k"):
            assert sesr[ds][0] > fsrcnn[ds][0], ds

    def test_m11_close_to_vdsr(self):
        """SESR-M11 ~ VDSR quality at 97× fewer MACs (paper §5.2)."""
        m11 = zoo.get("SESR-M11")
        vdsr = zoo.get("VDSR")
        for scale in (2, 4):
            for ds in ("set5", "set14", "bsd100"):
                gap = vdsr.reported_quality[scale][ds][0] - \
                    m11.reported_quality[scale][ds][0]
                assert gap < 0.15, (scale, ds)
        ratio = vdsr.reported_macs_g[2] / m11.reported_macs_g[2]
        assert ratio == pytest.approx(97, rel=0.05)

    def test_x4_macs_savings_vs_fsrcnn(self):
        """SESR-M5 ×4 needs ~4.4× fewer MACs than FSRCNN (paper §5.2)."""
        ratio = zoo.get("FSRCNN").reported_macs_g[4] / \
            zoo.get("SESR-M5").reported_macs_g[4]
        assert ratio == pytest.approx(4.4, rel=0.05)

    def test_bicubic_is_worst_everywhere(self):
        bicubic = zoo.get("Bicubic")
        for scale in (2, 4):
            for other in ("FSRCNN", "SESR-M5", "VDSR"):
                entry = zoo.get(other)
                for ds, (p, s) in entry.reported_quality[scale].items():
                    if p is None:
                        continue
                    assert p > bicubic.reported_quality[scale][ds][0]


class TestFactories:
    @pytest.mark.parametrize("name", ["SESR-M3", "SESR-M5", "FSRCNN"])
    def test_factory_builds_runnable_model(self, name, rng):
        entry = zoo.get(name)
        model = entry.factory(scale=2, seed=0)
        x = Tensor(rng.standard_normal((1, 8, 8, 1)).astype(np.float32))
        with no_grad():
            assert model(x).shape == (1, 16, 16, 1)

    def test_sesr_factory_params_match_spec(self):
        entry = zoo.get("SESR-M5")
        model = entry.factory(scale=2)
        assert model.collapsed_num_parameters() == entry.computed_params(2)
