"""Resumable-training checkpoint tests."""

import os

import numpy as np
import pytest

from repro.core import SESR
from repro.datasets import PatchSampler, SyntheticDataset
from repro.nn import SGD, Adam, Parameter
from repro.train import Trainer, load_checkpoint, load_extra, save_checkpoint


def _sampler(seed=3):
    ds = SyntheticDataset("div2k", n_images=2, size=(48, 48), scale=2, seed=1)
    return PatchSampler(ds, scale=2, patch_size=12, crops_per_image=8,
                        batch_size=4, seed=seed)


class TestCheckpointRoundtrip:
    def test_resume_is_bit_exact(self, tmp_path):
        """Train 4 steps, checkpoint, train 4 more — identical to a fresh
        model resumed from the checkpoint and trained on the same batches."""
        batches = list(_sampler().batches(2))
        m1 = SESR(scale=2, f=8, m=1, expansion=16, seed=0)
        t1 = Trainer(m1, lr=1e-3)
        for b in batches[:4]:
            t1.train_step(*b)
        path = os.path.join(tmp_path, "ck.npz")
        save_checkpoint(path, m1, t1.optimizer, step=4)
        for b in batches[4:]:
            t1.train_step(*b)

        m2 = SESR(scale=2, f=8, m=1, expansion=16, seed=42)
        t2 = Trainer(m2, lr=1e-3)
        assert load_checkpoint(path, m2, t2.optimizer) == 4
        for b in batches[4:]:
            t2.train_step(*b)
        for p1, p2 in zip(m1.parameters(), m2.parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_model_only_checkpoint(self, tmp_path):
        model = SESR(scale=2, f=8, m=1, expansion=16, seed=0)
        path = os.path.join(tmp_path, "m.npz")
        save_checkpoint(path, model)
        clone = SESR(scale=2, f=8, m=1, expansion=16, seed=9)
        assert load_checkpoint(path, clone) == 0
        np.testing.assert_array_equal(
            model.first.w_expand.data, clone.first.w_expand.data
        )

    def test_missing_optimizer_state_raises(self, tmp_path):
        model = SESR(scale=2, f=8, m=1, expansion=16, seed=0)
        path = os.path.join(tmp_path, "m.npz")
        save_checkpoint(path, model)
        opt = Adam(model.parameters())
        with pytest.raises(KeyError, match="optimizer"):
            load_checkpoint(path, model, opt)

    def test_optimizer_kind_mismatch_raises(self, tmp_path):
        p = Parameter(np.zeros(3))
        sgd = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.ones(3)
        sgd.step()

        class Holder:
            def state_dict(self):
                return {"p": p.data}

            def load_state_dict(self, s, strict=True):
                pass

        path = os.path.join(tmp_path, "s.npz")
        save_checkpoint(path, Holder(), sgd)
        with pytest.raises(TypeError, match="sgd"):
            load_checkpoint(path, Holder(), Adam([p]))

    def test_sgd_velocity_roundtrip(self, tmp_path):
        p = Parameter(np.zeros(3))
        sgd = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.ones(3)
        sgd.step()

        class Holder:
            def state_dict(self):
                return {"p": p.data.copy()}

            def load_state_dict(self, s, strict=True):
                p.data[...] = s["p"]

        path = os.path.join(tmp_path, "s.npz")
        save_checkpoint(path, Holder(), sgd, step=1)
        p2 = Parameter(np.zeros(3))
        sgd2 = SGD([p2], lr=0.5, momentum=0.9)
        load_checkpoint(path, Holder(), sgd2)
        assert sgd2.lr == pytest.approx(0.1)
        np.testing.assert_allclose(sgd2._velocity[0], sgd._velocity[0])

    def test_extra_payload(self, tmp_path):
        model = SESR(scale=2, f=8, m=1, expansion=16, seed=0)
        path = os.path.join(tmp_path, "e.npz")
        save_checkpoint(path, model, extra={"best_psnr": np.float64(31.7)})
        extra = load_extra(path)
        assert extra["best_psnr"] == pytest.approx(31.7)

    def test_unsupported_optimizer_raises(self, tmp_path):
        from repro.nn.optim import Optimizer

        class Weird(Optimizer):
            def step(self):
                pass

        model = SESR(scale=2, f=8, m=1, expansion=16, seed=0)
        with pytest.raises(TypeError):
            save_checkpoint(os.path.join(tmp_path, "w.npz"), model,
                            Weird(model.parameters(), lr=0.1))
