"""Trainer / experiment-harness tests."""

import numpy as np
import pytest

from repro.core import SESR
from repro.datasets import PatchSampler, SyntheticDataset, bicubic_upscale
from repro.train import (
    ExperimentConfig,
    Trainer,
    bicubic_baseline,
    evaluate_fn,
    evaluate_model,
    make_train_sampler,
    predict_image,
    run_experiment,
)


def tiny_model(seed=0):
    return SESR(scale=2, f=8, m=1, expansion=16, seed=seed)


def tiny_dataset():
    return SyntheticDataset("set5", n_images=2, size=(48, 48), scale=2, seed=4)


def tiny_sampler(seed=0):
    return PatchSampler(tiny_dataset(), scale=2, patch_size=12,
                        crops_per_image=4, batch_size=4, seed=seed)


class TestTrainer:
    def test_loss_decreases(self):
        trainer = Trainer(tiny_model(), lr=2e-3)
        result = trainer.fit(tiny_sampler(), epochs=8)
        first = np.mean(result.loss_history[:3])
        last = np.mean(result.loss_history[-3:])
        assert last < first

    def test_unknown_loss_raises(self):
        with pytest.raises(KeyError):
            Trainer(tiny_model(), loss="perceptual")

    def test_eval_hook_called(self):
        trainer = Trainer(tiny_model(), lr=1e-3)
        calls = []
        result = trainer.fit(
            tiny_sampler(), epochs=2,
            eval_every=2, eval_fn=lambda: calls.append(1) or 0.5,
        )
        assert len(result.val_history) == result.steps // 2
        assert calls

    def test_log_hook(self):
        steps_seen = []
        Trainer(tiny_model(), lr=1e-3).fit(
            tiny_sampler(), epochs=1, log_fn=lambda step, loss: steps_seen.append(step)
        )
        assert steps_seen == list(range(1, len(steps_seen) + 1))

    def test_grad_clip_limits_norm(self):
        model = tiny_model()
        trainer = Trainer(model, lr=1e-3, grad_clip=1e-6)
        lr_b, hr_b = next(tiny_sampler().batches())
        trainer.train_step(lr_b, hr_b)
        total = sum(float((p.grad ** 2).sum()) for p in model.parameters()
                    if p.grad is not None)
        assert np.sqrt(total) <= 1e-6 * 1.01

    def test_deterministic_given_seeds(self):
        def run():
            trainer = Trainer(tiny_model(seed=3), lr=1e-3)
            return trainer.fit(tiny_sampler(seed=5), epochs=1).loss_history

        np.testing.assert_allclose(run(), run())


class TestEvaluation:
    def test_predict_image_shape_and_range(self):
        lr, hr = tiny_dataset()[0]
        pred = predict_image(tiny_model(), lr)
        assert pred.shape == hr.shape
        assert pred.min() >= 0.0 and pred.max() <= 1.0

    def test_evaluate_model_keys(self):
        metrics = evaluate_model(tiny_model(), tiny_dataset())
        assert set(metrics) == {"psnr", "ssim"}
        assert 0 < metrics["ssim"] <= 1
        assert metrics["psnr"] > 5

    def test_evaluate_fn_bicubic(self):
        ds = tiny_dataset()
        metrics = evaluate_fn(lambda img: bicubic_upscale(img, 2), ds)
        assert metrics["psnr"] > 20  # bicubic is a decent baseline

    def test_bicubic_baseline_dict(self):
        suites = {"set5": tiny_dataset()}
        out = bicubic_baseline(suites, scale=2)
        assert "set5" in out and "psnr" in out["set5"]


class TestExperimentRunner:
    def test_run_experiment_end_to_end(self):
        cfg = ExperimentConfig(
            epochs=2, train_images=3, train_size=(48, 48),
            patch_size=12, crops_per_image=4, batch_size=4,
        )
        suites = {"set5": tiny_dataset()}
        res = run_experiment(tiny_model(), cfg, suites)
        assert res.train.steps == 2 * (3 * 4 // 4)
        assert res.psnr("set5") > 5
        assert 0 < res.ssim("set5") <= 1

    def test_experiment_deterministic(self):
        cfg = ExperimentConfig(epochs=1, train_images=2, train_size=(48, 48),
                               patch_size=12, crops_per_image=4, batch_size=4)

        def run():
            return run_experiment(tiny_model(seed=1), cfg,
                                  {"set5": tiny_dataset()}).psnr("set5")

        assert run() == pytest.approx(run())

    def test_make_train_sampler_respects_config(self):
        cfg = ExperimentConfig(train_images=5, batch_size=4, crops_per_image=8)
        sampler = make_train_sampler(cfg)
        assert sampler.steps_per_epoch() == 5 * 8 // 4


class TestEarlyStopping:
    def test_stops_after_patience_exhausted(self):
        trainer = Trainer(tiny_model(), lr=1e-3)
        vals = iter([1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3])
        result = trainer.fit(
            tiny_sampler(), epochs=10,
            eval_every=1, eval_fn=lambda: next(vals),
            early_stop_patience=3,
        )
        # First eval sets the best; three non-improving evals then stop.
        assert result.steps == 4
        assert len(result.val_history) == 4

    def test_improving_metric_never_stops(self):
        trainer = Trainer(tiny_model(), lr=1e-3)
        counter = iter(range(1000))
        result = trainer.fit(
            tiny_sampler(), epochs=2,
            eval_every=1, eval_fn=lambda: float(next(counter)),
            early_stop_patience=2,
        )
        assert result.steps == 2 * tiny_sampler().steps_per_epoch()


class TestNewLayers:
    def test_linear_and_flatten(self):
        from repro.nn import Flatten, Linear, Sequential, Tensor

        net = Sequential(Flatten(), Linear(12, 3))
        x = Tensor(np.random.default_rng(0).random((2, 2, 2, 3)).astype(np.float32))
        assert net(x).shape == (2, 3)

    def test_linear_gradcheck(self):
        from repro.nn import Linear, Tensor
        from tests.conftest import check_gradient

        layer = Linear(4, 3, rng=np.random.default_rng(1))
        w64 = layer.weight.data.astype(np.float64)
        b64 = layer.bias.data.astype(np.float64)
        x = np.random.default_rng(2).standard_normal((5, 4))
        check_gradient(
            lambda xt, wt, bt: ((xt @ wt + bt) ** 2).sum(), [x, w64, b64]
        )

    def test_dropout_modes(self):
        from repro.nn import Dropout, Tensor

        drop = Dropout(0.5, seed=3)
        x = Tensor(np.ones((4, 100), dtype=np.float32))
        train_out = drop(x).data
        assert (train_out == 0).any()
        # Inverted scaling keeps the expectation ~1.
        assert abs(train_out.mean() - 1.0) < 0.15
        drop.eval()
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_dropout_validation(self):
        from repro.nn import Dropout

        with pytest.raises(ValueError):
            Dropout(1.0)
