"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-4) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` w.r.t. ``x`` in place."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f()
        x[idx] = orig - eps
        f_minus = f()
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
    return grad


def check_gradient(build_loss, arrays, atol: float = 1e-5) -> None:
    """Verify autograd gradients of ``build_loss`` against finite differences.

    ``build_loss`` receives float64 Tensors (one per array in ``arrays``) and
    returns a scalar Tensor.
    """
    tensors = [Tensor(a, requires_grad=True, dtype=np.float64) for a in arrays]
    loss = build_loss(*tensors)
    loss.backward()

    for arr, tensor in zip(arrays, tensors):
        def f(arr=arr):
            consts = [Tensor(a, dtype=np.float64) for a in arrays]
            return float(build_loss(*consts).data)

        num = numerical_gradient(f, arr)
        assert tensor.grad is not None, "missing gradient"
        np.testing.assert_allclose(tensor.grad, num, atol=atol, rtol=1e-4)
