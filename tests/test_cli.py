"""CLI tests (in-process via repro.cli.main)."""

import os

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets import load_image, save_image


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        sub = next(a for a in parser._actions
                   if isinstance(a, type(parser._actions[-1]))
                   and hasattr(a, "choices") and a.choices)
        assert {"train", "eval", "upscale", "collapse", "compile",
                "estimate", "nas", "serve", "profile"} <= set(sub.choices)

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestResolutionParsing:
    def test_valid_resolution(self):
        args = build_parser().parse_args(
            ["estimate", "--resolution", "640x360"])
        assert args.resolution == (360, 640)

    @pytest.mark.parametrize("bad", ["1920", "ax b", "1920x", "x1080",
                                     "axb", "0x100", "-2x100", "1x2x3"])
    def test_malformed_resolution_is_an_argparse_error(self, bad, capsys):
        with pytest.raises(SystemExit) as err:
            build_parser().parse_args(["estimate", "--resolution", bad])
        assert err.value.code == 2  # argparse usage error, not a traceback
        assert "resolution" in capsys.readouterr().err


class TestServeErrors:
    def test_unknown_model_is_a_clean_error(self, capsys):
        assert main(["serve", "--model", "NOPE", "--port", "0"]) == 2
        err = capsys.readouterr().err
        assert "unknown model 'NOPE'" in err
        assert "SESR-M5" in err  # the error lists what *is* deployable


class TestServeFlags:
    def test_batching_flags_have_safe_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.batch_window_ms == 0.0  # coalescing opt-in
        assert args.max_batch == 8

    def test_serve_builds_and_prints_an_engine_config(self, capsys,
                                                      monkeypatch):
        # Short-circuit serve_forever so cmd_serve starts, prints its
        # config banner, and drains immediately.
        from repro.serve import SRServer

        monkeypatch.setattr(
            SRServer, "serve_forever",
            lambda self, *a, **k: (_ for _ in ()).throw(KeyboardInterrupt),
        )
        assert main(["serve", "--model", "M3", "--port", "0",
                     "--workers", "1", "--batch-window-ms", "4",
                     "--tile", "32"]) == 0
        out = capsys.readouterr().out
        assert "workers 1" in out and "tile 32x32" in out
        assert "cross-request window 4 ms" in out
        assert "POST /v1/upscale" in out


class TestEstimate:
    def test_estimate_runs(self, capsys):
        assert main(["estimate", "--resolution", "640x360"]) == 0
        out = capsys.readouterr().out
        assert "SESR-M5" in out and "FSRCNN" in out
        assert "MACs" in out

    def test_estimate_with_tile(self, capsys):
        assert main(["estimate", "--resolution", "640x360",
                     "--tile", "90"]) == 0
        assert "tiled" in capsys.readouterr().out


class TestTrainEvalCollapse:
    def test_train_save_collapse_upscale(self, tmp_path, capsys):
        ckpt = os.path.join(tmp_path, "m.npz")
        rc = main([
            "train", "--model", "M3", "--epochs", "1", "--images", "2",
            "--patch", "12", "--out", ckpt,
        ])
        assert rc == 0 and os.path.exists(ckpt)

        collapsed = os.path.join(tmp_path, "c.npz")
        assert main(["collapse", "--model", "M3", "--ckpt", ckpt,
                     "--out", collapsed]) == 0
        assert os.path.exists(collapsed)

        # Upscale a grey and a colour image, full-frame and tiled.
        rng = np.random.default_rng(0)
        grey = os.path.join(tmp_path, "g.pgm")
        save_image(grey, rng.random((24, 20)).astype(np.float32))
        out = os.path.join(tmp_path, "g2.pgm")
        assert main(["upscale", "--model", "M3", "--ckpt", ckpt,
                     "--input", grey, "--output", out]) == 0
        assert load_image(out).shape == (48, 40)

        colour = os.path.join(tmp_path, "c.ppm")
        save_image(colour, rng.random((16, 16, 3)).astype(np.float32))
        out2 = os.path.join(tmp_path, "c2.ppm")
        assert main(["upscale", "--model", "M3", "--ckpt", ckpt,
                     "--input", colour, "--output", out2,
                     "--tile", "8"]) == 0
        assert load_image(out2).shape == (32, 32, 3)


class TestNas:
    def test_nas_command_runs(self, capsys):
        assert main(["nas", "--slots", "2", "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "found:" in out and "latency" in out


class TestEvalOnFolder:
    def test_eval_on_real_images(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        for i in range(2):
            save_image(os.path.join(tmp_path, f"i{i}.pgm"),
                       rng.random((32, 32)).astype(np.float32))
        assert main(["eval", "--model", "M3", "--data", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "PSNR" in out and str(tmp_path) in out


class TestUpscaleEnsemble:
    def test_upscale_with_ensemble(self, tmp_path):
        rng = np.random.default_rng(1)
        src = os.path.join(tmp_path, "in.pgm")
        save_image(src, rng.random((16, 16)).astype(np.float32))
        dst = os.path.join(tmp_path, "out.pgm")
        assert main(["upscale", "--model", "M3", "--input", src,
                     "--output", dst, "--ensemble"]) == 0
        assert load_image(dst).shape == (32, 32)


class TestProfile:
    def test_profile_both_matches_fig3_analytic(self, tmp_path, capsys):
        """Measured expanded/collapsed MAC ratio tracks §3.3 within 5%."""
        jsonl = os.path.join(tmp_path, "ops.jsonl")
        assert main(["profile", "--model", "M5", "--scale", "2",
                     "--size", "8", "--jsonl", jsonl]) == 0
        out = capsys.readouterr().out
        assert "expanded" in out and "collapsed" in out
        assert "conv2d" in out

        import json
        import re

        rows = [json.loads(line)
                for line in open(jsonl, encoding="utf-8")]
        macs = {"expanded": 0, "collapsed": 0}
        for row in rows:
            macs[row["mode"]] += row["macs"]

        f, m, p, px, s = 16, 5, 256, 8 * 8, 2
        expanded = px * ((25 * 1 * p + p * f)
                         + m * (9 * f * p + p * f)
                         + (25 * f * p + p * s * s))
        collapse_cost = (25 * 1 * p * f + m * 9 * f * p * f
                         + 25 * f * p * s * s)
        collapsed = px * (25 * 1 * f + m * 9 * f * f
                          + 25 * f * s * s) + collapse_cost
        assert macs["expanded"] == expanded
        assert macs["collapsed"] == pytest.approx(collapsed, rel=0.05)
        ratio = macs["expanded"] / macs["collapsed"]
        assert ratio == pytest.approx(expanded / collapsed, rel=0.05)

        printed = re.search(r"MAC ratio: ([\d.]+)x", out)
        assert printed
        assert float(printed.group(1)) == pytest.approx(ratio, abs=0.01)

    def test_profile_deployed_int8(self, capsys):
        assert main(["profile", "--model", "M3", "--scale", "2",
                     "--size", "8", "--mode", "deployed",
                     "--precision", "int8"]) == 0
        out = capsys.readouterr().out
        assert "deployed (int8)" in out
        assert "conv2d" in out and "TOTAL" in out
