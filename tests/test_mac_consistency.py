"""One MAC accounting across three independent implementations.

For every zoo variant the analytic ``LayerSpec`` counter, the compiler IR,
and the runtime profiler must report the *same* multiply-accumulate count:
``count_macs`` computes it from closed-form specs, ``Graph.macs`` from the
captured (and optimised — fusion must not change accounting) graph, and the
profiler measures what the compiled executor actually dispatched.
"""

import numpy as np
import pytest

from repro.compile import capture, compile_model
from repro.core import FSRCNN, SESR
from repro.metrics import count_macs, specs_from_module
from repro.obs import Profiler, profile

H, W = 16, 16
ZOO = [(name, scale)
       for name in ("M3", "M5", "M7", "M11", "XL")
       for scale in (2, 4)]


def _profiled_macs(compiled) -> int:
    rng = np.random.default_rng(0)
    x = rng.random((1, H, W, 1)).astype(np.float32)
    prof = Profiler()
    with profile(prof):
        compiled.run(x)
    return prof.total_macs()


class TestSESRZooAgreement:
    @pytest.mark.parametrize("name,scale", ZOO)
    def test_analytic_ir_and_profiler_agree(self, name, scale):
        model = SESR.from_name(name, scale=scale, expansion=16)
        analytic = count_macs(specs_from_module(model), H, W)

        collapsed = model.collapse()
        captured = capture(collapsed)
        compiled = compile_model(collapsed)
        assert captured.macs(H, W) == analytic
        # Fusion rewrites the graph but must not change the accounting.
        assert compiled.graph.macs(H, W) == analytic
        assert _profiled_macs(compiled) == analytic


class TestFSRCNNAgreement:
    def test_analytic_and_ir_agree(self):
        model = FSRCNN(scale=2)
        analytic = count_macs(specs_from_module(model), H, W)
        assert capture(model).macs(H, W) == analytic

    @pytest.mark.parametrize("scale", [2, 4])
    def test_profiler_measures_the_subpixel_deconv_saving(self, scale):
        # The analytic convention charges the 9x9 deconv per *HR* output
        # pixel; the executor lowers it to the sub-pixel decomposition,
        # which computes the same kernel taps once per *LR* pixel — an
        # exact s² MAC saving on the deconv, none elsewhere.
        model = FSRCNN(scale=scale, d=20, s=8, m=2)
        specs = specs_from_module(model)
        analytic = count_macs(specs, H, W)
        deconv = sum(s.macs(H, W) for s in specs if s.kind == "deconv")
        expected = analytic - deconv + deconv // (scale * scale)
        assert _profiled_macs(compile_model(model)) == expected
