"""Examples sanity: every example script parses and exposes a main()."""

import ast
import os

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")
EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


def test_expected_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_parses_and_has_main(name):
    path = os.path.join(EXAMPLES_DIR, name)
    with open(path) as fh:
        source = fh.read()
    tree = ast.parse(source, filename=name)
    # Module docstring with a "Run:" line (the examples contract).
    doc = ast.get_docstring(tree)
    assert doc and "Run:" in doc, f"{name} missing runnable docstring"
    functions = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in functions, f"{name} has no main()"
    # __main__ guard present.
    assert "__main__" in source


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_imports_resolve(name):
    """All repro imports used by the example actually exist."""
    path = os.path.join(EXAMPLES_DIR, name)
    with open(path) as fh:
        tree = ast.parse(fh.read(), filename=name)
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and \
                node.module.startswith("repro"):
            module = __import__(node.module, fromlist=[a.name for a in node.names])
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{name}: {node.module}.{alias.name} does not exist"
                )
