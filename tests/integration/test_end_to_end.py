"""Integration tests spanning the whole stack: train → collapse → deploy."""

import os

import numpy as np
import pytest

from repro.core import SESR, FSRCNN
from repro.datasets import SyntheticDataset, benchmark_suites
from repro.hw import ETHOS_N78_4TOPS, estimate, graph_from_specs
from repro.metrics import specs_from_module
from repro.nn import load_state, save_state
from repro.train import (
    ExperimentConfig,
    evaluate_model,
    predict_image,
    run_experiment,
)

pytestmark = pytest.mark.integration

CFG = ExperimentConfig(
    epochs=6, train_images=6, train_size=(64, 64),
    patch_size=16, crops_per_image=8, batch_size=4, lr=2e-3,
)


def _suites():
    return benchmark_suites(2, names=("set5",), size=(64, 64), n_images=3)


class TestTrainCollapseDeploy:
    def test_full_pipeline(self):
        """Train a small SESR, collapse it, verify quality transfers and the
        collapsed net maps onto the NPU estimator."""
        model = SESR(scale=2, f=8, m=2, expansion=32, seed=0)
        suites = _suites()
        result = run_experiment(model, CFG, suites)
        trained_psnr = result.psnr("set5")

        collapsed = model.collapse()
        collapsed_metrics = evaluate_model(collapsed, suites["set5"])
        assert collapsed_metrics["psnr"] == pytest.approx(trained_psnr, abs=0.01)

        # The collapsed network deploys on the NPU model.
        graph = graph_from_specs("trained", specs_from_module(collapsed), 270, 480)
        report = estimate(graph, ETHOS_N78_4TOPS)
        assert report.runtime_sec > 0 and report.total_macs > 0

    def test_training_improves_over_init(self):
        suites = _suites()
        model = SESR(scale=2, f=8, m=2, expansion=32, seed=0)
        before = evaluate_model(model, suites["set5"])["psnr"]
        run_experiment(model, CFG, suites={})
        after = evaluate_model(model, suites["set5"])["psnr"]
        assert after > before + 1.0

    def test_checkpoint_roundtrip_through_training(self, tmp_path):
        model = SESR(scale=2, f=8, m=1, expansion=16, seed=0)
        run_experiment(model, ExperimentConfig(
            epochs=1, train_images=2, train_size=(48, 48),
            patch_size=12, crops_per_image=4, batch_size=4,
        ))
        path = os.path.join(tmp_path, "sesr.npz")
        save_state(model, path)
        clone = SESR(scale=2, f=8, m=1, expansion=16, seed=99)
        load_state(clone, path)
        x = np.random.default_rng(0).random((12, 12)).astype(np.float32)
        np.testing.assert_allclose(
            predict_image(model, x), predict_image(clone, x), atol=1e-6
        )

    def test_x2_to_x4_transfer(self):
        """§5.1 protocol: ×4 training warm-starts from the ×2 trunk."""
        x2 = SESR(scale=2, f=8, m=1, expansion=16, seed=0)
        run_experiment(x2, ExperimentConfig(
            epochs=2, train_images=3, train_size=(48, 48),
            patch_size=12, crops_per_image=4, batch_size=4, lr=2e-3,
        ))
        x4 = x2.convert_scale(4)
        suite4 = SyntheticDataset("set5", n_images=2, size=(64, 64),
                                  scale=4, seed=4)
        fresh = SESR(scale=4, f=8, m=1, expansion=16, seed=50)
        # Both run; the transfer model must produce valid outputs.
        m_t = evaluate_model(x4, suite4)
        m_f = evaluate_model(fresh, suite4)
        assert m_t["psnr"] > 5 and m_f["psnr"] > 5


class TestCrossModelComparison:
    def test_sesr_and_fsrcnn_trainable_under_same_harness(self):
        suites = _suites()
        res_s = run_experiment(SESR(scale=2, f=8, m=2, expansion=32, seed=1),
                               CFG, suites)
        res_f = run_experiment(FSRCNN(scale=2, d=12, s=6, m=2, seed=1),
                               CFG, suites)
        # Both learn: final loss below initial.
        for res in (res_s, res_f):
            assert res.train.loss_history[-1] < res.train.loss_history[0]
