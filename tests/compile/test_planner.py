"""Buffer planner: liveness, colouring quality, and the no-overlap property."""

import numpy as np
import pytest

from repro.compile import (
    Graph,
    Node,
    PassManager,
    capture,
    fsrcnn_ir,
    plan_buffers,
    sesr_ir,
)
from repro.core import SESR

ZOO = [("M3", 2), ("M5", 2), ("M5", 4), ("M7", 2), ("M11", 2), ("M11", 4),
       ("XL", 2)]


def _chain(depth: int = 4, ch: int = 8) -> Graph:
    g = Graph("chain")
    g.add_input("input", ch)
    prev = "input"
    for i in range(depth):
        rng = np.random.default_rng(i)
        w = rng.standard_normal((3, 3, ch, ch)).astype(np.float32)
        g.add(Node(f"c{i}", "conv", [prev],
                   {"kernel": (3, 3), "cin": ch, "cout": ch, "weight": w}))
        prev = f"c{i}"
    g.set_outputs([prev])
    return g.infer_shapes()


class TestPlanQuality:
    def test_pure_chain_plan_hits_the_lower_bound(self):
        plan = plan_buffers(_chain())
        assert plan.planned_units == plan.lower_bound_units
        # A chain needs exactly two ping-pong buffers.
        assert len(plan.slot_units) == 2

    @pytest.mark.parametrize("name,scale", ZOO)
    def test_every_zoo_variant_beats_naive_allocation(self, name, scale):
        model = SESR.from_name(name, scale=scale, expansion=16).collapse()
        opt, _ = PassManager().run(capture(model))
        plan = plan_buffers(opt)
        assert plan.planned_units < plan.naive_units  # strictly better
        assert plan.planned_units >= plan.lower_bound_units  # and sound

    def test_sesr_m5_reaches_its_lower_bound(self):
        opt, _ = PassManager().run(sesr_ir(16, 5, 2))
        plan = plan_buffers(opt)
        assert plan.planned_units == plan.lower_bound_units

    def test_fsrcnn_plan(self):
        plan = plan_buffers(fsrcnn_ir(2))
        assert plan.lower_bound_units <= plan.planned_units < plan.naive_units


class TestPlanSoundness:
    @pytest.mark.parametrize("graph", [
        sesr_ir(16, 5, 2), sesr_ir(16, 11, 4), fsrcnn_ir(2),
        sesr_ir(16, 5, 4, two_stage_head=True),
    ], ids=["m5x2", "m11x4", "fsrcnn", "two-stage"])
    def test_slot_sharers_have_disjoint_live_intervals(self, graph):
        plan = plan_buffers(graph)
        index = {name: i for i, name in enumerate(graph.nodes)}
        consumers = graph.consumers()
        interval = {
            n: (index[n],
                max((index[c] for c in consumers[n]), default=index[n]))
            for n in plan.order
        }
        by_slot = {}
        for n, s in plan.slot_of.items():
            by_slot.setdefault(s, []).append(n)
        for members in by_slot.values():
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    (s0, e0), (s1, e1) = interval[a], interval[b]
                    assert e0 < s1 or e1 < s0, (a, b)

    def test_slots_fit_their_occupants(self):
        plan = plan_buffers(sesr_ir(16, 5, 4))
        for n, s in plan.slot_of.items():
            assert plan.node_units[n] <= plan.slot_units[s]

    def test_externals_are_not_planned(self):
        g = sesr_ir(16, 3, 2)
        plan = plan_buffers(g)
        assert "input" in plan.external
        assert g.outputs[0] in plan.external
        assert not set(plan.external) & set(plan.slot_of)


class TestByteMath:
    def test_bytes_scale_with_shape(self):
        plan = plan_buffers(sesr_ir(16, 5, 2))
        assert plan.arena_bytes(10, 12) == 4 * 10 * 12 * plan.planned_units
        assert plan.naive_bytes(10, 12, n=3) == (
            4 * 3 * 10 * 12 * plan.naive_units
        )

    def test_stats_keys(self):
        stats = plan_buffers(sesr_ir(16, 5, 2)).stats()
        assert set(stats) == {"planned_nodes", "slots", "planned_units",
                              "naive_units", "lower_bound_units"}
