"""Bitwise batch/single parity of ``CompiledModel.run(..., exact_batch=True)``.

The serving engine's cross-request batch coalescing promises byte-identical
output to unbatched serving.  That promise rests entirely on this layer:
a stacked batch through the planned executor must reproduce, per sample,
the exact bits of N independent single runs.  The naive stacked matmul
does NOT have this property (BLAS picks kernel blocking from the row
count), which is why exact mode issues the GEMM per sample — pinned here
against every deployable architecture the compiler captures.
"""

import numpy as np
import pytest

from repro.compile import compile_model
from repro.core import FSRCNN, SESR
from repro.core.carn import CARN_M
from repro.deploy import quantize_sesr
from repro.obs.profiler import profile
from repro.train import predict_image


def _models():
    return [
        ("M3-x2", SESR.from_name("M3", scale=2).collapse()),
        ("M5-x2", SESR.from_name("M5", scale=2).collapse()),
        ("M5-x4", SESR.from_name("M5", scale=4).collapse()),
        ("M5-int8", quantize_sesr(SESR.from_name("M5", scale=2).collapse())),
        ("FSRCNN", FSRCNN(scale=2, d=20, s=8, m=2)),
        ("CARN_M", CARN_M(scale=2, width=16, groups=4, blocks=2, depth=2)),
    ]


@pytest.mark.parametrize("label,model", _models(),
                         ids=[m[0] for m in _models()])
@pytest.mark.parametrize("shape", [(24, 24), (17, 23)])
def test_exact_batch_bitwise_matches_singles(label, model, shape):
    """Each sample of an exact batch == its own singleton run, bitwise."""
    compiled = compile_model(model)
    rng = np.random.default_rng(0)
    batch = rng.random((5,) + shape + (1,)).astype(np.float32)
    out = compiled.run(batch, exact_batch=True)
    for i in range(batch.shape[0]):
        single = compiled.run(batch[i:i + 1])
        assert np.array_equal(out[i], single[0]), f"{label} sample {i}"


def test_exact_batch_of_one_is_plain_run():
    compiled = compile_model(SESR.from_name("M3", scale=2).collapse())
    rng = np.random.default_rng(1)
    x = rng.random((1, 20, 20, 1)).astype(np.float32)
    assert np.array_equal(compiled.run(x, exact_batch=True), compiled.run(x))


def test_exact_batch_matches_predict_image():
    """End-to-end: batched tiles == the CLI's per-tile predict path."""
    compiled = compile_model(SESR.from_name("M5", scale=2).collapse())
    rng = np.random.default_rng(2)
    tiles = rng.random((4, 28, 28)).astype(np.float32)
    out = np.clip(
        compiled.run(tiles[..., None], exact_batch=True)[..., 0], 0.0, 1.0
    )
    for i in range(4):
        assert np.array_equal(out[i], predict_image(compiled, tiles[i]))


@pytest.mark.parametrize("label,model", _models(),
                         ids=[m[0] for m in _models()])
def test_blocked_backend_is_exact_with_one_stacked_gemm(label, model):
    """The tentpole contract: with ``gemm_backend="blocked"`` an exact
    batch is ONE stacked GEMM per conv (not one per sample) and every
    sample still matches its own singleton run bitwise."""
    compiled = compile_model(model, gemm_backend="blocked")
    rng = np.random.default_rng(0)
    batch = rng.random((5, 21, 19, 1)).astype(np.float32)
    with profile() as prof:
        out = compiled.run(batch, exact_batch=True)
    ops = prof.stats()
    convs = ops["gemm.blocked"].calls
    assert convs > 0
    assert "gemm.blas" not in ops  # the whole plan runs blocked
    # One stacked GEMM per conv for the 5-sample batch: a second profiled
    # singleton run must record exactly the same number of GEMM calls.
    with profile() as prof:
        compiled.run(batch[:1], exact_batch=True)
    assert prof.stats()["gemm.blocked"].calls == convs, label
    for i in range(batch.shape[0]):
        single = compiled.run(batch[i:i + 1])
        assert np.array_equal(out[i], single[0]), f"{label} sample {i}"


def test_blas_exact_mode_pays_one_gemm_per_sample():
    """Documents the cost the blocked kernel removes: exact mode under
    blas multiplies GEMM count by the batch size."""
    compiled = compile_model(SESR.from_name("M5", scale=2).collapse())
    rng = np.random.default_rng(4)
    batch = rng.random((4, 20, 20, 1)).astype(np.float32)
    with profile() as prof:
        compiled.run(batch[:1], exact_batch=True)
    per_sample = prof.stats()["gemm.blas"].calls
    with profile() as prof:
        compiled.run(batch, exact_batch=True)
    assert prof.stats()["gemm.blas"].calls == 4 * per_sample


def test_backend_switch_round_trips_bitwise():
    """blas → blocked → blas returns the original bits (re-planning is
    stateless; the blocked weights transpose is not destructive)."""
    compiled = compile_model(SESR.from_name("M3", scale=2).collapse())
    rng = np.random.default_rng(5)
    x = rng.random((1, 18, 18, 1)).astype(np.float32)
    before = compiled.run(x)
    compiled.set_gemm_backend("blocked")
    blocked = compiled.run(x)
    compiled.set_gemm_backend("blas")
    assert np.array_equal(compiled.run(x), before)
    # blocked differs from blas only by float rounding, never by math.
    assert np.allclose(blocked, before, atol=1e-5)


def test_stacked_matmul_would_not_be_exact():
    """Documents why exact mode exists: the naive stacked sgemm diverges.

    If this ever starts passing on some BLAS, exact mode is still correct
    — merely no longer the only way to get parity on that host.  It is
    xfail rather than a hard assert for exactly that reason.
    """
    compiled = compile_model(SESR.from_name("M5", scale=2).collapse())
    rng = np.random.default_rng(3)
    batch = rng.random((5, 24, 24, 1)).astype(np.float32)
    stacked = compiled.run(batch)  # one sgemm over m = N*h*w
    singles = np.concatenate(
        [compiled.run(batch[i:i + 1]) for i in range(5)]
    )
    if np.array_equal(stacked, singles):
        pytest.xfail("this BLAS build happens to be m-invariant")
    # Divergence is bounded (~1 ulp): quality-neutral, but not bytes.
    assert np.allclose(stacked, singles, atol=1e-5)
