"""Plan cache in the registry, compiled-by-default engine, and the CLI."""

import threading

import numpy as np

from repro.cli import main
from repro.compile import CaptureError, CompiledModel
from repro.datasets import load_image, save_image
from repro.serve import (
    EngineConfig,
    InferenceEngine,
    ModelKey,
    ModelRegistry,
)

KEY = ModelKey(name="M3", scale=2)


class TestRegistryPlanCache:
    def test_get_compiled_memoizes(self):
        registry = ModelRegistry()
        first = registry.get_compiled(KEY)
        assert isinstance(first, CompiledModel)
        assert registry.get_compiled(KEY) is first
        assert registry.compile_count(KEY) == 1

    def test_concurrent_first_requests_compile_once(self):
        registry = ModelRegistry()
        results, errors = [], []

        def fetch():
            try:
                results.append(registry.get_compiled(KEY))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=fetch) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len({id(r) for r in results}) == 1
        assert registry.compile_count(KEY) == 1

    def test_evict_drops_the_plan_too(self):
        registry = ModelRegistry()
        first = registry.get_compiled(KEY)
        assert registry.evict(KEY)
        assert registry.get_compiled(KEY) is not first
        assert registry.compile_count(KEY) == 2

    def test_stats_report_plans(self):
        registry = ModelRegistry()
        registry.get_compiled(KEY)
        stats = registry.stats()
        assert stats["plans_compiled"] == 1
        assert stats["compiles"] == {"M3:x2:fp32": 1}

    def test_int8_key_compiles_the_quantized_net(self):
        registry = ModelRegistry()
        compiled = registry.get_compiled(
            ModelKey(name="M3", scale=2, precision="int8")
        )
        assert isinstance(compiled, CompiledModel)


class TestEngineCompiledDefault:
    def test_engine_runs_the_compiled_plan_by_default(self):
        registry = ModelRegistry()
        engine = InferenceEngine(
            registry, KEY, config=EngineConfig(workers=2, tile=16),
        )
        try:
            assert engine.compiled and not engine.compile_fallback
            assert isinstance(engine.model, CompiledModel)
            config = engine.stats()["config"]
            assert config["compiled"] is True
            assert config["compile_fallback"] is False
        finally:
            engine.shutdown()

    def test_no_compile_engine_matches_bitwise(self):
        registry = ModelRegistry()
        rng = np.random.default_rng(0)
        img = rng.random((24, 20)).astype(np.float32)
        compiled = InferenceEngine(
            registry, KEY,
            config=EngineConfig(workers=2, tile=16, cache_size=0),
        )
        eager = InferenceEngine(
            registry, KEY,
            config=EngineConfig(workers=2, tile=16, cache_size=0,
                                compiled=False),
        )
        try:
            assert not eager.compiled
            assert not isinstance(eager.model, CompiledModel)
            assert np.array_equal(compiled.upscale(img), eager.upscale(img))
        finally:
            compiled.shutdown()
            eager.shutdown()

    def test_capture_error_falls_back_to_eager(self, monkeypatch):
        def boom(self, key):
            raise CaptureError("unsupported")

        monkeypatch.setattr(ModelRegistry, "get_compiled", boom)
        registry = ModelRegistry()
        engine = InferenceEngine(
            registry, KEY, config=EngineConfig(workers=2, tile=16),
        )
        try:
            assert engine.compile_fallback and not engine.compiled
            assert not isinstance(engine.model, CompiledModel)
            rng = np.random.default_rng(1)
            out = engine.upscale(rng.random((16, 16)).astype(np.float32))
            assert out.shape == (32, 32)
        finally:
            engine.shutdown()


class TestCompileCLI:
    def test_prints_pass_log_and_plan_stats(self, capsys):
        assert main(["compile", "--model", "M5", "--scale", "2",
                     "--size", "32"]) == 0
        out = capsys.readouterr().out
        assert "fuse_conv_activation" in out
        assert "planned peak" in out and "naive peak" in out
        assert "receptive radius" in out

    def test_dump_ir(self, capsys):
        assert main(["compile", "--model", "M3", "--dump-ir"]) == 0
        out = capsys.readouterr().out
        assert "graph sesr_f16m3x2" in out
        assert "%first_5x5" in out

    def test_no_optimize(self, capsys):
        assert main(["compile", "--model", "M3", "--no-optimize"]) == 0
        assert "optimisation disabled" in capsys.readouterr().out

    def test_int8_requires_sesr(self, capsys):
        assert main(["compile", "--model", "FSRCNN",
                     "--precision", "int8"]) == 2
        assert "requires a SESR model" in capsys.readouterr().err

    def test_upscale_no_compile_flag_is_byte_equal(self, tmp_path, capsys):
        rng = np.random.default_rng(2)
        src = tmp_path / "in.pgm"
        save_image(str(src), rng.random((20, 24)).astype(np.float32))
        out_c = tmp_path / "c.pgm"
        out_e = tmp_path / "e.pgm"
        assert main(["upscale", "--model", "M3", "--input", str(src),
                     "--output", str(out_c)]) == 0
        assert main(["upscale", "--model", "M3", "--input", str(src),
                     "--output", str(out_e), "--no-compile"]) == 0
        assert np.array_equal(load_image(str(out_c)),
                              load_image(str(out_e)))
