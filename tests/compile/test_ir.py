"""IR construction, validation, shape inference, and the LayerSpec bridge.

The exporter tests are the single-source-of-truth guarantee: the graphs
the compiler executes must describe exactly the layers the analytic
``sesr_specs``/``fsrcnn_specs`` formulas count (same names, same fields),
so ``repro.metrics``, ``repro.hw``, and the executor can never drift.
"""

import numpy as np
import pytest

from repro.compile import (
    Graph,
    IRError,
    Node,
    fsrcnn_ir,
    receptive_radius,
    sesr_ir,
    to_layer_specs,
)
from repro.deploy.tiled import receptive_radius as eager_receptive_radius
from repro.metrics.complexity import count_macs, fsrcnn_specs, sesr_specs


SESR_CONFIGS = [
    dict(f=16, m=3, scale=2),
    dict(f=16, m=5, scale=2),
    dict(f=16, m=5, scale=4),
    dict(f=16, m=7, scale=2),
    dict(f=16, m=11, scale=4),
    dict(f=32, m=11, scale=2),
    dict(f=16, m=5, scale=2, input_residual=False, activation="relu"),
    dict(f=16, m=5, scale=2, feature_residual=False),
    dict(f=16, m=5, scale=4, two_stage_head=True),
]


class TestExporterMatchesAnalyticSpecs:
    @pytest.mark.parametrize("cfg", SESR_CONFIGS)
    def test_sesr_export_equals_sesr_specs(self, cfg):
        assert to_layer_specs(sesr_ir(**cfg)) == sesr_specs(**cfg)

    @pytest.mark.parametrize("scale", [2, 4])
    @pytest.mark.parametrize("activation", ["prelu", "relu"])
    def test_fsrcnn_export_equals_fsrcnn_specs(self, scale, activation):
        assert to_layer_specs(
            fsrcnn_ir(scale, d=20, s=8, m=2, activation=activation)
        ) == fsrcnn_specs(scale, d=20, s=8, m=2, activation=activation)

    @pytest.mark.parametrize("cfg", SESR_CONFIGS)
    def test_graph_macs_equal_spec_macs(self, cfg):
        g = sesr_ir(**cfg)
        assert g.macs(30, 26) == count_macs(sesr_specs(**cfg), 30, 26)

    def test_fsrcnn_macs_equal_spec_macs(self):
        g = fsrcnn_ir(2)
        assert g.macs(17, 23) == count_macs(fsrcnn_specs(2), 17, 23)

    def test_radius_matches_eager_convention(self):
        for cfg in SESR_CONFIGS:
            g = sesr_ir(**cfg)
            assert receptive_radius(g) == eager_receptive_radius(
                sesr_specs(**cfg)
            )
        assert receptive_radius(fsrcnn_ir(2)) == eager_receptive_radius(
            fsrcnn_specs(2)
        )


class TestShapeInference:
    def test_sesr_channels_and_res_scale(self):
        g = sesr_ir(16, 5, 4)
        assert g.nodes["first_5x5"].channels == 16
        assert g.nodes["last_5x5"].channels == 16  # 4² sub-pixel channels
        assert g.nodes["d2s_0"].channels == 4
        assert g.nodes["d2s_0"].res_scale == 2.0
        assert g.nodes["d2s_1"].channels == 1
        assert g.nodes["d2s_1"].res_scale == 4.0

    def test_deconv_res_scale_is_stride(self):
        g = fsrcnn_ir(4)
        assert g.nodes["deconv_9x9"].res_scale == 4.0
        assert g.nodes["deconv_9x9"].channels == 1

    def test_two_stage_head_requires_scale_4(self):
        with pytest.raises(ValueError):
            sesr_ir(16, 5, 2, two_stage_head=True)


class TestValidation:
    def _base(self) -> Graph:
        g = Graph("t")
        g.add_input("input", 4)
        return g

    def test_unknown_op_rejected(self):
        g = self._base()
        with pytest.raises(IRError, match="unknown op"):
            g.add(Node("x", "matmul", ["input"]))

    def test_duplicate_name_rejected(self):
        g = self._base()
        with pytest.raises(IRError, match="duplicate"):
            g.add(Node("input", "relu", ["input"]))

    def test_dangling_input_rejected(self):
        g = self._base()
        with pytest.raises(IRError, match="undefined input"):
            g.add(Node("r", "relu", ["nope"]))

    def test_missing_required_attr_rejected(self):
        g = self._base()
        with pytest.raises(IRError, match="missing attr"):
            g.add(Node("c", "conv", ["input"], {"kernel": (3, 3)}))

    def test_channel_mismatch_rejected(self):
        g = self._base()
        g.add(Node("c", "conv", ["input"],
                   {"kernel": (3, 3), "cin": 8, "cout": 8}))
        g.set_outputs(["c"])
        with pytest.raises(IRError, match="channels"):
            g.infer_shapes()

    def test_weight_shape_mismatch_rejected(self):
        g = self._base()
        g.add(Node("c", "conv", ["input"],
                   {"kernel": (3, 3), "cin": 4, "cout": 8,
                    "weight": np.zeros((3, 3, 4, 4), dtype=np.float32)}))
        g.set_outputs(["c"])
        with pytest.raises(IRError, match="weight shape"):
            g.infer_shapes()

    def test_d2s_divisibility_rejected(self):
        g = self._base()  # 4 channels, block 3 → 4 % 9 != 0
        g.add(Node("d", "depth_to_space", ["input"], {"block": 3}))
        g.set_outputs(["d"])
        with pytest.raises(IRError, match="divisible"):
            g.infer_shapes()

    def test_add_resolution_mismatch_rejected(self):
        g = self._base()
        g.add(Node("d", "depth_to_space", ["input"], {"block": 2}))
        # side operand has 1 channel (broadcastable) but 2x the resolution
        g.add(Node("a", "add", ["input", "d"]))
        g.set_outputs(["a"])
        with pytest.raises(IRError, match="resolution"):
            g.infer_shapes()

    def test_no_outputs_rejected(self):
        with pytest.raises(IRError, match="no outputs"):
            self._base().infer_shapes()

    def test_removing_an_output_is_an_error(self):
        g = self._base()
        g.add(Node("r", "relu", ["input"]))
        g.set_outputs(["r"])
        with pytest.raises(IRError, match="output"):
            g.remove("r")

    def test_out_of_order_definition_rejected(self):
        g = self._base()
        g.add(Node("r", "relu", ["input"]))
        g.set_outputs(["r"])
        # Force a non-topological ordering by rebuilding the node dict.
        g.nodes = {n: g.nodes[n] for n in ("r", "input")}
        with pytest.raises(IRError, match="topological"):
            g.infer_shapes()


class TestGraphSurgery:
    def test_copy_is_structurally_independent(self):
        g = sesr_ir(16, 3, 2)
        c = g.copy()
        c.nodes["first_5x5"].epilogues.append(("relu", "x"))
        c.nodes["first_5x5"].inputs.append("input")
        assert g.nodes["first_5x5"].epilogues == []
        assert g.nodes["first_5x5"].inputs == ["input"]

    def test_insert_after_places_node_in_order(self):
        g = sesr_ir(16, 3, 2)
        g.insert_after("first_5x5", Node("q", "quant", ["first_5x5"],
                                         {"params": None}))
        names = list(g.nodes)
        assert names.index("q") == names.index("first_5x5") + 1

    def test_replace_uses_rewrites_consumers_and_outputs(self):
        g = Graph("t")
        g.add_input("input", 4)
        g.add(Node("a", "relu", ["input"]))
        g.add(Node("b", "relu", ["a"]))
        g.set_outputs(["a"])
        g.replace_uses("a", "input")
        assert g.nodes["b"].inputs == ["input"]
        assert g.outputs == ["input"]

    def test_pretty_mentions_every_node(self):
        g = sesr_ir(16, 3, 2)
        text = g.pretty()
        for name in g.nodes:
            assert f"%{name}" in text
