"""CompiledModel: bit-identity vs eager, threading, arenas, instrumentation."""

import threading

import numpy as np
import pytest

from tests.compile.conftest import eager_out
from repro.compile import CompiledModel, capture, compile_model
from repro.core import FSRCNN, SESR
from repro.core.carn import CARN_M
from repro.deploy import quantize_sesr, receptive_radius, tiled_upscale
from repro.nn import Tensor
from repro.obs import Profiler, profile
from repro.train import predict_image


def _collapsed(name="M5", scale=2):
    return SESR.from_name(name, scale=scale, expansion=16).collapse()


class TestBitIdentity:
    @pytest.mark.parametrize("name,scale", [
        ("M3", 2), ("M5", 2), ("M5", 4), ("M7", 2), ("M11", 4), ("XL", 2),
    ])
    def test_sesr_zoo_matrix(self, name, scale, nhwc):
        model = _collapsed(name, scale)
        x = nhwc()
        assert np.array_equal(compile_model(model).run(x),
                              eager_out(model, x))

    def test_fsrcnn(self, nhwc):
        model = FSRCNN(scale=2, d=20, s=8, m=2)
        x = nhwc()
        assert np.array_equal(compile_model(model).run(x),
                              eager_out(model, x))

    def test_carn_grouped_convs_and_concats(self, nhwc):
        model = CARN_M(scale=2, width=16, groups=4, blocks=2, depth=2)
        x = nhwc()
        assert np.array_equal(compile_model(model).run(x),
                              eager_out(model, x))

    def test_int8_weights_only(self, nhwc):
        model = quantize_sesr(_collapsed())
        x = nhwc()
        assert np.array_equal(compile_model(model).run(x),
                              eager_out(model, x))

    def test_int8_with_activation_fake_quant(self, nhwc):
        rng = np.random.default_rng(5)
        calib = [rng.random((12, 12)).astype(np.float32) for _ in range(2)]
        model = quantize_sesr(_collapsed(), calib_images=calib)
        x = nhwc()
        assert np.array_equal(compile_model(model).run(x),
                              eager_out(model, x))

    def test_unoptimised_graph_is_also_bit_identical(self, nhwc):
        model = _collapsed("M3")
        x = nhwc()
        assert np.array_equal(compile_model(model, optimize=False).run(x),
                              eager_out(model, x))

    def test_batched_input(self, nhwc):
        model = _collapsed("M3")
        x = nhwc(n=3)
        assert np.array_equal(compile_model(model).run(x),
                              eager_out(model, x))

    def test_forward_takes_and_returns_tensors(self, nhwc):
        model = _collapsed("M3")
        x = nhwc()
        out = compile_model(model)(Tensor(x))
        assert isinstance(out, Tensor)
        assert np.array_equal(out.data, eager_out(model, x))


class TestArenaManagement:
    def test_shape_changes_do_not_pollute_each_other(self, nhwc):
        model = _collapsed("M3")
        compiled = compile_model(model)
        xa, xb = nhwc(h=20, w=20, seed=1), nhwc(h=12, w=28, seed=2)
        ra = eager_out(model, xa)
        rb = eager_out(model, xb)
        assert np.array_equal(compiled.run(xa), ra)
        assert np.array_equal(compiled.run(xb), rb)
        assert np.array_equal(compiled.run(xa), ra)  # back to shape A

    def test_output_is_fresh_per_call(self, nhwc):
        compiled = compile_model(_collapsed("M3"))
        x = nhwc()
        first = compiled.run(x)
        snapshot = first.copy()
        compiled.run(nhwc(seed=9))
        assert np.array_equal(first, snapshot)  # second run didn't alias it

    def test_concurrent_threads_agree_with_eager(self, nhwc):
        model = _collapsed("M3")
        compiled = compile_model(model)
        inputs = [nhwc(seed=s) for s in range(8)]
        refs = [eager_out(model, x) for x in inputs]
        results = [None] * len(inputs)
        errors = []

        def worker(lo):
            try:
                for i in range(lo, len(inputs), 4):
                    results[i] = compiled.run(inputs[i])
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for got, ref in zip(results, refs):
            assert np.array_equal(got, ref)
        assert compiled.runs == len(inputs)

    def test_memory_stats_planned_strictly_below_naive(self):
        compiled = compile_model(_collapsed())
        stats = compiled.memory_stats(24, 20)
        assert stats["arena_bytes"] < stats["naive_bytes"]
        assert stats["arena_bytes"] >= stats["lower_bound_bytes"]
        assert stats["slots"] == len(compiled.plan.slot_units)


class TestInstrumentation:
    def test_profiler_sees_the_analytic_macs(self, nhwc):
        compiled = compile_model(_collapsed())
        x = nhwc(h=16, w=16)
        prof = Profiler()
        with profile(prof):
            compiled.run(x)
        assert prof.total_macs() == compiled.graph.macs(16, 16)
        ops = set(prof.summary())
        assert {"conv2d", "im2col"} <= ops

    def test_runs_counter(self, nhwc):
        compiled = compile_model(_collapsed("M3"))
        assert compiled.runs == 0
        compiled.run(nhwc())
        compiled.run(nhwc())
        assert compiled.runs == 2


class TestDeployIntegration:
    def test_predict_image_matches_eager(self):
        model = _collapsed("M3")
        compiled = compile_model(model)
        rng = np.random.default_rng(3)
        img = rng.random((21, 17)).astype(np.float32)
        assert np.array_equal(predict_image(compiled, img),
                              predict_image(model, img))

    def test_receptive_radius_fast_path(self):
        model = _collapsed("M5")
        compiled = compile_model(model)
        assert receptive_radius(compiled) == receptive_radius(model)

    def test_tiled_upscale_matches_full_frame(self):
        # Same tolerance as the eager tiled test: per-tile GEMM shapes
        # differ from the full-frame ones, so BLAS may drift a ulp.
        compiled = compile_model(_collapsed("M3"))
        rng = np.random.default_rng(4)
        img = rng.random((30, 26)).astype(np.float32)
        full = predict_image(compiled, img)
        tiled = tiled_upscale(compiled, img, 2, tile=(11, 9))
        np.testing.assert_allclose(tiled, full, atol=1e-6)

    def test_tiled_upscale_compiled_matches_tiled_eager_bitwise(self):
        # Tile-by-tile, though, compiled == eager exactly: same patches,
        # same GEMM shapes, bit-identical kernels.
        model = _collapsed("M3")
        compiled = compile_model(model)
        rng = np.random.default_rng(4)
        img = rng.random((30, 26)).astype(np.float32)
        assert np.array_equal(
            tiled_upscale(compiled, img, 2, tile=(11, 9)),
            tiled_upscale(model, img, 2, tile=(11, 9)),
        )


class TestValidation:
    def test_multiple_outputs_rejected(self):
        g = capture(_collapsed("M3"))
        g.set_outputs([g.outputs[0], "first_5x5"])
        with pytest.raises(ValueError, match="one input and one output"):
            CompiledModel(g)

    def test_wrong_channel_count_rejected(self, nhwc):
        compiled = compile_model(_collapsed("M3"))
        with pytest.raises(ValueError, match="channels"):
            compiled.run(nhwc(c=3))

    def test_non_nhwc_rejected(self):
        compiled = compile_model(_collapsed("M3"))
        with pytest.raises(ValueError, match="NHWC"):
            compiled.run(np.zeros((8, 8), dtype=np.float32))

    def test_uncollapsed_sesr_raises_capture_error(self):
        from repro.compile import CaptureError

        with pytest.raises(CaptureError, match="collapse"):
            compile_model(SESR.from_name("M3", scale=2, expansion=16))

    def test_float64_input_is_cast(self, nhwc):
        compiled = compile_model(_collapsed("M3"))
        x = nhwc().astype(np.float64)
        out = compiled.run(x)
        assert out.dtype == np.float32
