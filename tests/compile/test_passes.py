"""Optimisation passes: bit-exactness, structure, and the opt-in rewrites."""

import numpy as np

from tests.compile.conftest import eager_out
from repro.compile import (
    CompiledModel,
    DEFAULT_PASSES,
    Graph,
    Node,
    PassManager,
    capture,
    eliminate_dead_nodes,
    fold_constants,
    fold_identity_residual,
    fuse_conv_activation,
    fuse_residual_add,
    make_quantize_pass,
    to_layer_specs,
)
from repro.core import SESR
from repro.core.carn import CARN_M
from repro.deploy.quantize import (
    QuantizedSESR,
    calibrate_activations,
    quantize_sesr,
)


def _collapsed(name="M5", scale=2):
    return SESR.from_name(name, scale=scale, expansion=16).collapse()


class TestDefaultPipeline:
    def test_optimised_graph_is_bit_identical(self, nhwc):
        model = _collapsed()
        x = nhwc()
        raw = capture(model)
        opt, _ = PassManager().run(raw)
        got_raw = CompiledModel(raw.copy()).run(x)
        got_opt = CompiledModel(opt).run(x)
        ref = eager_out(model, x)
        assert np.array_equal(got_raw, ref)
        assert np.array_equal(got_opt, ref)

    def test_sesr_collapses_to_conv_chain(self):
        opt, _ = PassManager().run(capture(_collapsed()))
        kinds = {n.op for n in opt.nodes.values()}
        assert kinds == {"input", "conv", "depth_to_space"}
        # Both long residuals fused into conv epilogues (Fig. 2(d) adds).
        adds = [e for n in opt.nodes.values()
                for e in n.epilogues if e[0] == "add"]
        assert len(adds) == 2

    def test_carn_act_of_add_needs_the_second_act_sweep(self):
        # relu(h + x) only becomes fusible once the add folds — the reason
        # DEFAULT_PASSES runs fuse_conv_activation twice.
        model = CARN_M(scale=2, width=16, groups=4, blocks=2, depth=2)
        g = capture(model)
        first = fuse_conv_activation(g)
        g.infer_shapes()
        fuse_residual_add(g)
        g.infer_shapes()
        second = fuse_conv_activation(g)
        g.infer_shapes()
        assert first > 0 and second > 0

    def test_export_is_invariant_under_fusion(self):
        raw = capture(_collapsed())
        opt, _ = PassManager().run(raw)
        assert to_layer_specs(opt) == to_layer_specs(raw)

    def test_pass_log_records_every_pipeline_step(self):
        _, log = PassManager().run(capture(_collapsed()))
        assert [e.name for e in log] == [
            p.__name__ for p in DEFAULT_PASSES
        ]
        assert all(e.nodes_after <= e.nodes_before for e in log)
        by_name = {}
        for e in log:
            by_name.setdefault(e.name, e)
        assert by_name["fuse_conv_activation"].changes > 0
        assert by_name["fuse_residual_add"].changes == 2


class TestFoldConstants:
    def test_int8_weight_dequant_is_folded_bit_exactly(self, nhwc):
        model = quantize_sesr(_collapsed())
        x = nhwc()
        g = capture(model)
        assert any(
            n.op == "conv" and n.attrs.get("weight") is None
            for n in g.nodes.values()
        )
        folded = g.copy()
        assert fold_constants(folded) > 0
        assert all(
            n.attrs.get("weight") is not None
            for n in folded.nodes.values() if n.op == "conv"
        )
        ref = eager_out(model, x)
        assert np.array_equal(CompiledModel(folded).run(x), ref)

    def test_all_const_subgraph_is_evaluated(self):
        g = Graph("t")
        g.add_input("input", 1)
        value = np.array([[[[-1.0]], [[2.0]]]], dtype=np.float32)
        g.add(Node("c", "const", [], {"value": value}))
        g.add(Node("r", "relu", ["c"]))
        g.add(Node("a", "add", ["input", "r"]))
        g.set_outputs(["a"])
        g.infer_shapes()
        # 'a' depends on the input, so only 'r' folds.
        assert fold_constants(g) == 1
        assert g.nodes["r"].op == "const"
        np.testing.assert_array_equal(
            g.nodes["r"].attrs["value"], np.maximum(value, 0.0)
        )


class TestDeadNodeElimination:
    def test_unreachable_branch_is_removed_inputs_kept(self):
        g = sesr_like = capture(_collapsed("M3"))
        g.add(Node("orphan", "relu", ["first_5x5"]))
        g.infer_shapes()
        assert eliminate_dead_nodes(g) == 1
        assert "orphan" not in g.nodes
        assert sesr_like.inputs == ["input"]


class TestFoldIdentityResidual:
    def _residual_graph(self, seed=0):
        rng = np.random.default_rng(seed)
        w = (rng.standard_normal((3, 3, 8, 8)) * 0.1).astype(np.float32)
        b = rng.standard_normal(8).astype(np.float32)
        g = Graph("res")
        g.add_input("input", 8)
        g.add(Node("c", "conv", ["input"],
                   {"kernel": (3, 3), "cin": 8, "cout": 8,
                    "weight": w, "bias": b}))
        g.add(Node("a", "add", ["c", "input"]))
        g.set_outputs(["a"])
        return g.infer_shapes(), w

    def test_rewrites_weight_to_w_plus_identity(self):
        from repro.core.collapse import identity_conv_rect

        g, w = self._residual_graph()
        assert fold_identity_residual(g) == 1
        g.infer_shapes()
        assert "a" not in g.nodes and g.outputs == ["c"]
        np.testing.assert_array_equal(
            g.nodes["c"].attrs["weight"],
            w + identity_conv_rect(3, 3, 8).astype(np.float32),
        )

    def test_result_matches_explicit_add_to_tolerance(self, nhwc):
        g, _ = self._residual_graph()
        x = nhwc(c=8)
        before = CompiledModel(g.copy()).run(x)
        fold_identity_residual(g)
        g.infer_shapes()
        after = CompiledModel(g).run(x)
        # W+I reassociates the float sum: equal to tolerance, not bytes.
        np.testing.assert_allclose(after, before, atol=1e-5, rtol=1e-5)

    def test_skips_channel_mismatch(self):
        # SESR's long black residual adds a 1-channel input to s² channels:
        # broadcastable, but not identity-foldable.
        g = capture(_collapsed())
        assert fold_identity_residual(g) == 0


class TestQuantizePass:
    def test_weights_only_matches_quantize_sesr(self, nhwc):
        model = _collapsed()
        x = nhwc()
        g = capture(model)
        assert make_quantize_pass()(g) == len(
            [n for n in g.nodes.values() if n.op == "conv"]
        )
        g.infer_shapes()
        ref = eager_out(quantize_sesr(model), x)
        assert np.array_equal(CompiledModel(g).run(x), ref)

    def test_activation_observers_match_quantized_sesr(self, nhwc):
        model = _collapsed()
        x = nhwc()
        rng = np.random.default_rng(7)
        calib = [rng.random((12, 12)).astype(np.float32) for _ in range(2)]
        observers = calibrate_activations(model, calib)
        reference = QuantizedSESR(model, 8, 8, observers)

        # Map the observer keys onto the IR node names.
        act_params = {"first_5x5": observers["first"].params(8),
                      "last_5x5": observers["last"].params(8)}
        for i in range(model.m):
            act_params[f"conv3x3_{i}"] = observers[f"conv{i}"].params(8)
        g = capture(model)
        make_quantize_pass(act_params)(g)
        g.infer_shapes()
        assert np.array_equal(
            CompiledModel(g).run(x), eager_out(reference, x)
        )
