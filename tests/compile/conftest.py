"""Shared helpers for the compiler tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, no_grad


def eager_out(model, x: np.ndarray) -> np.ndarray:
    """Reference forward through the eager model (inference mode)."""
    model.eval()
    with no_grad():
        return model(Tensor(x)).data


@pytest.fixture
def nhwc():
    """A deterministic non-square NHWC input batch factory."""

    def make(n: int = 1, h: int = 24, w: int = 20, c: int = 1,
             seed: int = 0) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.standard_normal((n, h, w, c)).astype(np.float32)

    return make
