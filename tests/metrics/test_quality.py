"""PSNR and SSIM metric tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import gaussian_window, psnr, shave, ssim


class TestShave:
    def test_removes_border(self, rng):
        img = rng.random((10, 12, 1))
        assert shave(img, 2).shape == (6, 8, 1)

    def test_zero_border_noop(self, rng):
        img = rng.random((4, 4))
        assert shave(img, 0) is img

    def test_too_small_raises(self, rng):
        with pytest.raises(ValueError):
            shave(rng.random((4, 4)), 2)


class TestPSNR:
    def test_identical_is_infinite(self, rng):
        img = rng.random((16, 16))
        assert psnr(img, img) == float("inf")

    def test_known_mse(self):
        a = np.zeros((10, 10))
        b = np.full((10, 10), 0.1)  # MSE = 0.01 -> PSNR = 20 dB
        assert psnr(a, b) == pytest.approx(20.0)

    def test_border_shaving_changes_score(self, rng):
        a = rng.random((16, 16))
        b = a.copy()
        b[0, 0] = 1.0 - b[0, 0]  # corrupt only the border
        assert psnr(a, b, border=2) == float("inf")
        assert psnr(a, b, border=0) < float("inf")

    def test_pred_clipped_to_range(self):
        a = np.full((8, 8), 1.5)  # out of range prediction
        b = np.ones((8, 8))
        assert psnr(a, b) == float("inf")  # clipped to 1.0 == target

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            psnr(rng.random((4, 4)), rng.random((4, 5)))

    @given(st.integers(0, 2**31 - 1), st.floats(0.01, 0.3))
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_noise(self, seed, sigma):
        rng = np.random.default_rng(seed)
        img = rng.random((24, 24)) * 0.5 + 0.25
        small = np.clip(img + rng.normal(0, sigma / 3, img.shape), 0, 1)
        large = np.clip(img + rng.normal(0, sigma, img.shape), 0, 1)
        assert psnr(small, img) > psnr(large, img)


class TestSSIM:
    def test_identical_is_one(self, rng):
        img = rng.random((24, 24))
        assert ssim(img, img) == pytest.approx(1.0)

    def test_noise_reduces_ssim(self, rng):
        img = rng.random((32, 32))
        noisy = np.clip(img + rng.normal(0, 0.2, img.shape), 0, 1)
        s = ssim(noisy, img)
        assert 0.0 < s < 0.99

    def test_constant_shift_high_but_not_one(self):
        ys, xs = np.mgrid[0:32, 0:32] / 32.0
        img = 0.4 + 0.2 * np.sin(4 * ys) * np.cos(3 * xs)
        shifted = img + 0.05
        assert 0.7 < ssim(shifted, img) < 1.0

    def test_channel_squeeze(self, rng):
        img = rng.random((24, 24, 1))
        assert ssim(img, img) == pytest.approx(1.0)

    def test_multichannel_raises(self, rng):
        with pytest.raises(ValueError):
            ssim(rng.random((24, 24, 3)), rng.random((24, 24, 3)))

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            ssim(rng.random((24, 24)), rng.random((24, 25)))

    def test_gaussian_window_normalised(self):
        w = gaussian_window(11, 1.5)
        assert w.sum() == pytest.approx(1.0)
        assert w.argmax() == 5  # symmetric, peak at centre
        np.testing.assert_allclose(w, w[::-1])

    def test_ssim_ranks_blur_vs_noise_consistently(self, rng):
        """Structural metric sanity: SSIM orders degradations plausibly."""
        ys, xs = np.mgrid[0:48, 0:48] / 48.0
        img = 0.5 + 0.25 * np.sin(8 * ys) + 0.15 * np.cos(6 * xs)
        light = np.clip(img + rng.normal(0, 0.02, img.shape), 0, 1)
        heavy = np.clip(img + rng.normal(0, 0.15, img.shape), 0, 1)
        assert ssim(light, img) > ssim(heavy, img)
