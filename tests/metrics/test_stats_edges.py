"""Tests for suite statistics and edge-fidelity metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    edge_psnr,
    gms,
    gradient_magnitude,
    paired_bootstrap,
    paired_difference,
    per_image_scores,
    summarize,
)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)
        assert s.n == 4
        assert s.ci_low < s.mean < s.ci_high

    def test_single_value(self):
        s = summarize([5.0])
        assert s.mean == 5.0 and s.std == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ci_shrinks_with_n(self, rng):
        small = summarize(rng.normal(30, 1, 10))
        large = summarize(rng.normal(30, 1, 1000))
        assert (large.ci_high - large.ci_low) < (small.ci_high - small.ci_low)


class TestPairedTests:
    def test_clear_winner(self):
        a = [30.0, 31.0, 32.0, 30.5]
        b = [x - 1.0 for x in a]
        assert paired_bootstrap(a, b) > 0.95
        assert paired_bootstrap(b, a) < 0.05

    def test_tie_near_half(self, rng):
        a = rng.normal(30, 1, 200)
        b = a + rng.normal(0, 0.001, 200)
        p = paired_bootstrap(a, b, seed=1)
        assert 0.1 < p < 0.9

    def test_paired_difference(self):
        d = paired_difference([31.0, 32.0], [30.0, 30.0])
        assert d.mean == pytest.approx(1.5)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            paired_bootstrap([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            paired_difference([1.0], [1.0, 2.0])

    def test_deterministic_given_seed(self, rng):
        a, b = rng.normal(30, 1, 50), rng.normal(30, 1, 50)
        assert paired_bootstrap(a, b, seed=7) == paired_bootstrap(a, b, seed=7)

    def test_per_image_scores(self):
        from repro.core import SESR
        from repro.datasets import SyntheticDataset

        ds = SyntheticDataset("set5", n_images=3, size=(48, 48), scale=2, seed=2)
        scores = per_image_scores(SESR(scale=2, f=8, m=1, expansion=16), ds)
        assert scores.shape == (3,)
        assert np.all(scores > 0)


class TestEdgeMetrics:
    def _edge_image(self):
        img = np.zeros((32, 32))
        img[:, 16:] = 1.0  # a vertical step edge
        return img

    def test_gradient_magnitude_peaks_at_edge(self):
        mag = gradient_magnitude(self._edge_image())
        assert mag[:, 15:17].mean() > 10 * mag[:, :8].mean()

    def test_gradient_magnitude_zero_on_constant(self):
        np.testing.assert_allclose(gradient_magnitude(np.ones((8, 8))), 0.0)

    def test_gms_identity_is_one(self, rng):
        img = rng.random((24, 24))
        assert gms(img, img) == pytest.approx(1.0)

    def test_gms_blur_hurts(self):
        from repro.datasets import bicubic_downscale, bicubic_upscale

        img = self._edge_image() + 0.1 * np.sin(
            np.linspace(0, 20, 32)
        )[None, :]
        blurred = bicubic_upscale(bicubic_downscale(img, 2), 2)
        assert gms(np.clip(blurred, 0, 1), img) < 0.999

    def test_gms_bounded(self, rng):
        a, b = rng.random((16, 16)), rng.random((16, 16))
        assert 0.0 <= gms(a, b) <= 1.0

    def test_edge_psnr_targets_edges(self):
        img = self._edge_image()
        # Corrupt only flat regions: edge-PSNR stays infinite-ish while
        # full-image difference exists.
        corrupted = img.copy()
        corrupted[:, :4] += 0.05
        assert edge_psnr(corrupted, img) == float("inf")
        # Corrupt the edge itself: edge-PSNR drops hard.
        halo = img.copy()
        halo[:, 15] += 0.2  # overshoot on the dark side of the edge
        halo[:, 16] -= 0.2  # undershoot on the bright side
        assert edge_psnr(np.clip(halo, 0, 1), img) < 30

    def test_edge_psnr_validation(self, rng):
        with pytest.raises(ValueError):
            edge_psnr(rng.random((8, 8)), rng.random((8, 9)))

    def test_gradient_magnitude_requires_2d(self, rng):
        with pytest.raises(ValueError):
            gradient_magnitude(rng.random((4, 4, 3)))

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_property_gms_symmetric(self, seed):
        rng = np.random.default_rng(seed)
        a, b = rng.random((12, 12)), rng.random((12, 12))
        assert gms(a, b) == pytest.approx(gms(b, a), rel=1e-9)
