"""Parameter/MAC accounting — the golden tests against Tables 1–2 columns."""

import pytest

from repro.core import FSRCNN, SESR
from repro.metrics import (
    LayerSpec,
    count_macs,
    count_params,
    fsrcnn_specs,
    macs_to_720p,
    sesr_specs,
    specs_from_module,
    vdsr_specs,
)


class TestLayerSpec:
    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            LayerSpec("pool", (2, 2), 1, 1)

    def test_conv_accounting(self):
        spec = LayerSpec("conv", (3, 3), 16, 16, 1.0)
        assert spec.weight_params() == 9 * 16 * 16
        assert spec.macs(10, 20) == 9 * 16 * 16 * 200

    def test_hr_layer_macs(self):
        spec = LayerSpec("conv", (3, 3), 64, 64, 2.0)
        assert spec.macs(10, 10) == 9 * 64 * 64 * 400

    def test_non_compute_layers_free(self):
        for kind in ("act", "add", "depth_to_space"):
            spec = LayerSpec(kind, (1, 1), 4, 4, 1.0)
            assert spec.weight_params() == 0
            assert spec.macs(100, 100) == 0


PAPER_TABLE = [
    # (specs, scale, params_K, macs_720p_G)   — Tables 1 and 2
    (sesr_specs(16, 3, 2), 2, 8.91, 2.05),
    (sesr_specs(16, 5, 2), 2, 13.52, 3.11),
    (sesr_specs(16, 7, 2), 2, 18.12, 4.17),
    (sesr_specs(16, 11, 2), 2, 27.34, 6.30),
    (sesr_specs(32, 11, 2), 2, 105.37, 24.27),
    (sesr_specs(16, 3, 4), 4, 13.71, 0.79),
    (sesr_specs(16, 5, 4), 4, 18.32, 1.05),
    (sesr_specs(16, 7, 4), 4, 22.92, 1.32),
    (sesr_specs(16, 11, 4), 4, 32.14, 1.85),
    (sesr_specs(32, 11, 4), 4, 114.97, 6.62),
    (fsrcnn_specs(2), 2, 12.46, 6.00),
    (fsrcnn_specs(4), 4, 12.46, 4.63),
    (vdsr_specs(2), 2, 664.7, 612.6),
]


class TestPaperColumns:
    @pytest.mark.parametrize("specs,scale,params_k,_", PAPER_TABLE)
    def test_parameters_match_paper(self, specs, scale, params_k, _):
        assert count_params(specs) == pytest.approx(params_k * 1e3, rel=0.005)

    @pytest.mark.parametrize("specs,scale,_,macs_g", PAPER_TABLE)
    def test_macs_match_paper(self, specs, scale, _, macs_g):
        assert macs_to_720p(specs, scale) == pytest.approx(macs_g * 1e9, rel=0.01)

    def test_table3_macs_at_1080p(self):
        """Table 3 MAC column: 54G / 28G / 38G at 1920×1080 input."""
        assert count_macs(fsrcnn_specs(2), 1080, 1920) == pytest.approx(54e9, rel=0.01)
        hw_x2 = sesr_specs(16, 5, 2, input_residual=False, activation="relu")
        assert count_macs(hw_x2, 1080, 1920) == pytest.approx(28e9, rel=0.01)
        hw_x4 = sesr_specs(16, 5, 4, input_residual=False, activation="relu")
        assert count_macs(hw_x4, 1080, 1920) == pytest.approx(38e9, rel=0.01)

    def test_tiled_macs(self):
        """Table 3 tiled rows: 1.62G (×2) and 2.19G (×4) for 400×300."""
        hw_x2 = sesr_specs(16, 5, 2, input_residual=False, activation="relu")
        assert count_macs(hw_x2, 300, 400) == pytest.approx(1.62e9, rel=0.01)
        hw_x4 = sesr_specs(16, 5, 4, input_residual=False, activation="relu")
        assert count_macs(hw_x4, 300, 400) == pytest.approx(2.19e9, rel=0.01)


class TestSpecsFromModule:
    def test_sesr_roundtrip(self):
        model = SESR.from_name("M5", scale=2)
        specs = specs_from_module(model)
        assert count_params(specs) == model.collapsed_num_parameters()

    def test_collapsed_sesr(self):
        model = SESR(scale=2, f=8, m=2, expansion=16)
        specs = specs_from_module(model.collapse())
        assert count_params(specs) == model.collapsed_num_parameters()

    def test_fsrcnn(self):
        model = FSRCNN(scale=2)
        specs = specs_from_module(model)
        assert count_params(specs) == model.conv_num_parameters()

    def test_unsupported_raises(self):
        with pytest.raises(TypeError):
            specs_from_module(object())


class TestStructuralProperties:
    def test_sesr_spec_counts(self):
        specs = sesr_specs(16, 5, 2)
        convs = [s for s in specs if s.kind == "conv"]
        assert len(convs) == 5 + 2  # m + first + last
        adds = [s for s in specs if s.kind == "add"]
        assert len(adds) == 2  # blue + black long residuals

    def test_hw_variant_drops_black_residual(self):
        specs = sesr_specs(16, 5, 2, input_residual=False)
        adds = [s for s in specs if s.kind == "add"]
        assert len(adds) == 1

    def test_x4_has_two_d2s_steps(self):
        specs = sesr_specs(16, 5, 4)
        d2s = [s for s in specs if s.kind == "depth_to_space"]
        assert len(d2s) == 2
        assert d2s[0].res_scale == 2.0 and d2s[1].res_scale == 4.0

    def test_vdsr_runs_at_hr(self):
        specs = vdsr_specs(2)
        assert all(s.res_scale == 2.0 for s in specs if s.kind == "conv")
