"""Synthetic corpus, colour conversion, and training pipeline tests."""

import numpy as np
import pytest

from repro.datasets import (
    PROFILES,
    SUITE_SIZES,
    PatchSampler,
    SyntheticDataset,
    benchmark_suites,
    bicubic_downscale,
    from_batch,
    generate_image,
    luminance,
    rgb_to_ycbcr,
    to_batch,
    ycbcr_to_rgb,
)


class TestSyntheticDataset:
    def test_deterministic_across_instances(self):
        a = SyntheticDataset("div2k", n_images=3, size=(64, 64), seed=9)
        b = SyntheticDataset("div2k", n_images=3, size=(64, 64), seed=9)
        for i in range(3):
            np.testing.assert_array_equal(a[i][1], b[i][1])
            np.testing.assert_array_equal(a[i][0], b[i][0])

    def test_seed_changes_content(self):
        a = SyntheticDataset("div2k", n_images=1, size=(64, 64), seed=1)
        b = SyntheticDataset("div2k", n_images=1, size=(64, 64), seed=2)
        assert not np.array_equal(a[0][1], b[0][1])

    def test_profiles_change_content(self):
        a = SyntheticDataset("urban100", n_images=1, size=(64, 64), seed=1)
        b = SyntheticDataset("manga109", n_images=1, size=(64, 64), seed=1)
        assert not np.array_equal(a[0][1], b[0][1])

    def test_images_in_unit_range(self):
        ds = SyntheticDataset("div2k", n_images=4, size=(48, 48), seed=0)
        for lr, hr in ds:
            assert hr.min() >= 0.0 and hr.max() <= 1.0
            assert hr.dtype == np.float32

    def test_lr_is_bicubic_downscale_of_hr(self):
        ds = SyntheticDataset("set5", size=(48, 48), scale=2, seed=3)
        lr, hr = ds[0]
        np.testing.assert_allclose(lr, bicubic_downscale(hr, 2), atol=1e-6)

    def test_scale4_shapes(self):
        ds = SyntheticDataset("set14", size=(50, 46), scale=4, seed=0)
        lr, hr = ds[0]
        assert hr.shape == (48, 44)  # cropped to multiple of 4
        assert lr.shape == (12, 11)

    def test_suite_default_sizes(self):
        for name, n in SUITE_SIZES.items():
            assert len(SyntheticDataset(name, size=(32, 32))) == n

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError, match="profile"):
            SyntheticDataset("imagenet")

    def test_index_errors(self):
        ds = SyntheticDataset("set5", size=(32, 32))
        with pytest.raises(IndexError):
            ds[99]

    def test_benchmark_suites_builder(self):
        suites = benchmark_suites(2, names=("set5", "urban100"), size=(32, 32))
        assert set(suites) == {"set5", "urban100"}
        assert suites["set5"].scale == 2

    def test_every_profile_renders(self):
        rng = np.random.default_rng(0)
        for profile in PROFILES.values():
            img = generate_image(40, 40, rng, profile)
            assert img.shape == (40, 40)
            assert 0.0 <= img.min() and img.max() <= 1.0
            assert img.std() > 0.005  # non-degenerate content


class TestColor:
    def test_roundtrip(self, rng):
        rgb = rng.random((8, 8, 3)).astype(np.float32)
        rec = ycbcr_to_rgb(rgb_to_ycbcr(rgb))
        np.testing.assert_allclose(rec, rgb, atol=2e-3)

    def test_known_values(self):
        white = np.ones((1, 1, 3))
        y = rgb_to_ycbcr(white)[0, 0, 0]
        assert y == pytest.approx(235 / 255, abs=1e-3)
        black = np.zeros((1, 1, 3))
        assert rgb_to_ycbcr(black)[0, 0, 0] == pytest.approx(16 / 255, abs=1e-3)

    def test_luminance_shape(self, rng):
        assert luminance(rng.random((5, 6, 3))).shape == (5, 6)

    def test_bad_shape_raises(self, rng):
        with pytest.raises(ValueError):
            rgb_to_ycbcr(rng.random((5, 6)))


class TestPatchSampler:
    def _dataset(self):
        return SyntheticDataset("div2k", n_images=3, size=(64, 64), scale=2, seed=1)

    def test_batch_shapes(self):
        sam = PatchSampler(self._dataset(), scale=2, patch_size=12,
                           crops_per_image=4, batch_size=6, seed=0)
        lr_b, hr_b = next(sam.batches())
        assert lr_b.shape == (6, 12, 12, 1)
        assert hr_b.shape == (6, 24, 24, 1)
        assert lr_b.dtype == np.float32

    def test_crop_correspondence(self):
        """HR crop must be exactly the LR crop's footprint × scale."""
        ds = self._dataset()
        sam = PatchSampler(ds, scale=2, patch_size=8, batch_size=1, seed=3)
        lr_c, hr_c = sam._sample_pair()
        # Downscaling the HR crop must match the LR crop closely in the
        # interior (the border is affected by out-of-crop context).
        got = bicubic_downscale(hr_c, 2)
        np.testing.assert_allclose(got[2:-2, 2:-2], lr_c[2:-2, 2:-2], atol=0.05)

    def test_steps_per_epoch(self):
        sam = PatchSampler(self._dataset(), scale=2, patch_size=8,
                           crops_per_image=8, batch_size=4)
        assert sam.steps_per_epoch() == 3 * 8 // 4
        count = sum(1 for _ in sam.batches(epochs=2))
        assert count == 2 * sam.steps_per_epoch()

    def test_patch_too_large_raises(self):
        sam = PatchSampler(self._dataset(), scale=2, patch_size=64, batch_size=1)
        with pytest.raises(ValueError, match="patch"):
            next(sam.batches())

    def test_deterministic_given_seed(self):
        def first_batch():
            sam = PatchSampler(self._dataset(), scale=2, patch_size=8,
                               batch_size=2, seed=11)
            return next(sam.batches())

        a, b = first_batch(), first_batch()
        np.testing.assert_array_equal(a[0], b[0])


class TestBatchHelpers:
    def test_roundtrip(self, rng):
        img = rng.random((5, 7)).astype(np.float32)
        np.testing.assert_array_equal(from_batch(to_batch(img)), img)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            to_batch(rng.random((5, 7, 1)))
        with pytest.raises(ValueError):
            from_batch(rng.random((2, 5, 7, 1)))


class TestColorEdgeCases:
    def test_ycbcr_to_rgb_clips(self):
        # Saturated YCbCr values map into [0, 1] after clipping.
        from repro.datasets import ycbcr_to_rgb

        extreme = np.ones((2, 2, 3), dtype=np.float32)
        rgb = ycbcr_to_rgb(extreme)
        assert rgb.min() >= 0.0 and rgb.max() <= 1.0

    def test_grayscale_rgb_maps_to_constant_chroma(self):
        from repro.datasets import rgb_to_ycbcr

        grey = np.full((3, 3, 3), 0.5, dtype=np.float32)
        ycbcr = rgb_to_ycbcr(grey)
        np.testing.assert_allclose(ycbcr[..., 1], 128 / 255, atol=1e-3)
        np.testing.assert_allclose(ycbcr[..., 2], 128 / 255, atol=1e-3)
