"""Bicubic resampling tests (the SISR degradation model)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    bicubic_downscale,
    bicubic_resize,
    bicubic_upscale,
    crop_to_multiple,
    cubic_kernel,
)


class TestCubicKernel:
    def test_interpolating_conditions(self):
        """Keys kernel: W(0)=1, W(±1)=W(±2)=0 — exact at sample points."""
        assert cubic_kernel(np.array([0.0]))[0] == pytest.approx(1.0)
        for x in (1.0, -1.0, 2.0, -2.0, 2.5):
            assert cubic_kernel(np.array([x]))[0] == pytest.approx(0.0, abs=1e-12)

    def test_symmetry(self):
        xs = np.linspace(-2, 2, 41)
        np.testing.assert_allclose(cubic_kernel(xs), cubic_kernel(-xs))

    def test_partition_of_unity(self):
        """Σ_n W(x − n) == 1 for all x (so constants are reproduced)."""
        for x in np.linspace(0, 1, 11):
            taps = cubic_kernel(x - np.arange(-2, 4))
            assert taps.sum() == pytest.approx(1.0, abs=1e-12)


class TestResize:
    def test_identity(self, rng):
        img = rng.random((13, 9)).astype(np.float32)
        np.testing.assert_allclose(bicubic_resize(img, 13, 9), img, atol=1e-6)

    def test_shapes(self, rng):
        img = rng.random((16, 24))
        assert bicubic_resize(img, 8, 12).shape == (8, 12)
        assert bicubic_resize(img, 32, 48).shape == (32, 48)
        multi = rng.random((16, 16, 3))
        assert bicubic_resize(multi, 8, 8).shape == (8, 8, 3)

    @given(st.integers(0, 2**31 - 1), st.sampled_from([2, 3, 4]))
    @settings(max_examples=20, deadline=None)
    def test_constant_preserved(self, seed, scale):
        value = np.random.default_rng(seed).random()
        img = np.full((12 * scale, 8 * scale), value)
        down = bicubic_downscale(img, scale)
        np.testing.assert_allclose(down, value, atol=1e-6)
        up = bicubic_upscale(np.full((6, 6), value), scale)
        np.testing.assert_allclose(up, value, atol=1e-6)

    def test_downscale_antialias_attenuates_nyquist(self, rng):
        """A pixel-rate checkerboard must vanish under antialiased ×2 down."""
        img = np.indices((32, 32)).sum(axis=0) % 2 * 1.0
        down = bicubic_downscale(img, 2)
        assert np.abs(down - 0.5).max() < 0.25  # mostly averaged out

    def test_down_then_up_close_on_smooth_images(self, rng):
        ys, xs = np.mgrid[0:32, 0:32] / 32.0
        img = 0.5 + 0.3 * np.sin(2 * np.pi * ys) * np.cos(2 * np.pi * xs)
        rec = bicubic_upscale(bicubic_downscale(img, 2), 2)
        assert np.abs(rec - img).mean() < 0.01

    def test_upscale_is_linear(self, rng):
        a = rng.random((8, 8))
        b = rng.random((8, 8))
        lhs = bicubic_upscale(2.0 * a + b, 2)
        rhs = 2.0 * bicubic_upscale(a, 2) + bicubic_upscale(b, 2)
        np.testing.assert_allclose(lhs, rhs, atol=1e-5)

    def test_downscale_divisibility_check(self, rng):
        with pytest.raises(ValueError, match="divisible"):
            bicubic_downscale(rng.random((9, 8)), 2)

    def test_dtype_float32(self, rng):
        assert bicubic_resize(rng.random((8, 8)), 4, 4).dtype == np.float32


class TestCropToMultiple:
    def test_crops_trailing(self):
        img = np.zeros((10, 13))
        assert crop_to_multiple(img, 4).shape == (8, 12)

    def test_noop_when_divisible(self):
        img = np.zeros((8, 12))
        assert crop_to_multiple(img, 4).shape == (8, 12)
