"""Netpbm I/O and data-augmentation tests."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    PatchSampler,
    SyntheticDataset,
    load_image,
    read_netpbm,
    save_image,
    write_netpbm,
)


class TestNetpbmIO:
    def test_pgm8_roundtrip(self, rng, tmp_path):
        img = rng.random((9, 7)).astype(np.float32)
        path = os.path.join(tmp_path, "x.pgm")
        save_image(path, img)
        back = load_image(path)
        assert back.shape == img.shape
        assert np.abs(back - img).max() <= 1 / 510 + 1e-6  # 8-bit rounding

    def test_ppm16_roundtrip(self, rng, tmp_path):
        img = rng.random((5, 6, 3)).astype(np.float32)
        path = os.path.join(tmp_path, "x.ppm")
        save_image(path, img, maxval=65535)
        back = load_image(path)
        assert back.shape == img.shape
        assert np.abs(back - img).max() <= 1e-4

    def test_ascii_variants(self, tmp_path):
        p2 = os.path.join(tmp_path, "a.pgm")
        with open(p2, "wb") as fh:
            fh.write(b"P2\n# a comment\n3 2\n255\n0 128 255\n64 32 16\n")
        img = read_netpbm(p2)
        assert img.shape == (2, 3)
        assert img[0, 1] == pytest.approx(128 / 255)

        p3 = os.path.join(tmp_path, "a.ppm")
        with open(p3, "wb") as fh:
            fh.write(b"P3\n1 1\n255\n255 0 128\n")
        img = read_netpbm(p3)
        np.testing.assert_allclose(img[0, 0], [1.0, 0.0, 128 / 255], atol=1e-6)

    def test_values_clipped_on_write(self, tmp_path):
        path = os.path.join(tmp_path, "c.pgm")
        save_image(path, np.array([[2.0, -1.0]]))
        back = load_image(path)
        np.testing.assert_allclose(back, [[1.0, 0.0]])

    def test_comment_and_whitespace_tolerance(self, tmp_path):
        path = os.path.join(tmp_path, "w.pgm")
        with open(path, "wb") as fh:
            fh.write(b"P5 # inline\n# full line\n  2   1 \n255\n\x10\x20")
        img = read_netpbm(path)
        assert img.shape == (1, 2)

    def test_errors(self, tmp_path):
        bad = os.path.join(tmp_path, "bad.pgm")
        with open(bad, "wb") as fh:
            fh.write(b"P7\n1 1\n255\n\x00")
        with pytest.raises(ValueError, match="magic"):
            read_netpbm(bad)
        with open(bad, "wb") as fh:
            fh.write(b"P5\n4 4\n255\n\x00")  # truncated payload
        with pytest.raises(ValueError):
            read_netpbm(bad)
        with pytest.raises(ValueError, match="expected"):
            write_netpbm(os.path.join(tmp_path, "x.pgm"), np.zeros((2, 2, 2)))
        with pytest.raises(ValueError, match="maxval"):
            write_netpbm(os.path.join(tmp_path, "x.pgm"), np.zeros((2, 2)),
                         maxval=0)

    @given(st.integers(1, 6), st.integers(1, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_property_roundtrip_8bit(self, h, w, seed):
        import tempfile

        img = np.random.default_rng(seed).random((h, w)).astype(np.float32)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "p.pgm")
            save_image(path, img)
            assert np.abs(load_image(path) - img).max() <= 1 / 510 + 1e-6


class TestAugmentation:
    def _sampler(self, augment):
        ds = SyntheticDataset("div2k", n_images=2, size=(48, 48), scale=2,
                              seed=1)
        return PatchSampler(ds, scale=2, patch_size=8, crops_per_image=8,
                            batch_size=4, seed=5, augment=augment)

    def test_shapes_preserved(self):
        lr_b, hr_b = next(self._sampler(True).batches())
        assert lr_b.shape == (4, 8, 8, 1)
        assert hr_b.shape == (4, 16, 16, 1)

    def test_pairs_stay_consistent(self):
        """Downscaling the augmented HR crop must match the augmented LR."""
        from repro.datasets import bicubic_downscale

        sampler = self._sampler(True)
        for _ in range(5):
            lr_c, hr_c = sampler._sample_pair()
            approx = bicubic_downscale(hr_c, 2)
            np.testing.assert_allclose(
                approx[2:-2, 2:-2], lr_c[2:-2, 2:-2], atol=0.05
            )

    def test_augmentation_changes_distribution(self):
        # With augmentation, repeated draws of the same crop coordinates
        # produce transformed variants — check batches differ from the
        # unaugmented stream.
        a = np.concatenate([b[0] for b in self._sampler(True).batches()])
        b = np.concatenate([b[0] for b in self._sampler(False).batches()])
        assert a.shape == b.shape
        assert not np.allclose(a, b)

    def test_deterministic_given_seed(self):
        a = next(self._sampler(True).batches())[0]
        b = next(self._sampler(True).batches())[0]
        np.testing.assert_array_equal(a, b)


class TestImageFolderDataset:
    def _make_folder(self, tmp_path, n=3, colour=False):
        from repro.datasets import SyntheticDataset

        ds = SyntheticDataset("set5", n_images=n, size=(40, 40), seed=8)
        for i in range(n):
            hr = ds[i][1]
            if colour:
                img = np.stack([hr, hr * 0.9, hr * 0.8], axis=2)
                save_image(os.path.join(tmp_path, f"img{i}.ppm"), img)
            else:
                save_image(os.path.join(tmp_path, f"img{i}.pgm"), hr)
        return tmp_path

    def test_greyscale_pairs(self, tmp_path):
        from repro.datasets import ImageFolderDataset, bicubic_downscale

        folder = self._make_folder(tmp_path)
        ds = ImageFolderDataset(str(folder), scale=2)
        assert len(ds) == 3
        lr, hr = ds[0]
        assert hr.shape == (40, 40) and lr.shape == (20, 20)
        np.testing.assert_allclose(lr, bicubic_downscale(hr, 2), atol=1e-6)
        assert ds.name(0) == "img0.pgm"

    def test_colour_converts_to_y(self, tmp_path):
        from repro.datasets import ImageFolderDataset

        folder = self._make_folder(tmp_path, colour=True)
        ds = ImageFolderDataset(str(folder), scale=2)
        lr, hr = ds[0]
        assert hr.ndim == 2  # Y channel only

    def test_evaluator_compatibility(self, tmp_path):
        """The real-image dataset plugs into the standard evaluator."""
        from repro.core import SESR
        from repro.datasets import ImageFolderDataset
        from repro.train import evaluate_model

        folder = self._make_folder(tmp_path)
        ds = ImageFolderDataset(str(folder), scale=2)
        metrics = evaluate_model(SESR(scale=2, f=8, m=1, expansion=16), ds)
        assert metrics["psnr"] > 5

    def test_odd_sizes_cropped_to_scale_multiple(self, tmp_path):
        from repro.datasets import ImageFolderDataset

        save_image(os.path.join(tmp_path, "odd.pgm"),
                   np.random.default_rng(0).random((13, 11)).astype(np.float32))
        ds = ImageFolderDataset(str(tmp_path), scale=4)
        lr, hr = ds[0]
        assert hr.shape == (12, 8) and lr.shape == (3, 2)

    def test_errors(self, tmp_path):
        from repro.datasets import ImageFolderDataset

        with pytest.raises(FileNotFoundError):
            ImageFolderDataset(str(tmp_path / "missing"))
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(FileNotFoundError, match="netpbm"):
            ImageFolderDataset(str(empty))
        ds_dir = tmp_path / "d"
        ds_dir.mkdir()
        save_image(os.path.join(ds_dir, "x.pgm"),
                   np.zeros((8, 8), dtype=np.float32))
        ds = ImageFolderDataset(str(ds_dir))
        with pytest.raises(IndexError):
            ds[5]
