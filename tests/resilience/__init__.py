"""Chaos suite: deterministic fault injection and crash recovery."""
