"""CircuitBreaker state machine driven by a fake clock (no sleeping)."""

import pytest

from repro.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)

pytestmark = pytest.mark.chaos


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make(threshold=3, cooldown=10.0, **kw):
    clock = FakeClock()
    return CircuitBreaker(failure_threshold=threshold, cooldown=cooldown,
                          clock=clock, **kw), clock


def trip(breaker, n):
    for _ in range(n):
        breaker.record_failure()


def test_starts_closed_and_allows():
    b, _ = make()
    assert b.state == BREAKER_CLOSED
    assert b.allow()


def test_consecutive_failures_open_it():
    b, _ = make(threshold=3)
    trip(b, 2)
    assert b.state == BREAKER_CLOSED
    trip(b, 1)
    assert b.state == BREAKER_OPEN
    assert not b.allow()


def test_success_resets_the_consecutive_count():
    b, _ = make(threshold=3)
    trip(b, 2)
    b.record_success()
    trip(b, 2)
    assert b.state == BREAKER_CLOSED


def test_open_refuses_until_cooldown_elapses():
    b, clock = make(threshold=1, cooldown=10.0)
    trip(b, 1)
    clock.advance(9.9)
    assert not b.allow()
    clock.advance(0.2)
    assert b.allow()
    assert b.state == BREAKER_HALF_OPEN


def test_half_open_admits_at_most_half_open_max_trials():
    b, clock = make(threshold=1, cooldown=1.0, half_open_max=1)
    trip(b, 1)
    clock.advance(2.0)
    assert b.allow()          # the single trial slot
    assert not b.allow()      # second concurrent probe refused


def test_half_open_success_closes():
    b, clock = make(threshold=1, cooldown=1.0)
    trip(b, 1)
    clock.advance(2.0)
    assert b.allow()
    b.record_success()
    assert b.state == BREAKER_CLOSED
    assert b.allow()


def test_half_open_failure_reopens_and_restarts_cooldown():
    b, clock = make(threshold=1, cooldown=5.0)
    trip(b, 1)
    clock.advance(6.0)
    assert b.allow()
    b.record_failure()
    assert b.state == BREAKER_OPEN
    clock.advance(4.0)
    assert not b.allow()      # cooldown restarted at the re-open
    clock.advance(2.0)
    assert b.allow()


def test_on_transition_callback_sees_every_edge():
    edges = []
    b, clock = make(threshold=1, cooldown=1.0,
                    on_transition=lambda old, new: edges.append((old, new)))
    trip(b, 1)
    clock.advance(2.0)
    b.allow()
    b.record_success()
    assert edges == [
        (BREAKER_CLOSED, BREAKER_OPEN),
        (BREAKER_OPEN, BREAKER_HALF_OPEN),
        (BREAKER_HALF_OPEN, BREAKER_CLOSED),
    ]


def test_reset_forces_closed():
    b, _ = make(threshold=1)
    trip(b, 1)
    b.reset()
    assert b.state == BREAKER_CLOSED
    assert b.allow()


def test_snapshot_shape_and_cooldown_remaining():
    b, clock = make(threshold=1, cooldown=10.0)
    b.name = "m5:x2:collapsed"
    trip(b, 1)
    clock.advance(4.0)
    snap = b.snapshot()
    assert snap["name"] == "m5:x2:collapsed"
    assert snap["state"] == BREAKER_OPEN
    assert snap["cooldown_remaining_s"] == pytest.approx(6.0)
    assert snap["transitions"][BREAKER_OPEN] == 1


def test_invalid_parameters_raise():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown=-1.0)
    with pytest.raises(ValueError):
        CircuitBreaker(half_open_max=0)
