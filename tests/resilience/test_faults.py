"""FaultInjector determinism: same seed, same fault schedule."""

import pytest

from repro.resilience import FaultInjector, InjectedFault, WorkerDeath

pytestmark = pytest.mark.chaos


def _schedule(inj, n=30):
    """Record which of ``n`` calls fault (F), kill (K), or pass (.)."""
    out = []
    for _ in range(n):
        try:
            inj.on_tile()
            out.append(".")
        except InjectedFault:
            out.append("F")
        except WorkerDeath:
            out.append("K")
    return "".join(out)


def test_fail_first_faults_exactly_n_calls():
    inj = FaultInjector(fail_first=3)
    assert _schedule(inj, 6) == "FFF..."
    assert inj.stats() == {"calls": 6, "faults": 3, "kills": 0, "delays": 0}


def test_persistent_faults_every_call():
    inj = FaultInjector(persistent=True)
    assert _schedule(inj, 5) == "FFFFF"


def test_fail_rate_schedule_is_seed_reproducible():
    a = _schedule(FaultInjector(seed=42, fail_rate=0.3), 100)
    b = _schedule(FaultInjector(seed=42, fail_rate=0.3), 100)
    c = _schedule(FaultInjector(seed=43, fail_rate=0.3), 100)
    assert a == b
    assert a != c
    assert "F" in a and "." in a


def test_kill_on_calls_raises_worker_death_at_exact_indices():
    inj = FaultInjector(kill_on_calls={2, 4})
    assert _schedule(inj, 5) == ".K.K."
    assert inj.stats()["kills"] == 2


def test_worker_death_is_not_an_exception():
    assert not issubclass(WorkerDeath, Exception)
    assert issubclass(InjectedFault, Exception)


def test_latency_every_sleeps_on_schedule(monkeypatch):
    slept = []
    monkeypatch.setattr("repro.resilience.faults.time.sleep", slept.append)
    inj = FaultInjector(latency=0.5, latency_every=2)
    _schedule(inj, 6)
    assert slept == [0.5, 0.5, 0.5]
    assert inj.stats()["delays"] == 3


def test_invalid_knobs_raise():
    with pytest.raises(ValueError):
        FaultInjector(fail_rate=1.5)
    with pytest.raises(ValueError):
        FaultInjector(fail_first=-1)
