"""HTTP-layer resilience: body-size limits, degraded headers, signal hooks."""

import json
import signal
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cli import _install_shutdown_handlers
from repro.datasets import decode_netpbm, encode_netpbm
from repro.resilience import FaultInjector, RetryPolicy
from repro.serve import (
    EngineConfig,
    InferenceEngine,
    ModelKey,
    ModelRegistry,
    make_server,
)

pytestmark = pytest.mark.chaos

KEY = ModelKey(name="M3", scale=2)


def start_server(engine, **kwargs):
    srv = make_server(engine, "127.0.0.1", 0, **kwargs)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    return srv, thread


def url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def post(server, path, body):
    req = urllib.request.Request(url(server, path), data=body, method="POST")
    return urllib.request.urlopen(req, timeout=30)


class TestBodySizeLimit:
    @pytest.fixture(scope="class")
    def server(self):
        engine = InferenceEngine(
            ModelRegistry(), KEY, config=EngineConfig(workers=1, tile=64),
        )
        srv, thread = start_server(engine, max_body_bytes=4096)
        yield srv
        srv.close()
        thread.join(timeout=5)

    def test_small_body_is_served(self, server):
        img = np.random.default_rng(0).random((10, 10)).astype(np.float32)
        body = encode_netpbm(img)
        assert len(body) <= 4096
        with post(server, "/v1/upscale", body) as resp:
            out = decode_netpbm(resp.read())
        assert out.shape == (20, 20)

    def test_oversized_body_is_413(self, server):
        img = np.random.default_rng(1).random((80, 80)).astype(np.float32)
        body = encode_netpbm(img)
        assert len(body) > 4096
        with pytest.raises(urllib.error.HTTPError) as err:
            post(server, "/v1/upscale", body)
        assert err.value.code == 413
        detail = json.load(err.value)
        assert detail["error"]["code"] == "payload_too_large"
        assert "exceeds" in detail["error"]["message"]

    def test_server_still_healthy_after_rejections(self, server):
        # The unread oversized body must not wedge or corrupt the listener.
        big = encode_netpbm(np.ones((80, 80), dtype=np.float32))
        for _ in range(3):
            with pytest.raises(urllib.error.HTTPError):
                post(server, "/v1/upscale", big)
        with urllib.request.urlopen(url(server, "/v1/healthz"), timeout=30) as r:
            assert json.load(r)["status"] == "ok"

    def test_rejection_does_not_touch_the_engine(self, server):
        before = server.engine.stats()["counters"]["engine.requests_total"]
        with pytest.raises(urllib.error.HTTPError):
            post(server, "/v1/upscale",
                 encode_netpbm(np.ones((80, 80), dtype=np.float32)))
        after = server.engine.stats()["counters"]["engine.requests_total"]
        assert after == before

    def test_invalid_max_body_bytes_rejected(self):
        engine = InferenceEngine(
            ModelRegistry(), KEY, config=EngineConfig(workers=1),
        )
        try:
            with pytest.raises(ValueError):
                make_server(engine, "127.0.0.1", 0, max_body_bytes=0)
        finally:
            engine.shutdown()


class TestDegradedHeader:
    def test_degraded_response_carries_the_header(self):
        engine = InferenceEngine(
            ModelRegistry(), KEY,
            config=EngineConfig(
                workers=1, tile=64, cache_size=0,
                retry=RetryPolicy(max_attempts=1, base_delay=0.0),
                degraded_mode=True,
            ),
            fault_injector=FaultInjector(persistent=True),
        )
        srv, thread = start_server(engine)
        try:
            img = np.random.default_rng(2).random((12, 12)).astype(np.float32)
            with post(srv, "/v1/upscale", encode_netpbm(img)) as resp:
                assert resp.headers["X-Degraded"] == "true"
                out = decode_netpbm(resp.read())
            assert out.shape == (24, 24)
        finally:
            srv.close()
            thread.join(timeout=5)

    def test_healthy_response_says_degraded_false(self):
        engine = InferenceEngine(
            ModelRegistry(), KEY, config=EngineConfig(workers=1, tile=64),
        )
        srv, thread = start_server(engine)
        try:
            img = np.random.default_rng(3).random((12, 12)).astype(np.float32)
            with post(srv, "/v1/upscale", encode_netpbm(img)) as resp:
                assert resp.headers["X-Degraded"] == "false"
        finally:
            srv.close()
            thread.join(timeout=5)


class TestShutdownHandlers:
    def test_sigint_and_sigterm_route_to_keyboard_interrupt(self):
        saved = {sig: signal.getsignal(sig)
                 for sig in (signal.SIGINT, signal.SIGTERM)}
        try:
            _install_shutdown_handlers()
            for sig in (signal.SIGINT, signal.SIGTERM):
                handler = signal.getsignal(sig)
                assert callable(handler)
                with pytest.raises(KeyboardInterrupt):
                    handler(sig, None)
        finally:
            for sig, old in saved.items():
                signal.signal(sig, old)

    def test_install_from_worker_thread_is_a_noop(self):
        # signal.signal raises ValueError off the main thread; the helper
        # must swallow it so `repro serve` can run under any runner.
        errors = []

        def install():
            try:
                _install_shutdown_handlers()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        t = threading.Thread(target=install)
        t.start()
        t.join(timeout=10)
        assert errors == []
