"""Checkpoint corruption: damaged files raise typed errors, never load garbage."""

import os

import numpy as np
import pytest

from repro.core import SESR
from repro.nn import Adam
from repro.train import (
    CheckpointCorrupt,
    Trainer,
    load_checkpoint,
    resume_checkpoint,
    save_checkpoint,
    verify_checkpoint,
)
from repro.train.checkpoint import CHECKSUM_KEY, _payload_checksum

pytestmark = pytest.mark.chaos


def small_model(seed=0):
    return SESR(scale=2, f=8, m=1, expansion=16, seed=seed)


def trained_checkpoint(tmp_path, step=7, name="ck.npz"):
    """A checkpoint with non-trivial ADAM moments (one real step taken)."""
    model = small_model()
    trainer = Trainer(model, lr=1e-3)
    rng = np.random.default_rng(0)
    trainer.train_step(
        rng.random((2, 12, 12, 1)).astype(np.float32),
        rng.random((2, 24, 24, 1)).astype(np.float32),
    )
    path = os.path.join(tmp_path, name)
    save_checkpoint(path, model, trainer.optimizer, step=step)
    return path, model, trainer


def truncate(path, keep_fraction=0.5):
    with open(path, "rb") as fh:
        data = fh.read()
    with open(path, "wb") as fh:
        fh.write(data[: int(len(data) * keep_fraction)])


def flip_byte(path, offset=None):
    with open(path, "rb") as fh:
        data = bytearray(fh.read())
    offset = len(data) // 2 if offset is None else offset
    data[offset] ^= 0xFF
    with open(path, "wb") as fh:
        fh.write(bytes(data))


def rewrite_without_keys(path, *drop):
    """Drop payload keys but keep the checksum valid (structural damage)."""
    with np.load(path) as archive:
        payload = {k: archive[k] for k in archive.files}
    payload.pop(CHECKSUM_KEY)
    for key in drop:
        payload.pop(key)
    payload[CHECKSUM_KEY] = _payload_checksum(payload)
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **payload)


class TestDamageDetection:
    def test_truncated_file_raises_corrupt(self, tmp_path):
        path, _, _ = trained_checkpoint(tmp_path)
        truncate(path)
        model = small_model(5)
        with pytest.raises(CheckpointCorrupt):
            load_checkpoint(path, model, Adam(model.parameters()))

    def test_flipped_byte_raises_corrupt(self, tmp_path):
        path, _, _ = trained_checkpoint(tmp_path)
        flip_byte(path)
        model = small_model(5)
        with pytest.raises(CheckpointCorrupt):
            load_checkpoint(path, model, Adam(model.parameters()))

    def test_verify_checkpoint_catches_damage_without_a_model(self, tmp_path):
        path, _, _ = trained_checkpoint(tmp_path, step=7)
        assert verify_checkpoint(path) == 7
        flip_byte(path)
        with pytest.raises(CheckpointCorrupt):
            verify_checkpoint(path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            verify_checkpoint(os.path.join(tmp_path, "nope.npz"))

    def test_failed_load_leaves_model_and_optimizer_untouched(self, tmp_path):
        path, _, _ = trained_checkpoint(tmp_path)
        flip_byte(path)
        model = small_model(5)
        optimizer = Adam(model.parameters(), lr=0.123)
        before = [p.data.copy() for p in model.parameters()]
        with pytest.raises(CheckpointCorrupt):
            load_checkpoint(path, model, optimizer)
        for p, b in zip(model.parameters(), before):
            np.testing.assert_array_equal(p.data, b)
        assert optimizer.lr == 0.123 and optimizer.t == 0


class TestStructuralValidation:
    # These files pass the checksum — the damage is missing keys, which
    # the validate-then-apply layer must catch before any state mutates.

    def test_missing_adam_moment_raises_corrupt(self, tmp_path):
        path, _, _ = trained_checkpoint(tmp_path)
        rewrite_without_keys(path, "optim/m/0")
        model = small_model(5)
        with pytest.raises(CheckpointCorrupt, match="incomplete"):
            load_checkpoint(path, model, Adam(model.parameters()))

    def test_missing_lr_raises_corrupt(self, tmp_path):
        path, _, _ = trained_checkpoint(tmp_path)
        rewrite_without_keys(path, "optim/lr")
        model = small_model(5)
        with pytest.raises(CheckpointCorrupt, match="optim/lr"):
            load_checkpoint(path, model, Adam(model.parameters()))

    def test_no_optimizer_state_at_all_raises_key_error(self, tmp_path):
        model = small_model()
        path = os.path.join(tmp_path, "weights-only.npz")
        save_checkpoint(path, model)  # no optimizer in the file
        with pytest.raises(KeyError, match="optimizer"):
            load_checkpoint(path, model, Adam(model.parameters()))

    def test_validation_failure_leaves_state_untouched(self, tmp_path):
        path, _, _ = trained_checkpoint(tmp_path)
        rewrite_without_keys(path, "optim/m/0")
        model = small_model(5)
        optimizer = Adam(model.parameters(), lr=0.5)
        before = [p.data.copy() for p in model.parameters()]
        with pytest.raises(CheckpointCorrupt):
            load_checkpoint(path, model, optimizer)
        for p, b in zip(model.parameters(), before):
            np.testing.assert_array_equal(p.data, b)
        assert optimizer.lr == 0.5 and optimizer.t == 0


class TestAtomicityAndBackup:
    def test_save_leaves_no_tmp_file(self, tmp_path):
        path, _, _ = trained_checkpoint(tmp_path)
        assert os.path.exists(path)
        leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        assert leftovers == []

    def test_keep_backup_rotates_previous_generation(self, tmp_path):
        path, model, trainer = trained_checkpoint(tmp_path, step=1)
        save_checkpoint(path, model, trainer.optimizer, step=2,
                        keep_backup=True)
        assert verify_checkpoint(path) == 2
        assert verify_checkpoint(path + ".bak") == 1

    def test_resume_falls_back_to_backup_when_primary_corrupt(self, tmp_path):
        path, model, trainer = trained_checkpoint(tmp_path, step=1)
        save_checkpoint(path, model, trainer.optimizer, step=2,
                        keep_backup=True)
        truncate(path)  # the crash landed on the newest generation
        clone = small_model(9)
        step = resume_checkpoint(path, clone, Adam(clone.parameters()))
        assert step == 1

    def test_resume_returns_zero_when_nothing_usable(self, tmp_path):
        model = small_model()
        missing = os.path.join(tmp_path, "never-written.npz")
        assert resume_checkpoint(missing, model) == 0
        path, _, _ = trained_checkpoint(tmp_path)
        truncate(path)
        assert resume_checkpoint(path, model) == 0
