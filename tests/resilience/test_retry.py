"""RetryPolicy backoff maths and call_with_retry semantics."""

import pytest

from repro.resilience import RetryPolicy, WorkerDeath, call_with_retry

pytestmark = pytest.mark.chaos


class TestBackoff:
    def test_grows_geometrically_without_jitter(self):
        p = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=10.0,
                        jitter=0.0)
        assert p.backoff(1) == pytest.approx(0.1)
        assert p.backoff(2) == pytest.approx(0.2)
        assert p.backoff(3) == pytest.approx(0.4)

    def test_capped_at_max_delay(self):
        p = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=3.0,
                        jitter=0.0)
        assert p.backoff(5) == pytest.approx(3.0)

    def test_jitter_shrinks_within_bounds(self):
        p = RetryPolicy(base_delay=1.0, multiplier=1.0, max_delay=1.0,
                        jitter=0.5)
        rng = p.rng()
        for _ in range(50):
            d = p.backoff(1, rng.random())
            assert 0.5 < d <= 1.0

    def test_jitter_schedule_is_seed_deterministic(self):
        p = RetryPolicy(seed=7)
        a = [p.backoff(i, p.rng().random()) for i in range(1, 4)]
        b = [p.backoff(i, p.rng().random()) for i in range(1, 4)]
        assert a == b

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)


class TestCallWithRetry:
    def test_transient_failure_recovers(self):
        sleeps = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return "ok"

        out = call_with_retry(
            flaky, RetryPolicy(max_attempts=3, jitter=0.0),
            sleep=sleeps.append,
        )
        assert out == "ok" and calls["n"] == 3
        assert len(sleeps) == 2 and sleeps[1] > sleeps[0]

    def test_exhaustion_reraises_last_error(self):
        def always():
            raise RuntimeError("persistent")

        with pytest.raises(RuntimeError, match="persistent"):
            call_with_retry(always, RetryPolicy(max_attempts=2),
                            sleep=lambda _: None)

    def test_on_retry_callback_fires_per_retry(self):
        seen = []

        def always():
            raise ValueError("nope")

        with pytest.raises(ValueError):
            call_with_retry(
                always, RetryPolicy(max_attempts=3), sleep=lambda _: None,
                on_retry=lambda attempt, exc: seen.append(attempt),
            )
        assert seen == [1, 2]

    def test_worker_death_is_never_retried(self):
        calls = {"n": 0}

        def dies():
            calls["n"] += 1
            raise WorkerDeath("kill -9")

        with pytest.raises(WorkerDeath):
            call_with_retry(dies, RetryPolicy(max_attempts=5),
                            sleep=lambda _: None)
        assert calls["n"] == 1
