"""Chaos tests for the serving engine: deterministic fault injection.

Every scenario drives the engine through a seeded
:class:`~repro.resilience.FaultInjector`, so the fault schedule — and
therefore the asserted outcome — is identical on every run.  All blocking
calls carry explicit timeouts; nothing here can hang the suite.
"""

import time

import numpy as np
import pytest

from repro.datasets.degradation import bicubic_upscale
from repro.resilience import CircuitBreaker, FaultInjector, RetryPolicy
from repro.serve import (
    BreakerOpen,
    EngineConfig,
    EngineError,
    InferenceEngine,
    ModelKey,
    ModelRegistry,
)
from repro.train import predict_image

pytestmark = pytest.mark.chaos

KEY = ModelKey(name="M3", scale=2)

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.001, jitter=0.0)
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0)


@pytest.fixture(scope="module")
def registry():
    return ModelRegistry()


def make_engine(registry, **kwargs):
    """Build an engine from flat kwargs (collaborators split from config)."""
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("tile", 64)  # one tile per small test image
    kwargs.setdefault("cache_size", 0)
    extras = {
        k: kwargs.pop(k)
        for k in ("telemetry", "breaker", "fault_injector")
        if k in kwargs
    }
    return InferenceEngine(
        registry, KEY, config=EngineConfig(**kwargs), **extras
    )


def image(seed=0, shape=(20, 20)):
    return np.random.default_rng(seed).random(shape).astype(np.float32)


def degraded_reference(img, scale=2):
    return np.clip(bicubic_upscale(img, scale), 0.0, 1.0).astype(np.float32)


class TestTransientFaults:
    def test_retries_absorb_transient_faults_bit_exactly(self, registry):
        img = image(0)
        inj = FaultInjector(fail_first=2)
        with make_engine(registry, retry=FAST_RETRY, fault_injector=inj) as eng:
            result = eng.upscale_ex(img, timeout=30.0)
            ref = predict_image(eng.model, img)
            snap = eng.stats()
        assert not result.degraded
        np.testing.assert_array_equal(result.image, ref)
        assert snap["counters"]["engine.tile_retries"] == 2
        assert snap["counters"]["engine.requests_ok"] == 1
        assert inj.stats()["faults"] == 2

    def test_seeded_fail_rate_is_survivable(self, registry):
        # 30% per-attempt fault rate, 3 attempts per tile: the seeded
        # schedule is fixed, so this either passes always or never.
        inj = FaultInjector(seed=7, fail_rate=0.3)
        imgs = [image(i) for i in range(4)]
        with make_engine(registry, retry=FAST_RETRY, fault_injector=inj,
                         degraded_mode=True) as eng:
            results = [eng.upscale_ex(im, timeout=30.0) for im in imgs]
            snap = eng.stats()
        assert len(results) == 4
        assert snap["counters"]["engine.requests_total"] == 4
        assert snap["fault_injector"]["calls"] >= 4


class TestPersistentFaults:
    def test_degraded_mode_serves_bicubic_and_opens_breaker(self, registry):
        inj = FaultInjector(persistent=True)
        breaker = CircuitBreaker(failure_threshold=2, cooldown=60.0)
        with make_engine(registry, retry=NO_RETRY, fault_injector=inj,
                         breaker=breaker, degraded_mode=True) as eng:
            imgs = [image(i) for i in range(3)]
            results = [eng.upscale_ex(im, timeout=30.0) for im in imgs]
            snap = eng.stats()

        for im, res in zip(imgs, results):
            assert res.degraded
            np.testing.assert_array_equal(res.image, degraded_reference(im))
        # Requests 1-2 exhaust retries (breaker trips at the 2nd); request
        # 3 is short-circuited without ever touching the model.
        assert results[2].reason == "circuit breaker open"
        assert snap["breaker"]["state"] == "open"
        assert snap["counters"]["engine.requests_error"] == 2
        assert snap["counters"]["engine.breaker_short_circuits"] == 1
        assert snap["counters"]["engine.requests_degraded"] == 3
        assert snap["states"]["engine.breaker_state"] == "open"
        assert inj.stats()["calls"] == 2  # request 3 never reached a tile

    def test_degraded_outputs_are_never_cached(self, registry):
        img = image(1)
        inj = FaultInjector(fail_first=1)
        with make_engine(registry, retry=NO_RETRY, fault_injector=inj,
                         degraded_mode=True, cache_size=8) as eng:
            first = eng.upscale_ex(img, timeout=30.0)
            second = eng.upscale_ex(img, timeout=30.0)
        assert first.degraded and not second.degraded
        assert not second.cached  # the degraded bytes were not cached
        np.testing.assert_array_equal(first.image, degraded_reference(img))

    def test_without_degraded_mode_failures_raise(self, registry):
        inj = FaultInjector(persistent=True)
        breaker = CircuitBreaker(failure_threshold=1, cooldown=60.0)
        with make_engine(registry, retry=NO_RETRY, fault_injector=inj,
                         breaker=breaker) as eng:
            with pytest.raises(EngineError, match="injected tile fault"):
                eng.upscale(image(0), timeout=30.0)
            # Breaker is now open: the next request short-circuits into
            # BreakerOpen instead of touching the model.
            with pytest.raises(BreakerOpen, match="circuit breaker open"):
                eng.upscale(image(1), timeout=30.0)


class TestBreakerRecovery:
    def test_half_open_probe_success_closes_breaker(self, registry):
        inj = FaultInjector(fail_first=2)
        breaker = CircuitBreaker(failure_threshold=2, cooldown=0.05)
        with make_engine(registry, retry=NO_RETRY, fault_injector=inj,
                         breaker=breaker, degraded_mode=True) as eng:
            a = eng.upscale_ex(image(0), timeout=30.0)
            b = eng.upscale_ex(image(1), timeout=30.0)
            assert a.degraded and b.degraded
            assert eng.breaker.state == "open"

            time.sleep(0.1)  # cooldown elapses
            img = image(2)
            c = eng.upscale_ex(img, timeout=30.0)
            ref = predict_image(eng.model, img)
            snap = eng.stats()

        assert not c.degraded
        np.testing.assert_array_equal(c.image, ref)
        assert eng.breaker.state == "closed"
        assert snap["breaker"]["transitions"] == {
            "closed": 1, "open": 1, "half_open": 1,
        }
        assert snap["counters"]["engine.breaker_to_closed"] == 1


class TestWorkerSupervision:
    def test_worker_death_requeues_job_and_respawns(self, registry):
        img = image(3)
        inj = FaultInjector(kill_on_calls={1})
        with make_engine(registry, workers=1, fault_injector=inj,
                         supervise_interval=0.05) as eng:
            result = eng.upscale_ex(img, timeout=30.0)
            ref = predict_image(eng.model, img)
            snap = eng.stats()
        assert not result.degraded
        np.testing.assert_array_equal(result.image, ref)
        assert snap["counters"]["engine.worker_deaths"] == 1
        assert snap["counters"]["engine.worker_respawns"] >= 1
        assert inj.stats()["kills"] == 1

    def test_wedged_worker_is_retired_and_replaced(self, registry):
        inj = FaultInjector(latency=0.5, latency_every=1)
        with make_engine(registry, workers=1, fault_injector=inj,
                         supervise_interval=0.05, wedge_timeout=0.1) as eng:
            result = eng.upscale_ex(image(4), timeout=30.0)
            # Give the supervisor a beat to see the busy heartbeat.
            deadline = time.monotonic() + 5.0
            while (eng.stats()["counters"].get("engine.workers_wedged", 0) < 1
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            snap = eng.stats()
        assert not result.degraded  # the slow request still completed
        assert snap["counters"]["engine.workers_wedged"] >= 1
        assert snap["counters"]["engine.worker_respawns"] >= 1

    def test_pool_survives_repeated_deaths(self, registry):
        # Three kills spread across the schedule; every request completes.
        inj = FaultInjector(kill_on_calls={1, 3, 5})
        with make_engine(registry, workers=2, fault_injector=inj,
                         supervise_interval=0.05) as eng:
            for i in range(4):
                out = eng.upscale(image(10 + i), timeout=30.0)
                assert out.shape == (40, 40)
            snap = eng.stats()
        assert snap["counters"]["engine.worker_deaths"] == 3
        assert snap["counters"]["engine.requests_ok"] == 4
