"""Training under chaos: NaN batches, divergence rollback, crash-resume."""

import os

import numpy as np
import pytest

from repro.core import SESR
from repro.datasets import PatchSampler, SyntheticDataset
from repro.resilience import GUARD_OK, GUARD_ROLLBACK, GUARD_SKIP, NumericGuard
from repro.train import Trainer

pytestmark = pytest.mark.chaos


def make_sampler(seed=3):
    ds = SyntheticDataset("div2k", n_images=2, size=(48, 48), scale=2, seed=1)
    return PatchSampler(ds, scale=2, patch_size=12, crops_per_image=8,
                        batch_size=4, seed=seed)


def make_model(seed=0):
    return SESR(scale=2, f=8, m=1, expansion=16, seed=seed)


class PoisonedSampler:
    """Wraps a sampler, replacing chosen steps' batches with all-NaN data."""

    def __init__(self, inner, poison_steps):
        self.inner = inner
        self.poison = set(poison_steps)

    def steps_per_epoch(self):
        return self.inner.steps_per_epoch()

    def batches(self, epochs=1):
        for step, (lr_b, hr_b) in enumerate(self.inner.batches(epochs), 1):
            if step in self.poison:
                lr_b = np.full_like(lr_b, np.nan)
            yield lr_b, hr_b


class TestNumericGuardVerdicts:
    def test_finite_loss_is_ok(self):
        g = NumericGuard()
        assert g.check(0.5) == GUARD_OK
        assert g.ok_steps == 1

    def test_nan_and_inf_loss_skip(self):
        g = NumericGuard()
        assert g.check(float("nan")) == GUARD_SKIP
        assert g.check(float("inf")) == GUARD_SKIP
        assert "non-finite loss" in g.last_reason

    def test_non_finite_gradient_skips(self):
        g = NumericGuard()
        grads = [np.ones(3), np.array([1.0, np.inf, 0.0])]
        assert g.check(0.5, grads) == GUARD_SKIP
        assert "gradient in parameter 1" in g.last_reason

    def test_loss_spike_skips_once_history_arms(self):
        g = NumericGuard(spike_factor=10.0, min_history=5)
        for _ in range(4):
            assert g.check(1.0) == GUARD_OK
        assert g.check(100.0) == GUARD_OK  # history not armed yet
        assert g.check(1.0) == GUARD_OK
        assert g.check(300.0) == GUARD_SKIP
        assert "loss spike" in g.last_reason

    def test_skipped_losses_do_not_poison_the_baseline(self):
        g = NumericGuard(spike_factor=10.0, min_history=5, max_consecutive=99)
        for _ in range(5):
            g.check(1.0)
        g.check(500.0)  # skipped — must not enter the running mean
        assert g.check(20.0) == GUARD_SKIP  # still a spike vs baseline 1.0

    def test_rollback_after_max_consecutive_then_counter_resets(self):
        g = NumericGuard(max_consecutive=2)
        assert g.check(float("nan")) == GUARD_SKIP
        assert g.check(float("nan")) == GUARD_ROLLBACK
        assert g.check(float("nan")) == GUARD_SKIP  # counter restarted
        stats = g.stats()
        assert stats["skipped_steps"] == 3
        assert stats["rollbacks_signalled"] == 1

    def test_good_step_resets_the_consecutive_count(self):
        g = NumericGuard(max_consecutive=2)
        g.check(float("nan"))
        g.check(0.5)
        assert g.check(float("nan")) == GUARD_SKIP  # 1st again, not 2nd

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            NumericGuard(spike_factor=1.0)
        with pytest.raises(ValueError):
            NumericGuard(lr_decay=0.0)
        with pytest.raises(ValueError):
            NumericGuard(max_consecutive=0)


class TestGuardedStep:
    def test_nan_batch_leaves_parameters_and_moments_untouched(self):
        model = make_model()
        trainer = Trainer(model, lr=1e-3)
        before = [p.data.copy() for p in model.parameters()]
        lr_b = np.full((2, 12, 12, 1), np.nan, dtype=np.float32)
        hr_b = np.zeros((2, 24, 24, 1), dtype=np.float32)
        loss, verdict = trainer.guarded_step(lr_b, hr_b, NumericGuard())
        assert verdict == GUARD_SKIP and not np.isfinite(loss)
        for p, b in zip(model.parameters(), before):
            np.testing.assert_array_equal(p.data, b)
        assert trainer.optimizer.t == 0  # ADAM never stepped

    def test_without_guard_is_exactly_train_step(self):
        rng = np.random.default_rng(1)
        lr_b = rng.random((2, 12, 12, 1)).astype(np.float32)
        hr_b = rng.random((2, 24, 24, 1)).astype(np.float32)
        a, b = Trainer(make_model(), lr=1e-3), Trainer(make_model(), lr=1e-3)
        loss_a = a.train_step(lr_b, hr_b)
        loss_b, verdict = b.guarded_step(lr_b, hr_b, guard=None)
        assert loss_a == loss_b and verdict == GUARD_OK
        for p, q in zip(a.model.parameters(), b.model.parameters()):
            np.testing.assert_array_equal(p.data, q.data)


class TestFitUnderChaos:
    def test_poisoned_steps_are_skipped_and_rolled_back(self, tmp_path):
        # 8 steps total; the step-4 checkpoint is the rollback anchor.
        # Steps 5-6 are poisoned: skip, then (max_consecutive=2) rollback.
        path = os.path.join(tmp_path, "ck.npz")
        trainer = Trainer(make_model(), lr=1e-3)
        guard = NumericGuard(max_consecutive=2, lr_decay=0.5)
        result = trainer.fit(
            PoisonedSampler(make_sampler(), poison_steps={5, 6}),
            epochs=2, checkpoint_path=path, checkpoint_every=4, guard=guard,
        )
        assert result.steps == 8
        assert result.skipped_steps == 2
        assert result.rollbacks == 1
        assert result.checkpoints_written == 2  # steps 4 and 8; not step 6
        assert np.isnan(result.loss_history[4])
        assert np.isnan(result.loss_history[5])
        # Rollback halved the learning rate for the rest of the run.
        assert trainer.optimizer.lr == pytest.approx(1e-3 * 0.5)
        # The run came out of the poison window with finite weights.
        for p in trainer.model.parameters():
            assert np.all(np.isfinite(p.data))
        assert np.isfinite(result.final_loss)

    def test_poison_free_run_with_guard_matches_unguarded(self, tmp_path):
        # The guard must be a no-op on a healthy run: bit-identical weights.
        a = Trainer(make_model(), lr=1e-3)
        res_a = a.fit(make_sampler(), epochs=1)
        b = Trainer(make_model(), lr=1e-3)
        res_b = b.fit(make_sampler(), epochs=1, guard=NumericGuard())
        assert res_a.loss_history == res_b.loss_history
        assert res_b.skipped_steps == 0
        for p, q in zip(a.model.parameters(), b.model.parameters()):
            np.testing.assert_array_equal(p.data, q.data)


class _Crash(RuntimeError):
    pass


class TestCrashResume:
    def test_resume_after_crash_is_bit_exact(self, tmp_path):
        path = os.path.join(tmp_path, "ck.npz")

        # Reference: the run that never crashed.
        ref = Trainer(make_model(0), lr=1e-3)
        res_ref = ref.fit(make_sampler(), epochs=2)
        assert res_ref.steps == 8

        # The same run, killed at step 6 (after the step-4 checkpoint).
        victim = Trainer(make_model(0), lr=1e-3)

        def bomb(step, loss):
            if step == 6:
                raise _Crash("simulated kill -9")

        with pytest.raises(_Crash):
            victim.fit(make_sampler(), epochs=2, checkpoint_path=path,
                       checkpoint_every=4, log_fn=bomb)

        # Resume into a *differently initialised* model: every bit of the
        # resumed trajectory must come from the checkpoint, not luck.
        survivor = Trainer(make_model(99), lr=1e-3)
        res = survivor.fit(make_sampler(), epochs=2, checkpoint_path=path,
                           checkpoint_every=4)
        assert res.resumed_from == 4
        assert res.steps == 8
        assert res.loss_history == res_ref.loss_history[4:]
        for p, q in zip(ref.model.parameters(), survivor.model.parameters()):
            np.testing.assert_array_equal(p.data, q.data)

    def test_resume_false_starts_fresh(self, tmp_path):
        path = os.path.join(tmp_path, "ck.npz")
        first = Trainer(make_model(0), lr=1e-3)
        first.fit(make_sampler(), epochs=1, checkpoint_path=path,
                  checkpoint_every=2)
        again = Trainer(make_model(0), lr=1e-3)
        res = again.fit(make_sampler(), epochs=1, checkpoint_path=path,
                        checkpoint_every=2, resume=False)
        assert res.resumed_from == 0 and res.steps == 4
