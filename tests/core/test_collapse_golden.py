"""Golden-value regression tests for Algorithms 1 & 2.

``golden/collapse_golden.npz`` holds deterministic random inputs and the
outputs :func:`collapse_linear_block`, :func:`collapse_bias`, and
:func:`collapse_residual` produced for them when the fixture was
committed.  These tests pin the collapse path *bit-exactly*: the analytic
equivalence tests elsewhere tolerate float noise, so a subtle numeric
change (a reordered reduction, a dtype slip) could drift under them —
here it fails loudly instead.

Regenerate after an intentional change with
``PYTHONPATH=src python tools/gen_collapse_golden.py`` and review the
diff in the run's numbers before committing it.
"""

import os

import numpy as np
import pytest

from repro.core.collapse import (
    collapse_bias,
    collapse_linear_block,
    collapse_residual,
)

FIXTURE = os.path.join(
    os.path.dirname(__file__), "golden", "collapse_golden.npz"
)


@pytest.fixture(scope="module")
def golden():
    with np.load(FIXTURE) as z:
        return {k: z[k] for k in z.files}


def test_algorithm1_pair_bit_exact(golden):
    """5x5 -> 1x1 pair (the paper's head block) collapses to the pinned W_C."""
    w_c = collapse_linear_block(
        [golden["a_w1"], golden["a_w2"]], (5, 5), 1, 8
    )
    assert w_c.dtype == golden["a_wc"].dtype
    assert w_c.shape == (5, 5, 1, 8)
    np.testing.assert_array_equal(w_c, golden["a_wc"])


def test_algorithm1_three_layer_bit_exact(golden):
    """3-deep stack (3x3 -> 1x1 -> 1x1) matches the pinned collapse."""
    w_c = collapse_linear_block(
        [golden["b_w1"], golden["b_w2"], golden["b_w3"]], (3, 3), 8, 8
    )
    assert w_c.dtype == golden["b_wc"].dtype
    assert w_c.shape == (3, 3, 8, 8)
    np.testing.assert_array_equal(w_c, golden["b_wc"])


def test_bias_fold_bit_exact(golden):
    b_c = collapse_bias(
        [golden["b_w1"], golden["b_w2"], golden["b_w3"]],
        [golden["b_b1"], None, golden["b_b3"]],
    )
    assert b_c.shape == (8,)
    np.testing.assert_array_equal(b_c, golden["b_bc"])


def test_algorithm2_residual_bit_exact(golden):
    w_r = collapse_residual(golden["b_wc"])
    np.testing.assert_array_equal(w_r, golden["b_wr"])
    # Shape/semantics sanity independent of the fixture: a one-hot
    # identity tap at the spatial centre.
    assert w_r.shape == golden["b_wc"].shape
    centre = w_r[1, 1]
    np.testing.assert_array_equal(centre, np.eye(8))
    assert w_r.sum() == 8.0


def test_golden_residual_linearity(golden):
    """conv(x, W_C + W_R) == conv(x, W_C) + x holds for the pinned weights."""
    from repro.core.collapse import max_abs_divergence  # noqa: F401
    from repro.nn import Tensor, no_grad
    from repro.nn.ops import conv2d

    rng = np.random.default_rng(0)
    x = rng.standard_normal((1, 9, 9, 8))
    with no_grad():
        fused = conv2d(
            Tensor(x), Tensor(golden["b_wc"] + golden["b_wr"]),
            padding="same",
        ).data
        split = conv2d(
            Tensor(x), Tensor(golden["b_wc"]), padding="same"
        ).data + x
    np.testing.assert_allclose(fused, split, atol=1e-12)
