"""Collapsible Linear Block tests: functional equivalence across the three
execution paths (expanded, collapsed-train, Algorithm-1 export), gradient
flow into the expanded weights, and API validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CollapsibleLinearBlock
from repro.nn import Adam, Tensor, no_grad
from repro.nn.losses import l1_loss


def _make_block(rng, **kwargs):
    defaults = dict(
        in_channels=3, out_channels=3, kernel_size=3, expansion=16, rng=rng
    )
    defaults.update(kwargs)
    blk = CollapsibleLinearBlock(**defaults)
    # Non-trivial biases so bias folding is actually exercised.
    blk.b_expand.data[:] = rng.standard_normal(blk.expansion) * 0.1
    blk.b_project.data[:] = rng.standard_normal(blk.out_channels) * 0.1
    return blk


class TestEquivalence:
    @pytest.mark.parametrize("residual", [False, True])
    @pytest.mark.parametrize("kernel", [3, 5, (3, 3)])
    def test_three_paths_agree(self, rng, residual, kernel):
        blk = _make_block(rng, kernel_size=kernel, residual=residual,
                          mode="expanded")
        x = rng.standard_normal((2, 7, 6, 3)).astype(np.float32)
        with no_grad():
            expanded = blk(Tensor(x)).data
            blk.set_mode("collapsed")
            collapsed = blk(Tensor(x)).data
            exported = blk.to_conv2d()(Tensor(x)).data
        np.testing.assert_allclose(expanded, collapsed, atol=2e-5)
        np.testing.assert_allclose(expanded, exported, atol=2e-5)

    def test_even_asymmetric_kernels(self, rng):
        for kernel in [(2, 2), (2, 1), (3, 2)]:
            blk = _make_block(rng, kernel_size=kernel, mode="expanded")
            x = rng.standard_normal((1, 6, 6, 3)).astype(np.float32)
            with no_grad():
                expanded = blk(Tensor(x)).data
                blk.set_mode("collapsed")
                collapsed = blk(Tensor(x)).data
            np.testing.assert_allclose(expanded, collapsed, atol=2e-5)

    @given(seed=st.integers(0, 2**31 - 1), k=st.sampled_from([3, 5]),
           p=st.integers(2, 32))
    @settings(max_examples=20, deadline=None)
    def test_property_collapse_exact(self, seed, k, p):
        rng = np.random.default_rng(seed)
        blk = _make_block(rng, kernel_size=k, expansion=p, residual=True,
                          mode="expanded")
        x = rng.standard_normal((1, 8, 8, 3)).astype(np.float64)
        with no_grad():
            a = blk(Tensor(x)).data
            b = blk.to_conv2d()(Tensor(x)).data
        np.testing.assert_allclose(a, b, atol=1e-4)


class TestTrainingDynamics:
    def test_gradients_reach_expanded_weights_in_collapsed_mode(self, rng):
        """§3.3: forward in collapsed space, backward into expanded weights."""
        blk = _make_block(rng, mode="collapsed")
        x = Tensor(rng.standard_normal((2, 6, 6, 3)).astype(np.float32))
        (blk(x) ** 2).sum().backward()
        for name in ("w_expand", "b_expand", "w_project", "b_project"):
            grad = getattr(blk, name).grad
            assert grad is not None and np.abs(grad).max() > 0, name

    def test_collapsed_and_expanded_gradients_match(self, rng):
        """Both modes compute the same function, so same gradients."""
        blk_c = _make_block(rng, mode="collapsed", residual=True)
        blk_e = _make_block(rng, mode="expanded", residual=True)
        blk_e.load_state_dict(blk_c.state_dict())
        x = rng.standard_normal((1, 5, 5, 3)).astype(np.float64)
        for blk in (blk_c, blk_e):
            (blk(Tensor(x)) ** 2).sum().backward()
        for name in ("w_expand", "w_project", "b_expand", "b_project"):
            np.testing.assert_allclose(
                getattr(blk_c, name).grad, getattr(blk_e, name).grad,
                rtol=1e-3, atol=1e-4,
            )

    def test_one_adam_step_trains(self, rng):
        blk = _make_block(rng, mode="collapsed")
        opt = Adam(blk.parameters(), lr=1e-3)
        x = Tensor(rng.standard_normal((2, 6, 6, 3)).astype(np.float32))
        target = Tensor(rng.standard_normal((2, 6, 6, 3)).astype(np.float32))
        losses = []
        for _ in range(10):
            opt.zero_grad()
            loss = l1_loss(blk(x), target)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]


class TestAPI:
    def test_collapsed_num_parameters(self, rng):
        blk = _make_block(rng, in_channels=16, out_channels=16, kernel_size=3)
        assert blk.collapsed_num_parameters() == 9 * 16 * 16
        assert blk.collapsed_num_parameters(include_bias=True) == 9 * 16 * 16 + 16

    def test_training_parameters_exceed_collapsed(self, rng):
        blk = _make_block(rng, expansion=256)
        assert blk.num_parameters() > 10 * blk.collapsed_num_parameters()

    def test_residual_validation(self, rng):
        with pytest.raises(ValueError, match="in_channels == out_channels"):
            CollapsibleLinearBlock(2, 4, 3, residual=True, rng=rng)
        with pytest.raises(ValueError, match="odd"):
            CollapsibleLinearBlock(4, 4, 2, residual=True, rng=rng)

    def test_mode_validation(self, rng):
        with pytest.raises(ValueError, match="mode"):
            CollapsibleLinearBlock(2, 2, 3, mode="bogus", rng=rng)
        blk = _make_block(rng)
        with pytest.raises(ValueError, match="mode"):
            blk.set_mode("nope")

    def test_export_shapes(self, rng):
        blk = _make_block(rng, in_channels=2, out_channels=5, kernel_size=5)
        w, b = blk.collapse()
        assert w.shape == (5, 5, 2, 5)
        assert b.shape == (5,)

    def test_seeded_determinism(self):
        a = CollapsibleLinearBlock(2, 2, 3, rng=np.random.default_rng(42))
        b = CollapsibleLinearBlock(2, 2, 3, rng=np.random.default_rng(42))
        np.testing.assert_array_equal(a.w_expand.data, b.w_expand.data)
