"""SESR model tests: architecture, collapse export, scale transfer, and the
paper's parameter formula."""

import numpy as np
import pytest

from repro.core import SESR, SESR_CONFIGS
from repro.nn import Tensor, no_grad


def tiny(scale=2, **kwargs):
    defaults = dict(scale=scale, f=8, m=2, expansion=16, seed=7)
    defaults.update(kwargs)
    return SESR(**defaults)


class TestArchitecture:
    @pytest.mark.parametrize("scale", [2, 4])
    def test_output_shape(self, rng, scale):
        net = tiny(scale=scale)
        x = Tensor(rng.standard_normal((2, 10, 12, 1)).astype(np.float32))
        assert net(x).shape == (2, 10 * scale, 12 * scale, 1)

    def test_invalid_scale_raises(self, rng):
        net = tiny(scale=2)
        net.scale = 3
        with pytest.raises(ValueError, match="scale"):
            net(Tensor(rng.standard_normal((1, 4, 4, 1)).astype(np.float32)))

    def test_invalid_activation_raises(self):
        with pytest.raises(ValueError, match="activation"):
            SESR(activation="tanh")

    def test_from_name_configs(self):
        for name, (f, m) in SESR_CONFIGS.items():
            net = SESR.from_name(name)
            assert (net.f, net.m) == (f, m)
        assert SESR.from_name("sesr-m5").m == 5
        with pytest.raises(KeyError):
            SESR.from_name("M99")

    def test_block_count(self):
        net = tiny(m=4)
        assert len(net.blocks) == 4 and len(net.acts) == 4

    def test_relu_variant_has_no_alpha(self):
        net = tiny(activation="relu")
        assert not any("alpha" in n for n, _ in net.named_parameters())

    def test_seeded_determinism(self, rng):
        a, b = tiny(seed=3), tiny(seed=3)
        x = rng.standard_normal((1, 6, 6, 1)).astype(np.float32)
        with no_grad():
            np.testing.assert_array_equal(a(Tensor(x)).data, b(Tensor(x)).data)

    def test_different_seeds_differ(self, rng):
        a, b = tiny(seed=3), tiny(seed=4)
        assert not np.allclose(a.first.w_expand.data, b.first.w_expand.data)


class TestParameterFormula:
    @pytest.mark.parametrize("name,scale,expected_k", [
        ("M3", 2, 8.91), ("M5", 2, 13.52), ("M7", 2, 18.12), ("M11", 2, 27.34),
        ("XL", 2, 105.37),
        ("M3", 4, 13.71), ("M5", 4, 18.32), ("M11", 4, 32.14), ("XL", 4, 114.97),
    ])
    def test_matches_paper_tables(self, name, scale, expected_k):
        net = SESR.from_name(name, scale=scale)
        assert net.collapsed_num_parameters() == pytest.approx(
            expected_k * 1000, rel=0.001
        )

    def test_formula_matches_actual_collapsed_weights(self):
        net = tiny(f=8, m=2, scale=2)
        collapsed = net.collapse()
        actual = sum(
            c.weight.size
            for c in [collapsed.first, *collapsed.convs, collapsed.last]
        )
        assert actual == net.collapsed_num_parameters()


class TestCollapse:
    @pytest.mark.parametrize("scale", [2, 4])
    @pytest.mark.parametrize("activation", ["prelu", "relu"])
    def test_collapse_is_exact(self, rng, scale, activation):
        net = tiny(scale=scale, activation=activation)
        collapsed = net.collapse()
        x = rng.standard_normal((1, 9, 11, 1)).astype(np.float32)
        with no_grad():
            a = net(Tensor(x)).data
            b = collapsed(Tensor(x)).data
        np.testing.assert_allclose(a, b, atol=1e-5)

    def test_collapse_without_long_residuals(self, rng):
        net = tiny(input_residual=False, feature_residual=False)
        collapsed = net.collapse()
        x = rng.standard_normal((1, 8, 8, 1)).astype(np.float32)
        with no_grad():
            np.testing.assert_allclose(
                net(Tensor(x)).data, collapsed(Tensor(x)).data, atol=1e-5
            )

    def test_collapsed_is_standalone(self, rng):
        """Mutating the training net must not affect the exported net."""
        net = tiny()
        collapsed = net.collapse()
        x = rng.standard_normal((1, 6, 6, 1)).astype(np.float32)
        with no_grad():
            before = collapsed(Tensor(x)).data.copy()
        for p in net.parameters():
            p.data += 1.0
        with no_grad():
            after = collapsed(Tensor(x)).data
        np.testing.assert_array_equal(before, after)

    def test_collapsed_layer_count_is_m_plus_2(self):
        net = tiny(m=3)
        collapsed = net.collapse()
        assert len(collapsed.convs) == 3  # + first + last = m + 2

    def test_plain_conv_model_cannot_collapse(self):
        net = tiny(linear_blocks=False)
        with pytest.raises(ValueError, match="linear-block"):
            net.collapse()

    def test_collapsed_in_eval_mode(self):
        assert tiny().collapse().training is False


class TestScaleTransfer:
    def test_convert_scale_preserves_trunk(self, rng):
        """§5.1: ×4 models start from the pretrained ×2 trunk."""
        x2 = tiny(scale=2)
        for p in x2.parameters():
            p.data += 0.01  # make weights distinctive
        x4 = x2.convert_scale(4)
        assert x4.scale == 4
        np.testing.assert_array_equal(
            x2.first.w_expand.data, x4.first.w_expand.data
        )
        np.testing.assert_array_equal(
            x2.blocks[0].w_expand.data, x4.blocks[0].w_expand.data
        )
        # Head is re-initialised with SCALE²=16 output channels.
        assert x4.last.w_project.shape[3] == 16
        out = x4(Tensor(rng.standard_normal((1, 5, 5, 1)).astype(np.float32)))
        assert out.shape == (1, 20, 20, 1)


class TestAblationFlags:
    @pytest.mark.parametrize("kwargs", [
        dict(short_residuals=False),                       # ExpandNet config
        dict(linear_blocks=False),                         # plain convs + res
        dict(linear_blocks=False, short_residuals=False),  # pure VGG
        dict(input_residual=False, activation="relu"),     # hardware variant
        dict(feature_residual=False),
    ])
    def test_variants_run_and_differ(self, rng, kwargs):
        base = tiny()
        variant = tiny(**kwargs)
        x = rng.standard_normal((1, 8, 8, 1)).astype(np.float32)
        with no_grad():
            out = variant(Tensor(x))
        assert out.shape == (1, 16, 16, 1)

    def test_plain_blocks_have_fewer_parameters(self):
        assert (
            tiny(linear_blocks=False).num_parameters()
            < tiny(linear_blocks=True).num_parameters()
        )
