"""Tests for Algorithms 1 & 2 (paper §3.1) and the collapse helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.collapse import (
    collapse_bias,
    collapse_linear_block,
    collapse_residual,
    compose_pair,
    expand_1x1_to_kxk,
    identity_conv_rect,
)
from repro.nn import Tensor, conv2d, no_grad


class TestAlgorithm1:
    @pytest.mark.parametrize("k,cin,cout,p", [
        (3, 1, 16, 64), (5, 1, 16, 32), (3, 16, 16, 64),
        (5, 16, 4, 32), (1, 4, 4, 8),
    ])
    def test_matches_algebraic_composition(self, rng, k, cin, cout, p):
        w1 = rng.standard_normal((k, k, cin, p)).astype(np.float32)
        w2 = rng.standard_normal((1, 1, p, cout)).astype(np.float32)
        alg1 = collapse_linear_block([w1, w2], (k, k), cin, cout)
        fast = compose_pair(w1, w2)
        np.testing.assert_allclose(alg1, fast, atol=1e-4)

    def test_collapsed_conv_equals_sequential(self, rng):
        """The defining property: conv(x, W_C) == conv1x1(convkxk(x))."""
        w1 = rng.standard_normal((3, 3, 2, 32)).astype(np.float64)
        w2 = rng.standard_normal((1, 1, 32, 2)).astype(np.float64)
        x = rng.standard_normal((1, 7, 8, 2))
        w_c = collapse_linear_block([w1, w2], (3, 3), 2, 2)
        with no_grad():
            seq = conv2d(conv2d(Tensor(x), Tensor(w1), padding="same"),
                         Tensor(w2), padding="same").data
            col = conv2d(Tensor(x), Tensor(w_c), padding="same").data
        np.testing.assert_allclose(seq, col, atol=1e-10)

    def test_three_layer_chain(self, rng):
        """Algorithm 1 handles arbitrary linear stacks, e.g. 3×3∘3×3∘1×1."""
        w1 = rng.standard_normal((3, 3, 2, 8)).astype(np.float64)
        w2 = rng.standard_normal((3, 3, 8, 8)).astype(np.float64)
        w3 = rng.standard_normal((1, 1, 8, 3)).astype(np.float64)
        w_c = collapse_linear_block([w1, w2, w3], (5, 5), 2, 3)
        assert w_c.shape == (5, 5, 2, 3)
        x = rng.standard_normal((1, 9, 9, 2))
        # Compare under 'valid' padding: with 'same', the intermediate
        # zero-padding of stacked 3×3 convs is not equivalent to one
        # 5×5 'same' conv at the borders (interiors agree either way).
        with no_grad():
            seq = conv2d(
                conv2d(conv2d(Tensor(x), Tensor(w1), padding="valid"),
                       Tensor(w2), padding="valid"),
                Tensor(w3), padding="valid",
            ).data
            col = conv2d(Tensor(x), Tensor(w_c), padding="valid").data
        np.testing.assert_allclose(seq, col, atol=1e-9)

    def test_kernel_mismatch_raises(self, rng):
        w1 = rng.standard_normal((3, 3, 2, 4)).astype(np.float32)
        w2 = rng.standard_normal((1, 1, 4, 2)).astype(np.float32)
        with pytest.raises(ValueError, match="receptive"):
            collapse_linear_block([w1, w2], (5, 5), 2, 2)

    def test_channel_mismatch_raises(self, rng):
        w1 = rng.standard_normal((3, 3, 2, 4)).astype(np.float32)
        w2 = rng.standard_normal((1, 1, 4, 2)).astype(np.float32)
        with pytest.raises(ValueError, match="C_in"):
            collapse_linear_block([w1, w2], (3, 3), 3, 2)
        with pytest.raises(ValueError, match="C_out"):
            collapse_linear_block([w1, w2], (3, 3), 2, 5)

    @given(
        k=st.sampled_from([1, 3, 5]),
        cin=st.integers(1, 4),
        cout=st.integers(1, 4),
        p=st.integers(1, 12),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_alg1_equals_compose(self, k, cin, cout, p, seed):
        rng = np.random.default_rng(seed)
        w1 = rng.standard_normal((k, k, cin, p)).astype(np.float64)
        w2 = rng.standard_normal((1, 1, p, cout)).astype(np.float64)
        np.testing.assert_allclose(
            collapse_linear_block([w1, w2], (k, k), cin, cout),
            compose_pair(w1, w2),
            atol=1e-10,
        )


class TestBiasFolding:
    def test_matches_sequential_with_bias(self, rng):
        w1 = rng.standard_normal((3, 3, 2, 8)).astype(np.float64)
        b1 = rng.standard_normal(8).astype(np.float64)
        w2 = rng.standard_normal((1, 1, 8, 3)).astype(np.float64)
        b2 = rng.standard_normal(3).astype(np.float64)
        x = rng.standard_normal((1, 6, 6, 2))
        w_c = collapse_linear_block([w1, w2], (3, 3), 2, 3)
        b_c = collapse_bias([w1, w2], [b1, b2])
        with no_grad():
            seq = conv2d(conv2d(Tensor(x), Tensor(w1), Tensor(b1), padding="same"),
                         Tensor(w2), Tensor(b2), padding="same").data
            col = conv2d(Tensor(x), Tensor(w_c), Tensor(b_c), padding="same").data
        # Interior pixels must match exactly (the k×k bias interacts with
        # zero padding at borders, which the collapsed form reproduces too
        # only away from the boundary for multi-tap chains).
        np.testing.assert_allclose(seq[:, 2:-2, 2:-2], col[:, 2:-2, 2:-2],
                                   atol=1e-10)

    def test_zero_biases_fold_to_zero(self, rng):
        w1 = rng.standard_normal((3, 3, 2, 4)).astype(np.float32)
        w2 = rng.standard_normal((1, 1, 4, 2)).astype(np.float32)
        b = collapse_bias([w1, w2], [np.zeros(4, np.float32), np.zeros(2, np.float32)])
        np.testing.assert_allclose(b, np.zeros(2), atol=1e-7)

    def test_missing_bias_treated_as_zero(self, rng):
        w1 = rng.standard_normal((3, 3, 2, 4)).astype(np.float32)
        w2 = rng.standard_normal((1, 1, 4, 2)).astype(np.float32)
        b2 = rng.standard_normal(2).astype(np.float32)
        b = collapse_bias([w1, w2], [None, b2])
        np.testing.assert_allclose(b, b2, atol=1e-6)


class TestAlgorithm2:
    @pytest.mark.parametrize("k", [3, 5])
    def test_residual_weight_is_identity(self, rng, k):
        w_c = rng.standard_normal((k, k, 4, 4)).astype(np.float32)
        w_r = collapse_residual(w_c)
        x = rng.standard_normal((1, 6, 6, 4)).astype(np.float32)
        with no_grad():
            y = conv2d(Tensor(x), Tensor(w_r), padding="same").data
        np.testing.assert_allclose(y, x)

    def test_center_index_placement(self):
        w_r = collapse_residual(np.zeros((3, 3, 2, 2), dtype=np.float32))
        assert w_r[1, 1, 0, 0] == 1.0 and w_r[1, 1, 1, 1] == 1.0
        assert w_r.sum() == 2.0
        w_r5 = collapse_residual(np.zeros((5, 5, 3, 3), dtype=np.float32))
        assert w_r5[2, 2, 1, 1] == 1.0 and w_r5.sum() == 3.0

    def test_sum_property(self, rng):
        """conv(x, W_C + W_R) == conv(x, W_C) + x — the Fig. 2(c) identity."""
        w_c = rng.standard_normal((3, 3, 3, 3)).astype(np.float64)
        w_r = collapse_residual(w_c)
        x = rng.standard_normal((1, 5, 5, 3))
        with no_grad():
            lhs = conv2d(Tensor(x), Tensor(w_c + w_r), padding="same").data
            rhs = conv2d(Tensor(x), Tensor(w_c), padding="same").data + x
        np.testing.assert_allclose(lhs, rhs, atol=1e-10)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError, match="C_in == C_out"):
            collapse_residual(np.zeros((3, 3, 2, 4), dtype=np.float32))

    def test_even_kernel_raises(self):
        with pytest.raises(ValueError, match="odd"):
            collapse_residual(np.zeros((2, 2, 2, 2), dtype=np.float32))

    def test_rect_identity(self, rng):
        w = identity_conv_rect(3, 5, 2)
        x = rng.standard_normal((1, 4, 7, 2)).astype(np.float32)
        with no_grad():
            y = conv2d(Tensor(x), Tensor(w), padding="same").data
        np.testing.assert_allclose(y, x)


class TestExpand1x1:
    def test_centre_padding_preserves_function(self, rng):
        w = rng.standard_normal((1, 1, 3, 4)).astype(np.float64)
        wk = expand_1x1_to_kxk(w, 3, 3)
        x = rng.standard_normal((1, 6, 6, 3))
        with no_grad():
            a = conv2d(Tensor(x), Tensor(w), padding="same").data
            b = conv2d(Tensor(x), Tensor(wk), padding="same").data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_bad_inputs_raise(self):
        with pytest.raises(ValueError, match="1×1"):
            expand_1x1_to_kxk(np.zeros((3, 3, 1, 1), dtype=np.float32), 3, 3)
        with pytest.raises(ValueError, match="odd"):
            expand_1x1_to_kxk(np.zeros((1, 1, 1, 1), dtype=np.float32), 2, 2)
