"""Overparameterization block variants (§5.4) and the FSRCNN baseline."""

import numpy as np
import pytest

from repro.core import (
    BLOCK_TYPES,
    FSRCNN,
    RepVGGBlock,
    RepVGGSESR,
    build_sesr_variant,
)
from repro.nn import Adam, Tensor, no_grad
from repro.nn.losses import l1_loss


class TestRepVGGBlock:
    def test_collapse_equivalence_with_identity(self, rng):
        blk = RepVGGBlock(4, 4, 3, identity=True, rng=rng)
        blk.b_main.data[:] = rng.standard_normal(4) * 0.1
        blk.b_branch.data[:] = rng.standard_normal(4) * 0.1
        x = rng.standard_normal((2, 6, 7, 4)).astype(np.float32)
        with no_grad():
            a = blk(Tensor(x)).data
            b = blk.to_conv2d()(Tensor(x)).data
        np.testing.assert_allclose(a, b, atol=2e-5)

    def test_collapse_equivalence_without_identity(self, rng):
        blk = RepVGGBlock(2, 6, 5, identity=False, rng=rng)
        x = rng.standard_normal((1, 8, 8, 2)).astype(np.float32)
        with no_grad():
            a = blk(Tensor(x)).data
            b = blk.to_conv2d()(Tensor(x)).data
        np.testing.assert_allclose(a, b, atol=2e-5)

    def test_identity_needs_matching_channels(self, rng):
        with pytest.raises(ValueError, match="identity"):
            RepVGGBlock(2, 4, 3, identity=True, rng=rng)

    def test_collapsed_weight_structure(self, rng):
        blk = RepVGGBlock(3, 3, 3, identity=True, rng=rng)
        w, b = blk.collapse()
        # Centre tap contains main + branch + identity contributions.
        expected_centre = (
            blk.w_main.data[1, 1] + blk.w_branch.data[0, 0] + np.eye(3)
        )
        np.testing.assert_allclose(w[1, 1], expected_centre, atol=1e-6)
        # Off-centre taps are main-branch only.
        np.testing.assert_allclose(w[0, 0], blk.w_main.data[0, 0], atol=1e-6)


class TestRepVGGSESR:
    @pytest.mark.parametrize("scale", [2, 4])
    def test_shapes_and_collapse(self, rng, scale):
        net = RepVGGSESR(scale=scale, f=8, m=2, seed=5)
        x = rng.standard_normal((1, 6, 6, 1)).astype(np.float32)
        with no_grad():
            a = net(Tensor(x)).data
            b = net.collapse()(Tensor(x)).data
        assert a.shape == (1, 6 * scale, 6 * scale, 1)
        np.testing.assert_allclose(a, b, atol=1e-5)

    def test_trains(self, rng):
        net = RepVGGSESR(scale=2, f=8, m=1, seed=0)
        opt = Adam(net.parameters(), lr=1e-3)
        x = Tensor(rng.standard_normal((2, 8, 8, 1)).astype(np.float32))
        y = Tensor(rng.standard_normal((2, 16, 16, 1)).astype(np.float32) * 0.1)
        losses = []
        for _ in range(8):
            opt.zero_grad()
            loss = l1_loss(net(x), y)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]


class TestVariantBuilder:
    @pytest.mark.parametrize("block_type", BLOCK_TYPES)
    def test_all_variants_build_and_run(self, rng, block_type):
        net = build_sesr_variant(block_type, f=8, m=2, expansion=16)
        x = rng.standard_normal((1, 6, 6, 1)).astype(np.float32)
        with no_grad():
            out = net(Tensor(x))
        assert out.shape == (1, 12, 12, 1)

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError, match="block_type"):
            build_sesr_variant("resnet")

    def test_expandnet_has_no_short_residuals(self):
        net = build_sesr_variant("expandnet", f=8, m=2, expansion=16)
        assert all(not blk.residual for blk in net.blocks)

    def test_sesr_has_short_residuals(self):
        net = build_sesr_variant("sesr", f=8, m=2, expansion=16)
        assert all(blk.residual for blk in net.blocks)

    def test_vgg_is_smallest(self):
        """VGG trains the already-collapsed network — far fewer parameters."""
        sizes = {
            bt: build_sesr_variant(bt, f=8, m=2, expansion=16).num_parameters()
            for bt in BLOCK_TYPES
        }
        assert sizes["vgg"] < sizes["repvgg"] < sizes["sesr"]
        assert sizes["vgg"] == sizes["plain_residual"]


class TestFSRCNN:
    @pytest.mark.parametrize("scale", [2, 4])
    def test_output_shape(self, rng, scale):
        net = FSRCNN(scale=scale, d=12, s=4, m=1, seed=1)
        x = Tensor(rng.standard_normal((1, 6, 7, 1)).astype(np.float32))
        assert net(x).shape == (1, 6 * scale, 7 * scale, 1)

    def test_paper_parameter_count(self):
        """The configuration benchmarked in the paper: 12.46K conv weights."""
        assert FSRCNN(scale=2).conv_num_parameters() == 12464

    def test_structure(self):
        net = FSRCNN(scale=2, m=4)
        assert len(net.mapping) == 4
        assert net.deconv.kernel_size == (9, 9)
        assert net.deconv.stride == 2

    def test_relu_variant(self):
        net = FSRCNN(scale=2, activation="relu")
        assert not any("alpha" in n for n, _ in net.named_parameters())
        with pytest.raises(ValueError, match="activation"):
            FSRCNN(activation="gelu")

    def test_trains(self, rng):
        net = FSRCNN(scale=2, d=8, s=4, m=1, seed=0)
        opt = Adam(net.parameters(), lr=1e-3)
        x = Tensor(rng.standard_normal((2, 6, 6, 1)).astype(np.float32))
        y = Tensor(np.zeros((2, 12, 12, 1), dtype=np.float32))
        losses = []
        for _ in range(8):
            opt.zero_grad()
            loss = l1_loss(net(x), y)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]
