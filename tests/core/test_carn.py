"""CARN-M baseline tests (cascading blocks + grouped efficient residuals)."""

import numpy as np
import pytest

from repro.core import CARN_M, EfficientResidualBlock
from repro.metrics import count_params, macs_to_720p
from repro.nn import Adam, Tensor, no_grad
from repro.nn.losses import l1_loss


def small(scale=2, **kw):
    defaults = dict(width=16, groups=2, blocks=2, depth=2, seed=1)
    defaults.update(kw)
    return CARN_M(scale=scale, **defaults)


class TestArchitecture:
    @pytest.mark.parametrize("scale", [2, 4])
    def test_output_shape(self, rng, scale):
        net = small(scale=scale)
        x = Tensor(rng.random((1, 6, 7, 1)).astype(np.float32))
        with no_grad():
            assert net(x).shape == (1, 6 * scale, 7 * scale, 1)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            CARN_M(scale=3)

    def test_full_config_near_published(self):
        """Published CARN-M: 412K params / 91.2G MACs (×2, to 720p); our
        architecture-level model lands within ~30%."""
        net = CARN_M(scale=2)
        params = net.conv_num_parameters()
        assert abs(params - 412e3) / 412e3 < 0.30
        macs = macs_to_720p(net.specs(), 2)
        assert abs(macs - 91.2e9) / 91.2e9 < 0.30

    def test_specs_match_module_weights(self):
        net = small()
        spec_params = count_params(net.specs())
        actual = sum(p.size for n, p in net.named_parameters()
                     if n.endswith("weight"))
        assert spec_params == actual

    def test_grouped_blocks_cheaper_than_dense(self):
        dense = EfficientResidualBlock(16, 1, np.random.default_rng(0))
        grouped = EfficientResidualBlock(16, 4, np.random.default_rng(0))
        assert grouped.num_parameters() < dense.num_parameters()


class TestTraining:
    def test_trains(self, rng):
        net = small()
        opt = Adam(net.parameters(), lr=1e-3)
        x = Tensor(rng.random((2, 8, 8, 1)).astype(np.float32))
        y = Tensor(rng.random((2, 16, 16, 1)).astype(np.float32))
        losses = []
        for _ in range(6):
            opt.zero_grad()
            loss = l1_loss(net(x), y)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_cascade_uses_all_stages(self, rng):
        """Zeroing a mid-cascade block must change the output (the
        cascading 1×1 fusions actually consume every stage)."""
        net = small(seed=3)
        x = Tensor(rng.random((1, 8, 8, 1)).astype(np.float32))
        with no_grad():
            before = net(x).data.copy()
        for p in net.cascades[0].blocks[1].parameters():
            p.data[...] = 0
        with no_grad():
            after = net(x).data
        assert not np.allclose(before, after)
