"""Future-work ×4 head (extra upsampling convolution, paper §5.1/§5.2).

The paper deliberately uses a *single* 5×5×f×16 head with depth-to-space
applied twice for ×4, noting this "helps us save additional MACs" compared
to prior art's repeated (conv + depth-to-space) upsampling blocks — and
its future-work note suggests the repeated-head design could close the
remaining quality gap.  These tests pin the implemented variant and the
MAC arithmetic behind the paper's design choice.
"""

import numpy as np
import pytest

from repro.core import SESR
from repro.metrics import count_params, macs_to_720p, sesr_specs
from repro.nn import Adam, Tensor, no_grad
from repro.nn.losses import l1_loss


def tiny(two_stage=True, **kw):
    return SESR(scale=4, f=8, m=2, expansion=16,
                two_stage_head=two_stage, seed=0, **kw)


class TestTwoStageHead:
    def test_output_shape(self, rng):
        net = tiny()
        x = Tensor(rng.random((1, 7, 9, 1)).astype(np.float32))
        assert net(x).shape == (1, 28, 36, 1)

    def test_collapse_exact(self, rng):
        net = tiny()
        col = net.collapse()
        x = rng.random((1, 8, 8, 1)).astype(np.float32)
        with no_grad():
            np.testing.assert_allclose(
                net(Tensor(x)).data, col(Tensor(x)).data, atol=1e-5
            )

    def test_only_scale4(self):
        with pytest.raises(ValueError, match="scale 4"):
            SESR(scale=2, two_stage_head=True)

    def test_param_formula_matches_specs(self):
        net = SESR(scale=4, f=16, m=5, two_stage_head=True)
        specs = sesr_specs(16, 5, 4, two_stage_head=True)
        assert net.collapsed_num_parameters() == count_params(specs)
        col = net.collapse()
        actual = sum(
            c.weight.size
            for c in [col.first, *col.convs, col.last, col.last2]
        )
        assert actual == net.collapsed_num_parameters()

    def test_costs_more_macs_than_paper_head(self):
        """The design-choice arithmetic: the paper's single head is ~2.4×
        cheaper to 720p than the prior-art two-stage head."""
        single = macs_to_720p(sesr_specs(16, 5, 4), 4)
        double = macs_to_720p(sesr_specs(16, 5, 4, two_stage_head=True), 4)
        assert 2.0 < double / single < 3.0

    def test_specs_scale_guard(self):
        with pytest.raises(ValueError, match="scale 4"):
            sesr_specs(16, 5, 2, two_stage_head=True)

    def test_trains(self, rng):
        net = tiny()
        opt = Adam(net.parameters(), lr=2e-3)
        x = Tensor(rng.random((2, 6, 6, 1)).astype(np.float32))
        y = Tensor(rng.random((2, 24, 24, 1)).astype(np.float32))
        losses = []
        for _ in range(6):
            opt.zero_grad()
            loss = l1_loss(net(x), y)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_input_residual_disabled(self):
        # The broadcast input residual is specific to the single-head form.
        assert tiny().input_residual is False
