"""Tests for the classic baselines (SRCNN/ESPCN/VDSR), ACBlock, BN folding,
and the BN-equipped RepVGG block."""

import numpy as np
import pytest

from repro.core import ACBlock, ESPCN, RepVGGBlock, SRCNN, VDSR, fold_batchnorm
from repro.metrics import count_macs, count_params
from repro.nn import Adam, BatchNorm2d, Tensor, conv2d, no_grad
from repro.nn.losses import l1_loss


class TestSRCNN:
    @pytest.mark.parametrize("scale", [2, 4])
    def test_output_shape(self, rng, scale):
        net = SRCNN(scale=scale, f1=8, f2=4, seed=1)
        x = Tensor(rng.random((1, 6, 7, 1)).astype(np.float32))
        assert net(x).shape == (1, 6 * scale, 7 * scale, 1)

    def test_specs_match_module(self):
        net = SRCNN(scale=2, f1=64, f2=32)
        specs = net.specs()
        # 9·64 + 25·64·32 + 25·32 conv weights.
        assert count_params(specs) == 81 * 64 + 25 * 64 * 32 + 25 * 32
        # All compute at HR resolution.
        assert all(s.res_scale == 2.0 for s in specs if s.kind == "conv")

    def test_trains(self, rng):
        net = SRCNN(scale=2, f1=8, f2=4, seed=0)
        opt = Adam(net.parameters(), lr=1e-3)
        x = Tensor(rng.random((2, 6, 6, 1)).astype(np.float32))
        y = Tensor(rng.random((2, 12, 12, 1)).astype(np.float32))
        losses = []
        for _ in range(6):
            opt.zero_grad()
            loss = l1_loss(net(x), y)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]


class TestESPCN:
    def test_output_shape_and_d2s(self, rng):
        net = ESPCN(scale=2, f1=8, f2=4, seed=1)
        x = Tensor(rng.random((1, 5, 5, 1)).astype(np.float32))
        assert net(x).shape == (1, 10, 10, 1)

    def test_lr_space_compute(self):
        specs = ESPCN(scale=2).specs()
        assert all(s.res_scale == 1.0 for s in specs if s.kind == "conv")

    def test_cheaper_than_srcnn(self):
        """The post-upsampling design point: ESPCN ≪ SRCNN in MACs."""
        espcn = count_macs(ESPCN(scale=2).specs(), 360, 640)
        srcnn = count_macs(SRCNN(scale=2).specs(), 360, 640)
        assert espcn < srcnn / 3


class TestVDSR:
    def test_full_config_matches_paper(self):
        net = VDSR(scale=2)
        assert net.conv_num_parameters() == 664704  # the 665K of Table 1
        assert count_params(net.specs()) == 664704

    def test_small_config_runs_and_trains(self, rng):
        net = VDSR(scale=2, depth=4, width=8, seed=0)
        x = Tensor(rng.random((1, 5, 5, 1)).astype(np.float32))
        with no_grad():
            assert net(x).shape == (1, 10, 10, 1)
        opt = Adam(net.parameters(), lr=1e-3)
        y = Tensor(rng.random((1, 10, 10, 1)).astype(np.float32))
        first = None
        for _ in range(6):
            opt.zero_grad()
            loss = l1_loss(net(x), y)
            loss.backward()
            opt.step()
            first = first if first is not None else loss.item()
        assert loss.item() < first

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            VDSR(depth=2)


class TestACBlock:
    def test_collapse_equivalence(self, rng):
        blk = ACBlock(3, 5, 3, rng=rng)
        blk.bias.data[:] = rng.standard_normal(5) * 0.1
        x = rng.standard_normal((2, 6, 7, 3)).astype(np.float32)
        with no_grad():
            a = blk(Tensor(x)).data
            b = blk.to_conv2d()(Tensor(x)).data
        np.testing.assert_allclose(a, b, atol=2e-5)

    def test_collapsed_weight_structure(self, rng):
        blk = ACBlock(2, 2, 3, rng=rng)
        w, _ = blk.collapse()
        # Corner taps contain only the square kernel.
        np.testing.assert_allclose(w[0, 0], blk.w_square.data[0, 0])
        # Centre tap sums all three branches.
        expected = (blk.w_square.data[1, 1] + blk.w_hor.data[0, 1]
                    + blk.w_ver.data[1, 0])
        np.testing.assert_allclose(w[1, 1], expected, atol=1e-6)

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            ACBlock(2, 2, 4)

    def test_trains(self, rng):
        blk = ACBlock(2, 2, 3, rng=rng)
        opt = Adam(blk.parameters(), lr=1e-2)
        x = Tensor(rng.standard_normal((2, 5, 5, 2)).astype(np.float32))
        losses = []
        for _ in range(6):
            opt.zero_grad()
            loss = (blk(x) ** 2).mean()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]


class TestBNFolding:
    def test_fold_matches_bn_conv(self, rng):
        w = rng.standard_normal((3, 3, 2, 4)).astype(np.float32)
        b = rng.standard_normal(4).astype(np.float32)
        gamma = rng.uniform(0.5, 1.5, 4).astype(np.float32)
        beta = rng.standard_normal(4).astype(np.float32)
        mean = rng.standard_normal(4).astype(np.float32)
        var = rng.uniform(0.5, 2.0, 4).astype(np.float32)

        x = rng.standard_normal((1, 6, 6, 2)).astype(np.float32)
        with no_grad():
            raw = conv2d(Tensor(x), Tensor(w), Tensor(b)).data
        manual = (raw - mean) / np.sqrt(var + 1e-5) * gamma + beta
        w_f, b_f = fold_batchnorm(w, b, gamma, beta, mean, var)
        with no_grad():
            folded = conv2d(Tensor(x), Tensor(w_f), Tensor(b_f)).data
        np.testing.assert_allclose(folded, manual, atol=1e-5)

    def test_fold_without_bias(self, rng):
        w = rng.standard_normal((1, 1, 2, 2)).astype(np.float32)
        gamma = np.ones(2, np.float32)
        beta = np.zeros(2, np.float32)
        mean = np.zeros(2, np.float32)
        var = np.ones(2, np.float32)
        w_f, b_f = fold_batchnorm(w, None, gamma, beta, mean, var, eps=0.0)
        np.testing.assert_allclose(w_f, w, atol=1e-6)
        np.testing.assert_allclose(b_f, 0, atol=1e-6)


class TestRepVGGWithBN:
    def test_collapse_after_training(self, rng):
        blk = RepVGGBlock(4, 4, 3, identity=True, batchnorm=True, rng=rng)
        opt = Adam(blk.parameters(), lr=1e-2)
        for _ in range(4):
            opt.zero_grad()
            x = Tensor(rng.standard_normal((4, 6, 6, 4)).astype(np.float32))
            loss = (blk(x) ** 2).mean()
            loss.backward()
            opt.step()
        blk.eval()
        x = rng.standard_normal((2, 7, 7, 4)).astype(np.float32)
        with no_grad():
            a = blk(Tensor(x)).data
            b = blk.to_conv2d()(Tensor(x)).data
        np.testing.assert_allclose(a, b, atol=1e-4)

    def test_bn_branches_registered(self):
        blk = RepVGGBlock(4, 4, 3, identity=True, batchnorm=True)
        names = {n for n, _ in blk.named_parameters()}
        assert "bn_main.gamma" in names
        assert "bn_identity.beta" in names

    def test_no_bn_by_default(self):
        blk = RepVGGBlock(4, 4, 3)
        assert not any(isinstance(m, BatchNorm2d)
                       for _, m in blk.named_modules())
