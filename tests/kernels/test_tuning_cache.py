"""The per-host tuning cache: round-trip, corruption tolerance, selection.

The cache sits on the serving path (``gemm_backend="auto"`` loads it at
engine construction), so the failure contract matters more than the
happy path: anything unreadable degrades to ``{}`` — and therefore to
the ``blas`` kernel — without raising.
"""

import json
import os

import pytest

from repro.kernels import (
    GEMM_KERNELS,
    cache_path,
    load_cache,
    save_cache,
    select_kernel,
    shape_key,
    time_conv_kernels,
    tune_model,
)
from repro.kernels.tune import CACHE_VERSION


@pytest.fixture
def cache_file(tmp_path, monkeypatch):
    path = tmp_path / "kernel_tuning.json"
    monkeypatch.setenv("REPRO_TUNING_CACHE", str(path))
    return str(path)


ROW = {"kernel": "blocked", "ms": {"blas": 1.0, "blocked": 0.5,
                                   "direct": 2.0}, "size": [96, 96]}
KEY = shape_key(3, 3, 16, 16)


class TestPaths:
    def test_env_var_overrides_default(self, cache_file):
        assert cache_path() == cache_file

    def test_default_is_under_user_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_TUNING_CACHE", raising=False)
        assert cache_path().endswith(
            os.path.join(".cache", "repro", "kernel_tuning.json")
        )


class TestRoundTrip:
    def test_save_then_load(self, cache_file):
        assert save_cache({KEY: ROW}) == cache_file
        assert load_cache() == {KEY: ROW}
        payload = json.load(open(cache_file))
        assert payload["version"] == CACHE_VERSION
        assert set(payload["host"]) == {
            "node", "machine", "python", "numpy",
        }

    def test_save_merges_over_prior_rows(self, cache_file):
        other = shape_key(5, 5, 1, 16)
        save_cache({KEY: ROW})
        save_cache({other: dict(ROW, kernel="direct")})
        merged = load_cache()
        assert set(merged) == {KEY, other}
        assert merged[other]["kernel"] == "direct"

    def test_save_replaces_a_row_for_the_same_shape(self, cache_file):
        save_cache({KEY: ROW})
        save_cache({KEY: dict(ROW, kernel="blas")})
        assert load_cache()[KEY]["kernel"] == "blas"

    def test_explicit_path_beats_env(self, cache_file, tmp_path):
        explicit = str(tmp_path / "elsewhere.json")
        save_cache({KEY: ROW}, path=explicit)
        assert load_cache(explicit) == {KEY: ROW}
        assert load_cache() == {}  # env-var location untouched


class TestCorruptionTolerance:
    def test_missing_file_is_empty(self, cache_file):
        assert load_cache() == {}

    @pytest.mark.parametrize("payload", [
        "not json at all {{{",
        json.dumps([1, 2, 3]),
        json.dumps({"shapes": {}}),                       # no version
        json.dumps({"version": CACHE_VERSION + 1, "shapes": {}}),
        json.dumps({"version": CACHE_VERSION, "shapes": "nope"}),
    ], ids=["garbage", "not-a-dict", "versionless", "future-version",
            "bad-shapes"])
    def test_unreadable_payloads_degrade_to_empty(self, cache_file,
                                                  payload):
        with open(cache_file, "w") as fh:
            fh.write(payload)
        assert load_cache() == {}

    def test_bad_rows_are_dropped_good_rows_kept(self, cache_file):
        with open(cache_file, "w") as fh:
            json.dump({"version": CACHE_VERSION, "shapes": {
                KEY: ROW,
                "weird": {"kernel": "cuda"},   # unknown kernel
                "worse": "not a row",
            }}, fh)
        assert load_cache() == {KEY: ROW}

    def test_save_over_corrupt_file_recovers(self, cache_file):
        with open(cache_file, "w") as fh:
            fh.write("torn write!!")
        save_cache({KEY: ROW})
        assert load_cache() == {KEY: ROW}


class TestSelectKernel:
    def test_forced_backends_ignore_tuning(self):
        for backend in ("blas", "blocked"):
            assert select_kernel(backend, KEY, {KEY: ROW}) == \
                (backend, "forced")

    def test_auto_picks_the_tuned_winner(self):
        assert select_kernel("auto", KEY, {KEY: ROW}) == \
            ("blocked", "tuned")

    def test_auto_defaults_to_blas_without_a_row(self):
        assert select_kernel("auto", KEY, {}) == ("blas", "default")
        assert select_kernel("auto", KEY, None) == ("blas", "default")

    def test_auto_ignores_a_row_with_an_unknown_kernel(self):
        assert select_kernel("auto", KEY, {KEY: {"kernel": "cuda"}}) == \
            ("blas", "default")

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="gemm backend"):
            select_kernel("cublas", KEY, None)


class TestMeasurement:
    def test_time_conv_kernels_covers_every_kernel(self):
        ms = time_conv_kernels(3, 3, 4, 4, size=(16, 16), repeats=1)
        assert set(ms) == set(GEMM_KERNELS)
        assert all(v > 0 for v in ms.values())

    def test_tune_model_rows_round_trip(self, cache_file):
        from repro.compile import compile_model
        from repro.core import SESR

        compiled = compile_model(SESR.from_name("M3", scale=2).collapse())
        rows = tune_model(compiled, size=(16, 16), repeats=1)
        assert rows  # one row per distinct conv shape
        for key, row in rows.items():
            assert row["kernel"] in GEMM_KERNELS
            assert row["kernel"] == min(row["ms"], key=row["ms"].get)
            assert row["size"] == [16, 16]
        save_cache(rows)
        assert load_cache() == rows
